//! Property tests for the fleet wire protocol: randomized frames must
//! round-trip exactly, and every way of mutilating a valid frame —
//! truncation at any prefix, corruption of any single byte — must yield
//! a [`ProtoError`] value, never a panic and never a silently wrong
//! frame.

use strata_fleet::protocol::{Frame, ProtoError, MAGIC};
use strata_stats::rng::SmallRng;

/// Random printable-ish string, including pipes/newlines like real cell
/// keys and records.
fn rand_string(rng: &mut SmallRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len as u64 + 1) as usize;
    let alphabet: Vec<char> = ('a'..='z')
        .chain('0'..='9')
        .chain(['|', '(', ')', '=', '\n', ' ', '.', '-'])
        .collect();
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len() as u64) as usize])
        .collect()
}

fn rand_frame(rng: &mut SmallRng) -> Frame {
    match rng.gen_range(0u64..8) {
        0 => Frame::Welcome {
            filter: rand_string(rng, 60),
            scale: rng.next_u32(),
            variant: rng.next_u64(),
            manifest_len: rng.next_u32(),
            fingerprint: rng.next_u64(),
        },
        1 => Frame::Register {
            worker: rand_string(rng, 30),
        },
        2 => Frame::Fetch,
        3 => Frame::Assign {
            index: rng.next_u32(),
            key: rand_string(rng, 80),
        },
        4 => Frame::Wait {
            millis: rng.next_u32(),
        },
        5 => Frame::Finished,
        6 => Frame::Result {
            index: rng.next_u32(),
            key: rand_string(rng, 80),
            record: rand_string(rng, 400),
        },
        _ => Frame::Ping,
    }
}

#[test]
fn random_frames_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_F1EE_7000_0001);
    for _ in 0..500 {
        let frame = rand_frame(&mut rng);
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).expect("valid frame decodes");
        assert_eq!(decoded, frame);
        assert_eq!(used, bytes.len(), "decode must consume the whole frame");
        let streamed = Frame::read_from(&mut &bytes[..]).expect("valid frame reads");
        assert_eq!(streamed, frame);
    }
}

#[test]
fn truncation_at_every_length_errors_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_F1EE_7000_0002);
    for _ in 0..50 {
        let bytes = rand_frame(&mut rng).encode();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            assert!(
                Frame::decode(prefix).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
            // The stream reader reports truncation as an I/O error
            // (EOF mid-frame).
            assert!(Frame::read_from(&mut &prefix[..]).is_err());
        }
    }
}

#[test]
fn single_byte_corruption_errors_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_F1EE_7000_0003);
    for _ in 0..40 {
        let frame = rand_frame(&mut rng);
        let bytes = frame.encode();
        for at in 0..bytes.len() {
            let flip = 1u8 << rng.gen_range(0u64..8);
            let mut bad = bytes.clone();
            bad[at] ^= flip;
            // Either decoder rejects the frame, or — impossible with a
            // single flipped bit given the checksum — returns the
            // original. It must never return a *different* frame.
            match Frame::decode(&bad) {
                Err(_) => {}
                Ok((got, _)) => panic!(
                    "flipping bit {flip:#04x} at byte {at} yielded {got:?} instead of an error"
                ),
            }
            assert!(Frame::read_from(&mut &bad[..]).is_err());
        }
    }
}

#[test]
fn corrupt_magic_and_checksum_report_specific_errors() {
    let bytes = Frame::Fetch.encode();

    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        Frame::decode(&bad).unwrap_err(),
        ProtoError::BadMagic(m) if m != MAGIC
    ));

    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01; // trailing checksum byte
    assert_eq!(Frame::decode(&bad).unwrap_err(), ProtoError::BadChecksum);
}

#[test]
fn appended_garbage_is_not_consumed() {
    let frame = Frame::Assign {
        index: 3,
        key: "gzip|native|x86-like|s1v0".into(),
    };
    let mut bytes = frame.encode();
    let frame_len = bytes.len();
    bytes.extend_from_slice(b"TRAILING JUNK");
    let (decoded, used) = Frame::decode(&bytes).expect("frame before junk decodes");
    assert_eq!(decoded, frame);
    assert_eq!(used, frame_len);
}
