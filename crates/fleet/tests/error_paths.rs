//! Fleet error-path tests: the handshake and robustness behaviors the
//! happy-path e2e suite never exercises.
//!
//! Three scenarios, each driven over loopback with hand-rolled protocol
//! frames where a misbehaving peer is needed:
//!
//! 1. A coordinator announcing a **stale manifest fingerprint** must be
//!    refused by the worker — fatally, with no retry, because executing
//!    under a skewed manifest would stream wrong results under
//!    valid-looking indices.
//! 2. A worker sending a **corrupt frame mid-stream** (after taking a
//!    lease) must be dropped; its lease is requeued and a healthy worker
//!    finishes the suite with byte-identical output.
//! 3. **Double delivery** of the same cell's result must count as a
//!    duplicate and leave the render identical to a local run —
//!    first-result-wins, deterministically.

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use strata_expt::exec::{build_program, cell_result};
use strata_expt::{
    manifest_fingerprint, render_record, run_suite, work_manifest, OutputFormat, Store,
    SuiteOptions,
};
use strata_fleet::protocol::Frame;
use strata_fleet::{work, Coordinator, FleetReport, Progress, ServeOptions, WorkOptions};
use strata_workloads::Params;

const FILTER: &str = "fig2";

fn suite_opts() -> SuiteOptions {
    SuiteOptions {
        jobs: 1,
        filter: Some(FILTER.into()),
        format: OutputFormat::Text,
        params: Params::default(),
        cache_dir: None,
    }
}

fn spawn_coordinator() -> (std::thread::JoinHandle<Result<FleetReport, String>>, String) {
    let serve = ServeOptions {
        bind: "127.0.0.1:0".into(),
        suite: suite_opts(),
        lease: Duration::from_secs(30),
        progress: Progress::Silent,
        progress_every: Duration::from_secs(5),
    };
    let coordinator = Coordinator::bind(serve).expect("bind coordinator");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    (std::thread::spawn(move || coordinator.run()), addr)
}

fn worker_opts(addr: &str, name: &str) -> WorkOptions {
    WorkOptions {
        connect: addr.into(),
        name: name.into(),
        retries: 3,
        backoff: Duration::from_millis(50),
        heartbeat: Duration::from_millis(200),
        abandon_after: None,
    }
}

/// Scenario 1: the worker re-derives the manifest locally and must
/// refuse to register under a fingerprint it cannot reproduce. The
/// refusal is fatal — no reconnect attempts against a skewed peer.
#[test]
fn worker_refuses_stale_manifest_fingerprint() {
    let cells = work_manifest(Some(FILTER), Params::default()).expect("manifest");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake coordinator");
    let addr = listener.local_addr().expect("addr").to_string();

    // Fake coordinator: correct filter, params, and manifest length, but
    // a doctored fingerprint — exactly what a version-skewed coordinator
    // binary would announce.
    let manifest_len = cells.len() as u32;
    let bad_fingerprint = manifest_fingerprint(&cells) ^ 1;
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        Frame::Welcome {
            filter: FILTER.into(),
            scale: 1,
            variant: 0,
            manifest_len,
            fingerprint: bad_fingerprint,
        }
        .write_to(&mut conn)
        .expect("send welcome");
        // Hold the socket open until the worker hangs up, so the worker's
        // exit is its own decision rather than a dropped connection.
        let _ = Frame::read_from(&mut conn);
    });

    let err = work(WorkOptions {
        // Zero retries: a fatal refusal must not consume any.
        retries: 0,
        ..worker_opts(&addr, "skewed")
    })
    .expect_err("worker must refuse a stale manifest");
    assert!(
        err.contains("manifest mismatch"),
        "refusal must name the manifest mismatch, got: {err}"
    );
    fake.join().expect("fake coordinator thread");
}

/// Scenario 2: a peer that takes a lease and then emits garbage bytes is
/// dropped; its lease is requeued immediately and a healthy worker
/// drains the suite to a byte-identical render.
#[test]
fn corrupt_frame_mid_stream_requeues_the_lease() {
    let (coordinator, addr) = spawn_coordinator();

    // The corrupt client plays the protocol correctly up to and
    // including taking an assignment...
    let mut conn = TcpStream::connect(&addr).expect("connect");
    match Frame::read_from(&mut conn).expect("welcome") {
        Frame::Welcome { .. } => {}
        other => panic!("expected Welcome, got {other:?}"),
    }
    Frame::Register {
        worker: "corrupt".into(),
    }
    .write_to(&mut conn)
    .expect("register");
    Frame::Fetch.write_to(&mut conn).expect("fetch");
    match Frame::read_from(&mut conn).expect("assignment") {
        Frame::Assign { .. } => {}
        other => panic!("expected Assign, got {other:?}"),
    }
    // ...then sprays garbage mid-stream instead of a result.
    use std::io::Write;
    conn.write_all(&[0xFF; 64]).expect("garbage");
    conn.flush().expect("flush");

    let healthy = {
        let opts = worker_opts(&addr, "healthy");
        std::thread::spawn(move || work(opts))
    };
    let report = coordinator.join().expect("no panic").expect("fleet run");
    let worked = healthy.join().expect("no panic").expect("healthy worker");
    drop(conn);

    assert!(
        report.stats.requeued >= 1,
        "the corrupt connection's lease must be requeued (requeued = {})",
        report.stats.requeued
    );
    assert_eq!(report.stats.received, report.stats.cells);
    assert!(worked.executed >= 1);

    // The poisoned connection must not have perturbed the output.
    let local = run_suite(&suite_opts()).expect("local run");
    assert_eq!(report.suite.rendered, local.rendered);
    assert_eq!(report.suite.artifacts, local.artifacts);
}

/// Scenario 3: at-least-once delivery means the same cell's result can
/// arrive twice; the coordinator must count the duplicate, keep the
/// first result, and render exactly what a local run renders.
#[test]
fn duplicate_result_delivery_is_deduplicated() {
    let cells = work_manifest(Some(FILTER), Params::default()).expect("manifest");
    let (coordinator, addr) = spawn_coordinator();

    // A hand-rolled mini-worker: executes its first assignment honestly,
    // then delivers the identical result twice.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    match Frame::read_from(&mut conn).expect("welcome") {
        Frame::Welcome { .. } => {}
        other => panic!("expected Welcome, got {other:?}"),
    }
    Frame::Register {
        worker: "echoer".into(),
    }
    .write_to(&mut conn)
    .expect("register");
    Frame::Fetch.write_to(&mut conn).expect("fetch");
    let (index, key) = match Frame::read_from(&mut conn).expect("assignment") {
        Frame::Assign { index, key } => (index, key),
        other => panic!("expected Assign, got {other:?}"),
    };
    let cell = &cells[index as usize];
    assert_eq!(cell.key_string(), key, "assignment key must match manifest");
    let store = Store::in_memory();
    let program = build_program(cell.workload, cell.params);
    let result = cell_result(&store, cell, &program);
    let delivery = Frame::Result {
        index,
        key,
        record: render_record(&cell.key_string(), &result),
    };
    delivery.write_to(&mut conn).expect("first delivery");
    delivery.write_to(&mut conn).expect("second delivery");
    drop(conn);

    let healthy = {
        let opts = worker_opts(&addr, "healthy");
        std::thread::spawn(move || work(opts))
    };
    let report = coordinator.join().expect("no panic").expect("fleet run");
    healthy.join().expect("no panic").expect("healthy worker");

    assert!(
        report.stats.duplicates >= 1,
        "the second delivery must be counted as a duplicate (duplicates = {})",
        report.stats.duplicates
    );
    assert_eq!(
        report.stats.received, report.stats.cells,
        "dedup must not double-count toward completion"
    );
    assert_eq!(report.stats.rejected, 0);

    // First-result-wins is deterministic: the render matches a local run.
    let local = run_suite(&suite_opts()).expect("local run");
    assert_eq!(report.suite.rendered, local.rendered);
    assert_eq!(report.suite.artifacts, local.artifacts);
}
