//! End-to-end fleet tests over loopback: a coordinator plus in-process
//! workers must produce output **byte-identical** to a single-machine
//! `run_suite` of the same selection — including when a worker crashes
//! mid-run and its leases are stolen back.

use std::time::Duration;

use strata_expt::{run_suite, OutputFormat, SuiteOptions};
use strata_fleet::{work, Coordinator, FleetReport, Progress, ServeOptions, WorkOptions};
use strata_workloads::Params;

fn suite_opts(filter: &str) -> SuiteOptions {
    SuiteOptions {
        jobs: 1,
        filter: Some(filter.into()),
        format: OutputFormat::Text,
        params: Params::default(),
        cache_dir: None,
    }
}

/// Binds a coordinator on an ephemeral loopback port, runs it on a
/// thread, and returns (join handle, connect address).
fn spawn_coordinator(
    opts: ServeOptions,
) -> (std::thread::JoinHandle<Result<FleetReport, String>>, String) {
    let coordinator = Coordinator::bind(opts).expect("bind coordinator");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || coordinator.run());
    (handle, addr)
}

fn worker_opts(addr: &str, name: &str) -> WorkOptions {
    WorkOptions {
        connect: addr.into(),
        name: name.into(),
        retries: 3,
        backoff: Duration::from_millis(50),
        heartbeat: Duration::from_millis(200),
        abandon_after: None,
    }
}

#[test]
fn fleet_run_is_byte_identical_to_local_run() {
    let serve = ServeOptions {
        bind: "127.0.0.1:0".into(),
        suite: suite_opts("fig2"),
        lease: Duration::from_secs(30),
        progress: Progress::Silent,
        progress_every: Duration::from_secs(5),
    };
    let (coordinator, addr) = spawn_coordinator(serve);

    let workers: Vec<_> = (0..2)
        .map(|i| {
            let opts = worker_opts(&addr, &format!("w{i}"));
            std::thread::spawn(move || work(opts))
        })
        .collect();

    let report = coordinator.join().expect("no panic").expect("fleet run");
    let mut executed = 0;
    for w in workers {
        let r = w.join().expect("no panic").expect("worker run");
        executed += r.executed;
    }

    assert_eq!(report.stats.received, report.stats.cells);
    assert_eq!(report.stats.preloaded, 0);
    assert_eq!(report.stats.workers_seen, 2);
    assert!(executed >= report.stats.cells, "every cell was executed");
    // Nothing was simulated coordinator-side: the render came entirely
    // from streamed results.
    assert_eq!(
        report.suite.store_stats.computed, 0,
        "coordinator must not simulate"
    );

    let local = run_suite(&suite_opts("fig2")).expect("local run");
    assert_eq!(report.suite.rendered, local.rendered);
    assert_eq!(report.suite.artifacts, local.artifacts);
    assert_eq!(report.suite.unique_cells, local.unique_cells);
}

#[test]
fn fleet_survives_a_worker_crash_mid_run() {
    let serve = ServeOptions {
        bind: "127.0.0.1:0".into(),
        suite: suite_opts("fig2"),
        // Short lease so even a lease-expiry path (not just the
        // disconnect path) could recover within the test budget.
        lease: Duration::from_secs(2),
        progress: Progress::Silent,
        progress_every: Duration::from_secs(5),
    };
    let (coordinator, addr) = spawn_coordinator(serve);

    // Worker A crashes after taking its second assignment: it abandons
    // one leased, unexecuted cell with no goodbye.
    let crasher = {
        let opts = WorkOptions {
            abandon_after: Some(1),
            retries: 0,
            ..worker_opts(&addr, "crasher")
        };
        std::thread::spawn(move || work(opts))
    };
    let survivor = {
        let opts = worker_opts(&addr, "survivor");
        std::thread::spawn(move || work(opts))
    };

    let report = coordinator.join().expect("no panic").expect("fleet run");
    let crashed = crasher.join().expect("no panic").expect("crash hook run");
    let survived = survivor.join().expect("no panic").expect("worker run");

    assert!(crashed.abandoned, "crash hook must have fired");
    assert!(
        report.stats.requeued >= 1,
        "the abandoned lease must have been requeued (requeued = {})",
        report.stats.requeued
    );
    assert_eq!(report.stats.received, report.stats.cells);
    assert!(survived.executed >= 1);

    // Despite the crash and reassignment, output is byte-identical to a
    // local run.
    let local = run_suite(&suite_opts("fig2")).expect("local run");
    assert_eq!(report.suite.rendered, local.rendered);
    assert_eq!(report.suite.artifacts, local.artifacts);
}

#[test]
fn fleet_resumes_from_a_populated_cache() {
    let dir = std::env::temp_dir().join(format!("strata-fleet-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Prime the cache with a full local run.
    let mut cached = suite_opts("fig2");
    cached.cache_dir = Some(dir.clone());
    let local = run_suite(&cached).expect("local run");

    // A fleet run over the same cache has nothing to dispatch: it
    // finishes without a single worker.
    let serve = ServeOptions {
        bind: "127.0.0.1:0".into(),
        suite: cached.clone(),
        lease: Duration::from_secs(30),
        progress: Progress::Silent,
        progress_every: Duration::from_secs(5),
    };
    let coordinator = Coordinator::bind(serve).expect("bind coordinator");
    let report = coordinator.run().expect("fleet run");

    assert_eq!(report.stats.preloaded, report.stats.cells);
    assert_eq!(report.stats.received, 0);
    assert_eq!(report.stats.workers_seen, 0);
    assert_eq!(report.suite.rendered, local.rendered);
    assert_eq!(report.suite.artifacts, local.artifacts);

    let _ = std::fs::remove_dir_all(&dir);
}
