//! # strata-fleet — distributed suite runs over TCP
//!
//! The full paper grid is embarrassingly parallel at the **cell** level
//! (one workload × config × architecture simulation), and `strata-expt`
//! already memoizes cells behind stable content keys. This crate spreads
//! that cell set across machines with nothing shared but a TCP
//! connection:
//!
//! * [`coordinator`] — `strata fleet serve` loads the cell manifest for
//!   the selected experiments, orders it by observed budgets (longest
//!   first), and leases cells to workers over the wire protocol.
//!   Results stream back, land in the same memoized [`Store`] a local
//!   run fills, and the final render goes through the same code path —
//!   so fleet output is **byte-identical** to a single-machine
//!   `strata bench` of the same selection.
//! * [`worker`] — `strata fleet work` connects, verifies it derives the
//!   exact same manifest (fingerprint handshake), then pulls, executes,
//!   and streams results until the coordinator says the suite is done.
//! * [`protocol`] — the versioned, length-prefixed, checksummed frame
//!   format both sides speak. Hand-rolled and serde-free, like the rest
//!   of the workspace's serialization.
//!
//! Crash-safety is end to end: leases expire and reassign, worker
//! disconnects requeue instantly, delivery is at-least-once with
//! first-result-wins dedup at the coordinator, and the disk cache doubles
//! as a resume log — restarting the coordinator redispatches only the
//! cells without cached results.
//!
//! ```text
//! machine A$ strata fleet serve --filter fig4,fig7 --cache
//! machine B$ strata fleet work --connect a.example:7841
//! machine C$ strata fleet work --connect a.example:7841
//! ```
//!
//! [`Store`]: strata_expt::Store

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{Coordinator, FleetReport, FleetStats, Progress, ServeOptions};
pub use protocol::{Frame, ProtoError, MAX_PAYLOAD, PROTO_VERSION};
pub use worker::{work, WorkOptions, WorkerReport};
