//! The fleet worker: connects to a coordinator, pulls cells one at a
//! time, executes them through the same [`cell_result`] path a local
//! `strata bench` uses, and streams serialized records back.
//!
//! Workers hold no suite state beyond a session-local memo [`Store`]
//! (so a translated cell reuses its native baseline when the
//! coordinator assigns both to the same worker) and a program cache
//! keyed by `(workload, params)`. All durable state lives at the
//! coordinator; a worker can die at any moment and the only cost is the
//! lease it was holding.
//!
//! ## Manifest handshake
//!
//! The coordinator's `Welcome` carries the suite selection (filter,
//! scale, variant) plus a fingerprint of the expanded manifest. The
//! worker re-derives [`work_manifest`] locally and refuses to register
//! on a mismatch — a version-skewed binary would otherwise execute the
//! wrong cells under the right indices. `Assign` frames still carry the
//! full key string, which the worker cross-checks per cell.
//!
//! ## Failure handling
//!
//! A lost connection is retried with bounded exponential backoff; the
//! consecutive-failure budget resets after each successful registration.
//! An executed-but-unsent result survives the reconnect and is resent
//! first (the coordinator dedupes, so at-least-once is safe). A
//! background thread heartbeats every couple of seconds so the
//! coordinator can tell "slow cell" from "dead worker".

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use strata_expt::exec::{build_program, cell_result};
use strata_expt::{manifest_fingerprint, render_record, work_manifest, CellKey, Store};
use strata_machine::Program;
use strata_workloads::Params;

use crate::protocol::Frame;

/// Options for one worker process.
#[derive(Debug, Clone)]
pub struct WorkOptions {
    /// Coordinator address, e.g. `10.0.0.1:7841`.
    pub connect: String,
    /// Name reported to the coordinator (shows up in progress lines).
    pub name: String,
    /// Consecutive connection failures tolerated before giving up.
    pub retries: u32,
    /// Initial reconnect backoff; doubles per consecutive failure,
    /// capped at 30s.
    pub backoff: Duration,
    /// Heartbeat interval while connected.
    pub heartbeat: Duration,
    /// Test hook: exit abruptly (no result, no goodbye) after taking
    /// this many assignments. Simulates a mid-run crash.
    pub abandon_after: Option<usize>,
}

impl Default for WorkOptions {
    fn default() -> WorkOptions {
        WorkOptions {
            connect: "127.0.0.1:7841".into(),
            name: format!("worker-{}", std::process::id()),
            retries: 5,
            backoff: Duration::from_millis(500),
            heartbeat: Duration::from_secs(2),
            abandon_after: None,
        }
    }
}

/// What one worker did over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Cells executed locally (whether or not the send was the winner).
    pub executed: usize,
    /// Sessions lost and re-established.
    pub reconnects: u32,
    /// True if the `abandon_after` test hook fired.
    pub abandoned: bool,
}

enum SessionEnd {
    /// Coordinator reported the suite complete.
    Finished,
    /// The `abandon_after` hook fired: drop everything on the floor.
    Abandoned,
    /// Connection lost (or protocol violation); reconnect and resume.
    Lost(String),
}

/// Session-local execution state that survives reconnects.
struct WorkerState {
    store: Store,
    programs: HashMap<(&'static str, u32, u64), Program>,
    /// Executed-but-unacknowledged result, resent after reconnect.
    pending: Option<Frame>,
    executed: usize,
    taken: usize,
}

/// Runs a worker until the coordinator reports the suite finished, the
/// retry budget is exhausted, or the crash-test hook fires.
///
/// # Errors
///
/// Returns an error when the coordinator stays unreachable past the
/// retry budget, or on a fatal handshake problem (manifest fingerprint
/// mismatch — a version-skewed binary must not execute cells).
pub fn work(opts: WorkOptions) -> Result<WorkerReport, String> {
    let mut state = WorkerState {
        store: Store::in_memory(),
        programs: HashMap::new(),
        pending: None,
        executed: 0,
        taken: 0,
    };
    let mut reconnects = 0u32;
    let mut failures = 0u32;
    loop {
        let stream = match TcpStream::connect(&opts.connect) {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                if failures > opts.retries {
                    return Err(format!(
                        "{}: gave up after {} attempt(s): connect {}: {e}",
                        opts.name, failures, opts.connect
                    ));
                }
                std::thread::sleep(backoff_delay(opts.backoff, failures));
                continue;
            }
        };
        match session(stream, &opts, &mut state, &mut failures)? {
            SessionEnd::Finished => {
                return Ok(WorkerReport {
                    executed: state.executed,
                    reconnects,
                    abandoned: false,
                })
            }
            SessionEnd::Abandoned => {
                return Ok(WorkerReport {
                    executed: state.executed,
                    reconnects,
                    abandoned: true,
                })
            }
            SessionEnd::Lost(why) => {
                reconnects += 1;
                failures += 1;
                if failures > opts.retries {
                    return Err(format!(
                        "{}: gave up after {} consecutive failure(s): {why}",
                        opts.name, failures
                    ));
                }
                std::thread::sleep(backoff_delay(opts.backoff, failures));
            }
        }
    }
}

/// Exponential backoff for the nth consecutive failure, capped at 30s.
fn backoff_delay(base: Duration, failures: u32) -> Duration {
    let factor = 1u32 << failures.saturating_sub(1).min(16);
    base.saturating_mul(factor).min(Duration::from_secs(30))
}

/// One connected session: handshake, register, then fetch/execute/send
/// until told to stop or the link drops.
fn session(
    stream: TcpStream,
    opts: &WorkOptions,
    state: &mut WorkerState,
    failures: &mut u32,
) -> Result<SessionEnd, String> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let mut reader = stream;

    let (filter, params, manifest_len, fingerprint) = match Frame::read_from(&mut reader) {
        Ok(Frame::Welcome {
            filter,
            scale,
            variant,
            manifest_len,
            fingerprint,
        }) => (filter, Params { scale, variant }, manifest_len, fingerprint),
        Ok(_) => return Ok(SessionEnd::Lost("expected Welcome".into())),
        Err(e) => return Ok(SessionEnd::Lost(format!("welcome: {e}"))),
    };
    let filter_opt = if filter.is_empty() {
        None
    } else {
        Some(filter.as_str())
    };
    let cells = work_manifest(filter_opt, params)
        .map_err(|e| format!("{}: coordinator sent unusable selection: {e}", opts.name))?;
    if cells.len() != manifest_len as usize || manifest_fingerprint(&cells) != fingerprint {
        // Fatal on purpose: executing under a skewed manifest would
        // stream wrong results under valid-looking indices.
        return Err(format!(
            "{}: manifest mismatch with coordinator (local {} cells, remote {}): \
             coordinator and worker binaries disagree — update one of them",
            opts.name,
            cells.len(),
            manifest_len
        ));
    }

    // Writer shared between the main loop and the heartbeat thread. A
    // try_clone'd socket shares the fd, so the Mutex keeps frames whole.
    let writer = match reader.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(e) => return Ok(SessionEnd::Lost(format!("clone socket: {e}"))),
    };
    let send = |frame: &Frame| -> Result<(), String> {
        let mut w = writer.lock().expect("writer lock");
        frame.write_to(&mut *w).map_err(|e| e.to_string())
    };

    if send(&Frame::Register {
        worker: opts.name.clone(),
    })
    .is_err()
    {
        return Ok(SessionEnd::Lost("register: connection lost".into()));
    }
    // Registered: the consecutive-failure budget starts over.
    *failures = 0;

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let every = opts.heartbeat;
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(every);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let mut w = writer.lock().expect("writer lock");
                if Frame::Ping.write_to(&mut *w).is_err() {
                    break;
                }
            }
        })
    };
    let end = session_loop(&mut reader, &send, opts, state, &cells);

    // Stop the heartbeat and actively shut the socket down: the
    // heartbeat thread holds a clone of the fd, so without the shutdown
    // the coordinator would not see the disconnect until the thread
    // wakes from its sleep and drops its clone.
    stop.store(true, Ordering::SeqCst);
    let _ = reader.shutdown(std::net::Shutdown::Both);
    let _ = heartbeat.join();
    Ok(end)
}

/// The registered fetch/execute/send loop; any send/read failure ends
/// the session with `Lost` and the caller reconnects.
fn session_loop(
    reader: &mut TcpStream,
    send: &dyn Fn(&Frame) -> Result<(), String>,
    opts: &WorkOptions,
    state: &mut WorkerState,
    cells: &[CellKey],
) -> SessionEnd {
    loop {
        if let Some(result) = state.pending.take() {
            if send(&result).is_err() {
                state.pending = Some(result);
                return SessionEnd::Lost("resend result: lost".into());
            }
        }
        if send(&Frame::Fetch).is_err() {
            return SessionEnd::Lost("fetch: lost".into());
        }
        match Frame::read_from(reader) {
            Ok(Frame::Assign { index, key }) => {
                state.taken += 1;
                if opts.abandon_after.is_some_and(|k| state.taken > k) {
                    return SessionEnd::Abandoned;
                }
                let Some(cell) = cells.get(index as usize) else {
                    return SessionEnd::Lost(format!("assigned out-of-range index {index}"));
                };
                if cell.key_string() != key {
                    return SessionEnd::Lost(format!("assigned key mismatch at index {index}"));
                }
                let program = state
                    .programs
                    .entry((cell.workload, cell.params.scale, cell.params.variant))
                    .or_insert_with(|| build_program(cell.workload, cell.params));
                let result = cell_result(&state.store, cell, program);
                state.executed += 1;
                state.pending = Some(Frame::Result {
                    index,
                    key,
                    record: render_record(&cell.key_string(), &result),
                });
            }
            Ok(Frame::Wait { millis }) => {
                std::thread::sleep(Duration::from_millis(u64::from(millis.min(5_000))));
            }
            Ok(Frame::Finished) => return SessionEnd::Finished,
            Ok(_) => return SessionEnd::Lost("unexpected frame".into()),
            Err(e) => return SessionEnd::Lost(format!("read: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(500);
        assert_eq!(backoff_delay(base, 1), Duration::from_millis(500));
        assert_eq!(backoff_delay(base, 2), Duration::from_millis(1000));
        assert_eq!(backoff_delay(base, 3), Duration::from_millis(2000));
        assert_eq!(backoff_delay(base, 20), Duration::from_secs(30));
    }

    #[test]
    fn unreachable_coordinator_exhausts_retries() {
        let opts = WorkOptions {
            // Reserved port on localhost that nothing listens on.
            connect: "127.0.0.1:1".into(),
            retries: 1,
            backoff: Duration::from_millis(1),
            ..WorkOptions::default()
        };
        let err = work(opts).unwrap_err();
        assert!(err.contains("gave up"), "unexpected error: {err}");
    }
}
