//! The fleet wire protocol: versioned, length-prefixed, checksummed
//! frames over TCP.
//!
//! The encoding is hand-rolled and serde-free, consistent with the
//! cell-store's flat-text records: fixed-width little-endian integers,
//! length-prefixed UTF-8 strings, and a trailing FNV-1a 64 checksum over
//! everything after the magic (version, kind, payload length, payload).
//! A frame on the wire looks like:
//!
//! ```text
//! magic  u32  0x53464C54 ("SFLT")
//! ver    u16  PROTO_VERSION
//! kind   u8   frame discriminant
//! len    u32  payload byte count (capped at MAX_PAYLOAD)
//! payload     len bytes
//! check  u64  fnv1a64(ver ‖ kind ‖ len ‖ payload)
//! ```
//!
//! Every decode error is a value, never a panic: a truncated stream, a
//! flipped bit, an oversized length, or an unknown discriminant yields a
//! [`ProtoError`] the caller maps to "drop this connection" (coordinator)
//! or "reconnect with backoff" (worker). The property tests round-trip
//! randomized frames and mutilate them byte-by-byte to pin this down.
//!
//! Work assignment rides on *manifest indices*, not serialized cell keys:
//! coordinator and workers independently derive the same
//! [`work_manifest`](strata_expt::work_manifest) from the (filter,
//! params) announced in [`Frame::Welcome`], verify agreement via the
//! manifest fingerprint, and then name cells by index — with the full key
//! string echoed alongside as a belt-and-braces check.

use std::io::{Read, Write};

use strata_expt::cell::fnv1a64;

/// Protocol version; bump on any frame-layout or semantics change.
pub const PROTO_VERSION: u16 = 1;

/// Frame magic: `"SFLT"` little-endian.
pub const MAGIC: u32 = 0x544C_4653;

/// Upper bound on payload size — far above any real record (the largest
/// cell records are a few KiB) but small enough that a corrupt length
/// field cannot OOM the peer.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Coordinator → worker, on connect: the suite selection this fleet
    /// run executes. The worker rebuilds the manifest locally and must
    /// arrive at `manifest_len` cells with this `fingerprint`, or refuse.
    Welcome {
        /// Comma-separated experiment filter (empty = full suite).
        filter: String,
        /// Workload scale factor.
        scale: u32,
        /// Workload variant selector.
        variant: u64,
        /// Number of cells in the canonical manifest.
        manifest_len: u32,
        /// [`strata_expt::manifest_fingerprint`] of the manifest.
        fingerprint: u64,
    },
    /// Worker → coordinator: manifest verified, ready for work.
    Register {
        /// Display name for progress reporting (e.g. host or pid).
        worker: String,
    },
    /// Worker → coordinator: give me a cell.
    Fetch,
    /// Coordinator → worker: execute manifest cell `index`.
    Assign {
        /// Manifest index of the leased cell.
        index: u32,
        /// Full key string, echoed for end-to-end verification.
        key: String,
    },
    /// Coordinator → worker: nothing to hand out right now (all
    /// remaining cells are leased elsewhere); poll again after `millis`.
    Wait {
        /// Suggested back-off before the next `Fetch`.
        millis: u32,
    },
    /// Coordinator → worker: every cell is done; disconnect.
    Finished,
    /// Worker → coordinator: the serialized result of an assigned cell,
    /// in the cell-store's flat-text record format.
    Result {
        /// Manifest index the result answers.
        index: u32,
        /// Full key string of the cell.
        key: String,
        /// [`strata_expt::render_record`] serialization of the result.
        record: String,
    },
    /// Worker → coordinator heartbeat: refreshes the sender's leases so
    /// a long-running cell is not reassigned under a live worker.
    Ping,
}

/// Why a frame failed to decode or a stream failed to deliver one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Underlying transport error (includes EOF mid-frame).
    Io(String),
    /// First four bytes were not [`MAGIC`].
    BadMagic(u32),
    /// Peer speaks a different [`PROTO_VERSION`].
    BadVersion(u16),
    /// Unknown frame discriminant.
    UnknownKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Buffer ended before the declared frame did.
    Truncated,
    /// Checksum mismatch — the frame was corrupted in flight.
    BadChecksum,
    /// Payload structure invalid (bad UTF-8, short fields, trailing
    /// bytes).
    BadPayload,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtoError::BadVersion(v) => {
                write!(f, "protocol version {v} (this side speaks {PROTO_VERSION})")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadChecksum => write!(f, "frame checksum mismatch"),
            ProtoError::BadPayload => write!(f, "malformed frame payload"),
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e.to_string())
    }
}

// --- encoding ----------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Welcome { .. } => 1,
            Frame::Register { .. } => 2,
            Frame::Fetch => 3,
            Frame::Assign { .. } => 4,
            Frame::Wait { .. } => 5,
            Frame::Finished => 6,
            Frame::Result { .. } => 7,
            Frame::Ping => 8,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Welcome {
                filter,
                scale,
                variant,
                manifest_len,
                fingerprint,
            } => {
                put_str(&mut p, filter);
                put_u32(&mut p, *scale);
                put_u64(&mut p, *variant);
                put_u32(&mut p, *manifest_len);
                put_u64(&mut p, *fingerprint);
            }
            Frame::Register { worker } => put_str(&mut p, worker),
            Frame::Fetch | Frame::Finished | Frame::Ping => {}
            Frame::Assign { index, key } => {
                put_u32(&mut p, *index);
                put_str(&mut p, key);
            }
            Frame::Wait { millis } => put_u32(&mut p, *millis),
            Frame::Result { index, key, record } => {
                put_u32(&mut p, *index);
                put_str(&mut p, key);
                put_str(&mut p, record);
            }
        }
        p
    }

    /// Serializes the frame, checksum included.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(23 + payload.len());
        put_u32(&mut out, MAGIC);
        put_u16(&mut out, PROTO_VERSION);
        out.push(self.kind());
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        // The checksum covers everything after the magic, so any
        // single-bit corruption of version, kind, length, or payload is
        // caught (corrupting the magic itself fails the magic check).
        let check = fnv1a64(&out[4..]);
        put_u64(&mut out, check);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Structural errors are reported in validation order: magic, then
    /// version, then length bound, then truncation, then checksum, then
    /// kind/payload shape — so a corrupted stream fails loudly and
    /// specifically rather than panicking or misparsing.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), ProtoError> {
        let mut c = Cursor { buf, at: 0 };
        let magic = c.u32()?;
        if magic != MAGIC {
            return Err(ProtoError::BadMagic(magic));
        }
        let version = c.u16()?;
        if version != PROTO_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let kind = c.u8()?;
        let len = c.u32()?;
        if len > MAX_PAYLOAD {
            return Err(ProtoError::Oversized(len));
        }
        let payload_at = c.at;
        let payload = c.bytes(len as usize)?;
        let check = c.u64()?;
        if fnv1a64(&buf[4..payload_at + len as usize]) != check {
            return Err(ProtoError::BadChecksum);
        }
        let frame = parse_payload(kind, payload)?;
        Ok((frame, c.at))
    }

    /// Writes the frame to `w` as one `write_all`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ProtoError> {
        w.write_all(&self.encode())?;
        w.flush()?;
        Ok(())
    }

    /// Reads exactly one frame from `r` (blocking).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] on EOF or transport failure, otherwise the
    /// decode error for the malformed frame.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, ProtoError> {
        // magic(4) + version(2) + kind(1) + len(4)
        let mut head = [0u8; 11];
        r.read_exact(&mut head)?;
        let magic = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(ProtoError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(head[4..6].try_into().expect("2 bytes"));
        if version != PROTO_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let kind = head[6];
        let len = u32::from_le_bytes(head[7..11].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(ProtoError::Oversized(len));
        }
        let mut rest = vec![0u8; len as usize + 8];
        r.read_exact(&mut rest)?;
        let (payload, check_bytes) = rest.split_at(len as usize);
        let check = u64::from_le_bytes(check_bytes.try_into().expect("8 bytes"));
        let mut summed = head[4..].to_vec();
        summed.extend_from_slice(payload);
        if fnv1a64(&summed) != check {
            return Err(ProtoError::BadChecksum);
        }
        parse_payload(kind, payload)
    }
}

fn parse_payload(kind: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let frame = match kind {
        1 => Frame::Welcome {
            filter: c.string()?,
            scale: c.u32()?,
            variant: c.u64()?,
            manifest_len: c.u32()?,
            fingerprint: c.u64()?,
        },
        2 => Frame::Register {
            worker: c.string()?,
        },
        3 => Frame::Fetch,
        4 => Frame::Assign {
            index: c.u32()?,
            key: c.string()?,
        },
        5 => Frame::Wait { millis: c.u32()? },
        6 => Frame::Finished,
        7 => Frame::Result {
            index: c.u32()?,
            key: c.string()?,
            record: c.string()?,
        },
        8 => Frame::Ping,
        other => return Err(ProtoError::UnknownKind(other)),
    };
    if c.at != payload.len() {
        // Trailing bytes mean the peer serialized something this side
        // does not understand; refusing beats silently ignoring.
        return Err(ProtoError::BadPayload);
    }
    Ok(frame)
}

/// Bounds-checked little-endian reader over a byte slice. Payload-level
/// underruns are [`ProtoError::BadPayload`] (the checksum already passed,
/// so the frame is structurally wrong, not cut short in flight);
/// header-level underruns in [`Frame::decode`] surface as
/// [`ProtoError::Truncated`] via the `bytes`/fixed readers before any
/// payload parsing happens.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.at.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len).map_err(|_| ProtoError::BadPayload)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadPayload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Welcome {
                filter: "fig2,fig18".into(),
                scale: 2,
                variant: 7,
                manifest_len: 128,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            },
            Frame::Register {
                worker: "worker-1".into(),
            },
            Frame::Fetch,
            Frame::Assign {
                index: 17,
                key: "gzip|sdt:sieve(4096)|x86-like|s1v0".into(),
            },
            Frame::Wait { millis: 200 },
            Frame::Finished,
            Frame::Result {
                index: 17,
                key: "gzip|sdt:sieve(4096)|x86-like|s1v0".into(),
                record: "strata-cell-v2\nkey=gzip|...\nkind=native\n".into(),
            },
            Frame::Ping,
        ]
    }

    #[test]
    fn frames_roundtrip() {
        for frame in samples() {
            let bytes = frame.encode();
            let (back, used) = Frame::decode(&bytes).expect("decodes");
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
            // Stream reader agrees with the buffer decoder.
            let from_stream = Frame::read_from(&mut &bytes[..]).expect("reads");
            assert_eq!(from_stream, frame);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Frame::decode(&[]).unwrap_err(), ProtoError::Truncated);
        assert_eq!(
            Frame::decode(&[0xFF; 32]).unwrap_err(),
            ProtoError::BadMagic(0xFFFF_FFFF)
        );
        let mut bytes = Frame::Ping.encode();
        bytes[4] ^= 0x40; // version
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            ProtoError::BadVersion(_)
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Frame::Ping.encode();
        bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            ProtoError::Oversized(u32::MAX)
        );
        assert_eq!(
            Frame::read_from(&mut &bytes[..]).unwrap_err(),
            ProtoError::Oversized(u32::MAX)
        );
    }
}
