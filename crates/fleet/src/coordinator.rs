//! The fleet coordinator: owns the work manifest, leases cells to
//! workers, requeues what crashed workers drop, and renders the suite
//! once every cell has streamed back.
//!
//! ## Dispatch model
//!
//! The coordinator derives the canonical [`work_manifest`] for the
//! selected experiments, marks cells already present in the disk cache as
//! done (a restarted coordinator resumes instead of redispatching), and
//! orders the rest for dispatch: native baselines first (mirroring the
//! local executor's phases), longest observed budget first within each
//! phase (`results/cache/budgets.v1`, hash/FIFO order for unknown cells).
//! Workers pull one cell at a time — pull-based dispatch *is* the
//! work-stealing: a fast worker simply comes back for more, so skewed
//! cell budgets never strand the tail behind a static shard split.
//!
//! ## Robustness
//!
//! Every assignment is a **lease**: it expires unless refreshed by the
//! owning connection's heartbeats, and a disconnect requeues the holder's
//! leases immediately. Delivery is therefore at-least-once, and the
//! coordinator dedupes by cell key — the first result for a cell wins,
//! later copies are counted and dropped. Unparsable or mis-keyed results
//! are rejected and the cell requeued, so a corrupt worker cannot poison
//! the store (results are validated with the same
//! [`parse_record`] path the disk cache trusts).
//!
//! ## Byte-identical merge
//!
//! Results land in the same memoized [`Store`] a local `strata bench`
//! fills, and rendering goes through the same
//! [`render_from_store`] tail — so a fleet run's stdout and
//! artifacts are byte-identical to a single-machine run of the same
//! filter (the e2e tests and the CI smoke diff them at tolerance 0).

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use strata_expt::cell::RunKind;
use strata_expt::{
    manifest_fingerprint, parse_record, render_from_store, work_manifest, CellKey, Store,
    SuiteOptions, SuiteReport,
};
use strata_stats::Json;

use crate::protocol::Frame;

/// How the coordinator reports long-run progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// One human-readable line per interval on stderr.
    Text,
    /// One JSON object per interval on stderr.
    Json,
    /// No periodic output.
    Silent,
}

impl Progress {
    /// Parses `text` / `json` / `none`.
    pub fn parse(s: &str) -> Result<Progress, String> {
        match s {
            "text" => Ok(Progress::Text),
            "json" => Ok(Progress::Json),
            "none" => Ok(Progress::Silent),
            other => Err(format!("unknown progress mode `{other}` (text|json|none)")),
        }
    }
}

/// Options for one coordinator run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7841` (port 0 picks a free one).
    pub bind: String,
    /// Suite selection and rendering options — the same struct a local
    /// `strata bench` uses, so the two runs are comparable by
    /// construction. `cache_dir` doubles as the result store.
    pub suite: SuiteOptions,
    /// Lease duration: a cell unrefreshed for this long is reassigned.
    pub lease: Duration,
    /// Progress reporting mode.
    pub progress: Progress,
    /// Interval between progress reports.
    pub progress_every: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            bind: "127.0.0.1:7841".into(),
            suite: SuiteOptions::default(),
            lease: Duration::from_secs(60),
            progress: Progress::Text,
            progress_every: Duration::from_secs(5),
        }
    }
}

/// Fleet-level counters for one coordinator run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Manifest size (distinct cells incl. implied natives).
    pub cells: usize,
    /// Cells satisfied from the disk cache before any dispatch.
    pub preloaded: usize,
    /// Results accepted from workers.
    pub received: usize,
    /// Lease reassignments (expiry or worker disconnect).
    pub requeued: u64,
    /// At-least-once duplicates dropped by key dedup.
    pub duplicates: u64,
    /// Results rejected (bad key/index or unparsable record).
    pub rejected: u64,
    /// Distinct worker registrations over the run's lifetime.
    pub workers_seen: u32,
    /// Cells completed per worker, sorted by worker name.
    pub per_worker: Vec<(String, u64)>,
}

/// The outcome of a completed fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// The rendered suite — same shape as a local `run_suite`.
    pub suite: SuiteReport,
    /// Fleet-level counters.
    pub stats: FleetStats,
}

struct Lease {
    owner: u64,
    refreshed: Instant,
}

struct WorkerInfo {
    name: String,
    completed: u64,
    /// False once the connection closed; the entry is kept so the final
    /// stats cover workers that left before the run ended.
    active: bool,
}

/// Mutable dispatch state behind the coordinator's single mutex.
struct Dispatch {
    /// Indices awaiting assignment, in dispatch order.
    queue: VecDeque<u32>,
    /// Outstanding assignments by manifest index.
    leases: HashMap<u32, Lease>,
    /// Completion flags by manifest index.
    done: Vec<bool>,
    done_count: usize,
    preloaded: usize,
    received: usize,
    requeued: u64,
    duplicates: u64,
    rejected: u64,
    /// Per-connection worker info (registered connections only).
    workers: HashMap<u64, WorkerInfo>,
    workers_seen: u32,
    /// Connections currently being served (registered or not).
    open_conns: u32,
    /// Sum of predicted budgets for cells completed by workers.
    done_budget: u64,
    start: Instant,
}

struct Shared {
    manifest: Vec<CellKey>,
    keys: Vec<String>,
    budgets: Vec<u64>,
    fingerprint: u64,
    filter: String,
    scale: u32,
    variant: u64,
    lease: Duration,
    finished: AtomicBool,
    state: Mutex<Dispatch>,
}

/// A bound coordinator, ready to [`run`](Coordinator::run). Binding is
/// split from running so callers (tests, scripts) can learn the actual
/// port before starting workers.
pub struct Coordinator {
    listener: TcpListener,
    opts: ServeOptions,
    store: Arc<Store>,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Expands the manifest, preloads cached cells, orders the dispatch
    /// queue, and binds the listen socket.
    ///
    /// # Errors
    ///
    /// Returns an error for a dead filter pattern or an unbindable
    /// address.
    pub fn bind(opts: ServeOptions) -> Result<Coordinator, String> {
        let manifest = work_manifest(opts.suite.filter.as_deref(), opts.suite.params)?;
        let keys: Vec<String> = manifest.iter().map(CellKey::key_string).collect();
        let fingerprint = manifest_fingerprint(&manifest);
        let store = Arc::new(match &opts.suite.cache_dir {
            Some(dir) => Store::with_disk_cache(dir.clone()),
            None => Store::in_memory(),
        });

        // Resume: anything already in the cache is done before dispatch.
        let mut done = vec![false; manifest.len()];
        let mut preloaded = 0usize;
        for (i, cell) in manifest.iter().enumerate() {
            if store.cached(cell).is_some() {
                done[i] = true;
                preloaded += 1;
            }
        }

        // Dispatch order: natives first (the phase split the local
        // executor uses), longest observed budget first within each
        // phase; unknown budgets keep manifest order after the known
        // ones (the sort is stable).
        let book = store.budget_book();
        let budgets: Vec<u64> = keys.iter().map(|k| book.get(k).unwrap_or(0)).collect();
        let mut order: Vec<u32> = (0..manifest.len() as u32)
            .filter(|&i| !done[i as usize])
            .collect();
        order.sort_by_key(|&i| {
            (
                matches!(manifest[i as usize].kind, RunKind::Translated(_)),
                std::cmp::Reverse(budgets[i as usize]),
            )
        });

        let listener =
            TcpListener::bind(&opts.bind).map_err(|e| format!("bind {}: {e}", opts.bind))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let done_count = preloaded;
        let all_done = done_count == manifest.len();
        let shared = Arc::new(Shared {
            keys,
            budgets,
            fingerprint,
            filter: opts.suite.filter.clone().unwrap_or_default(),
            scale: opts.suite.params.scale,
            variant: opts.suite.params.variant,
            lease: opts.lease,
            finished: AtomicBool::new(all_done),
            state: Mutex::new(Dispatch {
                queue: order.into(),
                leases: HashMap::new(),
                done,
                done_count,
                preloaded,
                received: 0,
                requeued: 0,
                duplicates: 0,
                rejected: 0,
                workers: HashMap::new(),
                workers_seen: 0,
                open_conns: 0,
                done_budget: 0,
                start: Instant::now(),
            }),
            manifest,
        });
        Ok(Coordinator {
            listener,
            opts,
            store,
            shared,
        })
    }

    /// The bound listen address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket error as a message.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Serves workers until every manifest cell has a result, then
    /// flushes budgets and renders the suite from the populated store.
    ///
    /// # Errors
    ///
    /// Returns an error if the final render fails (dead filter — already
    /// caught at bind — or artifact assembly problems).
    pub fn run(self) -> Result<FleetReport, String> {
        let mut last_progress = Instant::now();
        let mut conn_id = 0u64;
        while !self.shared.finished.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conn_id += 1;
                    let shared = Arc::clone(&self.shared);
                    let store = Arc::clone(&self.store);
                    let id = conn_id;
                    std::thread::spawn(move || handle_connection(id, stream, &shared, &store));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    // Transient accept failures (EMFILE, resets) should
                    // not kill a long run; note and keep serving.
                    eprintln!("fleet: accept: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
            if self.opts.progress != Progress::Silent
                && last_progress.elapsed() >= self.opts.progress_every
            {
                eprintln!("{}", self.progress_line());
                last_progress = Instant::now();
            }
        }
        if self.opts.progress != Progress::Silent {
            eprintln!("{}", self.progress_line());
        }
        // Drain: give connected workers a moment to fetch their
        // `Finished` and hang up cleanly — without this, the process
        // exit kills handler threads mid-conversation and the worker
        // that delivered the last result burns its retry budget
        // reconnecting to a dead address. Late arrivals during the
        // grace period are still accepted and told the suite is done.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let open = self.shared.state.lock().expect("dispatch lock").open_conns;
            if open == 0 || Instant::now() >= deadline {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conn_id += 1;
                    let shared = Arc::clone(&self.shared);
                    let store = Arc::clone(&self.store);
                    let id = conn_id;
                    std::thread::spawn(move || handle_connection(id, stream, &shared, &store));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // Budgets observed this run (via Store::put) feed the next run's
        // LPT schedule; flush prunes keys the registry no longer makes.
        self.store.flush_budgets();
        let suite = render_from_store(&self.store, &self.opts.suite)?;
        Ok(FleetReport {
            suite,
            stats: self.stats(),
        })
    }

    fn stats(&self) -> FleetStats {
        let d = self.shared.state.lock().expect("dispatch lock");
        // Aggregate by name: a worker that reconnected shows up under
        // several connection ids but is one machine to the operator.
        let mut by_name = std::collections::BTreeMap::<String, u64>::new();
        for w in d.workers.values() {
            *by_name.entry(w.name.clone()).or_insert(0) += w.completed;
        }
        let per_worker: Vec<(String, u64)> = by_name.into_iter().collect();
        FleetStats {
            cells: self.shared.manifest.len(),
            preloaded: d.preloaded,
            received: d.received,
            requeued: d.requeued,
            duplicates: d.duplicates,
            rejected: d.rejected,
            workers_seen: d.workers_seen,
            per_worker,
        }
    }

    fn progress_line(&self) -> String {
        let d = self.shared.state.lock().expect("dispatch lock");
        let total = self.shared.manifest.len();
        let elapsed = d.start.elapsed().as_secs_f64().max(1e-9);
        let remaining_budget: u64 = (0..total)
            .filter(|&i| !d.done[i])
            .map(|i| self.shared.budgets[i])
            .sum();
        let cells_per_sec = d.received as f64 / elapsed;
        let cycle_rate = d.done_budget as f64 / elapsed;
        // ETA from remaining *predicted* budget when the book knows the
        // cells; cells-per-second otherwise.
        let eta_secs = if remaining_budget > 0 && cycle_rate > 0.0 {
            Some(remaining_budget as f64 / cycle_rate)
        } else if cells_per_sec > 0.0 {
            Some((total - d.done_count) as f64 / cells_per_sec)
        } else {
            None
        };
        let active = d.workers.values().filter(|w| w.active).count();
        let mut by_name = std::collections::BTreeMap::<&str, u64>::new();
        for w in d.workers.values() {
            *by_name.entry(w.name.as_str()).or_insert(0) += w.completed;
        }
        let workers: Vec<(&str, u64)> = by_name.into_iter().collect();
        match self.opts.progress {
            Progress::Json => Json::obj([
                ("done", Json::uint(d.done_count as u64)),
                ("total", Json::uint(total as u64)),
                ("preloaded", Json::uint(d.preloaded as u64)),
                ("leased", Json::uint(d.leases.len() as u64)),
                ("queued", Json::uint(d.queue.len() as u64)),
                ("requeued", Json::uint(d.requeued)),
                ("duplicates", Json::uint(d.duplicates)),
                ("workers", Json::uint(active as u64)),
                (
                    "cells_per_sec",
                    Json::num((cells_per_sec * 1000.0).round() / 1000.0),
                ),
                (
                    "eta_secs",
                    match eta_secs {
                        Some(s) => Json::uint(s.round() as u64),
                        None => Json::Null,
                    },
                ),
            ])
            .render(),
            _ => {
                let per_worker = workers
                    .iter()
                    .map(|(n, c)| format!("{n}:{c}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                let eta = match eta_secs {
                    Some(s) => format!("ETA {}s", s.round() as u64),
                    None => "ETA unknown".into(),
                };
                format!(
                    "fleet: {}/{} done ({} preloaded), {} leased, {} queued, {} requeued, \
                     {:.2} cells/s, {eta}{}{}",
                    d.done_count,
                    total,
                    d.preloaded,
                    d.leases.len(),
                    d.queue.len(),
                    d.requeued,
                    cells_per_sec,
                    if per_worker.is_empty() {
                        String::new()
                    } else {
                        format!(", workers [{per_worker}]")
                    },
                    if d.duplicates > 0 {
                        format!(", {} duplicate(s)", d.duplicates)
                    } else {
                        String::new()
                    },
                )
            }
        }
    }
}

/// Serves one worker connection: handshake, then a fetch/result loop.
/// Any read error — disconnect, timeout, corrupt frame — requeues the
/// connection's outstanding leases and drops the connection; the worker
/// reconnects (or another worker steals the cells).
fn handle_connection(conn_id: u64, stream: TcpStream, shared: &Shared, store: &Store) {
    let _ = stream.set_nodelay(true);
    // Heartbeats arrive every couple of seconds from live workers, so a
    // silent connection this long is dead even mid-compute.
    let read_timeout = (shared.lease * 2).max(Duration::from_secs(10));
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut stream = stream;

    shared.state.lock().expect("dispatch lock").open_conns += 1;
    let welcome = Frame::Welcome {
        filter: shared.filter.clone(),
        scale: shared.scale,
        variant: shared.variant,
        manifest_len: shared.manifest.len() as u32,
        fingerprint: shared.fingerprint,
    };
    if welcome.write_to(&mut stream).is_err() {
        release_connection(conn_id, shared);
        return;
    }

    loop {
        match Frame::read_from(&mut stream) {
            Ok(Frame::Register { worker }) => {
                let mut d = shared.state.lock().expect("dispatch lock");
                d.workers_seen += 1;
                d.workers.insert(
                    conn_id,
                    WorkerInfo {
                        name: worker,
                        completed: 0,
                        active: true,
                    },
                );
            }
            Ok(Frame::Fetch) => {
                let reply = next_assignment(conn_id, shared);
                if reply.write_to(&mut stream).is_err() {
                    break;
                }
            }
            Ok(Frame::Result { index, key, record }) => {
                accept_result(conn_id, shared, store, index, &key, &record);
            }
            Ok(Frame::Ping) => {
                let now = Instant::now();
                let mut d = shared.state.lock().expect("dispatch lock");
                for lease in d.leases.values_mut().filter(|l| l.owner == conn_id) {
                    lease.refreshed = now;
                }
            }
            // A coordinator-bound connection has no business sending
            // coordinator frames; treat as a protocol violation.
            Ok(_) | Err(_) => break,
        }
    }
    release_connection(conn_id, shared);
}

/// Picks the next cell for `conn_id`: queue head first, then any expired
/// lease (the work-stealing path for crashed-but-connected workers).
fn next_assignment(conn_id: u64, shared: &Shared) -> Frame {
    if shared.finished.load(Ordering::SeqCst) {
        return Frame::Finished;
    }
    let mut d = shared.state.lock().expect("dispatch lock");
    if d.queue.is_empty() {
        // Steal expired leases back onto the queue.
        let now = Instant::now();
        let expired: Vec<u32> = d
            .leases
            .iter()
            .filter(|(_, l)| now.duration_since(l.refreshed) > shared.lease)
            .map(|(&i, _)| i)
            .collect();
        for &i in &expired {
            d.leases.remove(&i);
            d.queue.push_back(i);
        }
        d.requeued += expired.len() as u64;
    }
    match d.queue.pop_front() {
        Some(index) => {
            d.leases.insert(
                index,
                Lease {
                    owner: conn_id,
                    refreshed: Instant::now(),
                },
            );
            Frame::Assign {
                index,
                key: shared.keys[index as usize].clone(),
            }
        }
        None if d.done_count == shared.manifest.len() => Frame::Finished,
        None => Frame::Wait { millis: 200 },
    }
}

/// Validates and ingests one streamed result. At-least-once delivery is
/// deduplicated here: the first result for a cell wins, duplicates are
/// counted and dropped, and malformed results requeue the cell.
fn accept_result(
    conn_id: u64,
    shared: &Shared,
    store: &Store,
    index: u32,
    key: &str,
    record: &str,
) {
    let i = index as usize;
    let valid_key = shared.keys.get(i).is_some_and(|k| k == key);
    let parsed = if valid_key {
        parse_record(record, key)
    } else {
        None
    };
    match parsed {
        Some(result) => {
            // Idempotent: the store keeps the first result for the key.
            store.put(&shared.manifest[i], result);
            let mut d = shared.state.lock().expect("dispatch lock");
            d.leases.remove(&index);
            if d.done[i] {
                d.duplicates += 1;
                return;
            }
            d.done[i] = true;
            d.done_count += 1;
            d.received += 1;
            d.done_budget += shared.budgets[i];
            if let Some(w) = d.workers.get_mut(&conn_id) {
                w.completed += 1;
            }
            if d.done_count == shared.manifest.len() {
                shared.finished.store(true, Ordering::SeqCst);
            }
        }
        None => {
            let mut d = shared.state.lock().expect("dispatch lock");
            d.rejected += 1;
            if !valid_key {
                return;
            }
            // Requeue so the run still converges, unless someone else
            // already finished or holds the cell.
            let held = d.leases.remove(&index).is_some();
            if !d.done[i] && (held || !d.queue.contains(&index)) {
                d.queue.push_front(index);
            }
        }
    }
}

/// Requeues every lease the departing connection holds — the crash path:
/// a killed worker's cells go back to the front of the queue immediately
/// instead of waiting out their leases.
fn release_connection(conn_id: u64, shared: &Shared) {
    let mut d = shared.state.lock().expect("dispatch lock");
    let held: Vec<u32> = d
        .leases
        .iter()
        .filter(|(_, l)| l.owner == conn_id)
        .map(|(&i, _)| i)
        .collect();
    for &i in &held {
        d.leases.remove(&i);
        d.queue.push_front(i);
    }
    d.requeued += held.len() as u64;
    if let Some(w) = d.workers.get_mut(&conn_id) {
        w.active = false;
    }
    d.open_conns = d.open_conns.saturating_sub(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_mode_parses() {
        assert_eq!(Progress::parse("text"), Ok(Progress::Text));
        assert_eq!(Progress::parse("json"), Ok(Progress::Json));
        assert_eq!(Progress::parse("none"), Ok(Progress::Silent));
        assert!(Progress::parse("loud").is_err());
    }

    #[test]
    fn bind_rejects_dead_filters_and_bad_addresses() {
        let opts = ServeOptions {
            suite: SuiteOptions {
                filter: Some("zzz".into()),
                ..SuiteOptions::default()
            },
            ..ServeOptions::default()
        };
        assert!(Coordinator::bind(opts)
            .err()
            .expect("rejects")
            .contains("zzz"));

        let opts = ServeOptions {
            bind: "256.0.0.1:0".into(),
            suite: SuiteOptions {
                filter: Some("table1".into()),
                ..SuiteOptions::default()
            },
            ..ServeOptions::default()
        };
        assert!(Coordinator::bind(opts)
            .err()
            .expect("rejects")
            .contains("bind"));
    }
}
