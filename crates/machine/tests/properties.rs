//! Machine-level randomized tests: stack discipline, flags preservation,
//! memory round-trips, and determinism of execution. Driven by the repo's
//! deterministic [`SmallRng`] rather than an external property-testing
//! framework.

use strata_asm::CodeBuilder;
use strata_isa::{Flags, Instr, Reg};
use strata_machine::{layout, Machine, NullObserver, StepOutcome};
use strata_stats::rng::SmallRng;

fn fresh_machine() -> Machine {
    Machine::new(layout::DEFAULT_MEM_BYTES)
}

fn run_code(b: CodeBuilder) -> Machine {
    let mut m = fresh_machine();
    let code = b.finish().expect("assembles");
    m.write_code(layout::APP_BASE, &code).unwrap();
    m.cpu_mut().pc = layout::APP_BASE;
    let out = m.run(&mut NullObserver, 1_000_000).expect("runs");
    assert_eq!(out, StepOutcome::Halted);
    m
}

#[test]
fn push_pop_sequences_preserve_sp() {
    let mut rng = SmallRng::seed_from_u64(0x3AC8_0001);
    for _ in 0..50 {
        let values: Vec<u32> = (0..rng.gen_range(1usize..16))
            .map(|_| rng.next_u32())
            .collect();
        let mut b = CodeBuilder::new(layout::APP_BASE);
        for (i, v) in values.iter().enumerate() {
            let r = Reg::try_from((1 + i % 12) as u8).unwrap();
            b.li(r, *v);
            b.push(r);
        }
        for _ in &values {
            b.pop(Reg::R14);
        }
        b.halt();
        let m = run_code(b);
        assert_eq!(m.cpu().sp(), layout::DEFAULT_MEM_BYTES);
        // The last pop yields the first pushed value.
        assert_eq!(m.cpu().reg(Reg::R14), values[0]);
    }
}

#[test]
fn pushf_popf_is_identity_on_flags() {
    let mut rng = SmallRng::seed_from_u64(0x3AC8_0002);
    for _ in 0..100 {
        let (a, b_val) = (rng.next_u32(), rng.next_u32());
        let mut b = CodeBuilder::new(layout::APP_BASE);
        b.li(Reg::R1, a);
        b.li(Reg::R2, b_val);
        b.cmp(Reg::R1, Reg::R2);
        b.pushf();
        // Scramble flags, then restore.
        b.cmpi(Reg::R1, 0);
        b.popf();
        b.halt();
        let m = run_code(b);
        assert_eq!(m.cpu().flags, Flags::from_compare(a, b_val));
    }
    // Equal operands, the boundary the random draws are unlikely to hit.
    let mut b = CodeBuilder::new(layout::APP_BASE);
    b.li(Reg::R1, 7);
    b.li(Reg::R2, 7);
    b.cmp(Reg::R1, Reg::R2);
    b.pushf();
    b.cmpi(Reg::R1, 0);
    b.popf();
    b.halt();
    assert_eq!(run_code(b).cpu().flags, Flags::from_compare(7, 7));
}

#[test]
fn memory_word_roundtrip_via_guest_code() {
    let mut rng = SmallRng::seed_from_u64(0x3AC8_0003);
    for _ in 0..100 {
        let value = rng.next_u32();
        let addr = layout::APP_DATA_BASE + rng.gen_range(0u32..4096) * 4;
        let mut b = CodeBuilder::new(layout::APP_BASE);
        b.li(Reg::R1, addr);
        b.li(Reg::R2, value);
        b.sw(Reg::R2, Reg::R1, 0);
        b.lw(Reg::R3, Reg::R1, 0);
        b.halt();
        let m = run_code(b);
        assert_eq!(m.cpu().reg(Reg::R3), value);
        assert_eq!(m.mem().read_u32(addr).unwrap(), value);
    }
}

#[test]
fn byte_ops_sign_and_zero_extend() {
    for value in 0u32..=255 {
        let addr = layout::APP_DATA_BASE;
        let mut b = CodeBuilder::new(layout::APP_BASE);
        b.li(Reg::R1, addr);
        b.li(Reg::R2, value);
        b.sb(Reg::R2, Reg::R1, 0);
        b.lbu(Reg::R3, Reg::R1, 0);
        b.lb(Reg::R4, Reg::R1, 0);
        b.halt();
        let m = run_code(b);
        assert_eq!(m.cpu().reg(Reg::R3), value);
        assert_eq!(m.cpu().reg(Reg::R4), value as u8 as i8 as i32 as u32);
    }
}

#[test]
fn alu_matches_host_semantics() {
    let mut rng = SmallRng::seed_from_u64(0x3AC8_0004);
    let mut cases: Vec<(u32, u32)> = (0..100).map(|_| (rng.next_u32(), rng.next_u32())).collect();
    // Boundary operands a uniform draw essentially never produces.
    for edge in [0u32, 1, 31, 32, u32::MAX, i32::MAX as u32, i32::MIN as u32] {
        cases.push((edge, 0));
        cases.push((edge, 1));
        cases.push((edge, 32));
        cases.push((edge, u32::MAX));
    }
    for (x, y) in cases {
        let mut b = CodeBuilder::new(layout::APP_BASE);
        b.li(Reg::R1, x);
        b.li(Reg::R2, y);
        b.add(Reg::R3, Reg::R1, Reg::R2);
        b.sub(Reg::R4, Reg::R1, Reg::R2);
        b.mul(Reg::R5, Reg::R1, Reg::R2);
        b.divu(Reg::R6, Reg::R1, Reg::R2);
        b.remu(Reg::R7, Reg::R1, Reg::R2);
        b.xor(Reg::R8, Reg::R1, Reg::R2);
        b.sll(Reg::R9, Reg::R1, Reg::R2);
        b.sra(Reg::R10, Reg::R1, Reg::R2);
        b.halt();
        let m = run_code(b);
        assert_eq!(m.cpu().reg(Reg::R3), x.wrapping_add(y));
        assert_eq!(m.cpu().reg(Reg::R4), x.wrapping_sub(y));
        assert_eq!(m.cpu().reg(Reg::R5), x.wrapping_mul(y));
        assert_eq!(m.cpu().reg(Reg::R6), x.checked_div(y).unwrap_or(u32::MAX));
        assert_eq!(m.cpu().reg(Reg::R7), x.checked_rem(y).unwrap_or(x));
        assert_eq!(m.cpu().reg(Reg::R8), x ^ y);
        assert_eq!(m.cpu().reg(Reg::R9), x << (y & 31));
        assert_eq!(m.cpu().reg(Reg::R10), ((x as i32) >> (y & 31)) as u32);
    }
}

#[test]
fn execution_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0x3AC8_0005);
    for _ in 0..20 {
        let seed = rng.next_u32();
        // A small LCG loop; two runs must end in identical machine state.
        let build = || {
            let mut b = CodeBuilder::new(layout::APP_BASE);
            let top = b.new_label();
            b.li(Reg::R9, seed);
            b.li(Reg::R5, 50);
            b.li(Reg::R7, 0x10dcd);
            b.bind(top).unwrap();
            b.mul(Reg::R9, Reg::R9, Reg::R7);
            b.addi(Reg::R9, Reg::R9, 12345);
            b.addi(Reg::R5, Reg::R5, -1);
            b.cmpi(Reg::R5, 0);
            b.bne(top);
            b.halt();
            run_code(b)
        };
        let a = build();
        let b2 = build();
        assert_eq!(a.cpu().regs(), b2.cpu().regs());
        assert_eq!(a.cpu().flags, b2.cpu().flags);
    }
}

#[test]
fn instruction_instances_where_rd_equals_operands() {
    let mut rng = SmallRng::seed_from_u64(0x3AC8_0006);
    for _ in 0..50 {
        let x = rng.next_u32();
        // rd == rs1 == rs2 must behave like ordinary SSA-expanded code.
        let mut b = CodeBuilder::new(layout::APP_BASE);
        b.li(Reg::R1, x);
        b.add(Reg::R1, Reg::R1, Reg::R1);
        b.halt();
        let m = run_code(b);
        assert_eq!(m.cpu().reg(Reg::R1), x.wrapping_add(x));
    }
}

#[test]
fn call_pushes_exactly_the_return_address() {
    let mut b = CodeBuilder::new(layout::APP_BASE);
    let f = b.new_label();
    b.call(f); // at APP_BASE, so return addr is APP_BASE + 4
    b.halt();
    b.bind(f).unwrap();
    b.lw(Reg::R1, Reg::SP, 0);
    b.ret();
    let m = run_code(b);
    assert_eq!(m.cpu().reg(Reg::R1), layout::APP_BASE + 4);
    assert_eq!(m.cpu().sp(), layout::DEFAULT_MEM_BYTES);
}

#[test]
fn decode_cache_tracks_self_modifying_code() {
    // A program that rewrites an upcoming instruction, exercising the
    // decode-cache invalidation path from guest code.
    let mut b = CodeBuilder::new(layout::APP_BASE);
    let patch_site = b.new_label();
    // Overwrite the instruction at `patch_site` with `addi r4, r4, 7`:
    let replacement = strata_isa::encode(&Instr::Addi {
        rd: Reg::R4,
        rs1: Reg::R4,
        imm: 7,
    });
    b.li(Reg::R1, replacement);
    b.li_label(Reg::R2, patch_site);
    b.sw(Reg::R1, Reg::R2, 0);
    b.li(Reg::R4, 0);
    b.bind(patch_site).unwrap();
    b.nop(); // becomes addi r4, r4, 7 at run time
    b.halt();
    let m = run_code(b);
    assert_eq!(m.cpu().reg(Reg::R4), 7, "patched instruction must execute");
}
