//! # strata-machine — the simulated SimRISC machine
//!
//! A deterministic, instrumentable interpreter for SimRISC programs. This is
//! the substrate both the *native* baseline runs and the software dynamic
//! translator execute on: the SDT emits translated code into a region of
//! this machine's memory and the machine executes it instruction by
//! instruction, so every overhead instruction an indirect-branch handling
//! mechanism executes is really executed (and really costed by the
//! architecture models in `strata-arch`).
//!
//! Key pieces:
//!
//! * [`Memory`] — flat byte-addressed memory with a paged, self-invalidating
//!   predecode cache: 4 KiB code pages are decoded lazily, stores inside a
//!   registered executable region drop the affected page entry, and stores
//!   anywhere else skip invalidation entirely via a single range compare.
//!   Stores to code are still picked up immediately, which is what makes
//!   runtime code generation by the SDT safe.
//! * [`Cpu`] — 16 registers, `pc`, and the flags word.
//! * [`Machine`] — fetch/decode/execute stepping with [`StepOutcome`]s; traps
//!   suspend the machine and hand control to the embedder.
//! * [`ExecutionObserver`] — a per-retired-instruction hook receiving
//!   [`RetireEvent`]s; architecture cost models and the SDT's overhead
//!   attribution both plug in here.
//! * [`Program`] / [`layout`] — conventional guest memory layout shared by
//!   the workload generators and the SDT.
//!
//! ## Example
//!
//! ```
//! use strata_machine::{Machine, NullObserver, StepOutcome, layout};
//! use strata_asm::assemble;
//!
//! let code = assemble(layout::APP_BASE, "li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n")?;
//! let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
//! m.write_code(layout::APP_BASE, &code)?;
//! m.cpu_mut().pc = layout::APP_BASE;
//! let outcome = m.run(&mut NullObserver, 100)?;
//! assert_eq!(outcome, StepOutcome::Halted);
//! assert_eq!(m.cpu().reg(strata_isa::Reg::R3), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cpu;
mod event;
pub mod layout;
mod machine;
mod memory;
pub mod observers;
mod program;
pub mod syscall;
mod tier;

pub use cpu::Cpu;
pub use event::{
    ControlEvent, ExecutionObserver, InstrCounter, MemAccess, NullObserver, RetireEvent,
};
pub use machine::{Machine, MachineError, StepOutcome};
pub use memory::Memory;
pub use program::Program;
pub use tier::{
    Cond as LoweredCond, ExecTier, Op as LoweredOp, TierBlockMeta, TierConfig, TierMutation,
    TierSlotMeta, TierStats,
};
