//! Conventional guest memory layout.
//!
//! The layout is a convention shared by the loader, the workload generators,
//! and the SDT — nothing in the machine itself enforces it. The save area
//! sits below the 1 MiB [`strata_isa::MAX_ABS_ADDR`] boundary so that SDT
//! spill code (`lwa`/`swa`) needs no free base register, mirroring x86
//! absolute addressing.
//!
//! ```text
//! 0x0000_0100  SAVE_AREA_BASE   SDT register save area + dispatch slots
//! 0x0010_0000  APP_BASE         application code
//! 0x0030_0000  APP_DATA_BASE    application static data / heap
//! 0x0060_0000  CACHE_BASE       SDT fragment cache (translated code)
//! 0x00A0_0000  TABLES_BASE      SDT lookup tables (IBTC, sieve, return cache)
//! 0x0100_0000  DEFAULT_MEM_BYTES = initial stack pointer (stack grows down)
//! ```

/// Base of the SDT register save area and dispatch slots (reachable by the
/// 20-bit absolute `lwa`/`swa` addressing mode).
pub const SAVE_AREA_BASE: u32 = 0x0000_0100;

/// Base address at which application code is loaded.
pub const APP_BASE: u32 = 0x0010_0000;

/// Base address of application static data.
pub const APP_DATA_BASE: u32 = 0x0030_0000;

/// Base of the SDT fragment cache (translated code).
pub const CACHE_BASE: u32 = 0x0060_0000;

/// Size in bytes of the fragment cache region.
pub const CACHE_BYTES: u32 = TABLES_BASE - CACHE_BASE;

/// Base of the SDT lookup-table region (IBTC tables, sieve buckets, return
/// cache).
pub const TABLES_BASE: u32 = 0x00A0_0000;

/// End of the lookup-table region; the stack lives above it.
pub const TABLES_END: u32 = 0x00F0_0000;

/// Default memory size; also the initial stack pointer (the stack grows
/// down from the top of memory).
pub const DEFAULT_MEM_BYTES: u32 = 0x0100_0000;
