use strata_isa::{Flags, Reg};

/// Architectural CPU state: 16 general-purpose registers, the program
/// counter, and the flags word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cpu {
    regs: [u32; Reg::COUNT],
    /// The program counter (byte address of the next instruction).
    pub pc: u32,
    /// Condition flags written by `cmp`/`cmpi`.
    pub flags: Flags,
}

impl Cpu {
    /// Creates a CPU with all registers, `pc`, and flags zeroed.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Returns the full register file (index order).
    pub fn regs(&self) -> &[u32; Reg::COUNT] {
        &self.regs
    }

    /// Reads the stack pointer (`r15`).
    #[inline]
    pub fn sp(&self) -> u32 {
        self.reg(Reg::SP)
    }

    /// Writes the stack pointer (`r15`).
    #[inline]
    pub fn set_sp(&mut self, value: u32) {
        self.set_reg(Reg::SP, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_file() {
        let mut cpu = Cpu::new();
        for r in Reg::all() {
            assert_eq!(cpu.reg(r), 0);
        }
        cpu.set_reg(Reg::R7, 42);
        assert_eq!(cpu.reg(Reg::R7), 42);
        cpu.set_sp(0x8000);
        assert_eq!(cpu.reg(Reg::R15), 0x8000);
        assert_eq!(cpu.sp(), 0x8000);
    }
}
