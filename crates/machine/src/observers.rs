//! Observer combinators and debugging observers.
//!
//! [`Machine::run`](crate::Machine::run) takes a single observer; these
//! utilities compose several (e.g. an architecture cost model *and* a
//! trace recorder) and capture recent execution for post-mortem debugging.

use std::collections::VecDeque;

use crate::{ExecutionObserver, RetireEvent};

/// Runs two observers on every retired instruction.
///
/// Chains nest: `Chain::new(a, Chain::new(b, c))` observes with all three.
///
/// ```
/// use strata_machine::{observers::Chain, ExecutionObserver, InstrCounter};
/// let mut chained = Chain::new(InstrCounter::default(), InstrCounter::default());
/// assert_eq!(chained.first().retired(), 0);
/// ```
#[derive(Debug)]
pub struct Chain<A, B> {
    first: A,
    second: B,
}

impl<A: ExecutionObserver, B: ExecutionObserver> Chain<A, B> {
    /// Combines two observers.
    pub fn new(first: A, second: B) -> Chain<A, B> {
        Chain { first, second }
    }

    /// The first observer.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second observer.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Splits the chain back into its parts.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: ExecutionObserver, B: ExecutionObserver> ExecutionObserver for Chain<A, B> {
    #[inline]
    fn on_retire(&mut self, event: &RetireEvent) {
        self.first.on_retire(event);
        self.second.on_retire(event);
    }
}

/// Records the last `capacity` retired instructions in a ring buffer — a
/// flight recorder for "how did we get here?" debugging of guest crashes.
///
/// ```
/// use strata_machine::observers::TraceRecorder;
/// let recorder = TraceRecorder::new(64);
/// assert_eq!(recorder.events().count(), 0);
/// ```
#[derive(Debug)]
pub struct TraceRecorder {
    ring: VecDeque<RetireEvent>,
    capacity: usize,
    total: u64,
}

impl TraceRecorder {
    /// Creates a recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> TraceRecorder {
        assert!(capacity > 0, "trace capacity must be nonzero");
        TraceRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &RetireEvent> {
        self.ring.iter()
    }

    /// Total instructions observed (including those evicted from the
    /// ring).
    pub fn total_observed(&self) -> u64 {
        self.total
    }

    /// Renders the recorded tail as disassembly, one line per event.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for ev in &self.ring {
            s.push_str(&format!("{:#010x}  {}", ev.pc, ev.instr));
            if ev.control.taken {
                s.push_str(&format!("  -> {:#x}", ev.control.target));
            }
            s.push('\n');
        }
        s
    }
}

impl ExecutionObserver for TraceRecorder {
    #[inline]
    fn on_retire(&mut self, event: &RetireEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(*event);
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layout, InstrCounter, Machine, StepOutcome};
    use strata_asm::assemble;

    fn run_with<O: ExecutionObserver>(obs: &mut O) {
        let code = assemble(
            layout::APP_BASE,
            "li r1, 3\ntop:\naddi r1, r1, -1\ncmpi r1, 0\nbne top\nhalt\n",
        )
        .unwrap();
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        m.write_code(layout::APP_BASE, &code).unwrap();
        m.cpu_mut().pc = layout::APP_BASE;
        assert_eq!(m.run(obs, 1000).unwrap(), StepOutcome::Halted);
    }

    #[test]
    fn chain_delivers_to_both() {
        let mut chained = Chain::new(InstrCounter::default(), InstrCounter::default());
        run_with(&mut chained);
        let (a, b) = chained.into_inner();
        assert_eq!(a.retired(), b.retired());
        assert!(a.retired() > 0);
    }

    #[test]
    fn recorder_keeps_only_the_tail() {
        let mut rec = TraceRecorder::new(8);
        run_with(&mut rec);
        assert_eq!(rec.events().count(), 8);
        assert!(rec.total_observed() > 8);
        // The final event is the halt.
        let last = rec.events().last().unwrap();
        assert_eq!(last.instr, strata_isa::Instr::Halt);
        let text = rec.render();
        assert!(text.contains("halt"));
        assert!(text.contains("->"), "taken branches show their target");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        TraceRecorder::new(0);
    }
}
