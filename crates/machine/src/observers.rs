//! Observer combinators and debugging observers.
//!
//! [`Machine::run`](crate::Machine::run) takes a single observer; these
//! utilities compose several (e.g. an architecture cost model *and* a
//! trace recorder) and capture recent execution for post-mortem debugging.

use std::collections::VecDeque;

use strata_isa::ControlKind;

use crate::{ExecutionObserver, RetireEvent};

/// Memory behaviour of a retired instruction, reduced to the class the
/// trace tooling records (address and width are dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemClass {
    /// No data access.
    None,
    /// Load (including `pop`/`lwa`).
    Load,
    /// Store (including `push`/`swa`).
    Store,
}

/// One retired instruction compressed to the fields sampled simulation
/// needs: where it was, how control left it, and whether it touched
/// memory. This is the unit the `strata-trace` codec serializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactRetire {
    /// Address of the retired instruction.
    pub pc: u32,
    /// Static control kind.
    pub kind: ControlKind,
    /// Whether control left the fall-through path.
    pub taken: bool,
    /// Whether the target was computed at run time.
    pub indirect: bool,
    /// The next `pc` (fall-through when not taken).
    pub target: u32,
    /// Data-access class.
    pub mem: MemClass,
}

impl CompactRetire {
    /// Projects a full [`RetireEvent`] onto its compact form.
    #[inline]
    pub fn of(event: &RetireEvent) -> CompactRetire {
        CompactRetire {
            pc: event.pc,
            kind: event.control.kind,
            taken: event.control.taken,
            indirect: event.control.indirect,
            target: event.control.target,
            mem: match event.mem {
                None => MemClass::None,
                Some(m) if m.is_store => MemClass::Store,
                Some(_) => MemClass::Load,
            },
        }
    }
}

/// The trace recorder: captures every retired instruction as a
/// [`CompactRetire`], in retirement order. Compose with a cost model via
/// [`Chain`] to record and charge cycles in one pass.
#[derive(Debug, Default)]
pub struct RetireLog {
    records: Vec<CompactRetire>,
}

impl RetireLog {
    /// An empty log.
    pub fn new() -> RetireLog {
        RetireLog::default()
    }

    /// The recorded stream, oldest first.
    pub fn records(&self) -> &[CompactRetire] {
        &self.records
    }

    /// Consumes the log, yielding the recorded stream.
    pub fn into_records(self) -> Vec<CompactRetire> {
        self.records
    }
}

impl ExecutionObserver for RetireLog {
    #[inline]
    fn on_retire(&mut self, event: &RetireEvent) {
        self.records.push(CompactRetire::of(event));
    }
}

/// Runs two observers on every retired instruction.
///
/// Chains nest: `Chain::new(a, Chain::new(b, c))` observes with all three.
///
/// ```
/// use strata_machine::{observers::Chain, ExecutionObserver, InstrCounter};
/// let mut chained = Chain::new(InstrCounter::default(), InstrCounter::default());
/// assert_eq!(chained.first().retired(), 0);
/// ```
#[derive(Debug)]
pub struct Chain<A, B> {
    first: A,
    second: B,
}

impl<A: ExecutionObserver, B: ExecutionObserver> Chain<A, B> {
    /// Combines two observers.
    pub fn new(first: A, second: B) -> Chain<A, B> {
        Chain { first, second }
    }

    /// The first observer.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second observer.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Splits the chain back into its parts.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: ExecutionObserver, B: ExecutionObserver> ExecutionObserver for Chain<A, B> {
    #[inline]
    fn on_retire(&mut self, event: &RetireEvent) {
        self.first.on_retire(event);
        self.second.on_retire(event);
    }
}

/// Records the last `capacity` retired instructions in a ring buffer — a
/// flight recorder for "how did we get here?" debugging of guest crashes.
///
/// ```
/// use strata_machine::observers::TraceRecorder;
/// let recorder = TraceRecorder::new(64);
/// assert_eq!(recorder.events().count(), 0);
/// ```
#[derive(Debug)]
pub struct TraceRecorder {
    ring: VecDeque<RetireEvent>,
    capacity: usize,
    total: u64,
}

impl TraceRecorder {
    /// Creates a recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> TraceRecorder {
        assert!(capacity > 0, "trace capacity must be nonzero");
        TraceRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &RetireEvent> {
        self.ring.iter()
    }

    /// Total instructions observed (including those evicted from the
    /// ring).
    pub fn total_observed(&self) -> u64 {
        self.total
    }

    /// Renders the recorded tail as disassembly, one line per event.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for ev in &self.ring {
            s.push_str(&format!("{:#010x}  {}", ev.pc, ev.instr));
            if ev.control.taken {
                s.push_str(&format!("  -> {:#x}", ev.control.target));
            }
            s.push('\n');
        }
        s
    }
}

impl ExecutionObserver for TraceRecorder {
    #[inline]
    fn on_retire(&mut self, event: &RetireEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(*event);
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layout, InstrCounter, Machine, StepOutcome};
    use strata_asm::assemble;

    fn run_with<O: ExecutionObserver>(obs: &mut O) {
        let code = assemble(
            layout::APP_BASE,
            "li r1, 3\ntop:\naddi r1, r1, -1\ncmpi r1, 0\nbne top\nhalt\n",
        )
        .unwrap();
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        m.write_code(layout::APP_BASE, &code).unwrap();
        m.cpu_mut().pc = layout::APP_BASE;
        assert_eq!(m.run(obs, 1000).unwrap(), StepOutcome::Halted);
    }

    #[test]
    fn chain_delivers_to_both() {
        let mut chained = Chain::new(InstrCounter::default(), InstrCounter::default());
        run_with(&mut chained);
        let (a, b) = chained.into_inner();
        assert_eq!(a.retired(), b.retired());
        assert!(a.retired() > 0);
    }

    #[test]
    fn recorder_keeps_only_the_tail() {
        let mut rec = TraceRecorder::new(8);
        run_with(&mut rec);
        assert_eq!(rec.events().count(), 8);
        assert!(rec.total_observed() > 8);
        // The final event is the halt.
        let last = rec.events().last().unwrap();
        assert_eq!(last.instr, strata_isa::Instr::Halt);
        let text = rec.render();
        assert!(text.contains("halt"));
        assert!(text.contains("->"), "taken branches show their target");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        TraceRecorder::new(0);
    }

    #[test]
    fn retire_log_matches_live_stream() {
        // The compact projection of a chained live stream must equal the
        // log captured in the same run.
        #[derive(Default)]
        struct Projector(Vec<CompactRetire>);
        impl ExecutionObserver for Projector {
            fn on_retire(&mut self, event: &RetireEvent) {
                self.0.push(CompactRetire::of(event));
            }
        }
        let mut chained = Chain::new(RetireLog::new(), Projector::default());
        run_with(&mut chained);
        let (log, live) = chained.into_inner();
        assert!(!log.records().is_empty());
        assert_eq!(log.records(), &live.0[..]);
        // Branches record their taken edge; the backward bne is taken.
        assert!(log
            .records()
            .iter()
            .any(|r| r.kind == ControlKind::Conditional && r.taken));
        // Stack/alu mix shows up in the mem classes.
        assert!(log.records().iter().any(|r| r.mem == MemClass::None));
    }
}
