//! Minimal syscall convention for guest programs.
//!
//! Workloads need a way to produce externally visible results (so
//! correctness under translation can be checked) without modeling real I/O.
//! Trap codes below [`SDT_TRAP_BASE`] are *application* traps; the SDT
//! passes them through untranslated, so the same [`SyscallState`] services
//! a program whether it runs natively or under translation.

/// First trap code reserved for SDT-internal use. Application syscalls must
/// use codes below this value.
pub const SDT_TRAP_BASE: u16 = 0xF000;

/// `trap SYS_CHECKSUM`: folds the value in `r4` into the run checksum.
pub const SYS_CHECKSUM: u16 = 0x0001;

/// `trap SYS_EMIT`: records the value in `r4` into the output stream (and
/// folds it into the checksum too).
pub const SYS_EMIT: u16 = 0x0002;

use strata_isa::Reg;

use crate::Machine;

/// Host-side state accumulated by application syscalls.
///
/// ```
/// use strata_machine::syscall::SyscallState;
/// let s = SyscallState::new();
/// assert_eq!(s.checksum(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallState {
    checksum: u32,
    emitted: Vec<u32>,
}

impl SyscallState {
    /// Creates empty syscall state.
    pub fn new() -> SyscallState {
        SyscallState::default()
    }

    /// The running checksum over all `SYS_CHECKSUM`/`SYS_EMIT` values.
    pub fn checksum(&self) -> u32 {
        self.checksum
    }

    /// Values recorded by `SYS_EMIT`, in order.
    pub fn emitted(&self) -> &[u32] {
        &self.emitted
    }

    /// Services an application trap. Returns `true` if the code was an
    /// application syscall handled here, `false` for unknown/SDT codes.
    pub fn handle(&mut self, code: u16, machine: &Machine) -> bool {
        match code {
            SYS_CHECKSUM => {
                self.fold(machine.cpu().reg(Reg::R4));
                true
            }
            SYS_EMIT => {
                let v = machine.cpu().reg(Reg::R4);
                self.emitted.push(v);
                self.fold(v);
                true
            }
            _ => false,
        }
    }

    fn fold(&mut self, value: u32) {
        self.checksum = self
            .checksum
            .wrapping_mul(31)
            .wrapping_add(value)
            .rotate_left(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layout, Machine, NullObserver, StepOutcome};
    use strata_asm::assemble;

    #[test]
    fn checksum_accumulates_deterministically() {
        let src = r"
            li r4, 7
            trap 0x1
            li r4, 9
            trap 0x2
            halt
        ";
        let run_once = || {
            let code = assemble(layout::APP_BASE, src).unwrap();
            let mut m = Machine::new(0x20_0000);
            m.write_code(layout::APP_BASE, &code).unwrap();
            m.cpu_mut().pc = layout::APP_BASE;
            let mut sys = SyscallState::new();
            loop {
                match m.run(&mut NullObserver, 1000).unwrap() {
                    StepOutcome::Trap(code) => {
                        assert!(sys.handle(code, &m));
                    }
                    StepOutcome::Halted => break,
                    StepOutcome::Running => unreachable!(),
                }
            }
            sys
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
        assert_eq!(a.emitted(), &[9]);
        assert_ne!(a.checksum(), 0);
    }

    #[test]
    fn unknown_codes_are_rejected() {
        let m = Machine::new(0x1000);
        let mut sys = SyscallState::new();
        assert!(!sys.handle(SDT_TRAP_BASE, &m));
        assert!(!sys.handle(0x7777, &m));
    }
}
