use crate::{layout, Machine, MachineError};

/// A loadable SimRISC program: code, optional static data, and an entry
/// point.
///
/// Programs follow the conventional [`layout`]: code at
/// [`layout::APP_BASE`], data at [`layout::APP_DATA_BASE`]. The workload
/// generators in `strata-workloads` all produce `Program`s; both the native
/// runner and the SDT consume them.
#[derive(Debug, Clone)]
pub struct Program {
    /// Human-readable name (e.g. the SPEC stand-in benchmark name).
    pub name: String,
    /// Machine words loaded at [`Program::code_base`].
    pub code: Vec<u32>,
    /// Byte address the code is loaded at.
    pub code_base: u32,
    /// Static data loaded at [`Program::data_base`].
    pub data: Vec<u8>,
    /// Byte address the data is loaded at.
    pub data_base: u32,
    /// Initial program counter.
    pub entry: u32,
}

impl Program {
    /// Creates a program using the conventional layout, entered at its
    /// first instruction.
    pub fn new(name: impl Into<String>, code: Vec<u32>, data: Vec<u8>) -> Program {
        Program {
            name: name.into(),
            code,
            code_base: layout::APP_BASE,
            data,
            data_base: layout::APP_DATA_BASE,
            entry: layout::APP_BASE,
        }
    }

    /// Size of the code in bytes.
    pub fn code_bytes(&self) -> u32 {
        self.code.len() as u32 * 4
    }

    /// First byte address past the end of the code.
    pub fn code_end(&self) -> u32 {
        self.code_base + self.code_bytes()
    }

    /// Loads the program into `machine` and points `pc` at the entry.
    ///
    /// The stack pointer is reset to the top of memory.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if code or data do not fit.
    pub fn load(&self, machine: &mut Machine) -> Result<(), MachineError> {
        machine.write_code(self.code_base, &self.code)?;
        machine.mem_mut().write_bytes(self.data_base, &self.data)?;
        let sp = machine.mem().size();
        let cpu = machine.cpu_mut();
        cpu.pc = self.entry;
        cpu.set_sp(sp);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullObserver, StepOutcome};
    use strata_asm::assemble;
    use strata_isa::Reg;

    #[test]
    fn load_and_run() {
        let code = assemble(
            layout::APP_BASE,
            &format!("li r1, {}\nlw r2, 0(r1)\nhalt\n", layout::APP_DATA_BASE),
        )
        .unwrap();
        let program = Program::new("t", code, vec![0x78, 0x56, 0x34, 0x12]);
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        program.load(&mut m).unwrap();
        assert_eq!(m.run(&mut NullObserver, 100).unwrap(), StepOutcome::Halted);
        assert_eq!(m.cpu().reg(Reg::R2), 0x12345678);
    }

    #[test]
    fn code_extent_helpers() {
        let p = Program::new("t", vec![0; 10], Vec::new());
        assert_eq!(p.code_bytes(), 40);
        assert_eq!(p.code_end(), layout::APP_BASE + 40);
    }
}
