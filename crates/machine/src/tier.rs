//! The threaded execution tier: direct-threaded superblock translation
//! for hot SimRISC regions.
//!
//! The interpreter pays, for every instruction, a predecode-page lookup,
//! a full operand extraction out of the [`Instr`] encoding, and the
//! construction of a fresh [`RetireEvent`]. This module removes all
//! three from hot code: once a region head has been *arrived at* (by a
//! taken control transfer) [`TierConfig::threshold`] times, the region
//! is translated into a **superblock** of pre-lowered host ops —
//! operands resolved to direct register indices, immediates pre-extended,
//! branch targets pre-computed, and one retire-event template per guest
//! instruction that execution patches and emits instead of rebuilding.
//! Dispatch inside a block is a single match on a dense op enum (the
//! direct-threaded analogue: no fetch, no decode, no page walk), and
//! every exit — taken conditional, indirect transfer, trap, fuel, fault
//! — is a *side exit* that restores the interpreter's exact view of the
//! machine (`cpu.pc` at the next unexecuted instruction).
//!
//! ## Observational equivalence
//!
//! Correctness here is defined as **bit-identical observability**: a
//! translated block must hand the observer the very same
//! [`RetireEvent`] stream the interpreter would, in the same order, at
//! the same fuel boundaries, with the same faults. Charged guest cycles
//! are *not* computed here — the architecture cost models stay
//! observational consumers of the retire stream — so enabling the tier
//! cannot move a single costed cycle. The difftest harness
//! (`strata-testgen`) locks this down over randomized programs.
//!
//! ## Superblock formation
//!
//! Translation walks forward from the hot head through the *predecoded*
//! words only (a hot path has necessarily been decoded already):
//!
//! * straight-line ops extend the block;
//! * conditional branches stay in the block — the not-taken (fall
//!   through) path continues, the taken path becomes a side exit;
//! * unconditional transfers (`jmp`/`call`/`jr`/`callr`/`ret`/`jmem`),
//!   `trap`, and `halt` terminate the block;
//! * an undecoded word or the [`TierConfig::max_block`] cap ends the
//!   block with a fall-through stub that retires nothing.
//!
//! ## Invalidation protocol (self-modifying code)
//!
//! [`Memory`] bumps a [`code_version`](Memory::code_version) generation
//! counter whenever a store clears predecoded words. The engine
//! captures the generation when it (re)builds blocks and compares it on
//! every block-head arrival: a mismatch flushes every translated block
//! and all profile counters before anything stale can run. Stores
//! *inside* a translated block are checked right after they retire —
//! the block side-exits to the next instruction, so a program patching
//! the very block it is executing observes its own writes exactly as it
//! would under the interpreter.

use strata_isa::{Flags, Instr, Reg};

use crate::event::{ControlEvent, ExecutionObserver, MemAccess, RetireEvent};
use crate::machine::MachineError;
use crate::memory::{Memory, PAGE_SHIFT, PAGE_WORDS};
use crate::Cpu;

/// Knobs for the threaded tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Arrivals at a region head before it is translated. Clamped to at
    /// least 1 (a threshold of 1 translates on first arrival).
    pub threshold: u32,
    /// Maximum guest instructions per superblock.
    pub max_block: usize,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig {
            threshold: 64,
            max_block: 64,
        }
    }
}

/// Which execution tier drives [`Machine::run`](crate::Machine::run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// Pure interpretation (the default; zero overhead, zero state).
    Interp,
    /// Hot-region translation to direct-threaded superblocks.
    Threaded(TierConfig),
}

impl ExecTier {
    /// Parses a tier spec: `interp`, `threaded`, or `threaded:<threshold>`.
    ///
    /// ```
    /// use strata_machine::{ExecTier, TierConfig};
    /// assert_eq!(ExecTier::parse("interp").unwrap(), ExecTier::Interp);
    /// assert_eq!(
    ///     ExecTier::parse("threaded").unwrap(),
    ///     ExecTier::Threaded(TierConfig::default())
    /// );
    /// match ExecTier::parse("threaded:8").unwrap() {
    ///     ExecTier::Threaded(cfg) => assert_eq!(cfg.threshold, 8),
    ///     other => panic!("{other:?}"),
    /// }
    /// assert!(ExecTier::parse("jit").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<ExecTier, String> {
        match s {
            "interp" => Ok(ExecTier::Interp),
            "threaded" => Ok(ExecTier::Threaded(TierConfig::default())),
            other => match other.strip_prefix("threaded:") {
                Some(n) => {
                    let threshold: u32 = n.parse().map_err(|_| {
                        format!("bad tier threshold `{n}` (expected a number, e.g. threaded:32)")
                    })?;
                    Ok(ExecTier::Threaded(TierConfig {
                        threshold: threshold.max(1),
                        ..TierConfig::default()
                    }))
                }
                None => Err(format!(
                    "unknown execution tier `{other}` (interp|threaded[:threshold])"
                )),
            },
        }
    }
}

/// Counters the tier exposes for tests, experiments, and `strata run`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Superblocks translated over the machine's lifetime (flushed
    /// blocks still count).
    pub blocks_translated: u64,
    /// Times execution entered a translated block.
    pub block_entries: u64,
    /// Guest instructions retired from inside translated blocks.
    pub translated_retired: u64,
    /// Whole-cache invalidations triggered by code-version mismatches.
    pub flushes: u64,
}

/// Condition of a lowered conditional branch.
///
/// Public so the translation validator (`strata-analysis`) can check a
/// lowered branch's predicate against the guest instruction it claims to
/// lower; execution itself never leaves this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// `beq`: flags.eq
    Eq,
    /// `bne`: !flags.eq
    Ne,
    /// `blt`: flags.lt
    Lt,
    /// `bge`: !flags.lt
    Ge,
    /// `bltu`: flags.ltu
    Ltu,
    /// `bgeu`: !flags.ltu
    Geu,
}

impl Cond {
    #[inline(always)]
    fn eval(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.eq,
            Cond::Ne => !f.eq,
            Cond::Lt => f.lt,
            Cond::Ge => !f.lt,
            Cond::Ltu => f.ltu,
            Cond::Geu => !f.ltu,
        }
    }
}

/// A pre-lowered guest instruction. Register operands are direct
/// [`Reg`] values, immediates are pre-extended to their runtime width,
/// and static targets (branch destinations, call return addresses) are
/// pre-computed, so executing an op touches no encoding logic at all.
///
/// Public (read-only, via [`TierSlotMeta`]) so the translation validator
/// can re-derive each op's semantics and prove it equivalent to the
/// guest instruction it lowers; nothing outside this crate can construct
/// a block from ops.
#[allow(missing_docs)] // operand fields mirror `Instr`'s, post-extension
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Add {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sub {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mul {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Divu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Remu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    And {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Or {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Xor {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sll {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Srl {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sra {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mov {
        rd: Reg,
        rs: Reg,
    },
    Addi {
        rd: Reg,
        rs1: Reg,
        imm: u32,
    },
    Andi {
        rd: Reg,
        rs1: Reg,
        imm: u32,
    },
    Ori {
        rd: Reg,
        rs1: Reg,
        imm: u32,
    },
    Xori {
        rd: Reg,
        rs1: Reg,
        imm: u32,
    },
    Slli {
        rd: Reg,
        rs1: Reg,
        shamt: u32,
    },
    Srli {
        rd: Reg,
        rs1: Reg,
        shamt: u32,
    },
    Srai {
        rd: Reg,
        rs1: Reg,
        shamt: u32,
    },
    Lui {
        rd: Reg,
        value: u32,
    },
    Lw {
        rd: Reg,
        rs1: Reg,
        off: u32,
    },
    Sw {
        rs2: Reg,
        rs1: Reg,
        off: u32,
    },
    Lb {
        rd: Reg,
        rs1: Reg,
        off: u32,
    },
    Lbu {
        rd: Reg,
        rs1: Reg,
        off: u32,
    },
    Sb {
        rs2: Reg,
        rs1: Reg,
        off: u32,
    },
    Lwa {
        rd: Reg,
        addr: u32,
    },
    Swa {
        rs: Reg,
        addr: u32,
    },
    Push {
        rs: Reg,
    },
    Pop {
        rd: Reg,
    },
    Pushf,
    Popf,
    Cmp {
        rs1: Reg,
        rs2: Reg,
    },
    Cmpi {
        rs1: Reg,
        rhs: u32,
    },
    /// Conditional branch: taken is a side exit, not-taken falls through
    /// to the next op.
    CondBr {
        cond: Cond,
        target: u32,
    },
    /// Macro-op fusion: `cmp` immediately followed by a conditional
    /// branch executes as one dispatch. The original `CondBr` stays in
    /// the next slot (in-block branch targets can land on it) and lends
    /// the fused op its retire template at runtime.
    CmpBr {
        rs1: Reg,
        rs2: Reg,
        cond: Cond,
        target: u32,
    },
    /// `cmpi` fused with the following conditional branch.
    CmpiBr {
        rs1: Reg,
        rhs: u32,
        cond: Cond,
        target: u32,
    },
    Jmp {
        target: u32,
    },
    CallD {
        target: u32,
        ret: u32,
    },
    Jr {
        rs: Reg,
    },
    Callr {
        rs: Reg,
        ret: u32,
    },
    Ret,
    Jmem {
        addr: u32,
    },
    Trap {
        code: u16,
    },
    Halt,
    Nop,
    /// Block-end stub (length cap or undecoded word): transfers to
    /// `next` without retiring anything.
    FallThrough {
        next: u32,
    },
}

/// One translated op plus its retire-event template. Dynamic fields
/// (data address, indirect target, taken-branch outcome) are patched
/// into a stack copy of the template at execution time; everything else
/// is emitted verbatim, byte-identical to what the interpreter builds.
#[derive(Debug, Clone, Copy)]
struct TOp {
    op: Op,
    ev: RetireEvent,
}

/// A translated superblock: `ops[i]` lowers the instruction at
/// `base + 4 * i` (the trailing `FallThrough`, if any, sits at the
/// first untranslated pc).
#[derive(Debug, Clone)]
struct Block {
    base: u32,
    ops: Box<[TOp]>,
}

/// One translated slot as exported for external validation: the guest
/// pc it claims to lower, the lowered op, and the stored retire-event
/// template (whose `instr` field is the guest instruction the translator
/// believed it was lowering).
#[derive(Debug, Clone, Copy)]
pub struct TierSlotMeta {
    /// Guest address of this slot (`block.base + 4 * slot_index`).
    pub pc: u32,
    /// The lowered op executed for this slot.
    pub op: Op,
    /// The retire-event template emitted (with dynamic fields patched)
    /// when this slot retires.
    pub ev: RetireEvent,
}

/// Structural metadata for one translated superblock — the threaded
/// tier's analogue of `Sdt::cache_meta()`: everything an external
/// validator needs to re-derive and check the translation, exported by
/// [`Machine::tier_blocks`](crate::Machine::tier_blocks).
#[derive(Debug, Clone)]
pub struct TierBlockMeta {
    /// Guest address of the block head.
    pub base: u32,
    /// Slots in execution order; `slots[i]` lowers `base + 4 * i`.
    pub slots: Vec<TierSlotMeta>,
}

/// A class of translator defect the mutation harness can inject into a
/// live translated block (leaving the stored guest instruction intact,
/// exactly like a lowering bug would). Used by both the differential
/// tester and the translation validator's sensitivity tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierMutation {
    /// An immediate was mis-extended/mis-copied: bump the first lowered
    /// immediate operand by 1.
    WrongImmediate,
    /// Operand order lost in lowering: swap `rs1`/`rs2` of the first
    /// non-commutative ALU op (`sub`/`divu`/`remu`).
    SwappedOperands,
    /// A precomputed branch target is off by one word: bump the first
    /// conditional side-exit target by 4 (fused shadow kept consistent,
    /// like a systematic translator bug would).
    BranchTargetSkew,
    /// The block's resume point is off by one instruction: bump the
    /// trailing `FallThrough` stub's target by 4, so a block-cap or
    /// fuel-boundary exit resumes at the wrong pc.
    FuelBoundarySkew,
}

impl TierMutation {
    /// Every defect class, for exhaustive sensitivity sweeps.
    pub const ALL: [TierMutation; 4] = [
        TierMutation::WrongImmediate,
        TierMutation::SwappedOperands,
        TierMutation::BranchTargetSkew,
        TierMutation::FuelBoundarySkew,
    ];

    /// Kebab-case label for reports and test output.
    pub fn name(self) -> &'static str {
        match self {
            TierMutation::WrongImmediate => "wrong-immediate",
            TierMutation::SwappedOperands => "swapped-operands",
            TierMutation::BranchTargetSkew => "branch-target-skew",
            TierMutation::FuelBoundarySkew => "fuel-boundary-skew",
        }
    }
}

/// How a block execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExitKind {
    /// Control left the block (side exit, fall through, or fuel
    /// exhausted); `cpu.pc` holds the next unexecuted instruction.
    Continue,
    /// A `trap` retired; `cpu.pc` is past it.
    Trap(u16),
    /// A `halt` retired; `cpu.pc` is past it.
    Halted,
    /// An op faulted; `cpu.pc` holds the faulting instruction and no
    /// partial effects are observable (mirrors the interpreter).
    Fault(MachineError),
}

/// Result of executing (part of) a translated block.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockExit {
    pub(crate) kind: ExitKind,
    /// Guest instructions retired (always `<=` the fuel passed in).
    pub(crate) retired: u64,
}

/// A lazily-allocated paged `pc -> u32` map mirroring the memory
/// crate's 4 KiB predecode pages: one load to find the page, one to
/// index it — no hashing anywhere near the dispatch path.
#[derive(Debug)]
struct PagedU32 {
    pages: Vec<Option<Box<[u32; PAGE_WORDS]>>>,
}

impl PagedU32 {
    fn new(page_count: usize) -> PagedU32 {
        PagedU32 {
            pages: (0..page_count).map(|_| None).collect(),
        }
    }

    /// The value at (aligned) `pc`, 0 when unset or out of range.
    #[inline(always)]
    fn get(&self, pc: u32) -> u32 {
        match self.pages.get((pc >> PAGE_SHIFT) as usize) {
            Some(Some(page)) => page[(pc as usize >> 2) & (PAGE_WORDS - 1)],
            _ => 0,
        }
    }

    /// Mutable slot for `pc`, allocating its page; `None` past the end
    /// of memory.
    #[inline]
    fn slot_mut(&mut self, pc: u32) -> Option<&mut u32> {
        let page = self.pages.get_mut((pc >> PAGE_SHIFT) as usize)?;
        let page = page.get_or_insert_with(|| Box::new([0; PAGE_WORDS]));
        Some(&mut page[(pc as usize >> 2) & (PAGE_WORDS - 1)])
    }

    fn clear(&mut self) {
        for page in &mut self.pages {
            *page = None;
        }
    }
}

/// Per-pc profile counter value marking a head as untranslatable; the
/// saturating bump keeps it pinned so translation is not retried on
/// every arrival.
const UNTRANSLATABLE: u32 = u32::MAX;

/// The threaded tier's state: translated blocks, the block map, and the
/// arrival profiler. Owned by [`Machine`](crate::Machine) when the
/// threaded tier is selected.
#[derive(Debug)]
pub(crate) struct TierEngine {
    cfg: TierConfig,
    /// `Memory::code_version` as of the last (re)build; a mismatch at a
    /// block-head arrival flushes everything.
    version: u64,
    blocks: Vec<Block>,
    /// pc -> block index + 1 (0 = no block starts here).
    map: PagedU32,
    /// pc -> arrivals observed while untranslated.
    counters: PagedU32,
    stats: TierStats,
}

impl TierEngine {
    pub(crate) fn new(cfg: TierConfig, mem: &Memory) -> TierEngine {
        let cfg = TierConfig {
            threshold: cfg.threshold.max(1),
            max_block: cfg.max_block.max(1),
        };
        let pages = (mem.size() as usize).div_ceil(1 << PAGE_SHIFT);
        TierEngine {
            cfg,
            version: mem.code_version(),
            blocks: Vec::new(),
            map: PagedU32::new(pages),
            counters: PagedU32::new(pages),
            stats: TierStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> TierStats {
        self.stats
    }

    /// Drops every translated block and profile counter if the memory's
    /// code generation moved (a store invalidated decoded code).
    #[inline(always)]
    pub(crate) fn sync_version(&mut self, version: u64) {
        if version != self.version {
            self.flush(version);
        }
    }

    #[cold]
    fn flush(&mut self, version: u64) {
        self.blocks.clear();
        self.map.clear();
        self.counters.clear();
        self.version = version;
        self.stats.flushes += 1;
    }

    /// The translated block starting exactly at `pc`, if any.
    #[inline(always)]
    pub(crate) fn lookup(&self, pc: u32) -> Option<u32> {
        if pc & 3 != 0 {
            return None;
        }
        match self.map.get(pc) {
            0 => None,
            idx => Some(idx - 1),
        }
    }

    /// Records an arrival at untranslated `pc`; translates the region
    /// once the threshold is reached. Returns `true` when `pc` now has
    /// a block (the caller re-dispatches through [`Self::lookup`]).
    pub(crate) fn profile(&mut self, pc: u32, mem: &Memory) -> bool {
        if pc & 3 != 0 {
            return false;
        }
        let threshold = self.cfg.threshold;
        let Some(counter) = self.counters.slot_mut(pc) else {
            return false;
        };
        *counter = counter.saturating_add(1);
        if *counter != threshold {
            return false;
        }
        match translate(mem, pc, self.cfg.max_block) {
            Some(block) => {
                self.blocks.push(block);
                let idx = self.blocks.len() as u32;
                *self
                    .map
                    .slot_mut(pc)
                    .expect("counter slot implies map slot") = idx;
                self.stats.blocks_translated += 1;
                true
            }
            None => {
                *self.counters.slot_mut(pc).expect("slot exists") = UNTRANSLATABLE;
                false
            }
        }
    }

    /// Executes block `idx` until a side exit, fault, or `max` retired
    /// instructions.
    #[inline]
    pub(crate) fn exec_block<O: ExecutionObserver>(
        &mut self,
        idx: u32,
        cpu: &mut Cpu,
        mem: &mut Memory,
        max: u64,
        observer: &mut O,
    ) -> BlockExit {
        let exit = run_ops(
            &self.blocks[idx as usize],
            self.version,
            cpu,
            mem,
            max,
            observer,
        );
        self.stats.block_entries += 1;
        self.stats.translated_retired += exit.retired;
        exit
    }

    /// Exports structural metadata for every live translated block.
    ///
    /// Returns an empty vec when `current_version` does not match the
    /// generation the blocks were built against: stale blocks are
    /// guaranteed to be flushed before they can execute again, so
    /// validating them against the (already different) code bytes would
    /// only manufacture false mismatches.
    pub(crate) fn export_blocks(&self, current_version: u64) -> Vec<TierBlockMeta> {
        if current_version != self.version {
            return Vec::new();
        }
        self.blocks
            .iter()
            .map(|b| TierBlockMeta {
                base: b.base,
                slots: b
                    .ops
                    .iter()
                    .enumerate()
                    .map(|(i, t)| TierSlotMeta {
                        pc: b.base.wrapping_add(i as u32 * 4),
                        op: t.op,
                        ev: t.ev,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Mutation-testing hook: injects one defect of class `m` into the
    /// first translated op it applies to, leaving the stored guest
    /// instruction (and so the validator's reference) intact. Returns
    /// `false` when no translated op is eligible.
    #[doc(hidden)]
    pub(crate) fn corrupt_lowered(&mut self, m: TierMutation) -> bool {
        match m {
            TierMutation::BranchTargetSkew => self.corrupt_side_exit(),
            TierMutation::WrongImmediate => {
                for block in &mut self.blocks {
                    for t in block.ops.iter_mut() {
                        match &mut t.op {
                            Op::Addi { imm, .. }
                            | Op::Andi { imm, .. }
                            | Op::Ori { imm, .. }
                            | Op::Xori { imm, .. } => {
                                *imm = imm.wrapping_add(1);
                                return true;
                            }
                            Op::Cmpi { rhs, .. } | Op::CmpiBr { rhs, .. } => {
                                *rhs = rhs.wrapping_add(1);
                                return true;
                            }
                            Op::Lui { value, .. } => {
                                *value = value.wrapping_add(1);
                                return true;
                            }
                            _ => {}
                        }
                    }
                }
                false
            }
            TierMutation::SwappedOperands => {
                for block in &mut self.blocks {
                    for t in block.ops.iter_mut() {
                        match &mut t.op {
                            Op::Sub { rs1, rs2, .. }
                            | Op::Divu { rs1, rs2, .. }
                            | Op::Remu { rs1, rs2, .. }
                                if rs1 != rs2 =>
                            {
                                std::mem::swap(rs1, rs2);
                                return true;
                            }
                            _ => {}
                        }
                    }
                }
                false
            }
            TierMutation::FuelBoundarySkew => {
                for block in &mut self.blocks {
                    for t in block.ops.iter_mut() {
                        if let Op::FallThrough { next } = &mut t.op {
                            *next = next.wrapping_add(4);
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Test hook (mutation testing): nudges the first translated
    /// conditional side-exit target by 4 bytes, simulating a translator
    /// bug the differential harness must catch. Returns `false` when no
    /// block with a conditional branch exists yet.
    #[doc(hidden)]
    pub(crate) fn corrupt_side_exit(&mut self) -> bool {
        for block in &mut self.blocks {
            for i in 0..block.ops.len() {
                let fused = matches!(block.ops[i].op, Op::CmpBr { .. } | Op::CmpiBr { .. });
                match &mut block.ops[i].op {
                    Op::CondBr { target, .. }
                    | Op::CmpBr { target, .. }
                    | Op::CmpiBr { target, .. } => *target = target.wrapping_add(4),
                    _ => continue,
                }
                if fused {
                    // Keep the fused op and its shadow branch consistent.
                    if let Op::CondBr { target, .. } = &mut block.ops[i + 1].op {
                        *target = target.wrapping_add(4);
                    }
                }
                return true;
            }
        }
        false
    }
}

/// Builds the retire-event template the interpreter would emit for
/// `instr` at `pc`, with dynamic fields left at their fall-through /
/// zero defaults (patched at execution time).
fn template(pc: u32, instr: Instr) -> RetireEvent {
    let next = pc.wrapping_add(4);
    let mut control = ControlEvent {
        kind: instr.control_kind(),
        taken: false,
        target: next,
        indirect: false,
    };
    let mut mem = None;
    use Instr::*;
    match instr {
        Lw { .. } | Lb { .. } | Lbu { .. } => {
            mem = Some(MemAccess {
                addr: 0,
                len: if matches!(instr, Lw { .. }) { 4 } else { 1 },
                is_store: false,
            });
        }
        Sw { .. } | Sb { .. } => {
            mem = Some(MemAccess {
                addr: 0,
                len: if matches!(instr, Sw { .. }) { 4 } else { 1 },
                is_store: true,
            });
        }
        Lwa { addr, .. } | Jmem { addr } => {
            mem = Some(MemAccess {
                addr,
                len: 4,
                is_store: false,
            });
        }
        Swa { addr, .. } => {
            mem = Some(MemAccess {
                addr,
                len: 4,
                is_store: true,
            });
        }
        Push { .. } | Pushf | Call { .. } | Callr { .. } => {
            mem = Some(MemAccess {
                addr: 0,
                len: 4,
                is_store: true,
            });
        }
        Pop { .. } | Popf | Ret => {
            mem = Some(MemAccess {
                addr: 0,
                len: 4,
                is_store: false,
            });
        }
        _ => {}
    }
    match instr {
        Jmp { target } | Call { target } => {
            control.taken = true;
            control.target = target;
        }
        Jr { .. } | Callr { .. } | Ret | Jmem { .. } => {
            control.taken = true;
            control.indirect = true;
            // target patched at execution time
        }
        _ => {}
    }
    debug_assert_eq!(control.kind, instr.control_kind());
    RetireEvent {
        pc,
        instr,
        class: instr.class(),
        mem,
        control,
    }
}

/// Lowers one decoded instruction; returns the op and whether it
/// terminates the superblock.
fn lower(pc: u32, instr: Instr) -> (TOp, bool) {
    use Instr as I;
    let next = pc.wrapping_add(4);
    let (op, ends) = match instr {
        I::Add { rd, rs1, rs2 } => (Op::Add { rd, rs1, rs2 }, false),
        I::Sub { rd, rs1, rs2 } => (Op::Sub { rd, rs1, rs2 }, false),
        I::Mul { rd, rs1, rs2 } => (Op::Mul { rd, rs1, rs2 }, false),
        I::Divu { rd, rs1, rs2 } => (Op::Divu { rd, rs1, rs2 }, false),
        I::Remu { rd, rs1, rs2 } => (Op::Remu { rd, rs1, rs2 }, false),
        I::And { rd, rs1, rs2 } => (Op::And { rd, rs1, rs2 }, false),
        I::Or { rd, rs1, rs2 } => (Op::Or { rd, rs1, rs2 }, false),
        I::Xor { rd, rs1, rs2 } => (Op::Xor { rd, rs1, rs2 }, false),
        I::Sll { rd, rs1, rs2 } => (Op::Sll { rd, rs1, rs2 }, false),
        I::Srl { rd, rs1, rs2 } => (Op::Srl { rd, rs1, rs2 }, false),
        I::Sra { rd, rs1, rs2 } => (Op::Sra { rd, rs1, rs2 }, false),
        I::Mov { rd, rs } => (Op::Mov { rd, rs }, false),
        I::Addi { rd, rs1, imm } => (
            Op::Addi {
                rd,
                rs1,
                imm: imm as i32 as u32,
            },
            false,
        ),
        I::Andi { rd, rs1, imm } => (
            Op::Andi {
                rd,
                rs1,
                imm: imm as u32,
            },
            false,
        ),
        I::Ori { rd, rs1, imm } => (
            Op::Ori {
                rd,
                rs1,
                imm: imm as u32,
            },
            false,
        ),
        I::Xori { rd, rs1, imm } => (
            Op::Xori {
                rd,
                rs1,
                imm: imm as u32,
            },
            false,
        ),
        I::Slli { rd, rs1, shamt } => (
            Op::Slli {
                rd,
                rs1,
                shamt: shamt as u32,
            },
            false,
        ),
        I::Srli { rd, rs1, shamt } => (
            Op::Srli {
                rd,
                rs1,
                shamt: shamt as u32,
            },
            false,
        ),
        I::Srai { rd, rs1, shamt } => (
            Op::Srai {
                rd,
                rs1,
                shamt: shamt as u32,
            },
            false,
        ),
        I::Lui { rd, imm } => (
            Op::Lui {
                rd,
                value: (imm as u32) << 16,
            },
            false,
        ),
        I::Lw { rd, rs1, off } => (
            Op::Lw {
                rd,
                rs1,
                off: off as i32 as u32,
            },
            false,
        ),
        I::Sw { rs2, rs1, off } => (
            Op::Sw {
                rs2,
                rs1,
                off: off as i32 as u32,
            },
            false,
        ),
        I::Lb { rd, rs1, off } => (
            Op::Lb {
                rd,
                rs1,
                off: off as i32 as u32,
            },
            false,
        ),
        I::Lbu { rd, rs1, off } => (
            Op::Lbu {
                rd,
                rs1,
                off: off as i32 as u32,
            },
            false,
        ),
        I::Sb { rs2, rs1, off } => (
            Op::Sb {
                rs2,
                rs1,
                off: off as i32 as u32,
            },
            false,
        ),
        I::Lwa { rd, addr } => (Op::Lwa { rd, addr }, false),
        I::Swa { rs, addr } => (Op::Swa { rs, addr }, false),
        I::Push { rs } => (Op::Push { rs }, false),
        I::Pop { rd } => (Op::Pop { rd }, false),
        I::Pushf => (Op::Pushf, false),
        I::Popf => (Op::Popf, false),
        I::Cmp { rs1, rs2 } => (Op::Cmp { rs1, rs2 }, false),
        I::Cmpi { rs1, imm } => (
            Op::Cmpi {
                rs1,
                rhs: imm as i32 as u32,
            },
            false,
        ),
        I::Beq { off } => (cond_br(Cond::Eq, pc, off), false),
        I::Bne { off } => (cond_br(Cond::Ne, pc, off), false),
        I::Blt { off } => (cond_br(Cond::Lt, pc, off), false),
        I::Bge { off } => (cond_br(Cond::Ge, pc, off), false),
        I::Bltu { off } => (cond_br(Cond::Ltu, pc, off), false),
        I::Bgeu { off } => (cond_br(Cond::Geu, pc, off), false),
        I::Jmp { target } => (Op::Jmp { target }, true),
        I::Call { target } => (Op::CallD { target, ret: next }, true),
        I::Jr { rs } => (Op::Jr { rs }, true),
        I::Callr { rs } => (Op::Callr { rs, ret: next }, true),
        I::Ret => (Op::Ret, true),
        I::Jmem { addr } => (Op::Jmem { addr }, true),
        I::Trap { code } => (Op::Trap { code }, true),
        I::Halt => (Op::Halt, true),
        I::Nop => (Op::Nop, false),
    };
    (
        TOp {
            op,
            ev: template(pc, instr),
        },
        ends,
    )
}

fn cond_br(cond: Cond, pc: u32, off: i16) -> Op {
    // Taken target exactly as the interpreter computes it.
    let target = pc
        .wrapping_add(4)
        .wrapping_add((off as i32 as u32).wrapping_mul(4));
    Op::CondBr { cond, target }
}

/// Translates the superblock headed at `base` from the predecoded
/// instruction stream. Returns `None` when not even the head word is
/// decoded (misaligned, out of range, undecodable, or simply cold) —
/// the caller pins the head as untranslatable.
fn translate(mem: &Memory, base: u32, max_block: usize) -> Option<Block> {
    if base & 3 != 0 {
        return None;
    }
    let mut ops: Vec<TOp> = Vec::new();
    let mut pc = base;
    loop {
        if ops.len() >= max_block {
            ops.push(fall_through(pc));
            break;
        }
        let Some(instr) = mem.fetch_predecoded(pc) else {
            if ops.is_empty() {
                return None;
            }
            ops.push(fall_through(pc));
            break;
        };
        let (top, ends) = lower(pc, instr);
        ops.push(top);
        if ends {
            break;
        }
        pc = pc.wrapping_add(4);
    }
    fuse(&mut ops);
    Some(Block {
        base,
        ops: ops.into_boxed_slice(),
    })
}

/// Peephole pass: a compare directly feeding a conditional branch is
/// rewritten into a single fused op, halving the dispatch cost of the
/// canonical `cmp*; b<cond>` loop latch. The branch op itself is left
/// untouched — it still lowers the instruction at its own pc, so a
/// branch target (or a fuel boundary) landing between the pair resumes
/// correctly.
fn fuse(ops: &mut [TOp]) {
    for i in 0..ops.len().saturating_sub(1) {
        let Op::CondBr { cond, target } = ops[i + 1].op else {
            continue;
        };
        match ops[i].op {
            Op::Cmp { rs1, rs2 } => {
                ops[i].op = Op::CmpBr {
                    rs1,
                    rs2,
                    cond,
                    target,
                }
            }
            Op::Cmpi { rs1, rhs } => {
                ops[i].op = Op::CmpiBr {
                    rs1,
                    rhs,
                    cond,
                    target,
                }
            }
            _ => {}
        }
    }
}

fn fall_through(next: u32) -> TOp {
    TOp {
        op: Op::FallThrough { next },
        // Never emitted: the stub retires nothing.
        ev: template(next, Instr::Nop),
    }
}

/// The direct-threaded dispatch loop over one block's ops.
///
/// Guest state transitions mirror [`Machine::exec`] exactly —
/// instruction by instruction, including operation order within an
/// instruction (stores attempted before register updates) — but `pc` is
/// materialized only at exits, which is where the speed comes from.
fn run_ops<O: ExecutionObserver>(
    block: &Block,
    entry_version: u64,
    cpu: &mut Cpu,
    mem: &mut Memory,
    max: u64,
    observer: &mut O,
) -> BlockExit {
    let base = block.base;
    let mut retired: u64 = 0;
    let mut idx: usize = 0;
    loop {
        let t = &block.ops[idx];

        /// The guest pc of the current op — materialized only on the
        /// exit paths that need it, never in the hot dispatch.
        macro_rules! pc {
            () => {
                base.wrapping_add(idx as u32 * 4)
            };
        }

        // Fuel boundary: stop *before* the op that would exceed the
        // budget, exactly where the interpreter would stop. (Stopping
        // at a `FallThrough` stub is fine: it retires nothing and its
        // `next` equals this very pc, so the observable state is the
        // same either way.)
        if retired == max {
            cpu.pc = pc!();
            return BlockExit {
                kind: ExitKind::Continue,
                retired,
            };
        }

        /// Fault exit: pc at the faulting instruction, nothing retired
        /// for it, no partial effects.
        macro_rules! try_op {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(err) => {
                        cpu.pc = pc!();
                        return BlockExit {
                            kind: ExitKind::Fault(err),
                            retired,
                        };
                    }
                }
            };
        }
        /// Retire the unpatched template and advance to the next op.
        macro_rules! retire {
            () => {{
                observer.on_retire(&t.ev);
                retired += 1;
                idx += 1;
            }};
        }
        /// Retire a store op (template patched with the data address),
        /// then side-exit if the store invalidated decoded code — the
        /// remaining ops of this block may be stale.
        macro_rules! retire_store {
            ($addr:expr) => {{
                let mut ev = t.ev;
                ev.mem = Some(MemAccess {
                    addr: $addr,
                    len: ev.mem.expect("store template has access").len,
                    is_store: true,
                });
                observer.on_retire(&ev);
                retired += 1;
                if mem.code_version() != entry_version {
                    cpu.pc = pc!().wrapping_add(4);
                    return BlockExit {
                        kind: ExitKind::Continue,
                        retired,
                    };
                }
                idx += 1;
            }};
        }
        /// Tail of a fused compare+branch: retire the compare's event
        /// (already done by the caller), honor a fuel boundary that
        /// falls between the pair, then retire the branch using the
        /// shadow `CondBr`'s template from the next slot.
        macro_rules! fused_branch {
            ($cond:expr, $target:expr) => {{
                observer.on_retire(&t.ev);
                retired += 1;
                if retired == max {
                    // Fuel ran out between compare and branch: resume
                    // at the branch, exactly like the interpreter.
                    cpu.pc = pc!().wrapping_add(4);
                    return BlockExit {
                        kind: ExitKind::Continue,
                        retired,
                    };
                }
                let br = &block.ops[idx + 1];
                if $cond.eval(cpu.flags) {
                    let mut ev = br.ev;
                    ev.control.taken = true;
                    ev.control.target = $target;
                    observer.on_retire(&ev);
                    retired += 1;
                    let off = $target.wrapping_sub(base);
                    let widx = (off >> 2) as usize;
                    if off & 3 == 0 && widx < block.ops.len() {
                        idx = widx;
                        continue;
                    }
                    cpu.pc = $target;
                    return BlockExit {
                        kind: ExitKind::Continue,
                        retired,
                    };
                }
                observer.on_retire(&br.ev);
                retired += 1;
                idx += 2;
            }};
        }

        /// Retire a load op with a patched data address.
        macro_rules! retire_load {
            ($addr:expr) => {{
                let mut ev = t.ev;
                ev.mem = Some(MemAccess {
                    addr: $addr,
                    len: ev.mem.expect("load template has access").len,
                    is_store: false,
                });
                observer.on_retire(&ev);
                retired += 1;
                idx += 1;
            }};
        }

        match t.op {
            Op::Add { rd, rs1, rs2 } => {
                cpu.set_reg(rd, cpu.reg(rs1).wrapping_add(cpu.reg(rs2)));
                retire!();
            }
            Op::Sub { rd, rs1, rs2 } => {
                cpu.set_reg(rd, cpu.reg(rs1).wrapping_sub(cpu.reg(rs2)));
                retire!();
            }
            Op::Mul { rd, rs1, rs2 } => {
                cpu.set_reg(rd, cpu.reg(rs1).wrapping_mul(cpu.reg(rs2)));
                retire!();
            }
            Op::Divu { rd, rs1, rs2 } => {
                let v = cpu.reg(rs1).checked_div(cpu.reg(rs2)).unwrap_or(u32::MAX);
                cpu.set_reg(rd, v);
                retire!();
            }
            Op::Remu { rd, rs1, rs2 } => {
                let d = cpu.reg(rs2);
                let v = if d == 0 {
                    cpu.reg(rs1)
                } else {
                    cpu.reg(rs1) % d
                };
                cpu.set_reg(rd, v);
                retire!();
            }
            Op::And { rd, rs1, rs2 } => {
                cpu.set_reg(rd, cpu.reg(rs1) & cpu.reg(rs2));
                retire!();
            }
            Op::Or { rd, rs1, rs2 } => {
                cpu.set_reg(rd, cpu.reg(rs1) | cpu.reg(rs2));
                retire!();
            }
            Op::Xor { rd, rs1, rs2 } => {
                cpu.set_reg(rd, cpu.reg(rs1) ^ cpu.reg(rs2));
                retire!();
            }
            Op::Sll { rd, rs1, rs2 } => {
                cpu.set_reg(rd, cpu.reg(rs1) << (cpu.reg(rs2) & 31));
                retire!();
            }
            Op::Srl { rd, rs1, rs2 } => {
                cpu.set_reg(rd, cpu.reg(rs1) >> (cpu.reg(rs2) & 31));
                retire!();
            }
            Op::Sra { rd, rs1, rs2 } => {
                cpu.set_reg(rd, ((cpu.reg(rs1) as i32) >> (cpu.reg(rs2) & 31)) as u32);
                retire!();
            }
            Op::Mov { rd, rs } => {
                cpu.set_reg(rd, cpu.reg(rs));
                retire!();
            }
            Op::Addi { rd, rs1, imm } => {
                cpu.set_reg(rd, cpu.reg(rs1).wrapping_add(imm));
                retire!();
            }
            Op::Andi { rd, rs1, imm } => {
                cpu.set_reg(rd, cpu.reg(rs1) & imm);
                retire!();
            }
            Op::Ori { rd, rs1, imm } => {
                cpu.set_reg(rd, cpu.reg(rs1) | imm);
                retire!();
            }
            Op::Xori { rd, rs1, imm } => {
                cpu.set_reg(rd, cpu.reg(rs1) ^ imm);
                retire!();
            }
            Op::Slli { rd, rs1, shamt } => {
                cpu.set_reg(rd, cpu.reg(rs1) << shamt);
                retire!();
            }
            Op::Srli { rd, rs1, shamt } => {
                cpu.set_reg(rd, cpu.reg(rs1) >> shamt);
                retire!();
            }
            Op::Srai { rd, rs1, shamt } => {
                cpu.set_reg(rd, ((cpu.reg(rs1) as i32) >> shamt) as u32);
                retire!();
            }
            Op::Lui { rd, value } => {
                cpu.set_reg(rd, value);
                retire!();
            }
            Op::Lw { rd, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off);
                let v = try_op!(mem.read_u32(a));
                cpu.set_reg(rd, v);
                retire_load!(a);
            }
            Op::Sw { rs2, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off);
                try_op!(mem.write_u32(a, cpu.reg(rs2)));
                retire_store!(a);
            }
            Op::Lb { rd, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off);
                let v = try_op!(mem.read_u8(a)) as i8 as i32 as u32;
                cpu.set_reg(rd, v);
                retire_load!(a);
            }
            Op::Lbu { rd, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off);
                let v = try_op!(mem.read_u8(a)) as u32;
                cpu.set_reg(rd, v);
                retire_load!(a);
            }
            Op::Sb { rs2, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off);
                try_op!(mem.write_u8(a, cpu.reg(rs2) as u8));
                retire_store!(a);
            }
            Op::Lwa { rd, addr } => {
                let v = try_op!(mem.read_u32(addr));
                cpu.set_reg(rd, v);
                retire!();
            }
            Op::Swa { rs, addr } => {
                try_op!(mem.write_u32(addr, cpu.reg(rs)));
                retire_store!(addr);
            }
            Op::Push { rs } => {
                let val = cpu.reg(rs);
                let sp = cpu.sp().wrapping_sub(4);
                try_op!(mem.write_u32(sp, val));
                cpu.set_sp(sp);
                retire_store!(sp);
            }
            Op::Pop { rd } => {
                let sp = cpu.sp();
                let v = try_op!(mem.read_u32(sp));
                cpu.set_sp(sp.wrapping_add(4));
                cpu.set_reg(rd, v); // rd == sp overrides, like the interpreter
                retire_load!(sp);
            }
            Op::Pushf => {
                let sp = cpu.sp().wrapping_sub(4);
                try_op!(mem.write_u32(sp, cpu.flags.to_bits()));
                cpu.set_sp(sp);
                retire_store!(sp);
            }
            Op::Popf => {
                let sp = cpu.sp();
                let v = try_op!(mem.read_u32(sp));
                cpu.set_sp(sp.wrapping_add(4));
                cpu.flags = Flags::from_bits(v);
                retire_load!(sp);
            }
            Op::Cmp { rs1, rs2 } => {
                cpu.flags = Flags::from_compare(cpu.reg(rs1), cpu.reg(rs2));
                retire!();
            }
            Op::Cmpi { rs1, rhs } => {
                cpu.flags = Flags::from_compare(cpu.reg(rs1), rhs);
                retire!();
            }
            Op::CmpBr {
                rs1,
                rs2,
                cond,
                target,
            } => {
                cpu.flags = Flags::from_compare(cpu.reg(rs1), cpu.reg(rs2));
                fused_branch!(cond, target);
            }
            Op::CmpiBr {
                rs1,
                rhs,
                cond,
                target,
            } => {
                cpu.flags = Flags::from_compare(cpu.reg(rs1), rhs);
                fused_branch!(cond, target);
            }
            Op::CondBr { cond, target } => {
                if cond.eval(cpu.flags) {
                    let mut ev = t.ev;
                    ev.control.taken = true;
                    ev.control.target = target;
                    observer.on_retire(&ev);
                    retired += 1;
                    // Direct-threaded backedge: a taken branch landing
                    // inside this very block (the hot-loop case) jumps
                    // straight to that op instead of paying a block
                    // exit and re-entry. The fuel check at the loop top
                    // still fires per op, and no store can have staled
                    // the block without already forcing a side exit.
                    let off = target.wrapping_sub(base);
                    let widx = (off >> 2) as usize;
                    if off & 3 == 0 && widx < block.ops.len() {
                        idx = widx;
                        continue;
                    }
                    cpu.pc = target;
                    return BlockExit {
                        kind: ExitKind::Continue,
                        retired,
                    };
                }
                retire!();
            }
            Op::Jmp { target } => {
                observer.on_retire(&t.ev);
                retired += 1;
                let off = target.wrapping_sub(base);
                let widx = (off >> 2) as usize;
                if off & 3 == 0 && widx < block.ops.len() {
                    idx = widx;
                    continue;
                }
                cpu.pc = target;
                return BlockExit {
                    kind: ExitKind::Continue,
                    retired,
                };
            }
            Op::CallD { target, ret } => {
                let sp = cpu.sp().wrapping_sub(4);
                try_op!(mem.write_u32(sp, ret));
                cpu.set_sp(sp);
                let mut ev = t.ev;
                ev.mem = Some(MemAccess {
                    addr: sp,
                    len: 4,
                    is_store: true,
                });
                observer.on_retire(&ev);
                retired += 1;
                cpu.pc = target;
                return BlockExit {
                    kind: ExitKind::Continue,
                    retired,
                };
            }
            Op::Jr { rs } => {
                let target = cpu.reg(rs);
                let mut ev = t.ev;
                ev.control.target = target;
                observer.on_retire(&ev);
                retired += 1;
                cpu.pc = target;
                return BlockExit {
                    kind: ExitKind::Continue,
                    retired,
                };
            }
            Op::Callr { rs, ret } => {
                let target = cpu.reg(rs);
                let sp = cpu.sp().wrapping_sub(4);
                try_op!(mem.write_u32(sp, ret));
                cpu.set_sp(sp);
                let mut ev = t.ev;
                ev.mem = Some(MemAccess {
                    addr: sp,
                    len: 4,
                    is_store: true,
                });
                ev.control.target = target;
                observer.on_retire(&ev);
                retired += 1;
                cpu.pc = target;
                return BlockExit {
                    kind: ExitKind::Continue,
                    retired,
                };
            }
            Op::Ret => {
                let sp = cpu.sp();
                let target = try_op!(mem.read_u32(sp));
                cpu.set_sp(sp.wrapping_add(4));
                let mut ev = t.ev;
                ev.mem = Some(MemAccess {
                    addr: sp,
                    len: 4,
                    is_store: false,
                });
                ev.control.target = target;
                observer.on_retire(&ev);
                retired += 1;
                cpu.pc = target;
                return BlockExit {
                    kind: ExitKind::Continue,
                    retired,
                };
            }
            Op::Jmem { addr } => {
                let target = try_op!(mem.read_u32(addr));
                let mut ev = t.ev;
                ev.control.target = target;
                observer.on_retire(&ev);
                retired += 1;
                cpu.pc = target;
                return BlockExit {
                    kind: ExitKind::Continue,
                    retired,
                };
            }
            Op::Trap { code } => {
                observer.on_retire(&t.ev);
                retired += 1;
                cpu.pc = pc!().wrapping_add(4);
                return BlockExit {
                    kind: ExitKind::Trap(code),
                    retired,
                };
            }
            Op::Halt => {
                observer.on_retire(&t.ev);
                retired += 1;
                cpu.pc = pc!().wrapping_add(4);
                return BlockExit {
                    kind: ExitKind::Halted,
                    retired,
                };
            }
            Op::Nop => {
                retire!();
            }
            Op::FallThrough { next } => {
                cpu.pc = next;
                return BlockExit {
                    kind: ExitKind::Continue,
                    retired,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstrCounter, Machine, NullObserver, StepOutcome};
    use strata_asm::assemble;
    use strata_isa::encode;

    const SPIN: &str = r"
        li r1, 200
    top:
        addi r1, r1, -1
        xor r2, r2, r1
        cmpi r1, 0
        bne top
        halt
    ";

    fn machine_with(src: &str, tier: ExecTier) -> Machine {
        let mut m = Machine::new(0x1_0000);
        let code = assemble(0x1000, src).expect("assembles");
        m.write_code(0x1000, &code).unwrap();
        m.cpu_mut().pc = 0x1000;
        m.set_tier(tier);
        m
    }

    fn threaded(threshold: u32) -> ExecTier {
        ExecTier::Threaded(TierConfig {
            threshold,
            ..TierConfig::default()
        })
    }

    #[test]
    fn tier_parse() {
        assert_eq!(ExecTier::parse("interp").unwrap(), ExecTier::Interp);
        assert!(matches!(
            ExecTier::parse("threaded").unwrap(),
            ExecTier::Threaded(_)
        ));
        match ExecTier::parse("threaded:0").unwrap() {
            ExecTier::Threaded(cfg) => assert_eq!(cfg.threshold, 1, "threshold clamps to 1"),
            other => panic!("{other:?}"),
        }
        assert!(ExecTier::parse("").is_err());
        assert!(ExecTier::parse("threaded:x").is_err());
        assert!(ExecTier::parse("cranelift").is_err());
    }

    #[test]
    fn hot_loop_promotes_and_matches_interpreter() {
        let mut interp = machine_with(SPIN, ExecTier::Interp);
        let mut tiered = machine_with(SPIN, threaded(4));
        let mut ci = InstrCounter::default();
        let mut ct = InstrCounter::default();
        assert_eq!(interp.run(&mut ci, 10_000).unwrap(), StepOutcome::Halted);
        assert_eq!(tiered.run(&mut ct, 10_000).unwrap(), StepOutcome::Halted);
        assert_eq!(ci.retired(), ct.retired());
        assert_eq!(interp.cpu(), tiered.cpu());
        let stats = tiered.tier_stats().expect("tier enabled");
        assert!(stats.blocks_translated >= 1, "loop head must promote");
        assert!(
            stats.translated_retired > ct.retired() / 2,
            "most instructions must retire from translated code \
             (got {} of {})",
            stats.translated_retired,
            ct.retired()
        );
    }

    #[test]
    fn promotion_waits_for_threshold() {
        // 199 arrivals at the loop head with threshold 1000: no translation.
        let mut m = machine_with(SPIN, threaded(1000));
        m.run(&mut NullObserver, 10_000).unwrap();
        assert_eq!(m.tier_stats().unwrap().blocks_translated, 0);

        let mut m = machine_with(SPIN, threaded(3));
        m.run(&mut NullObserver, 10_000).unwrap();
        assert!(m.tier_stats().unwrap().blocks_translated >= 1);
    }

    #[test]
    fn fuel_boundaries_are_exact_mid_block() {
        // Slicing fuel one instruction at a time must observe exactly
        // the interpreter's states even while inside a translated block.
        let mut interp = machine_with(SPIN, ExecTier::Interp);
        let mut tiered = machine_with(SPIN, threaded(2));
        loop {
            let a = interp.run(&mut NullObserver, 3);
            let b = tiered.run(&mut NullObserver, 3);
            assert_eq!(a, b);
            assert_eq!(interp.cpu(), tiered.cpu(), "state at a fuel boundary");
            if a == Ok(StepOutcome::Halted) {
                break;
            }
        }
    }

    #[test]
    fn zero_fuel_is_out_of_fuel() {
        let mut m = machine_with(SPIN, threaded(1));
        assert_eq!(
            m.run(&mut NullObserver, 0),
            Err(MachineError::OutOfFuel { steps: 0 })
        );
    }

    #[test]
    fn store_into_hot_region_invalidates_translated_blocks() {
        // The loop patches its own `xor` into a `nop` mid-run: the
        // translated superblock must be flushed and the patched
        // instruction must take effect, exactly as under interpretation.
        let src = r"
            li r1, 40
            li r6, patchee
            li r7, 0          ; packed nop written below
        top:
            addi r1, r1, -1
        patchee:
            xor r2, r2, r1
            cmpi r1, 20
            bne skip
            sw r7, 0(r6)      ; patch the xor -> nop at iteration 20
        skip:
            cmpi r1, 0
            bne top
            halt
        ";
        // Write the encoded nop into r7 after assembly (li of a label
        // can't encode an instruction word, so pre-seed the register).
        let mut interp = machine_with(src, ExecTier::Interp);
        let mut tiered = machine_with(src, threaded(2));
        let nop = encode(&Instr::Nop);
        interp.cpu_mut().set_reg(Reg::R7, nop);
        tiered.cpu_mut().set_reg(Reg::R7, nop);

        let mut ci = InstrCounter::default();
        let mut ct = InstrCounter::default();
        assert_eq!(interp.run(&mut ci, 10_000).unwrap(), StepOutcome::Halted);
        assert_eq!(tiered.run(&mut ct, 10_000).unwrap(), StepOutcome::Halted);
        assert_eq!(interp.cpu(), tiered.cpu(), "SMC must behave identically");
        assert_eq!(ci.retired(), ct.retired());

        let stats = tiered.tier_stats().unwrap();
        assert!(stats.blocks_translated >= 2, "re-translated after flush");
        assert!(stats.flushes >= 1, "store into hot region must flush");
    }

    #[test]
    fn trap_resumes_identically() {
        let src = "nop\ntrap 0x7\nli r1, 9\nhalt\n";
        let mut m = machine_with(src, threaded(1));
        // First pass interprets; run it hot enough to translate by
        // restarting at the same pc a few times.
        for _ in 0..4 {
            m.cpu_mut().pc = 0x1000;
            let out = m.run(&mut NullObserver, 100).unwrap();
            assert_eq!(out, StepOutcome::Trap(0x7));
            let out = m.run(&mut NullObserver, 100).unwrap();
            assert_eq!(out, StepOutcome::Halted);
            assert_eq!(m.cpu().reg(Reg::R1), 9);
        }
        assert!(m.tier_stats().unwrap().blocks_translated >= 1);
    }

    #[test]
    fn faults_surface_identically_from_blocks() {
        // A hot block whose load goes out of bounds once r5 is clobbered:
        // the fault must surface with pc at the faulting instruction and
        // identical state to interpretation.
        let src = r"
            li r5, 0x2000
            li r1, 6
        top:
            lw r2, 0(r5)
            addi r1, r1, -1
            cmpi r1, 3
            bne cont
            lui r5, 0xFFFF    ; push the pointer out of bounds
        cont:
            cmpi r1, 0
            bne top
            halt
        ";
        let mut interp = machine_with(src, ExecTier::Interp);
        let mut tiered = machine_with(src, threaded(2));
        let a = interp.run(&mut NullObserver, 10_000);
        let b = tiered.run(&mut NullObserver, 10_000);
        assert_eq!(a, b);
        assert!(matches!(a, Err(MachineError::OutOfBounds { .. })));
        assert_eq!(interp.cpu(), tiered.cpu());
    }

    #[test]
    fn retire_streams_are_bit_identical() {
        #[derive(Default)]
        struct Rec(Vec<RetireEvent>);
        impl ExecutionObserver for Rec {
            fn on_retire(&mut self, ev: &RetireEvent) {
                self.0.push(*ev);
            }
        }
        let src = r"
            li r1, 30
            li r5, 0x3000
        top:
            push r1
            pop r2
            sw r1, 4(r5)
            lw r3, 4(r5)
            call fn
            addi r1, r1, -1
            cmpi r1, 0
            bne top
            halt
        fn:
            add r4, r4, r1
            ret
        ";
        let mut interp = machine_with(src, ExecTier::Interp);
        let mut tiered = machine_with(src, threaded(2));
        let mut ra = Rec::default();
        let mut rb = Rec::default();
        assert_eq!(interp.run(&mut ra, 10_000).unwrap(), StepOutcome::Halted);
        assert_eq!(tiered.run(&mut rb, 10_000).unwrap(), StepOutcome::Halted);
        assert_eq!(ra.0, rb.0, "retire streams must match event for event");
    }

    #[test]
    fn corrupt_side_exit_hook_changes_behavior() {
        let mut m = machine_with(SPIN, threaded(2));
        // Nothing to corrupt before any block exists.
        assert!(!m.corrupt_translated_side_exit());
        m.run(&mut NullObserver, 50).unwrap_err(); // OutOfFuel, now hot
        assert!(m.corrupt_translated_side_exit(), "block with cond branch");

        // A corrupted taken-branch target must diverge from a clean run.
        // (Final register state can coincide — the skipped/extra ops of
        // this loop cancel — but the retire stream cannot.)
        let mut clean = machine_with(SPIN, ExecTier::Interp);
        clean.run(&mut NullObserver, 50).unwrap_err();
        let mut ca = InstrCounter::default();
        let mut cb = InstrCounter::default();
        let a = m.run(&mut ca, 10_000);
        let b = clean.run(&mut cb, 10_000);
        assert!(
            a != b || ca.retired() != cb.retired() || m.cpu() != clean.cpu(),
            "corruption must be observable"
        );
    }

    #[test]
    fn unaligned_and_wild_pcs_fall_back_to_interp_errors() {
        let mut m = machine_with("halt\n", threaded(1));
        m.cpu_mut().pc = 0x1001;
        assert_eq!(
            m.run(&mut NullObserver, 10),
            Err(MachineError::UnalignedPc { pc: 0x1001 })
        );
        let mut m = machine_with("halt\n", threaded(1));
        m.cpu_mut().pc = 0xFFFF_FFF0;
        assert!(matches!(
            m.run(&mut NullObserver, 10),
            Err(MachineError::OutOfBounds { .. })
        ));
    }
}
