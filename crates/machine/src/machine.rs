use std::fmt;

use strata_isa::{ControlKind, DecodeError, Flags, Instr};

use crate::event::{ControlEvent, ExecutionObserver, MemAccess, RetireEvent};
use crate::tier::{ExitKind, TierBlockMeta, TierEngine, TierMutation};
use crate::{Cpu, ExecTier, Memory, TierStats};

/// Errors surfaced by machine execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// A memory access touched bytes outside of memory.
    OutOfBounds { addr: u32, len: u32 },
    /// The program counter was not 4-byte aligned.
    UnalignedPc { pc: u32 },
    /// The word at `pc` did not decode to an instruction.
    Decode { pc: u32, source: DecodeError },
    /// [`Machine::run`] exhausted its step budget.
    OutOfFuel { steps: u64 },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::OutOfBounds { addr, len } => {
                write!(
                    f,
                    "memory access of {len} byte(s) at {addr:#x} is out of bounds"
                )
            }
            MachineError::UnalignedPc { pc } => write!(f, "unaligned pc {pc:#x}"),
            MachineError::Decode { pc, source } => write!(f, "at pc {pc:#x}: {source}"),
            MachineError::OutOfFuel { steps } => {
                write!(f, "execution exceeded the step budget of {steps}")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Result of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired normally; execution continues.
    Running,
    /// A `trap` instruction retired. `pc` already points at the following
    /// instruction; the embedder services the trap and resumes (possibly at
    /// a different `pc`).
    Trap(u16),
    /// A `halt` instruction retired.
    Halted,
}

/// The simulated SimRISC machine: CPU state plus memory.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct Machine {
    cpu: Cpu,
    mem: Memory,
    /// Threaded-tier state; `None` runs the pure interpreter (the
    /// default — no field access on the interpreter's per-instruction
    /// path, only one check at [`Machine::run`] entry).
    tier: Option<Box<TierEngine>>,
}

impl Machine {
    /// Creates a machine with `mem_bytes` of zeroed memory and the stack
    /// pointer initialized to the top of memory.
    pub fn new(mem_bytes: u32) -> Machine {
        let mem = Memory::new(mem_bytes);
        let mut cpu = Cpu::new();
        cpu.set_sp(mem.size());
        Machine {
            cpu,
            mem,
            tier: None,
        }
    }

    /// Selects the execution tier driving [`Machine::run`].
    ///
    /// Switching to [`ExecTier::Threaded`] installs a fresh tier engine
    /// (empty translation cache, zeroed profile); switching back to
    /// [`ExecTier::Interp`] discards it. Guest-visible behavior is
    /// identical either way — only wall-clock changes.
    pub fn set_tier(&mut self, tier: ExecTier) {
        self.tier = match tier {
            ExecTier::Interp => None,
            ExecTier::Threaded(cfg) => Some(Box::new(TierEngine::new(cfg, &self.mem))),
        };
    }

    /// Translation-tier counters, when the threaded tier is active.
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.tier.as_ref().map(|t| t.stats())
    }

    /// Mutation-testing hook: corrupts the side-exit target of the first
    /// translated conditional branch, if any. See
    /// `TierEngine::corrupt_side_exit`.
    #[doc(hidden)]
    pub fn corrupt_translated_side_exit(&mut self) -> bool {
        self.tier
            .as_mut()
            .is_some_and(|tier| tier.corrupt_side_exit())
    }

    /// Structural metadata for every live translated superblock — the
    /// threaded tier's analogue of `Sdt::cache_meta()`, consumed by the
    /// translation validator in `strata-analysis`. Empty when the
    /// threaded tier is off, nothing is hot yet, or the translation
    /// cache is stale (pending flush at the next block-head arrival).
    pub fn tier_blocks(&self) -> Vec<TierBlockMeta> {
        self.tier
            .as_ref()
            .map(|tier| tier.export_blocks(self.mem.code_version()))
            .unwrap_or_default()
    }

    /// Mutation-testing hook: injects one lowered-op defect of class `m`
    /// into the first eligible translated op (the stored guest
    /// instruction stays intact, exactly like a lowering bug). Returns
    /// `false` when the tier is off or nothing eligible is translated.
    #[doc(hidden)]
    pub fn corrupt_lowered_op(&mut self, m: TierMutation) -> bool {
        self.tier
            .as_mut()
            .is_some_and(|tier| tier.corrupt_lowered(m))
    }

    /// Shared view of CPU state.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable view of CPU state (the SDT runtime uses this while servicing
    /// traps).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Shared view of memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable view of memory.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Writes a sequence of machine words (code) starting at `addr` and
    /// registers the span as an executable region, predecoding it.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if the words do not fit.
    pub fn write_code(&mut self, addr: u32, words: &[u32]) -> Result<(), MachineError> {
        for (i, w) in words.iter().enumerate() {
            self.mem.write_u32(addr + i as u32 * 4, *w)?;
        }
        self.mem.register_code_region(addr, words.len() as u32 * 4);
        Ok(())
    }

    /// Executes instructions until `halt`, a `trap`, an error, or `fuel`
    /// retired instructions.
    ///
    /// This is the hot loop of every simulation. Each iteration tries the
    /// predecoded fast path — a page-table load with the alignment and
    /// bounds checks folded into two masks, no error-path code — and only
    /// falls back to the general fetch (decode, memoize, or report the
    /// error) on the first execution of a word, after self-modifying code
    /// invalidated it, or when `pc` left mapped code entirely. Guest
    /// semantics are bit-identical to calling [`Machine::step`] in a
    /// loop; the fuel budget is sliced off one instruction at a time, so
    /// resuming after a trap or out-of-fuel return observes exactly the
    /// same states.
    ///
    /// # Errors
    ///
    /// Propagates execution errors and returns [`MachineError::OutOfFuel`]
    /// if the budget is exhausted before `halt`/`trap`.
    pub fn run<O: ExecutionObserver>(
        &mut self,
        observer: &mut O,
        fuel: u64,
    ) -> Result<StepOutcome, MachineError> {
        if self.tier.is_some() {
            return self.run_tiered(observer, fuel);
        }
        for _ in 0..fuel {
            let pc = self.cpu.pc;
            let instr = match self.mem.fetch_predecoded(pc) {
                Some(instr) => instr,
                None => self.mem.fetch(pc)?,
            };
            match self.exec(pc, instr, observer)? {
                StepOutcome::Running => {}
                outcome => return Ok(outcome),
            }
        }
        Err(MachineError::OutOfFuel { steps: fuel })
    }

    /// [`Machine::run`] with the threaded tier installed: profile region
    /// heads at control-transfer arrivals, dispatch into translated
    /// superblocks when one starts at `pc`, interpret everything else.
    /// Guest semantics, retire streams, and fuel accounting are
    /// bit-identical to the interpreter loop above.
    fn run_tiered<O: ExecutionObserver>(
        &mut self,
        observer: &mut O,
        fuel: u64,
    ) -> Result<StepOutcome, MachineError> {
        let mut tier = self.tier.take().expect("run_tiered requires a tier");
        let result = self.run_tiered_inner(&mut tier, observer, fuel);
        self.tier = Some(tier);
        result
    }

    fn run_tiered_inner<O: ExecutionObserver>(
        &mut self,
        tier: &mut TierEngine,
        observer: &mut O,
        fuel: u64,
    ) -> Result<StepOutcome, MachineError> {
        let mut left = fuel;
        // `arrived` is true exactly when `pc` was reached by a control
        // transfer (or is the resume point): those are the only pcs that
        // can head a superblock, so lookup/profile work happens only
        // there and straight-line interpretation stays one compare away
        // from the untiered loop.
        let mut arrived = true;
        while left > 0 {
            let pc = self.cpu.pc;
            if arrived {
                tier.sync_version(self.mem.code_version());
                if let Some(idx) = tier.lookup(pc) {
                    let exit = tier.exec_block(idx, &mut self.cpu, &mut self.mem, left, observer);
                    left -= exit.retired;
                    match exit.kind {
                        ExitKind::Continue => continue,
                        ExitKind::Trap(code) => return Ok(StepOutcome::Trap(code)),
                        ExitKind::Halted => return Ok(StepOutcome::Halted),
                        ExitKind::Fault(err) => return Err(err),
                    }
                }
                if tier.profile(pc, &self.mem) {
                    continue; // freshly translated: re-dispatch at `pc`
                }
            }
            let instr = match self.mem.fetch_predecoded(pc) {
                Some(instr) => instr,
                None => self.mem.fetch(pc)?,
            };
            match self.exec(pc, instr, observer)? {
                StepOutcome::Running => {}
                outcome => return Ok(outcome),
            }
            left -= 1;
            arrived = self.cpu.pc != pc.wrapping_add(4);
        }
        Err(MachineError::OutOfFuel { steps: fuel })
    }

    /// Fetches, decodes, executes, and retires one instruction, notifying
    /// `observer`.
    ///
    /// # Errors
    ///
    /// Returns fetch/decode errors and out-of-bounds memory accesses. CPU
    /// state is unchanged when an error is returned mid-instruction except
    /// that no partial writes are observable (each instruction performs at
    /// most one memory write, attempted before register state is updated).
    pub fn step<O: ExecutionObserver>(
        &mut self,
        observer: &mut O,
    ) -> Result<StepOutcome, MachineError> {
        let pc = self.cpu.pc;
        let instr = self.mem.fetch(pc)?;
        self.exec(pc, instr, observer)
    }

    /// Executes one already-fetched instruction and retires it. Shared by
    /// [`Machine::step`] and the fused [`Machine::run`] loop, so the two
    /// paths cannot drift.
    #[inline]
    fn exec<O: ExecutionObserver>(
        &mut self,
        pc: u32,
        instr: Instr,
        observer: &mut O,
    ) -> Result<StepOutcome, MachineError> {
        use Instr::*;

        let next = pc.wrapping_add(4);

        let mut mem_access: Option<MemAccess> = None;
        let mut control = ControlEvent {
            kind: instr.control_kind(),
            taken: false,
            target: next,
            indirect: false,
        };
        let mut outcome = StepOutcome::Running;
        let cpu = &mut self.cpu;
        let mem = &mut self.mem;

        macro_rules! load_w {
            ($addr:expr) => {{
                let a = $addr;
                mem_access = Some(MemAccess {
                    addr: a,
                    len: 4,
                    is_store: false,
                });
                mem.read_u32(a)?
            }};
        }
        macro_rules! store_w {
            ($addr:expr, $val:expr) => {{
                let a = $addr;
                mem_access = Some(MemAccess {
                    addr: a,
                    len: 4,
                    is_store: true,
                });
                mem.write_u32(a, $val)?
            }};
        }

        let mut new_pc = next;
        match instr {
            Add { rd, rs1, rs2 } => cpu.set_reg(rd, cpu.reg(rs1).wrapping_add(cpu.reg(rs2))),
            Sub { rd, rs1, rs2 } => cpu.set_reg(rd, cpu.reg(rs1).wrapping_sub(cpu.reg(rs2))),
            Mul { rd, rs1, rs2 } => cpu.set_reg(rd, cpu.reg(rs1).wrapping_mul(cpu.reg(rs2))),
            Divu { rd, rs1, rs2 } => {
                let d = cpu.reg(rs2);
                let v = cpu.reg(rs1).checked_div(d).unwrap_or(u32::MAX);
                cpu.set_reg(rd, v);
            }
            Remu { rd, rs1, rs2 } => {
                let d = cpu.reg(rs2);
                let v = if d == 0 {
                    cpu.reg(rs1)
                } else {
                    cpu.reg(rs1) % d
                };
                cpu.set_reg(rd, v);
            }
            And { rd, rs1, rs2 } => cpu.set_reg(rd, cpu.reg(rs1) & cpu.reg(rs2)),
            Or { rd, rs1, rs2 } => cpu.set_reg(rd, cpu.reg(rs1) | cpu.reg(rs2)),
            Xor { rd, rs1, rs2 } => cpu.set_reg(rd, cpu.reg(rs1) ^ cpu.reg(rs2)),
            Sll { rd, rs1, rs2 } => cpu.set_reg(rd, cpu.reg(rs1) << (cpu.reg(rs2) & 31)),
            Srl { rd, rs1, rs2 } => cpu.set_reg(rd, cpu.reg(rs1) >> (cpu.reg(rs2) & 31)),
            Sra { rd, rs1, rs2 } => {
                cpu.set_reg(rd, ((cpu.reg(rs1) as i32) >> (cpu.reg(rs2) & 31)) as u32)
            }
            Mov { rd, rs } => cpu.set_reg(rd, cpu.reg(rs)),

            Addi { rd, rs1, imm } => cpu.set_reg(rd, cpu.reg(rs1).wrapping_add(imm as i32 as u32)),
            Andi { rd, rs1, imm } => cpu.set_reg(rd, cpu.reg(rs1) & imm as u32),
            Ori { rd, rs1, imm } => cpu.set_reg(rd, cpu.reg(rs1) | imm as u32),
            Xori { rd, rs1, imm } => cpu.set_reg(rd, cpu.reg(rs1) ^ imm as u32),
            Slli { rd, rs1, shamt } => cpu.set_reg(rd, cpu.reg(rs1) << shamt),
            Srli { rd, rs1, shamt } => cpu.set_reg(rd, cpu.reg(rs1) >> shamt),
            Srai { rd, rs1, shamt } => cpu.set_reg(rd, ((cpu.reg(rs1) as i32) >> shamt) as u32),
            Lui { rd, imm } => cpu.set_reg(rd, (imm as u32) << 16),

            Lw { rd, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off as i32 as u32);
                let v = load_w!(a);
                cpu.set_reg(rd, v);
            }
            Sw { rs2, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off as i32 as u32);
                store_w!(a, cpu.reg(rs2));
            }
            Lb { rd, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off as i32 as u32);
                mem_access = Some(MemAccess {
                    addr: a,
                    len: 1,
                    is_store: false,
                });
                let v = mem.read_u8(a)? as i8 as i32 as u32;
                cpu.set_reg(rd, v);
            }
            Lbu { rd, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off as i32 as u32);
                mem_access = Some(MemAccess {
                    addr: a,
                    len: 1,
                    is_store: false,
                });
                let v = mem.read_u8(a)? as u32;
                cpu.set_reg(rd, v);
            }
            Sb { rs2, rs1, off } => {
                let a = cpu.reg(rs1).wrapping_add(off as i32 as u32);
                mem_access = Some(MemAccess {
                    addr: a,
                    len: 1,
                    is_store: true,
                });
                mem.write_u8(a, cpu.reg(rs2) as u8)?;
            }
            Lwa { rd, addr } => {
                let v = load_w!(addr);
                cpu.set_reg(rd, v);
            }
            Swa { rs, addr } => store_w!(addr, cpu.reg(rs)),
            Push { rs } => {
                let val = cpu.reg(rs);
                let sp = cpu.sp().wrapping_sub(4);
                store_w!(sp, val);
                cpu.set_sp(sp);
            }
            Pop { rd } => {
                let sp = cpu.sp();
                let v = load_w!(sp);
                cpu.set_sp(sp.wrapping_add(4));
                cpu.set_reg(rd, v); // rd == sp overrides the increment, like x86
            }
            Pushf => {
                let sp = cpu.sp().wrapping_sub(4);
                store_w!(sp, cpu.flags.to_bits());
                cpu.set_sp(sp);
            }
            Popf => {
                let sp = cpu.sp();
                let v = load_w!(sp);
                cpu.set_sp(sp.wrapping_add(4));
                cpu.flags = Flags::from_bits(v);
            }

            Cmp { rs1, rs2 } => cpu.flags = Flags::from_compare(cpu.reg(rs1), cpu.reg(rs2)),
            Cmpi { rs1, imm } => cpu.flags = Flags::from_compare(cpu.reg(rs1), imm as i32 as u32),

            Beq { off } => branch(cpu.flags.eq, off, pc, &mut new_pc, &mut control),
            Bne { off } => branch(!cpu.flags.eq, off, pc, &mut new_pc, &mut control),
            Blt { off } => branch(cpu.flags.lt, off, pc, &mut new_pc, &mut control),
            Bge { off } => branch(!cpu.flags.lt, off, pc, &mut new_pc, &mut control),
            Bltu { off } => branch(cpu.flags.ltu, off, pc, &mut new_pc, &mut control),
            Bgeu { off } => branch(!cpu.flags.ltu, off, pc, &mut new_pc, &mut control),

            Jmp { target } => {
                new_pc = target;
                control.taken = true;
                control.target = target;
            }
            Call { target } => {
                let sp = cpu.sp().wrapping_sub(4);
                store_w!(sp, next);
                cpu.set_sp(sp);
                new_pc = target;
                control.taken = true;
                control.target = target;
            }
            Jr { rs } => {
                new_pc = cpu.reg(rs);
                control.taken = true;
                control.target = new_pc;
                control.indirect = true;
            }
            Callr { rs } => {
                let target = cpu.reg(rs);
                let sp = cpu.sp().wrapping_sub(4);
                store_w!(sp, next);
                cpu.set_sp(sp);
                new_pc = target;
                control.taken = true;
                control.target = target;
                control.indirect = true;
            }
            Ret => {
                let sp = cpu.sp();
                let target = load_w!(sp);
                cpu.set_sp(sp.wrapping_add(4));
                new_pc = target;
                control.taken = true;
                control.target = target;
                control.indirect = true;
            }
            Jmem { addr } => {
                let target = load_w!(addr);
                new_pc = target;
                control.taken = true;
                control.target = target;
                control.indirect = true;
            }

            Trap { code } => outcome = StepOutcome::Trap(code),
            Halt => outcome = StepOutcome::Halted,
            Nop => {}
        }

        self.cpu.pc = new_pc;
        observer.on_retire(&RetireEvent {
            pc,
            instr,
            class: instr.class(),
            mem: mem_access,
            control,
        });
        Ok(outcome)
    }
}

#[inline]
fn branch(cond: bool, off: i16, pc: u32, new_pc: &mut u32, control: &mut ControlEvent) {
    debug_assert_eq!(control.kind, ControlKind::Conditional);
    if cond {
        let target = pc
            .wrapping_add(4)
            .wrapping_add((off as i32 as u32).wrapping_mul(4));
        *new_pc = target;
        control.taken = true;
        control.target = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullObserver;
    use strata_asm::assemble;
    use strata_isa::Reg;

    fn machine_with(src: &str) -> Machine {
        let mut m = Machine::new(0x1_0000);
        let code = assemble(0x100, src).expect("assembles");
        m.write_code(0x100, &code).unwrap();
        m.cpu_mut().pc = 0x100;
        m
    }

    fn run(src: &str) -> Machine {
        let mut m = machine_with(src);
        let out = m.run(&mut NullObserver, 10_000).expect("runs");
        assert_eq!(out, StepOutcome::Halted);
        m
    }

    #[test]
    fn arithmetic_and_logic() {
        let m = run(r"
            li r1, 21
            li r2, 2
            mul r3, r1, r2
            addi r3, r3, -2
            xor r4, r3, r3
            ori r4, r4, 0xFF
            andi r4, r4, 0xF0
            srli r4, r4, 4
            halt
        ");
        assert_eq!(m.cpu().reg(Reg::R3), 40);
        assert_eq!(m.cpu().reg(Reg::R4), 0xF);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let m = run(r"
            li r1, 17
            li r2, 0
            divu r3, r1, r2
            remu r4, r1, r2
            halt
        ");
        assert_eq!(m.cpu().reg(Reg::R3), u32::MAX);
        assert_eq!(m.cpu().reg(Reg::R4), 17);
    }

    #[test]
    fn loads_and_stores() {
        let m = run(r"
            li r1, 0x2000
            li r2, 0xCAFE
            sw r2, 4(r1)
            lw r3, 4(r1)
            sb r2, 0(r1)
            lbu r4, 0(r1)
            lb r5, 0(r1)
            halt
        ");
        assert_eq!(m.cpu().reg(Reg::R3), 0xCAFE);
        assert_eq!(m.cpu().reg(Reg::R4), 0xFE);
        assert_eq!(m.cpu().reg(Reg::R5), 0xFFFF_FFFE); // sign-extended
    }

    #[test]
    fn stack_discipline() {
        let m = run(r"
            li r1, 111
            li r2, 222
            push r1
            push r2
            pop r3
            pop r4
            halt
        ");
        assert_eq!(m.cpu().reg(Reg::R3), 222);
        assert_eq!(m.cpu().reg(Reg::R4), 111);
        assert_eq!(m.cpu().sp(), 0x1_0000);
    }

    #[test]
    fn flags_survive_pushf_popf() {
        let m = run(r"
            li r1, 1
            li r2, 2
            cmp r1, r2      ; lt, ltu set
            pushf
            cmpi r1, 1      ; eq set
            popf
            blt less
            li r3, 0
            halt
        less:
            li r3, 77
            halt
        ");
        assert_eq!(m.cpu().reg(Reg::R3), 77, "popf must restore the lt flag");
    }

    #[test]
    fn call_and_ret() {
        let m = run(r"
            li r1, 5
            call double
            call double
            halt
        double:
            add r1, r1, r1
            ret
        ");
        assert_eq!(m.cpu().reg(Reg::R1), 20);
        assert_eq!(m.cpu().sp(), 0x1_0000);
    }

    #[test]
    fn indirect_call_and_jump() {
        let m = run(r"
            li r9, target
            jr r9
            halt            ; skipped
        target:
            li r8, fn1
            callr r8
            halt
        fn1:
            li r7, 99
            ret
        ");
        assert_eq!(m.cpu().reg(Reg::R7), 99);
    }

    #[test]
    fn jmem_jumps_through_memory() {
        let m = run(r"
            li r1, dest
            swa r1, [0x200]
            jmem [0x200]
            halt            ; skipped
        dest:
            li r2, 5
            halt
        ");
        assert_eq!(m.cpu().reg(Reg::R2), 5);
    }

    #[test]
    fn trap_suspends_with_pc_after() {
        let mut m = machine_with("nop\ntrap 0x42\nli r1, 3\nhalt\n");
        let out = m.run(&mut NullObserver, 100).unwrap();
        assert_eq!(out, StepOutcome::Trap(0x42));
        // Resuming continues after the trap.
        let out = m.run(&mut NullObserver, 100).unwrap();
        assert_eq!(out, StepOutcome::Halted);
        assert_eq!(m.cpu().reg(Reg::R1), 3);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut m = machine_with("top:\n jmp top\n");
        assert_eq!(
            m.run(&mut NullObserver, 10),
            Err(MachineError::OutOfFuel { steps: 10 })
        );
    }

    #[test]
    fn observer_sees_control_flow() {
        #[derive(Default)]
        struct Watcher {
            indirect_taken: u32,
            cond_total: u32,
            stores: u32,
        }
        impl ExecutionObserver for Watcher {
            fn on_retire(&mut self, ev: &RetireEvent) {
                if ev.control.indirect && ev.control.taken {
                    self.indirect_taken += 1;
                }
                if ev.control.kind == ControlKind::Conditional {
                    self.cond_total += 1;
                }
                if ev.mem.is_some_and(|m| m.is_store) {
                    self.stores += 1;
                }
            }
        }
        let mut m = machine_with(
            r"
            li r1, 3
        top:
            addi r1, r1, -1
            cmpi r1, 0
            bne top
            li r9, out
            jr r9
        out:
            push r1
            halt
        ",
        );
        let mut w = Watcher::default();
        m.run(&mut w, 1000).unwrap();
        assert_eq!(w.indirect_taken, 1);
        assert_eq!(w.cond_total, 3);
        assert_eq!(w.stores, 1);
    }

    #[test]
    fn pop_into_sp_loads_value() {
        let m = run(r"
            li r1, 0x4000
            push r1
            pop sp
            halt
        ");
        assert_eq!(m.cpu().sp(), 0x4000);
    }
}
