use strata_isa::{ControlKind, Instr, InstrClass};

/// A data-memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address of the access.
    pub addr: u32,
    /// Access width in bytes (1 or 4).
    pub len: u8,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// Control-flow outcome of a retired instruction, as branch-prediction
/// hardware would see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlEvent {
    /// Static control kind of the instruction.
    pub kind: ControlKind,
    /// Whether control actually left the fall-through path.
    pub taken: bool,
    /// The address control transferred to (the next `pc`).
    pub target: u32,
    /// `true` when the *target* was computed at run time (indirect calls,
    /// `jr`, `jmem`, `ret`) — these are the transfers a BTB or
    /// return-address stack must predict.
    pub indirect: bool,
}

/// Everything an observer learns about one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireEvent {
    /// Address the instruction was fetched from.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Cost-model class (precomputed from `instr`).
    pub class: InstrClass,
    /// Data access, if the instruction touched memory. Stack operations
    /// report their implicit access.
    pub mem: Option<MemAccess>,
    /// Control-flow outcome.
    pub control: ControlEvent,
}

/// Per-retired-instruction hook.
///
/// Observers are how the architecture cost models (`strata-arch`) and the
/// SDT's overhead attribution see execution. [`Machine::step`] is generic
/// over the observer, so the hook is statically dispatched in the hot loop.
///
/// [`Machine::step`]: crate::Machine::step
pub trait ExecutionObserver {
    /// Called after each instruction retires, including `trap` and `halt`.
    fn on_retire(&mut self, event: &RetireEvent);
}

/// An observer that ignores all events (for functional-only runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ExecutionObserver for NullObserver {
    #[inline]
    fn on_retire(&mut self, _event: &RetireEvent) {}
}

/// Counts retired instructions; handy in tests and as a minimal example of
/// an observer.
///
/// ```
/// use strata_machine::{ExecutionObserver, InstrCounter};
/// let counter = InstrCounter::default();
/// assert_eq!(counter.retired(), 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct InstrCounter {
    retired: u64,
}

impl InstrCounter {
    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

impl ExecutionObserver for InstrCounter {
    #[inline]
    fn on_retire(&mut self, _event: &RetireEvent) {
        self.retired += 1;
    }
}
