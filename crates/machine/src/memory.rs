use strata_isa::{decode, Instr};

use crate::machine::MachineError;

/// log2 of the predecode page size in bytes.
pub(crate) const PAGE_SHIFT: u32 = 12;
/// Predecode page size in bytes (4 KiB).
pub(crate) const PAGE_BYTES: u32 = 1 << PAGE_SHIFT;
/// Instruction words per predecode page.
pub(crate) const PAGE_WORDS: usize = (PAGE_BYTES / 4) as usize;

/// One dense page of predecoded instructions. `None` means the word has
/// not been decoded (or failed to decode) since it was last written.
type CodePage = [Option<Instr>; PAGE_WORDS];

/// Flat, byte-addressed, little-endian guest memory with a paged
/// predecode cache.
///
/// Decoded instructions are memoized in dense 4 KiB *code pages*,
/// allocated lazily the first time execution touches a page (or eagerly
/// via [`Memory::register_code_region`]). Pages make two things cheap at
/// once:
///
/// * **Construction.** A fresh 16 MiB machine allocates a few thousand
///   page *slots*, not a decode entry per word, so `Memory::new` is
///   microseconds instead of milliseconds — and the experiment suite
///   constructs one machine per cell.
/// * **Store-side invalidation.** The union of allocated pages is
///   tracked as a single `[code_lo, code_hi)` byte range. A store first
///   does one range compare; only stores that overlap the executable
///   range walk their touched words. The overwhelming majority of guest
///   stores (stack, heap, IBTC/sieve lookup tables, register save area)
///   fall outside the range and skip invalidation entirely.
///
/// Stores that *do* land in a code page clear the touched word slots, so
/// runtime code generation (the SDT writing fragments, patching links,
/// appending sieve stanzas) is picked up immediately — the moral
/// equivalent of an instruction-cache flush after code modification.
#[derive(Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    /// Lazily allocated predecode pages, one slot per 4 KiB of memory.
    pages: Vec<Option<Box<CodePage>>>,
    /// Inclusive lower byte bound of the union of allocated code pages
    /// (`u32::MAX` when no page is allocated).
    code_lo: u32,
    /// Exclusive upper byte bound of the union of allocated code pages.
    code_hi: u32,
    /// Generation counter bumped every time a store invalidates decoded
    /// code. Consumers holding derived views of code (the translated
    /// superblocks of the threaded execution tier) compare it against
    /// the value they captured at derivation time and discard on
    /// mismatch — a cross-structure "icache flush" signal that costs
    /// nothing on the overwhelming store-misses-code path.
    code_version: u64,
}

impl Memory {
    /// Creates a zero-initialized memory of `size` bytes (rounded up to a
    /// multiple of 4).
    pub fn new(size: u32) -> Memory {
        let size = (size as usize).next_multiple_of(4);
        let pages = size.div_ceil(PAGE_BYTES as usize);
        Memory {
            bytes: vec![0; size],
            pages: (0..pages).map(|_| None).collect(),
            code_lo: u32::MAX,
            code_hi: 0,
            code_version: 0,
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// The code-invalidation generation: incremented whenever a store
    /// clears predecoded words. Structures derived from decoded code
    /// (translated superblocks) are stale once this moves.
    #[inline]
    pub fn code_version(&self) -> u64 {
        self.code_version
    }

    #[inline]
    fn check(&self, addr: u32, len: u32) -> Result<usize, MachineError> {
        let end = addr as u64 + len as u64;
        if end <= self.bytes.len() as u64 {
            Ok(addr as usize)
        } else {
            Err(MachineError::OutOfBounds { addr, len })
        }
    }

    /// Reads a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if any touched byte is outside
    /// memory.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> Result<u32, MachineError> {
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(
            self.bytes[i..i + 4].try_into().expect("4-byte slice"),
        ))
    }

    /// Writes a little-endian word, invalidating any cached decodes it
    /// touches.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if any touched byte is outside
    /// memory.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MachineError> {
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.maybe_invalidate(addr, 4);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if `addr` is outside memory.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> Result<u8, MachineError> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Writes one byte, invalidating the containing decode-cache word.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if `addr` is outside memory.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MachineError> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = value;
        self.maybe_invalidate(addr, 1);
        Ok(())
    }

    /// Copies a byte slice into memory.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if the range does not fit.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), MachineError> {
        let i = self.check(addr, data.len() as u32)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        self.maybe_invalidate(addr, data.len() as u32);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if the range does not fit.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MachineError> {
        let i = self.check(addr, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Declares `[addr, addr + len)` executable: allocates its predecode
    /// pages up front and predecodes every currently valid word, so the
    /// first execution of freshly loaded code never takes the decode slow
    /// path. Words that do not decode are left unmemoized (the error
    /// surfaces if they are ever fetched). Out-of-range portions are
    /// ignored — execution there fails bounds checks anyway.
    ///
    /// Registration is optional: fetching from an unregistered address
    /// allocates and fills its page on demand.
    pub fn register_code_region(&mut self, addr: u32, len: u32) {
        if len == 0 {
            return;
        }
        let end = (addr as u64 + len as u64).min(self.bytes.len() as u64) as u32;
        if addr >= end {
            return;
        }
        let mut word = addr & !3;
        self.ensure_pages(addr, end);
        while word < end {
            let slot = self.read_u32(word).ok().and_then(|w| decode(w).ok());
            let page = self.pages[(word >> PAGE_SHIFT) as usize]
                .as_deref_mut()
                .expect("page allocated by ensure_pages");
            page[(word as usize >> 2) & (PAGE_WORDS - 1)] = slot;
            word += 4;
        }
    }

    /// Allocates every predecode page overlapping `[lo, hi)` and extends
    /// the executable-range bounds to cover them.
    fn ensure_pages(&mut self, lo: u32, hi: u32) {
        let first = (lo >> PAGE_SHIFT) as usize;
        let last = ((hi - 1) >> PAGE_SHIFT) as usize;
        for idx in first..=last.min(self.pages.len().saturating_sub(1)) {
            if self.pages[idx].is_none() {
                self.pages[idx] = Some(Box::new([None; PAGE_WORDS]));
            }
        }
        self.code_lo = self.code_lo.min((first as u32) << PAGE_SHIFT);
        self.code_hi = self.code_hi.max(((last as u32) + 1) << PAGE_SHIFT);
    }

    /// The predecoded instruction at `pc`, if `pc` is aligned, in bounds,
    /// and its word has been decoded since it was last written. This is
    /// the fused run loop's fast path: two loads and two masks, no error
    /// construction.
    #[inline(always)]
    pub(crate) fn fetch_predecoded(&self, pc: u32) -> Option<Instr> {
        if pc & 3 != 0 {
            return None;
        }
        let page = self.pages.get((pc >> PAGE_SHIFT) as usize)?.as_deref()?;
        page[(pc as usize >> 2) & (PAGE_WORDS - 1)]
    }

    /// Fetches and decodes the instruction at `pc`, memoizing the decode.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::UnalignedPc`] for a misaligned `pc`,
    /// [`MachineError::OutOfBounds`] for a `pc` outside memory, and
    /// [`MachineError::Decode`] for invalid machine words.
    #[inline]
    pub fn fetch(&mut self, pc: u32) -> Result<Instr, MachineError> {
        if let Some(instr) = self.fetch_predecoded(pc) {
            return Ok(instr);
        }
        self.fetch_slow(pc)
    }

    /// Decode-miss path: validates `pc`, decodes the word, and memoizes
    /// it in its (possibly freshly allocated) code page.
    fn fetch_slow(&mut self, pc: u32) -> Result<Instr, MachineError> {
        if !pc.is_multiple_of(4) {
            return Err(MachineError::UnalignedPc { pc });
        }
        let word = self.read_u32(pc)?;
        let instr = decode(word).map_err(|source| MachineError::Decode { pc, source })?;
        self.ensure_pages(pc, pc + 4);
        let page = self.pages[(pc >> PAGE_SHIFT) as usize]
            .as_deref_mut()
            .expect("page allocated by ensure_pages");
        page[(pc as usize >> 2) & (PAGE_WORDS - 1)] = Some(instr);
        Ok(instr)
    }

    /// Store-side invalidation gate: one range compare against the union
    /// of allocated code pages. Decoded slots can only exist inside
    /// `[code_lo, code_hi)`, so stores outside it — the overwhelming
    /// majority — skip the word walk entirely.
    #[inline]
    fn maybe_invalidate(&mut self, addr: u32, len: u32) {
        if addr < self.code_hi && addr.wrapping_add(len) > self.code_lo {
            self.invalidate(addr, len);
        }
    }

    fn invalidate(&mut self, addr: u32, len: u32) {
        if len == 0 {
            // A zero-length write touches nothing; without this guard the
            // last-word computation below underflows for `addr == 0`.
            return;
        }
        self.code_version += 1;
        let first = addr >> 2;
        let last = (addr + len - 1) >> 2;
        for word in first..=last {
            if let Some(Some(page)) = self.pages.get_mut((word >> (PAGE_SHIFT - 2)) as usize) {
                page[(word as usize) & (PAGE_WORDS - 1)] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_isa::{encode, Reg};

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0xDEADBEEF).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0xDEADBEEF);
        m.write_u8(5, 0xAB).unwrap();
        assert_eq!(m.read_u8(5).unwrap(), 0xAB);
        // Little-endian layout.
        assert_eq!(m.read_u8(0).unwrap(), 0xEF);
    }

    #[test]
    fn unaligned_word_access_is_supported() {
        let mut m = Memory::new(64);
        m.write_u32(3, 0x01020304).unwrap();
        assert_eq!(m.read_u32(3).unwrap(), 0x01020304);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut m = Memory::new(16);
        assert_eq!(
            m.read_u32(13),
            Err(MachineError::OutOfBounds { addr: 13, len: 4 })
        );
        assert_eq!(
            m.read_u32(16),
            Err(MachineError::OutOfBounds { addr: 16, len: 4 })
        );
        assert_eq!(
            m.write_u8(16, 0),
            Err(MachineError::OutOfBounds { addr: 16, len: 1 })
        );
        assert!(m.read_u32(12).is_ok());
    }

    #[test]
    fn fetch_decodes_and_caches() {
        let mut m = Memory::new(64);
        let nop = encode(&Instr::Nop);
        m.write_u32(8, nop).unwrap();
        assert_eq!(m.fetch(8).unwrap(), Instr::Nop);
        // Second fetch comes from the predecode page.
        assert_eq!(m.fetch_predecoded(8), Some(Instr::Nop));
        assert_eq!(m.fetch(8).unwrap(), Instr::Nop);
    }

    #[test]
    fn store_invalidates_decode_cache() {
        let mut m = Memory::new(64);
        m.write_u32(8, encode(&Instr::Nop)).unwrap();
        assert_eq!(m.fetch(8).unwrap(), Instr::Nop);
        m.write_u32(8, encode(&Instr::Halt)).unwrap();
        assert_eq!(m.fetch(8).unwrap(), Instr::Halt, "stale decode after store");
    }

    #[test]
    fn byte_store_invalidates_containing_word() {
        let mut m = Memory::new(64);
        m.write_u32(8, encode(&Instr::Push { rs: Reg::R1 }))
            .unwrap();
        m.fetch(8).unwrap();
        // Rewrite the opcode byte (little-endian: opcode is byte 3).
        m.write_u8(11, 0x51).unwrap(); // HALT opcode
        assert_eq!(m.fetch(8).unwrap(), Instr::Halt);
    }

    #[test]
    fn unaligned_pc_rejected() {
        let mut m = Memory::new(64);
        assert_eq!(m.fetch(2), Err(MachineError::UnalignedPc { pc: 2 }));
    }

    #[test]
    fn invalid_word_reports_decode_error() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0xFF00_0000).unwrap();
        match m.fetch(0) {
            Err(MachineError::Decode { pc: 0, .. }) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_write_is_a_noop() {
        // Regression: `write_bytes` with an empty slice used to compute
        // `addr + len - 1` with `len == 0`, underflowing (a debug-build
        // panic) once the write range overlapped the code region.
        let mut m = Memory::new(64);
        m.write_u32(0, encode(&Instr::Nop)).unwrap();
        m.fetch(0).unwrap(); // allocate the page so the range compare passes
        m.write_bytes(0, &[]).unwrap();
        m.write_bytes(4, &[]).unwrap();
        assert_eq!(
            m.fetch(0).unwrap(),
            Instr::Nop,
            "empty write must not invalidate"
        );
        // Out-of-bounds starting address with zero length is still in
        // bounds (it touches nothing at the very end of memory).
        assert!(m.write_bytes(64, &[]).is_ok());
        assert_eq!(
            m.write_bytes(65, &[]),
            Err(MachineError::OutOfBounds { addr: 65, len: 0 })
        );
    }

    #[test]
    fn register_code_region_predecodes() {
        let mut m = Memory::new(8192);
        m.write_u32(4096, encode(&Instr::Nop)).unwrap();
        m.write_u32(4100, encode(&Instr::Halt)).unwrap();
        m.register_code_region(4096, 8);
        assert_eq!(m.fetch_predecoded(4096), Some(Instr::Nop));
        assert_eq!(m.fetch_predecoded(4100), Some(Instr::Halt));
        // Stores into a registered region are picked up.
        m.write_u32(4096, encode(&Instr::Halt)).unwrap();
        assert_eq!(m.fetch_predecoded(4096), None);
        assert_eq!(m.fetch(4096).unwrap(), Instr::Halt);
    }

    #[test]
    fn register_code_region_tolerates_edges() {
        let mut m = Memory::new(64);
        m.register_code_region(0, 0); // empty
        m.register_code_region(60, 400); // clamped to memory size
        m.register_code_region(100, 50); // entirely out of range
        assert_eq!(m.fetch_predecoded(0), None);
    }

    #[test]
    fn store_on_code_lo_boundary_invalidates() {
        // Register a region whose page starts at 4096, so code_lo == 4096
        // exactly. A store landing on the first byte of the boundary must
        // invalidate; the word just below must not.
        let mut m = Memory::new(3 * 4096);
        m.write_u32(4096, encode(&Instr::Nop)).unwrap();
        m.register_code_region(4096, 4);
        assert_eq!(m.fetch_predecoded(4096), Some(Instr::Nop));
        let v0 = m.code_version();

        // One word below the boundary: outside every code page, no
        // invalidation, version unchanged.
        m.write_u32(4092, 0xFFFF_FFFF).unwrap();
        assert_eq!(m.code_version(), v0, "store below code_lo must be free");
        assert_eq!(m.fetch_predecoded(4096), Some(Instr::Nop));

        // Exactly on code_lo: must clear the decoded slot and bump the
        // generation.
        m.write_u32(4096, encode(&Instr::Halt)).unwrap();
        assert!(m.code_version() > v0, "store at code_lo must invalidate");
        assert_eq!(m.fetch_predecoded(4096), None);
        assert_eq!(m.fetch(4096).unwrap(), Instr::Halt);
    }

    #[test]
    fn store_on_code_hi_boundary_is_outside() {
        // code_hi is exclusive: with one registered page [4096, 8192), a
        // store at 8192 is entirely outside and must not invalidate, while
        // a store at 8188 (last word of the page) must.
        let mut m = Memory::new(3 * 4096);
        m.write_u32(8188, encode(&Instr::Nop)).unwrap();
        m.register_code_region(4096, 4096);
        assert_eq!(m.fetch_predecoded(8188), Some(Instr::Nop));
        let v0 = m.code_version();

        m.write_u32(8192, 0xFFFF_FFFF).unwrap();
        assert_eq!(m.code_version(), v0, "store at code_hi must be free");
        assert_eq!(m.fetch_predecoded(8188), Some(Instr::Nop));

        m.write_u32(8188, encode(&Instr::Halt)).unwrap();
        assert!(m.code_version() > v0);
        assert_eq!(m.fetch_predecoded(8188), None);
    }

    #[test]
    fn straddling_stores_invalidate_across_boundaries() {
        // An unaligned word store straddling code_lo (bytes 4094..4098)
        // touches the first code word and must invalidate it.
        let mut m = Memory::new(3 * 4096);
        m.write_u32(4096, encode(&Instr::Nop)).unwrap();
        m.register_code_region(4096, 4);
        m.write_u32(4094, 0x1234_5678).unwrap();
        assert_eq!(
            m.fetch_predecoded(4096),
            None,
            "store straddling code_lo must invalidate the first code word"
        );

        // And one straddling code_hi from inside (bytes 8190..8194)
        // touches the last code word of the page.
        let mut m = Memory::new(3 * 4096);
        m.write_u32(8188, encode(&Instr::Nop)).unwrap();
        m.register_code_region(4096, 4096);
        m.write_u32(8190, 0x1234_5678).unwrap();
        assert_eq!(
            m.fetch_predecoded(8188),
            None,
            "store straddling code_hi must invalidate the last code word"
        );
    }

    #[test]
    fn cross_page_straddle_invalidates_both_pages() {
        // Two adjacent registered pages; a byte-span store crossing the
        // page boundary (4 bytes at 8190: bytes 8190..8194) must clear the
        // last word of page 1 and the first word of page 2.
        let mut m = Memory::new(3 * 4096);
        m.write_u32(8188, encode(&Instr::Nop)).unwrap();
        m.write_u32(8192, encode(&Instr::Halt)).unwrap();
        m.register_code_region(4096, 2 * 4096);
        assert_eq!(m.fetch_predecoded(8188), Some(Instr::Nop));
        assert_eq!(m.fetch_predecoded(8192), Some(Instr::Halt));
        let v0 = m.code_version();

        m.write_u32(8190, 0xAABB_CCDD).unwrap();
        assert_eq!(m.fetch_predecoded(8188), None, "tail of the lower page");
        assert_eq!(m.fetch_predecoded(8192), None, "head of the upper page");
        assert!(m.code_version() > v0);

        // An untouched word on each page survives.
        let mut m = Memory::new(3 * 4096);
        m.write_u32(4096, encode(&Instr::Nop)).unwrap();
        m.write_u32(8192, encode(&Instr::Nop)).unwrap();
        m.register_code_region(4096, 2 * 4096);
        m.write_bytes(8188, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(m.fetch_predecoded(4096), Some(Instr::Nop));
        assert_eq!(m.fetch_predecoded(8192), None);
    }

    #[test]
    fn code_version_tracks_only_real_invalidations() {
        let mut m = Memory::new(2 * 4096);
        assert_eq!(m.code_version(), 0);
        // No code pages yet: stores are free.
        m.write_u32(0, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.code_version(), 0);
        m.write_u32(0, encode(&Instr::Nop)).unwrap();
        m.fetch(0).unwrap(); // allocates the page
        let v1 = m.code_version();
        m.write_u8(1, 0x00).unwrap();
        assert!(m.code_version() > v1, "byte store into code invalidates");
        // Zero-length writes never bump the generation.
        let v2 = m.code_version();
        m.write_bytes(0, &[]).unwrap();
        assert_eq!(m.code_version(), v2);
        // Stores into the other, never-executed page are free.
        m.write_u32(4096, 7).unwrap();
        assert_eq!(m.code_version(), v2);
    }

    #[test]
    fn stores_outside_code_pages_skip_invalidation() {
        let mut m = Memory::new(2 * 4096);
        m.write_u32(0, encode(&Instr::Nop)).unwrap();
        m.fetch(0).unwrap();
        // A store in the other (never-executed) page must not disturb the
        // cached decode, and must be correct if that page later runs.
        m.write_u32(4096, encode(&Instr::Halt)).unwrap();
        assert_eq!(m.fetch_predecoded(0), Some(Instr::Nop));
        assert_eq!(m.fetch(4096).unwrap(), Instr::Halt);
        m.write_u32(4096, encode(&Instr::Nop)).unwrap();
        assert_eq!(
            m.fetch(4096).unwrap(),
            Instr::Nop,
            "post-fetch stores invalidate"
        );
    }
}
