use strata_isa::{decode, Instr};

use crate::machine::MachineError;

/// Flat, byte-addressed, little-endian guest memory with an integrated
/// decode cache.
///
/// The decode cache memoizes instruction decoding per word address and is
/// invalidated by every store that touches the word, so runtime code
/// generation (the SDT writing fragments, patching links, appending sieve
/// stanzas) is picked up immediately — the moral equivalent of an
/// instruction-cache flush after code modification.
#[derive(Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    decoded: Vec<Option<Instr>>,
}

impl Memory {
    /// Creates a zero-initialized memory of `size` bytes (rounded up to a
    /// multiple of 4).
    pub fn new(size: u32) -> Memory {
        let size = (size as usize).next_multiple_of(4);
        Memory { bytes: vec![0; size], decoded: vec![None; size / 4] }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    #[inline]
    fn check(&self, addr: u32, len: u32) -> Result<usize, MachineError> {
        let end = addr as u64 + len as u64;
        if end <= self.bytes.len() as u64 {
            Ok(addr as usize)
        } else {
            Err(MachineError::OutOfBounds { addr, len })
        }
    }

    /// Reads a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if any touched byte is outside
    /// memory.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> Result<u32, MachineError> {
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(self.bytes[i..i + 4].try_into().expect("4-byte slice")))
    }

    /// Writes a little-endian word, invalidating any cached decodes it
    /// touches.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if any touched byte is outside
    /// memory.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MachineError> {
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.invalidate(addr, 4);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if `addr` is outside memory.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> Result<u8, MachineError> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Writes one byte, invalidating the containing decode-cache word.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if `addr` is outside memory.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MachineError> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = value;
        self.invalidate(addr, 1);
        Ok(())
    }

    /// Copies a byte slice into memory.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if the range does not fit.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), MachineError> {
        let i = self.check(addr, data.len() as u32)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        self.invalidate(addr, data.len() as u32);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfBounds`] if the range does not fit.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MachineError> {
        let i = self.check(addr, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Fetches and decodes the instruction at `pc`, memoizing the decode.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::UnalignedPc`] for a misaligned `pc`,
    /// [`MachineError::OutOfBounds`] for a `pc` outside memory, and
    /// [`MachineError::Decode`] for invalid machine words.
    #[inline]
    pub fn fetch(&mut self, pc: u32) -> Result<Instr, MachineError> {
        if !pc.is_multiple_of(4) {
            return Err(MachineError::UnalignedPc { pc });
        }
        let slot = (pc / 4) as usize;
        if let Some(Some(instr)) = self.decoded.get(slot) {
            return Ok(*instr);
        }
        let word = self.read_u32(pc)?;
        let instr = decode(word).map_err(|source| MachineError::Decode { pc, source })?;
        self.decoded[slot] = Some(instr);
        Ok(instr)
    }

    #[inline]
    fn invalidate(&mut self, addr: u32, len: u32) {
        let first = (addr / 4) as usize;
        let last = ((addr + len - 1) / 4) as usize;
        for slot in first..=last.min(self.decoded.len().saturating_sub(1)) {
            self.decoded[slot] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_isa::{encode, Reg};

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0xDEADBEEF).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0xDEADBEEF);
        m.write_u8(5, 0xAB).unwrap();
        assert_eq!(m.read_u8(5).unwrap(), 0xAB);
        // Little-endian layout.
        assert_eq!(m.read_u8(0).unwrap(), 0xEF);
    }

    #[test]
    fn unaligned_word_access_is_supported() {
        let mut m = Memory::new(64);
        m.write_u32(3, 0x01020304).unwrap();
        assert_eq!(m.read_u32(3).unwrap(), 0x01020304);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut m = Memory::new(16);
        assert_eq!(m.read_u32(13), Err(MachineError::OutOfBounds { addr: 13, len: 4 }));
        assert_eq!(m.read_u32(16), Err(MachineError::OutOfBounds { addr: 16, len: 4 }));
        assert_eq!(
            m.write_u8(16, 0),
            Err(MachineError::OutOfBounds { addr: 16, len: 1 })
        );
        assert!(m.read_u32(12).is_ok());
    }

    #[test]
    fn fetch_decodes_and_caches() {
        let mut m = Memory::new(64);
        let nop = encode(&Instr::Nop);
        m.write_u32(8, nop).unwrap();
        assert_eq!(m.fetch(8).unwrap(), Instr::Nop);
        // Second fetch comes from the cache.
        assert_eq!(m.fetch(8).unwrap(), Instr::Nop);
    }

    #[test]
    fn store_invalidates_decode_cache() {
        let mut m = Memory::new(64);
        m.write_u32(8, encode(&Instr::Nop)).unwrap();
        assert_eq!(m.fetch(8).unwrap(), Instr::Nop);
        m.write_u32(8, encode(&Instr::Halt)).unwrap();
        assert_eq!(m.fetch(8).unwrap(), Instr::Halt, "stale decode after store");
    }

    #[test]
    fn byte_store_invalidates_containing_word() {
        let mut m = Memory::new(64);
        m.write_u32(8, encode(&Instr::Push { rs: Reg::R1 })).unwrap();
        m.fetch(8).unwrap();
        // Rewrite the opcode byte (little-endian: opcode is byte 3).
        m.write_u8(11, 0x51).unwrap(); // HALT opcode
        assert_eq!(m.fetch(8).unwrap(), Instr::Halt);
    }

    #[test]
    fn unaligned_pc_rejected() {
        let mut m = Memory::new(64);
        assert_eq!(m.fetch(2), Err(MachineError::UnalignedPc { pc: 2 }));
    }

    #[test]
    fn invalid_word_reports_decode_error() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0xFF00_0000).unwrap();
        match m.fetch(0) {
            Err(MachineError::Decode { pc: 0, .. }) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }
}
