//! Golden snapshot of the JSON report shapes `strata verify` emits.
//!
//! Downstream tooling (CI scrapers, the fleet dashboards) keys on the
//! report layout, so the shape is versioned: `schema_version` must be
//! bumped whenever a key is added, removed, or renamed, and this test
//! pins the full rendered JSON — both the static `VerifyReport` and the
//! `--validate-tiers` `TierReport` — for one deterministic run so any
//! drift is a visible diff, not a silent breakage.
//!
//! To refresh after an *intentional* shape change (bump `SCHEMA_VERSION`
//! in `crates/analysis/src/diag.rs` first):
//!
//! ```text
//! STRATA_UPDATE_GOLDEN=1 cargo test -p strata-analysis --test verify_json_golden
//! ```
//!
//! then commit the updated files under `tests/golden/`.

use std::path::PathBuf;

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{Sdt, SdtConfig};
use strata_machine::{layout, ExecTier, Machine, NullObserver, Program, TierConfig};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("STRATA_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with STRATA_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "verify JSON shape drifted from {} — if intentional, bump SCHEMA_VERSION \
         and regenerate with STRATA_UPDATE_GOLDEN=1",
        path.display()
    );
}

/// A small deterministic program with an indirect call, an indirect
/// jump, and returns, so the verified cache holds dispatch code of
/// every class.
const PROGRAM: &str = "\
main:
    call f
    li r9, f
    callr r9
    li r9, done
    jr r9
done:
    li r5, 3
    trap 0x1
    halt
f:
    addi r4, r4, 1
    ret
";

#[test]
fn verify_report_json_shape_is_pinned() {
    let code = assemble(layout::APP_BASE, PROGRAM).expect("program assembles");
    let program = Program::new("verify-golden", code, Vec::new());
    let mut sdt = Sdt::new(SdtConfig::ibtc_inline(256), &program).expect("sdt constructs");
    sdt.run(ArchProfile::x86_like(), 1_000_000)
        .expect("run completes");
    let report = strata_analysis::verify(&sdt);
    assert!(report.is_clean(), "golden run must verify clean");
    let mut json = report.to_json().render_pretty();
    json.push('\n');
    assert!(
        json.contains("\"schema_version\""),
        "report JSON must carry schema_version"
    );
    assert_golden("verify_report.json", &json);
}

#[test]
fn tier_report_json_shape_is_pinned() {
    // A hot counted loop so the threaded tier translates a superblock
    // (including a fused cmp+branch) before the validator runs.
    let src = "\
main:
    li r1, 64
loop:
    addi r1, r1, -1
    addi r2, r2, 3
    cmpi r1, 0
    bne loop
    halt
";
    let code = assemble(layout::APP_BASE, src).expect("program assembles");
    let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
    Program::new("tier-golden", code, Vec::new())
        .load(&mut m)
        .expect("program loads");
    m.set_tier(ExecTier::Threaded(TierConfig {
        threshold: 1,
        ..TierConfig::default()
    }));
    m.run(&mut NullObserver, 10_000).expect("run halts");
    let report = strata_analysis::validate_machine_tier(&m);
    assert!(report.blocks > 0, "loop must translate");
    assert!(report.is_clean(), "golden run must validate clean");
    let mut json = report.to_json().render_pretty();
    json.push('\n');
    assert_golden("tier_report.json", &json);
}
