//! The dataflow core: a forward abstract interpretation over every word
//! of the occupied fragment cache.
//!
//! The abstract state tracks exactly the invariants the emitted dispatch
//! code is supposed to maintain around application code:
//!
//! - **where the application's flags live** (still in the machine, pushed
//!   on the stack, held in a scratch register, or parked in `SLOT_FLAGS`),
//! - **what overhead code has pushed** on the application stack (flags
//!   words, lookup-routine return addresses) and that it unwinds them,
//! - **scratch-register discipline**: `r1`–`r3` may only be written after
//!   the spill prologue saved them, every other register only by the
//!   context-switch restore sequence,
//! - **value provenance** for the handful of values that matter: table
//!   pointers built from hashed branch targets, table loads, the flags
//!   word, and the constants that feed `SLOT_JUMP_TARGET`,
//! - **exit integrity**: every way out of overhead code lands on a
//!   translated fragment entry, a registered miss path, or a translator
//!   trap, with the right context for each.
//!
//! Application-origin words are walked for reachability only — the
//! application may do anything to its own state. The interesting edges
//! are the boundaries: leaving app code injects the "full application
//! context" state; re-entering app code asserts it has been restored.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use strata_core::protocol::{
    reg_slot, SLOT_FLAGS, SLOT_JUMP_TARGET, SLOT_R1, SLOT_R2, SLOT_R3, SLOT_RESUME, SLOT_SHADOW_SP,
    SLOT_SITE, SLOT_TARGET, TRAP_MISS, TRAP_RC_MISS,
};
use strata_core::{FlagsPolicy, FragKind, Origin, TableKind};
use strata_isa::{Instr, Reg};
use strata_machine::syscall::SDT_TRAP_BASE;

use crate::cfg::Labels;
use crate::diag::{Diagnostic, Lint};
use crate::image::CacheImage;

/// Where the application's flags value currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlagsLoc {
    /// Still in the machine's flags register (live, clobberable).
    Live,
    /// Pushed on the application stack by `pushf`.
    OnStack,
    /// Popped into a scratch register.
    InReg,
    /// Stored to `SLOT_FLAGS` for the runtime.
    InSlot,
}

/// What a word pushed by overhead code on the application stack is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    /// A flags word from `pushf`.
    Flags,
    /// A lookup-routine return address pushed by `call`.
    CallerRet,
}

/// Whether a scratch register still holds the live application value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scratch {
    /// Unsaved application value — writing it loses application state.
    AppLive,
    /// Spilled to its save slot — free for dispatch use.
    Saved,
}

/// Provenance of a register value, tracked only as far as the checks need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Unknown,
    /// A known constant (from `lui`/`ori` materialization).
    Const(u32),
    /// The application flags word (loaded from `SLOT_FLAGS` or popped).
    FlagsWord,
    /// A branch-target hash index in construction (`srli 2` chain).
    HashIdx,
    /// The shadow-stack cursor (loaded from `SLOT_SHADOW_SP`).
    ShadowOff,
    /// `table base + scaled index`.
    TablePtr(u32),
    /// A word loaded from offset `off` of the table based at `base`.
    TableVal(u32, i16),
}

/// What was last stored to `SLOT_JUMP_TARGET`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JumpSlot {
    Unset,
    /// A fragment entry (tagged-table hit, shadow hit, or patched
    /// constant) — `jmem` through it re-enters application code.
    FragEntry,
    /// A sieve bucket head from the table based at the given address —
    /// `jmem` through it continues dispatch in a stanza chain.
    SieveEntry(u32),
}

/// Bit for register `i` in the bulk save/restore bitmaps.
fn bulk_bit(i: usize) -> u16 {
    1 << i
}

/// All registers the context switch must save: `r0`, `r4`–`r15`
/// (`r1`–`r3` travel through their own slots).
const BULK_MASK: u16 = 0xFFF1;

#[derive(Debug, Clone, PartialEq)]
struct State {
    flags: FlagsLoc,
    tokens: Vec<Token>,
    scratch: [Scratch; 3],
    vals: [Value; 16],
    bulk_saved: u16,
    bulk_restored: u16,
    target_stored: bool,
    site_stored: bool,
    jump_slot: JumpSlot,
}

impl State {
    /// The full application context: what holds at every fragment entry.
    fn boundary() -> State {
        State {
            flags: FlagsLoc::Live,
            tokens: Vec::new(),
            scratch: [Scratch::AppLive; 3],
            vals: [Value::Unknown; 16],
            bulk_saved: 0,
            bulk_restored: 0,
            target_stored: false,
            site_stored: false,
            jump_slot: JumpSlot::Unset,
        }
    }

    /// Dispatch state right after the spill prologue (and `pushf` under
    /// [`FlagsPolicy::Always`]).
    fn dispatch(always: bool) -> State {
        State {
            flags: if always {
                FlagsLoc::OnStack
            } else {
                FlagsLoc::Live
            },
            tokens: if always {
                vec![Token::Flags]
            } else {
                Vec::new()
            },
            scratch: [Scratch::Saved; 3],
            ..State::boundary()
        }
    }

    fn all_saved(&self) -> bool {
        self.scratch.iter().all(|&s| s == Scratch::Saved)
    }

    fn all_app_live(&self) -> bool {
        self.scratch.iter().all(|&s| s == Scratch::AppLive)
    }
}

/// Everything the traversal learned, handed to the audit pass.
pub struct DataflowResult {
    pub diagnostics: Vec<Diagnostic>,
    /// Every word any path reaches (app and overhead alike).
    pub visited: BTreeSet<u32>,
    /// Discovered control-flow edges.
    pub edges: BTreeSet<(u32, u32)>,
    /// Root addresses the traversal started from.
    pub seeds: Vec<u32>,
}

pub fn run(img: &CacheImage, labels: &Labels) -> DataflowResult {
    Engine::new(img, labels).run()
}

struct Engine<'a> {
    img: &'a CacheImage,
    labels: &'a Labels,
    always: bool,
    /// Fragment entries by address (`Body` entries re-enter app context).
    body_entries: HashSet<u32>,
    table_kinds: HashMap<u32, TableKind>,
    shadow_base: Option<u32>,
    in_states: HashMap<u32, State>,
    visited: BTreeSet<u32>,
    edges: BTreeSet<(u32, u32)>,
    worklist: VecDeque<u32>,
    queued: HashSet<u32>,
    diags: Vec<Diagnostic>,
    reported: HashSet<(Lint, u32)>,
    seeds: Vec<u32>,
}

impl<'a> Engine<'a> {
    fn new(img: &'a CacheImage, labels: &'a Labels) -> Engine<'a> {
        let body_entries = img
            .meta
            .fragments
            .iter()
            .filter(|f| f.kind == FragKind::Body)
            .map(|f| f.entry)
            .collect();
        let table_kinds = img
            .meta
            .all_tables()
            .iter()
            .map(|t| (t.base, t.kind))
            .collect();
        Engine {
            img,
            labels,
            always: img.flags == FlagsPolicy::Always,
            body_entries,
            table_kinds,
            shadow_base: img.meta.shadow.map(|(base, _)| base),
            in_states: HashMap::new(),
            visited: BTreeSet::new(),
            edges: BTreeSet::new(),
            worklist: VecDeque::new(),
            queued: HashSet::new(),
            diags: Vec::new(),
            reported: HashSet::new(),
            seeds: Vec::new(),
        }
    }

    fn run(mut self) -> DataflowResult {
        self.seed();
        while let Some(addr) = self.worklist.pop_front() {
            self.queued.remove(&addr);
            self.visited.insert(addr);
            let Some(line) = self.img.line_at(addr) else {
                continue;
            };
            let line = *line;
            let Some(instr) = line.instr else {
                // The audit pass reports undecodable words; nothing to
                // interpret and no successors to follow.
                continue;
            };
            if line.origin == Origin::App {
                self.step_app(addr, instr);
            } else if let Some(state) = self.in_states.get(&addr).cloned() {
                self.step_overhead(addr, instr, line.origin, state);
            }
        }
        DataflowResult {
            diagnostics: self.diags,
            visited: self.visited,
            edges: self.edges,
            seeds: self.seeds,
        }
    }

    fn add_seed(&mut self, addr: u32, mut s: State) {
        // Under FlagsPolicy::None the emitted code carries no flags
        // anywhere; collapse the seed conventions so merged stubs (e.g.
        // the unified miss tail) join cleanly.
        if !self.always {
            s.flags = FlagsLoc::Live;
            s.tokens.retain(|&t| t != Token::Flags);
        }
        self.seeds.push(addr);
        self.join(addr, s);
    }

    fn seed(&mut self) {
        let m = self.img.meta.clone();
        let always = self.always;
        // Runtime-entered stubs (the interpreter sets pc here directly).
        let restore_entry = State {
            flags: FlagsLoc::InSlot,
            scratch: [Scratch::Saved; 3],
            ..State::boundary()
        };
        self.add_seed(m.stubs.restore, restore_entry);
        self.add_seed(m.stubs.rc_restore, State::dispatch(always));
        // Miss paths (also reached by emitted jumps; seeding checks them
        // even in configurations that never emit a caller).
        let stack_tail = State {
            site_stored: true,
            ..State::dispatch(always)
        };
        self.add_seed(m.stubs.miss_tail_stack_flags, stack_tail);
        let reg_tail = State {
            flags: FlagsLoc::Live,
            tokens: Vec::new(),
            site_stored: true,
            ..State::dispatch(always)
        };
        self.add_seed(m.stubs.miss_tail_reg_flags, reg_tail);
        self.add_seed(m.stubs.shared_miss_glue, State::dispatch(always));
        self.add_seed(m.stubs.nofill_miss_glue, State::dispatch(always));
        self.add_seed(m.stubs.rc_miss, State::dispatch(always));
        for i in 0..m.binds.len() {
            if let Some(glue) = m.binds[i].glue {
                self.add_seed(glue, State::dispatch(always));
            }
        }
        // Fragment entries: bodies are entered in full application
        // context; return points are entered by return-cache transfers in
        // dispatch state.
        for f in &m.fragments {
            let s = match f.kind {
                FragKind::Body => State::boundary(),
                FragKind::ReturnPoint => State::dispatch(always),
            };
            self.add_seed(f.entry, s);
        }
    }

    fn diag(&mut self, lint: Lint, addr: u32, message: String) {
        if self.reported.insert((lint, addr)) {
            self.diags.push(Diagnostic {
                lint,
                addr,
                location: self.labels.locate(addr),
                message,
                excerpt: self.img.excerpt(addr, 2),
            });
        }
    }

    fn enqueue(&mut self, addr: u32) {
        if self.queued.insert(addr) {
            self.worklist.push_back(addr);
        }
    }

    /// Joins `incoming` into the recorded in-state at `addr`, enqueueing
    /// on change. Contradictory protocol facts (flags location, stack
    /// shape, scratch discipline) raise a warning and keep the first
    /// state, which guarantees termination.
    fn join(&mut self, addr: u32, incoming: State) {
        match self.in_states.get_mut(&addr) {
            None => {
                self.in_states.insert(addr, incoming);
                self.enqueue(addr);
            }
            Some(cur) => {
                let mut changed = false;
                let mut conflict = false;
                if cur.flags != incoming.flags {
                    conflict = true;
                }
                if cur.tokens != incoming.tokens {
                    conflict = true;
                }
                if cur.scratch != incoming.scratch {
                    conflict = true;
                }
                for (v, w) in cur.vals.iter_mut().zip(incoming.vals.iter()) {
                    if *v != *w && *v != Value::Unknown {
                        *v = Value::Unknown;
                        changed = true;
                    }
                }
                let merged_saved = cur.bulk_saved & incoming.bulk_saved;
                if merged_saved != cur.bulk_saved {
                    cur.bulk_saved = merged_saved;
                    changed = true;
                }
                let merged_restored = cur.bulk_restored & incoming.bulk_restored;
                if merged_restored != cur.bulk_restored {
                    cur.bulk_restored = merged_restored;
                    changed = true;
                }
                if cur.target_stored && !incoming.target_stored {
                    cur.target_stored = false;
                    changed = true;
                }
                if cur.site_stored && !incoming.site_stored {
                    cur.site_stored = false;
                    changed = true;
                }
                if cur.jump_slot != incoming.jump_slot && cur.jump_slot != JumpSlot::Unset {
                    cur.jump_slot = JumpSlot::Unset;
                    changed = true;
                }
                if changed {
                    self.enqueue(addr);
                }
                if conflict {
                    self.diag(
                        Lint::InconsistentState,
                        addr,
                        "control-flow join merges incompatible dispatch states \
                         (flags location, stack shape, or scratch discipline differ)"
                            .into(),
                    );
                }
            }
        }
    }

    /// Asserts the full application context before control re-enters
    /// application code.
    fn check_app_entry(&mut self, at: u32, s: &State) {
        if self.always && s.flags != FlagsLoc::Live {
            self.diag(
                Lint::BadAppEntry,
                at,
                format!(
                    "re-enters application code with flags {:?}, not restored",
                    s.flags
                ),
            );
        }
        if !s.tokens.is_empty() {
            self.diag(
                Lint::BadAppEntry,
                at,
                format!(
                    "re-enters application code with {} overhead word(s) left on the stack",
                    s.tokens.len()
                ),
            );
        }
        if !s.all_app_live() {
            self.diag(
                Lint::BadAppEntry,
                at,
                "re-enters application code without reloading r1-r3 from their save slots".into(),
            );
        }
    }

    /// Asserts the preserved-dispatch-context contract for transfers that
    /// continue dispatch elsewhere (sieve chains, return-cache jumps).
    fn check_dispatch_transfer(&mut self, at: u32, s: &State, what: &str) {
        if !s.all_saved() {
            self.diag(
                Lint::IndirectExitIntegrity,
                at,
                format!("{what} with r1-r3 not spilled"),
            );
        }
        if self.always && (s.flags != FlagsLoc::OnStack || s.tokens != vec![Token::Flags]) {
            self.diag(
                Lint::IndirectExitIntegrity,
                at,
                format!("{what} without the flags word on the stack"),
            );
        }
        if !self.always && !s.tokens.is_empty() {
            self.diag(
                Lint::IndirectExitIntegrity,
                at,
                format!("{what} with overhead words left on the stack"),
            );
        }
    }

    /// Records the edge `from -> to` and delivers the right state.
    fn flow(&mut self, from: u32, from_app: bool, to: u32, state: Option<&State>) {
        self.edges.insert((from, to));
        let Some(target) = self.img.line_at(to) else {
            self.diag(
                Lint::IndirectExitIntegrity,
                from,
                format!("branch to {to:#010x}, outside the occupied cache"),
            );
            return;
        };
        let to_app = target.origin == Origin::App;
        let to_body_entry = self.body_entries.contains(&to);
        if !from_app && (to_app || to_body_entry) {
            if let Some(s) = state {
                self.check_app_entry(from, s);
            }
        }
        if to_app {
            if !self.visited.contains(&to) {
                self.enqueue(to);
            }
        } else if to_body_entry || from_app {
            self.join(to, State::boundary());
        } else if let Some(s) = state {
            self.join(to, s.clone());
        }
    }

    /// Walks one application-origin word: reachability plus the few
    /// checks that apply to application code living in the cache.
    fn step_app(&mut self, addr: u32, instr: Instr) {
        match instr {
            Instr::Jmp { target } => self.flow(addr, true, target, None),
            Instr::Beq { .. }
            | Instr::Bne { .. }
            | Instr::Blt { .. }
            | Instr::Bge { .. }
            | Instr::Bltu { .. }
            | Instr::Bgeu { .. } => {
                if let Some(t) = instr.static_target(addr) {
                    self.flow(addr, true, t, None);
                }
                self.flow(addr, true, addr + 4, None);
            }
            Instr::Call { target } => {
                if !self.img.fastret {
                    self.diag(
                        Lint::IndirectExitIntegrity,
                        addr,
                        "untranslated direct call in the cache (translated return address \
                         would be pushed, but fast-return is off)"
                            .into(),
                    );
                }
                self.flow(addr, true, target, None);
                self.flow(addr, true, addr + 4, None);
            }
            Instr::Ret => {
                if !self.img.fastret {
                    self.diag(
                        Lint::IndirectExitIntegrity,
                        addr,
                        "untranslated return in the cache (only fast-return leaves returns \
                         in place)"
                            .into(),
                    );
                }
            }
            Instr::Jr { .. } | Instr::Callr { .. } | Instr::Jmem { .. } => {
                self.diag(
                    Lint::IndirectExitIntegrity,
                    addr,
                    "untranslated indirect branch in the cache escapes dispatch".into(),
                );
            }
            Instr::Trap { code } => {
                if code >= SDT_TRAP_BASE {
                    self.diag(
                        Lint::ProtocolViolation,
                        addr,
                        format!("application-origin trap {code:#x} in the translator's range"),
                    );
                }
                self.flow(addr, true, addr + 4, None);
            }
            Instr::Halt => {}
            _ => self.flow(addr, true, addr + 4, None),
        }
    }

    /// Interprets one overhead word against the abstract state.
    fn step_overhead(&mut self, addr: u32, instr: Instr, origin: Origin, mut s: State) {
        let val = |s: &State, r: Reg| s.vals[r.index()];

        // Scratch and bulk register discipline.
        if let Some(rd) = instr.dest_reg() {
            let i = rd.index();
            if (1..=3).contains(&i) {
                if s.scratch[i - 1] == Scratch::AppLive {
                    self.diag(
                        Lint::ScratchClobber,
                        addr,
                        format!("writes r{i} before the spill prologue saved it"),
                    );
                }
            } else {
                let legit_restore =
                    matches!(instr, Instr::Lwa { addr: a, .. } if a == reg_slot(i as u32));
                if !legit_restore {
                    self.diag(
                        Lint::BulkClobber,
                        addr,
                        format!("overhead code writes r{i}, which dispatch never owns"),
                    );
                }
            }
        }
        // Flags liveness: only `popf` may touch live flags, and only via
        // its own token check below.
        if self.always
            && instr.writes_flags()
            && !matches!(instr, Instr::Popf)
            && s.flags == FlagsLoc::Live
        {
            self.diag(
                Lint::FlagsClobber,
                addr,
                "clobbers live application flags before any save".into(),
            );
        }

        match instr {
            Instr::Lui { rd, imm } => {
                s.vals[rd.index()] = Value::Const((imm as u32) << 16);
            }
            Instr::Ori { rd, rs1, imm } => {
                s.vals[rd.index()] = match val(&s, rs1) {
                    Value::Const(c) if rd == rs1 => Value::Const(c | imm as u32),
                    _ => Value::Unknown,
                };
            }
            Instr::Srli { rd, shamt, .. } => {
                s.vals[rd.index()] = if shamt == 2 {
                    Value::HashIdx
                } else {
                    Value::Unknown
                };
            }
            Instr::Andi { rd, rs1, .. } => {
                s.vals[rd.index()] = match val(&s, rs1) {
                    v @ (Value::HashIdx | Value::ShadowOff) => v,
                    _ => Value::Unknown,
                };
            }
            Instr::Slli { rd, rs1, .. } => {
                s.vals[rd.index()] = match val(&s, rs1) {
                    Value::HashIdx => Value::HashIdx,
                    _ => Value::Unknown,
                };
            }
            Instr::Addi { rd, rs1, imm } => {
                s.vals[rd.index()] = match val(&s, rs1) {
                    Value::ShadowOff => Value::ShadowOff,
                    Value::Const(c) => Value::Const(c.wrapping_add_signed(imm as i32)),
                    _ => Value::Unknown,
                };
            }
            Instr::Add { rd, rs1, rs2 } => {
                s.vals[rd.index()] = match (val(&s, rs1), val(&s, rs2)) {
                    (Value::HashIdx | Value::ShadowOff, Value::Const(b))
                    | (Value::Const(b), Value::HashIdx | Value::ShadowOff) => Value::TablePtr(b),
                    _ => Value::Unknown,
                };
            }
            Instr::Mov { rd, rs } => {
                s.vals[rd.index()] = val(&s, rs);
            }
            Instr::Lw { rd, rs1, off } => {
                s.vals[rd.index()] = match val(&s, rs1) {
                    Value::TablePtr(b) => Value::TableVal(b, off),
                    _ => Value::Unknown,
                };
            }
            Instr::Lwa { rd, addr: a } => {
                s.vals[rd.index()] = match a {
                    SLOT_SHADOW_SP => Value::ShadowOff,
                    SLOT_FLAGS => Value::FlagsWord,
                    _ => Value::Unknown,
                };
                match (rd.index(), a) {
                    (1, SLOT_R1) => s.scratch[0] = Scratch::AppLive,
                    (2, SLOT_R2) => s.scratch[1] = Scratch::AppLive,
                    (3, SLOT_R3) => s.scratch[2] = Scratch::AppLive,
                    (i, a) if a == reg_slot(i as u32) && !(1..=3).contains(&i) => {
                        s.bulk_restored |= bulk_bit(i);
                    }
                    _ => {}
                }
            }
            Instr::Swa { rs, addr: a } => self.do_swa(addr, rs, a, &mut s),
            Instr::Sw { rs1, off, .. } => {
                let (base, end) = self.img.meta.table_region;
                let target = match val(&s, rs1) {
                    Value::TablePtr(b) => Some(b),
                    Value::Const(c) => Some(c.wrapping_add_signed(off as i32)),
                    _ => None,
                };
                match target {
                    Some(t) if t >= base && t < end => {}
                    Some(t) => self.diag(
                        Lint::ProtocolViolation,
                        addr,
                        format!("overhead store to {t:#010x}, outside the table region"),
                    ),
                    None => self.diag(
                        Lint::ProtocolViolation,
                        addr,
                        "overhead store through an untracked pointer".into(),
                    ),
                }
            }
            Instr::Sb { .. } => {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "byte store in overhead code".into(),
                );
            }
            Instr::Push { rs } => {
                if origin == Origin::CallGlue {
                    // Call glue materializes the application's return
                    // address: an application-semantic push, not overhead
                    // the dispatch must unwind.
                } else if val(&s, rs) == Value::FlagsWord {
                    s.tokens.push(Token::Flags);
                    s.flags = FlagsLoc::OnStack;
                } else {
                    self.diag(
                        Lint::ProtocolViolation,
                        addr,
                        "overhead code pushes a non-flags value on the application stack".into(),
                    );
                }
            }
            Instr::Pushf => {
                s.tokens.push(Token::Flags);
                s.flags = FlagsLoc::OnStack;
            }
            Instr::Pop { rd } => match s.tokens.pop() {
                Some(Token::Flags) => {
                    s.vals[rd.index()] = Value::FlagsWord;
                    s.flags = FlagsLoc::InReg;
                }
                Some(Token::CallerRet) => s.vals[rd.index()] = Value::Unknown,
                // Nothing overhead-pushed: an application-semantic pop
                // (the popped-return prologue taking the return address).
                None => s.vals[rd.index()] = Value::Unknown,
            },
            Instr::Popf => {
                if s.tokens.last() == Some(&Token::Flags) {
                    s.tokens.pop();
                    s.flags = FlagsLoc::Live;
                } else {
                    self.diag(
                        Lint::BadPopf,
                        addr,
                        "popf without a flags word on top of the stack".into(),
                    );
                }
            }
            _ => {}
        }

        // Successors.
        match instr {
            Instr::Jmp { target } => self.flow(addr, false, target, Some(&s)),
            Instr::Beq { .. }
            | Instr::Bne { .. }
            | Instr::Blt { .. }
            | Instr::Bge { .. }
            | Instr::Bltu { .. }
            | Instr::Bgeu { .. } => {
                if let Some(t) = instr.static_target(addr) {
                    self.flow(addr, false, t, Some(&s));
                }
                self.flow(addr, false, addr + 4, Some(&s));
            }
            Instr::Call { target } => {
                // An out-of-line lookup call: the routine sees the caller's
                // state plus its return address; the hit path returns with
                // SLOT_JUMP_TARGET holding a fragment entry and the
                // scratch values disturbed.
                let mut callee = s.clone();
                callee.tokens.push(Token::CallerRet);
                self.flow(addr, false, target, Some(&callee));
                let mut cont = s.clone();
                cont.jump_slot = JumpSlot::FragEntry;
                cont.vals[2] = Value::Unknown;
                cont.vals[3] = Value::Unknown;
                self.flow(addr, false, addr + 4, Some(&cont));
            }
            Instr::Ret => {
                if s.tokens.last() == Some(&Token::CallerRet) {
                    s.tokens.pop();
                    if s.jump_slot == JumpSlot::Unset {
                        self.diag(
                            Lint::UnknownProvenance,
                            addr,
                            "lookup routine returns without a tracked SLOT_JUMP_TARGET".into(),
                        );
                    }
                } else {
                    self.diag(
                        Lint::StackImbalance,
                        addr,
                        "overhead ret without a pushed return address to consume".into(),
                    );
                }
            }
            Instr::Jr { rs } => match val(&s, rs) {
                Value::TableVal(b, 0)
                    if self.table_kinds.get(&b) == Some(&TableKind::ReturnCache) =>
                {
                    self.check_dispatch_transfer(addr, &s, "return-cache transfer");
                    let succs: BTreeSet<u32> = self.img.table_words(b).iter().copied().collect();
                    for to in succs {
                        if self.img.in_cache(to) {
                            self.flow(addr, false, to, Some(&s));
                        }
                    }
                }
                _ => self.diag(
                    Lint::IndirectExitIntegrity,
                    addr,
                    "jr through a value that is not a return-cache entry".into(),
                ),
            },
            Instr::Callr { .. } => {
                self.diag(
                    Lint::IndirectExitIntegrity,
                    addr,
                    "indirect call in overhead code escapes dispatch".into(),
                );
            }
            Instr::Jmem { addr: a } => self.do_jmem(addr, a, &s),
            Instr::Trap { code } => self.do_trap(addr, code, &s),
            Instr::Halt => {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "halt in overhead code".into(),
                );
            }
            _ => self.flow(addr, false, addr + 4, Some(&s)),
        }
    }

    fn do_swa(&mut self, addr: u32, rs: Reg, a: u32, s: &mut State) {
        let v = s.vals[rs.index()];
        match a {
            SLOT_R1 | SLOT_R2 | SLOT_R3 => {
                let slot_idx = ((a - SLOT_R1) / 4 + 1) as usize;
                if rs.index() == slot_idx {
                    s.scratch[slot_idx - 1] = Scratch::Saved;
                } else {
                    self.diag(
                        Lint::ProtocolViolation,
                        addr,
                        format!("saves r{} to r{slot_idx}'s slot", rs.index()),
                    );
                }
            }
            SLOT_TARGET => s.target_stored = true,
            SLOT_SITE => s.site_stored = true,
            SLOT_FLAGS => {
                if self.always {
                    if v != Value::FlagsWord {
                        self.diag(
                            Lint::UnknownProvenance,
                            addr,
                            "stores a non-flags value to SLOT_FLAGS".into(),
                        );
                    }
                    s.flags = FlagsLoc::InSlot;
                }
            }
            SLOT_SHADOW_SP => {}
            SLOT_JUMP_TARGET => {
                s.jump_slot = match v {
                    // Zero is the empty-entry sentinel: statically
                    // storable (an unfilled probe), dynamically dead
                    // because no tag matches it.
                    Value::Const(0) => JumpSlot::FragEntry,
                    Value::Const(c) if self.body_entries.contains(&c) => JumpSlot::FragEntry,
                    Value::TableVal(b, off) => match self.table_kinds.get(&b) {
                        Some(TableKind::IbtcTagged { .. }) if off == 4 => JumpSlot::FragEntry,
                        Some(TableKind::IbtcTagged { ways }) if *ways == 2 && off == 12 => {
                            JumpSlot::FragEntry
                        }
                        Some(TableKind::SieveBuckets) if off == 0 => JumpSlot::SieveEntry(b),
                        _ if Some(b) == self.shadow_base && off == 4 => JumpSlot::FragEntry,
                        _ => {
                            self.diag(
                                Lint::UnknownProvenance,
                                addr,
                                format!(
                                    "SLOT_JUMP_TARGET written from table {b:#x} offset {off}, \
                                     which is not a translated-address column"
                                ),
                            );
                            JumpSlot::Unset
                        }
                    },
                    _ => {
                        self.diag(
                            Lint::UnknownProvenance,
                            addr,
                            "SLOT_JUMP_TARGET written from an untracked value".into(),
                        );
                        JumpSlot::Unset
                    }
                };
            }
            SLOT_RESUME => {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "emitted code writes SLOT_RESUME (runtime-owned)".into(),
                );
            }
            _ => {
                let i = rs.index();
                if a == reg_slot(i as u32) {
                    s.bulk_saved |= bulk_bit(i);
                } else if (SLOT_R1..reg_slot(16)).contains(&a) {
                    self.diag(
                        Lint::ProtocolViolation,
                        addr,
                        format!("saves r{i} to the wrong context slot {a:#x}"),
                    );
                } else {
                    self.diag(
                        Lint::ProtocolViolation,
                        addr,
                        format!("store to unexpected absolute address {a:#x}"),
                    );
                }
            }
        }
    }

    fn do_jmem(&mut self, addr: u32, a: u32, s: &State) {
        match a {
            SLOT_JUMP_TARGET => match s.jump_slot {
                JumpSlot::FragEntry => self.check_app_entry(addr, s),
                JumpSlot::SieveEntry(b) => {
                    self.check_dispatch_transfer(addr, s, "sieve chain transfer");
                    let succs: BTreeSet<u32> = self.img.table_words(b).iter().copied().collect();
                    for to in succs {
                        if self.img.in_cache(to) {
                            self.flow(addr, false, to, Some(s));
                        }
                    }
                }
                JumpSlot::Unset => {
                    self.diag(
                        Lint::UnknownProvenance,
                        addr,
                        "jumps through SLOT_JUMP_TARGET with unknown provenance".into(),
                    );
                }
            },
            SLOT_RESUME => {
                if s.bulk_restored != BULK_MASK {
                    self.diag(
                        Lint::BadResume,
                        addr,
                        format!(
                            "resumes with bulk registers unrestored (mask {:#06x} of {BULK_MASK:#06x})",
                            s.bulk_restored
                        ),
                    );
                }
                let full_restore = (!self.always || s.flags == FlagsLoc::Live)
                    && s.tokens.is_empty()
                    && s.all_app_live();
                let partial_restore = s.all_saved()
                    && if self.always {
                        s.flags == FlagsLoc::OnStack && s.tokens == vec![Token::Flags]
                    } else {
                        s.tokens.is_empty()
                    };
                if !full_restore && !partial_restore {
                    self.diag(
                        Lint::BadResume,
                        addr,
                        "resumes without either the full-restore or the return-cache \
                         restore contract established"
                            .into(),
                    );
                }
            }
            _ => {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    format!("jmem through unexpected slot {a:#x}"),
                );
            }
        }
    }

    fn do_trap(&mut self, addr: u32, code: u16, s: &State) {
        if code == TRAP_MISS {
            if !s.tokens.is_empty() {
                self.diag(
                    Lint::StackImbalance,
                    addr,
                    "miss trap with overhead words left on the stack".into(),
                );
            }
            if !s.target_stored {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "miss trap without the branch target in SLOT_TARGET".into(),
                );
            }
            if !s.site_stored {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "miss trap without a site id in SLOT_SITE".into(),
                );
            }
            if self.always && s.flags != FlagsLoc::InSlot {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "miss trap without the flags parked in SLOT_FLAGS".into(),
                );
            }
            if s.bulk_saved != BULK_MASK {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    format!(
                        "miss trap with bulk registers unsaved (mask {:#06x} of {BULK_MASK:#06x})",
                        s.bulk_saved
                    ),
                );
            }
            if !s.all_saved() {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "miss trap with r1-r3 not spilled".into(),
                );
            }
        } else if code == TRAP_RC_MISS {
            let stack_ok = if self.always {
                s.flags == FlagsLoc::OnStack && s.tokens == vec![Token::Flags]
            } else {
                s.tokens.is_empty()
            };
            if !stack_ok {
                self.diag(
                    Lint::StackImbalance,
                    addr,
                    "return-cache miss trap without the flags word (and only it) on the stack"
                        .into(),
                );
            }
            if !s.target_stored {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "return-cache miss trap without the return address in SLOT_TARGET".into(),
                );
            }
            if s.bulk_saved != BULK_MASK {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "return-cache miss trap with bulk registers unsaved".into(),
                );
            }
            if !s.all_saved() {
                self.diag(
                    Lint::ProtocolViolation,
                    addr,
                    "return-cache miss trap with r1-r3 not spilled".into(),
                );
            }
        } else {
            self.diag(
                Lint::ProtocolViolation,
                addr,
                format!("unexpected trap {code:#x} in overhead code"),
            );
        }
    }
}
