//! Diagnostics: the lint catalog, severities, and the verification report.

use strata_stats::Json;

/// Version of the JSON report shape emitted by [`VerifyReport::to_json`]
/// (and the `strata verify --format json` envelope). Bump on any
/// field addition, removal, or rename so downstream tooling can detect
/// report-shape drift.
pub const SCHEMA_VERSION: u64 = 2;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Structural observation; never fails a verification run.
    Info,
    /// Suspicious but not provably wrong (imprecise provenance, joins that
    /// lost information).
    Warning,
    /// A violated invariant: the emitted code can corrupt application
    /// state or escape the translator's control.
    Error,
}

impl Severity {
    /// Lowercase label (`"error"`, `"warning"`, `"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Every check the verifier performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// Overhead code executes a flags-writing instruction while the
    /// application's flags are live (under [`FlagsPolicy::Always`]
    /// (strata_core::FlagsPolicy::Always) they must first be saved).
    FlagsClobber,
    /// `popf` executed when the top of stack is not a flags word pushed by
    /// overhead code.
    BadPopf,
    /// Overhead code leaves the application stack unbalanced (a pushed
    /// word is never popped, or a pop has nothing overhead-pushed to take).
    StackImbalance,
    /// A scratch register (`r1`–`r3`) is written while it still holds the
    /// live application value (before the spill prologue saved it).
    ScratchClobber,
    /// A non-scratch register (`r0`, `r4`–`r15`) is written by overhead
    /// code other than the context-switch restore sequence.
    BulkClobber,
    /// Emitted code breaks the save-area/trap protocol: a store to an
    /// unexpected absolute slot, a bulk register saved to the wrong slot,
    /// a store outside the table region, or an unexpected trap/halt.
    ProtocolViolation,
    /// `jmem [SLOT_RESUME]` executed without the full context-switch
    /// restore contract established.
    BadResume,
    /// Control re-enters application code without the full application
    /// context restored (flags, scratch registers, balanced stack).
    BadAppEntry,
    /// An indirect exit from the cache does not target a registered
    /// dispatch path (fragment entry, miss tail, or translator trap).
    IndirectExitIntegrity,
    /// A lookup-table entry references something that is not a valid
    /// fragment entry or registered miss path.
    TableAudit,
    /// An undecodable instruction word inside the occupied cache.
    UndecodableWord,
    /// A control-flow join merged incompatible abstract states; downstream
    /// checks at this point may be imprecise.
    InconsistentState,
    /// A value of unknown provenance flows into a dispatch transfer
    /// (e.g. `SLOT_JUMP_TARGET` written from an untracked source).
    UnknownProvenance,
    /// Application-origin words in the cache that no path reaches.
    UnreachableAppCode,
    /// A fragment no table entry, link, or static edge references.
    OrphanFragment,
    /// A lowered tier op is not symbolically equivalent to the guest
    /// instruction it was translated from (wrong operand, immediate,
    /// target, or retire-event field).
    TierLowering,
    /// A translated superblock violates a structural obligation: slot
    /// anchoring, terminator placement, fused-pair/shadow agreement, or
    /// the fuel-boundary resume pc.
    TierStructure,
    /// A dispatch glue path dead-ends without reaching an accepted
    /// landing (fragment entry, application code, registered trap, or
    /// transfer slot).
    TransferContract,
}

impl Lint {
    /// The lint's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            Lint::FlagsClobber
            | Lint::BadPopf
            | Lint::StackImbalance
            | Lint::ScratchClobber
            | Lint::BulkClobber
            | Lint::ProtocolViolation
            | Lint::BadResume
            | Lint::BadAppEntry
            | Lint::IndirectExitIntegrity
            | Lint::TableAudit
            | Lint::UndecodableWord
            | Lint::TierLowering
            | Lint::TierStructure
            | Lint::TransferContract => Severity::Error,
            Lint::InconsistentState | Lint::UnknownProvenance | Lint::UnreachableAppCode => {
                Severity::Warning
            }
            Lint::OrphanFragment => Severity::Info,
        }
    }

    /// Kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Lint::FlagsClobber => "flags-clobber",
            Lint::BadPopf => "bad-popf",
            Lint::StackImbalance => "stack-imbalance",
            Lint::ScratchClobber => "scratch-clobber",
            Lint::BulkClobber => "bulk-clobber",
            Lint::ProtocolViolation => "protocol-violation",
            Lint::BadResume => "bad-resume",
            Lint::BadAppEntry => "bad-app-entry",
            Lint::IndirectExitIntegrity => "indirect-exit-integrity",
            Lint::TableAudit => "table-audit",
            Lint::UndecodableWord => "undecodable-word",
            Lint::InconsistentState => "inconsistent-state",
            Lint::UnknownProvenance => "unknown-provenance",
            Lint::UnreachableAppCode => "unreachable-app-code",
            Lint::OrphanFragment => "orphan-fragment",
            Lint::TierLowering => "tier-lowering",
            Lint::TierStructure => "tier-structure",
            Lint::TransferContract => "transfer-contract",
        }
    }
}

/// One finding, anchored to a cache address.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which check fired.
    pub lint: Lint,
    /// Cache address the finding anchors to.
    pub addr: u32,
    /// Human-readable location (`miss_tail_reg_flags+0x8`).
    pub location: String,
    /// What went wrong.
    pub message: String,
    /// Disassembly excerpt around `addr` (the offending line marked `>`).
    pub excerpt: Vec<String>,
}

impl Diagnostic {
    /// The diagnostic's severity (fixed per lint).
    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }
}

/// Aggregate coverage numbers for one verification run.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyStats {
    /// Instruction words in the occupied cache.
    pub words: usize,
    /// Words the reachability analysis visited.
    pub visited_words: usize,
    /// Overhead (non-application) words no path reaches — dead trampoline
    /// tails and superseded probes; normal, reported for visibility.
    pub dead_overhead_words: usize,
    /// Translated fragments.
    pub fragments: usize,
    /// Recovered basic blocks.
    pub blocks: usize,
    /// Recovered control-flow edges.
    pub edges: usize,
    /// Lookup-table entries audited.
    pub table_entries: usize,
}

/// The result of verifying one cache image.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Per-class dispatch summary of the verified configuration.
    pub config: String,
    /// Findings, sorted most severe first, then by address.
    pub diagnostics: Vec<Diagnostic>,
    /// Coverage numbers.
    pub stats: VerifyStats,
}

impl VerifyReport {
    /// True when nothing at warning severity or above fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity() < Severity::Warning)
    }

    /// Count of findings at exactly `sev`.
    pub fn count_at(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == sev)
            .count()
    }

    /// Sorts diagnostics most-severe-first and drops exact duplicates
    /// (same lint at the same address).
    pub(crate) fn finish(&mut self) {
        self.diagnostics
            .sort_by(|a, b| b.severity().cmp(&a.severity()).then(a.addr.cmp(&b.addr)));
        self.diagnostics
            .dedup_by_key(|d| (d.lint, d.addr, d.message.clone()));
    }

    /// Renders the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let st = &self.stats;
        s.push_str(&format!("verify: {}\n", self.config));
        s.push_str(&format!(
            "  {} words, {} fragments, {} blocks, {} edges, {} table entries; \
             {} dead overhead words\n",
            st.words, st.fragments, st.blocks, st.edges, st.table_entries, st.dead_overhead_words
        ));
        if self.diagnostics.is_empty() {
            s.push_str("  clean: no findings\n");
            return s;
        }
        for d in &self.diagnostics {
            s.push_str(&format!(
                "{}[{}] at {:#010x} ({}): {}\n",
                d.severity().label(),
                d.lint.name(),
                d.addr,
                d.location,
                d.message
            ));
            for line in &d.excerpt {
                s.push_str(&format!("    {line}\n"));
            }
        }
        s.push_str(&format!(
            "  {} errors, {} warnings, {} notes\n",
            self.count_at(Severity::Error),
            self.count_at(Severity::Warning),
            self.count_at(Severity::Info)
        ));
        s
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> Json {
        let st = &self.stats;
        Json::obj([
            ("schema_version", Json::uint(SCHEMA_VERSION)),
            ("config", Json::str(&self.config)),
            ("clean", Json::Bool(self.is_clean())),
            (
                "stats",
                Json::obj([
                    ("words", Json::uint(st.words as u64)),
                    ("visited_words", Json::uint(st.visited_words as u64)),
                    (
                        "dead_overhead_words",
                        Json::uint(st.dead_overhead_words as u64),
                    ),
                    ("fragments", Json::uint(st.fragments as u64)),
                    ("blocks", Json::uint(st.blocks as u64)),
                    ("edges", Json::uint(st.edges as u64)),
                    ("table_entries", Json::uint(st.table_entries as u64)),
                ]),
            ),
            (
                "diagnostics",
                Json::arr(self.diagnostics.iter().map(|d| {
                    Json::obj([
                        ("lint", Json::str(d.lint.name())),
                        ("severity", Json::str(d.severity().label())),
                        ("addr", Json::uint(d.addr as u64)),
                        ("location", Json::str(&d.location)),
                        ("message", Json::str(&d.message)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: Lint, addr: u32) -> Diagnostic {
        Diagnostic {
            lint,
            addr,
            location: "x".into(),
            message: "m".into(),
            excerpt: Vec::new(),
        }
    }

    #[test]
    fn severity_ordering_and_cleanliness() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let mut r = VerifyReport {
            config: "c".into(),
            diagnostics: vec![diag(Lint::OrphanFragment, 4)],
            stats: VerifyStats::default(),
        };
        assert!(r.is_clean(), "info findings do not dirty a report");
        r.diagnostics.push(diag(Lint::UnknownProvenance, 8));
        assert!(!r.is_clean(), "warnings dirty a report");
    }

    #[test]
    fn finish_sorts_most_severe_first_and_dedups() {
        let mut r = VerifyReport {
            config: "c".into(),
            diagnostics: vec![
                diag(Lint::OrphanFragment, 4),
                diag(Lint::FlagsClobber, 12),
                diag(Lint::FlagsClobber, 12),
                diag(Lint::UnknownProvenance, 8),
            ],
            stats: VerifyStats::default(),
        };
        r.finish();
        let lints: Vec<Lint> = r.diagnostics.iter().map(|d| d.lint).collect();
        assert_eq!(
            lints,
            vec![
                Lint::FlagsClobber,
                Lint::UnknownProvenance,
                Lint::OrphanFragment
            ]
        );
    }

    #[test]
    fn json_reports_cleanliness() {
        let r = VerifyReport {
            config: "c".into(),
            diagnostics: Vec::new(),
            stats: VerifyStats::default(),
        };
        let rendered = r.to_json().render();
        assert!(rendered.contains("\"clean\":true"), "{rendered}");
    }
}
