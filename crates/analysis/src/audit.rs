//! Structural audits that complement the dataflow pass: lookup-table
//! integrity (every entry resolves to a legitimate fragment entry or miss
//! path), exit-site link states, adaptive probe constants, undecodable
//! words, reachability accounting, and orphan-fragment detection.

use std::collections::{BTreeMap, HashMap, HashSet};

use strata_core::protocol::SLOT_R1;
use strata_core::{AdaptiveStageMeta, FragKind, Origin, TableKind, TableMeta};
use strata_isa::{Instr, Reg};

use crate::cfg::Labels;
use crate::dataflow::DataflowResult;
use crate::diag::{Diagnostic, Lint, VerifyReport};
use crate::image::CacheImage;

/// Runs every structural audit, appending findings and filling coverage
/// stats into `report`.
pub(crate) fn run(
    img: &CacheImage,
    labels: &Labels,
    flow: &DataflowResult,
    report: &mut VerifyReport,
) {
    let aud = Auditor::new(img, labels);
    let mut diags = Vec::new();
    let mut table_entries = 0;

    aud.undecodable_words(&mut diags);
    aud.tables(&mut diags, &mut table_entries);
    aud.shadow(&mut diags, &mut table_entries);
    aud.exit_sites(&mut diags);
    aud.adaptive_sites(&mut diags);
    aud.reachability(flow, &mut diags, &mut report.stats);
    aud.orphans(flow, &mut diags);

    report.stats.words = img.lines.len();
    report.stats.visited_words = flow.visited.len();
    report.stats.fragments = img.meta.fragments.len();
    report.stats.table_entries = table_entries;
    let (blocks, edges) = crate::cfg::block_stats(&flow.visited, &flow.edges, &flow.seeds);
    report.stats.blocks = blocks;
    report.stats.edges = edges;
    report.diagnostics.extend(diags);
}

struct Auditor<'a> {
    img: &'a CacheImage,
    labels: &'a Labels,
    /// Body fragment entries keyed by application address.
    body_by_app: HashMap<u32, u32>,
    /// Return-point application addresses keyed by fragment entry.
    rp_by_entry: HashMap<u32, u32>,
    /// Every Body fragment entry address.
    body_entries: HashSet<u32>,
}

impl<'a> Auditor<'a> {
    fn new(img: &'a CacheImage, labels: &'a Labels) -> Auditor<'a> {
        let mut body_by_app = HashMap::new();
        let mut rp_by_entry = HashMap::new();
        let mut body_entries = HashSet::new();
        for f in &img.meta.fragments {
            match f.kind {
                FragKind::Body => {
                    body_by_app.insert(f.app_addr, f.entry);
                    body_entries.insert(f.entry);
                }
                FragKind::ReturnPoint => {
                    rp_by_entry.insert(f.entry, f.app_addr);
                }
            }
        }
        Auditor {
            img,
            labels,
            body_by_app,
            rp_by_entry,
            body_entries,
        }
    }

    fn diag(&self, out: &mut Vec<Diagnostic>, lint: Lint, addr: u32, message: String) {
        let excerpt = if self.img.in_cache(addr) {
            self.img.excerpt(addr, 2)
        } else {
            Vec::new()
        };
        out.push(Diagnostic {
            lint,
            addr,
            location: self.labels.locate(addr),
            message,
            excerpt,
        });
    }

    /// Every occupied cache word must decode.
    fn undecodable_words(&self, out: &mut Vec<Diagnostic>) {
        for l in &self.img.lines {
            if l.instr.is_none() {
                self.diag(
                    out,
                    Lint::UndecodableWord,
                    l.addr,
                    format!(
                        "{:#010x} in the occupied cache does not decode ({} origin)",
                        l.word,
                        l.origin.label()
                    ),
                );
            }
        }
    }

    /// Audits every lookup table the translator registered.
    fn tables(&self, out: &mut Vec<Diagnostic>, entries: &mut usize) {
        // Dedup by base: a table can be referenced both as a bind table and
        // through a site.
        let mut by_base: BTreeMap<u32, TableMeta> = BTreeMap::new();
        for t in self.img.meta.all_tables() {
            by_base.entry(t.base).or_insert(t);
        }
        for t in by_base.values() {
            match t.kind {
                TableKind::IbtcTagged { ways } => self.ibtc_table(t, ways, out, entries),
                TableKind::SieveBuckets => self.sieve_table(t, out, entries),
                TableKind::ReturnCache => self.rc_table(t, out, entries),
            }
        }
    }

    /// Tagged IBTC sets: a non-zero tag's value must be the Body fragment
    /// entry for exactly that application address.
    fn ibtc_table(&self, t: &TableMeta, ways: u8, out: &mut Vec<Diagnostic>, entries: &mut usize) {
        let words = self.img.table_words(t.base);
        let set_words = (t.entry_bytes / 4) as usize;
        for (set, chunk) in words.chunks(set_words).enumerate() {
            for way in 0..ways as usize {
                let (tag, val) = (chunk[2 * way], chunk[2 * way + 1]);
                *entries += 1;
                if tag == 0 {
                    continue;
                }
                let addr = t.base + (set * set_words * 4 + way * 8) as u32;
                match self.body_by_app.get(&tag) {
                    Some(&entry) if entry == val => {}
                    Some(&entry) => self.diag(
                        out,
                        Lint::TableAudit,
                        addr,
                        format!(
                            "ibtc set {set} way {way}: tag {tag:#x} maps to {val:#010x} \
                             but its fragment entry is {} ({entry:#010x})",
                            self.labels.locate(entry)
                        ),
                    ),
                    None => self.diag(
                        out,
                        Lint::TableAudit,
                        addr,
                        format!(
                            "ibtc set {set} way {way}: tag {tag:#x} has no translated \
                             body fragment (value {val:#010x})"
                        ),
                    ),
                }
            }
        }
    }

    /// Sieve buckets: every bucket points at the bind's miss glue or at an
    /// in-cache dispatch stanza.
    fn sieve_table(&self, t: &TableMeta, out: &mut Vec<Diagnostic>, entries: &mut usize) {
        let glues: HashSet<u32> = self
            .img
            .meta
            .binds
            .iter()
            .filter(|b| b.table.is_some_and(|bt| bt.base == t.base))
            .map(|b| self.img.meta.glue_for(b.index))
            .collect();
        for (i, &v) in self.img.table_words(t.base).iter().enumerate() {
            *entries += 1;
            let stanza = self
                .img
                .line_at(v)
                .is_some_and(|l| l.origin == Origin::Dispatch);
            if !glues.contains(&v) && !stanza {
                self.diag(
                    out,
                    Lint::TableAudit,
                    t.base + 4 * i as u32,
                    format!(
                        "sieve bucket {i} points at {v:#010x} ({}), neither the bind's \
                         miss glue nor a dispatch stanza",
                        self.labels.locate(v)
                    ),
                );
            }
        }
    }

    /// Return-cache entries: the miss stub, or a return-point fragment
    /// whose application address hashes to this index.
    fn rc_table(&self, t: &TableMeta, out: &mut Vec<Diagnostic>, entries: &mut usize) {
        let rc_miss = self.img.meta.stubs.rc_miss;
        for (i, &v) in self.img.table_words(t.base).iter().enumerate() {
            *entries += 1;
            if v == rc_miss {
                continue;
            }
            match self.rp_by_entry.get(&v) {
                Some(&app) if t.index_of(app) == i as u32 => {}
                Some(&app) => self.diag(
                    out,
                    Lint::TableAudit,
                    t.base + 4 * i as u32,
                    format!(
                        "return-cache entry {i} holds return point for {app:#x}, which \
                         hashes to index {}",
                        t.index_of(app)
                    ),
                ),
                None => self.diag(
                    out,
                    Lint::TableAudit,
                    t.base + 4 * i as u32,
                    format!(
                        "return-cache entry {i} points at {v:#010x} ({}), neither \
                         rc_miss nor a return-point fragment entry",
                        self.labels.locate(v)
                    ),
                ),
            }
        }
    }

    /// Shadow-stack pairs: a filled slot's translated half must be a Body
    /// fragment entry (the patched return-site fragment).
    fn shadow(&self, out: &mut Vec<Diagnostic>, entries: &mut usize) {
        let words = self.img.shadow_words();
        let Some((base, _)) = self.img.meta.shadow else {
            return;
        };
        for (i, pair) in words.chunks(2).enumerate() {
            if pair.len() < 2 {
                break;
            }
            let (_app_ret, translated) = (pair[0], pair[1]);
            *entries += 1;
            if translated != 0 && !self.body_entries.contains(&translated) {
                self.diag(
                    out,
                    Lint::TableAudit,
                    base + 8 * i as u32,
                    format!(
                        "shadow slot {i} translated half {translated:#010x} ({}) is not \
                         a body fragment entry",
                        self.labels.locate(translated)
                    ),
                );
            }
        }
    }

    /// Exit trampoline heads are either still the spill head (`swa r1`) or
    /// a direct link to the target's Body fragment entry.
    fn exit_sites(&self, out: &mut Vec<Diagnostic>) {
        for e in &self.img.meta.exit_sites {
            let Some(line) = self.img.line_at(e.patch_addr) else {
                self.diag(
                    out,
                    Lint::IndirectExitIntegrity,
                    e.patch_addr,
                    format!(
                        "exit site for {:#x} lies outside the occupied cache",
                        e.target
                    ),
                );
                continue;
            };
            match line.instr {
                Some(Instr::Swa { rs, addr }) if rs == Reg::R1 && addr == SLOT_R1 => {}
                Some(Instr::Jmp { target }) => {
                    if self.body_by_app.get(&e.target) != Some(&target) {
                        self.diag(
                            out,
                            Lint::IndirectExitIntegrity,
                            e.patch_addr,
                            format!(
                                "linked exit for {:#x} jumps to {target:#010x} ({}), not \
                                 the target's body fragment entry",
                                e.target,
                                self.labels.locate(target)
                            ),
                        );
                    }
                }
                _ => self.diag(
                    out,
                    Lint::IndirectExitIntegrity,
                    e.patch_addr,
                    format!(
                        "exit site for {:#x} is neither the spill head nor a direct link",
                        e.target
                    ),
                ),
            }
        }
    }

    /// Adaptive inline probes: the patched `li` constants must agree with
    /// the fragment map, and the entry jump must stay inside the cache.
    fn adaptive_sites(&self, out: &mut Vec<Diagnostic>) {
        for (i, s) in self.img.meta.adaptive_sites.iter().enumerate() {
            match self.img.line_at(s.entry_jmp).and_then(|l| l.instr) {
                Some(Instr::Jmp { target }) if self.img.in_cache(target) => {}
                _ => self.diag(
                    out,
                    Lint::IndirectExitIntegrity,
                    s.entry_jmp,
                    format!("adaptive site {i} entry jump does not target the cache"),
                ),
            }
            let AdaptiveStageMeta::Inline { tag_li, frag_li } = s.stage else {
                continue;
            };
            let (Some(tag), Some(frag)) = (self.li_const(tag_li), self.li_const(frag_li)) else {
                self.diag(
                    out,
                    Lint::TableAudit,
                    tag_li,
                    format!("adaptive site {i} inline probe constants do not decode as li pairs"),
                );
                continue;
            };
            if tag != 0 && self.body_by_app.get(&tag) != Some(&frag) {
                self.diag(
                    out,
                    Lint::TableAudit,
                    frag_li,
                    format!(
                        "adaptive site {i} inline probe: tag {tag:#x} paired with \
                         {frag:#010x} ({}), not its body fragment entry",
                        self.labels.locate(frag)
                    ),
                );
            }
        }
    }

    /// Decodes the constant materialised by an `lui`/`ori` pair at `addr`.
    fn li_const(&self, addr: u32) -> Option<u32> {
        let hi = match self.img.line_at(addr)?.instr? {
            Instr::Lui { rd, imm } => (rd, (imm as u32) << 16),
            _ => return None,
        };
        match self.img.line_at(addr + 4)?.instr? {
            Instr::Ori { rd, rs1, imm } if rd == hi.0 && rs1 == hi.0 => Some(hi.1 | imm as u32),
            _ => None,
        }
    }

    /// Unreached application words are a warning (the translator emitted
    /// app code no path executes); unreached overhead words are normal
    /// (dead trampoline tails, superseded probes) and only counted.
    fn reachability(
        &self,
        flow: &DataflowResult,
        out: &mut Vec<Diagnostic>,
        stats: &mut crate::diag::VerifyStats,
    ) {
        let mut dead_overhead = 0usize;
        let mut run_start: Option<(u32, usize)> = None;
        let flush = |run: &mut Option<(u32, usize)>, out: &mut Vec<Diagnostic>| {
            if let Some((start, n)) = run.take() {
                self.diag(
                    out,
                    Lint::UnreachableAppCode,
                    start,
                    format!("{n} unreachable application-origin word(s)"),
                );
            }
        };
        for l in &self.img.lines {
            if flow.visited.contains(&l.addr) {
                flush(&mut run_start, out);
                continue;
            }
            if l.origin == Origin::App {
                match &mut run_start {
                    Some((_, n)) => *n += 1,
                    None => run_start = Some((l.addr, 1)),
                }
            } else {
                flush(&mut run_start, out);
                dead_overhead += 1;
            }
        }
        flush(&mut run_start, out);
        stats.dead_overhead_words = dead_overhead;
    }

    /// A fragment nothing references — no static edge, table entry, shadow
    /// slot, adaptive constant, or linked exit. Informational: the runtime
    /// may still hold references the snapshot cannot see (fastret return
    /// addresses on the application stack), so fastret skips this audit.
    fn orphans(&self, flow: &DataflowResult, out: &mut Vec<Diagnostic>) {
        if self.img.fastret {
            return;
        }
        let mut referenced: HashSet<u32> = flow.edges.iter().map(|&(_, to)| to).collect();
        for t in self.img.meta.all_tables() {
            referenced.extend(self.img.table_words(t.base).iter().copied());
        }
        for pair in self.img.shadow_words().chunks(2) {
            if let [_, translated] = pair {
                referenced.insert(*translated);
            }
        }
        for s in &self.img.meta.adaptive_sites {
            if let AdaptiveStageMeta::Inline { frag_li, .. } = s.stage {
                if let Some(frag) = self.li_const(frag_li) {
                    referenced.insert(frag);
                }
            }
        }
        for f in &self.img.meta.fragments {
            if f.app_addr == self.img.meta.entry_app && f.kind == FragKind::Body {
                continue;
            }
            if !referenced.contains(&f.entry) {
                self.diag(
                    out,
                    Lint::OrphanFragment,
                    f.entry,
                    format!(
                        "{:?} fragment for {:#x} is referenced by no edge, table entry, \
                         or link",
                        f.kind, f.app_addr
                    ),
                );
            }
        }
    }
}
