//! Translation validation: per-superblock symbolic equivalence checking
//! of the threaded tier's lowered code, and a declarative transfer
//! contract over the dispatch glue the word-level dataflow pass walks.
//!
//! ## Superblock validation
//!
//! For every superblock the threaded tier has translated (exported via
//! `Machine::tier_blocks`), each slot is checked by running two
//! independently written symbolic evaluators — one over the guest
//! instruction decoded from memory at the slot's pc, one over the
//! lowered op and its stored retire-event template — and requiring the
//! resulting [`SlotSem`](crate::sym::SlotSem)s to be syntactically
//! equal (see `crates/analysis/src/sym.rs` for why syntactic equality
//! is the right relation here). Per-slot equivalence plus the
//! structural obligations below covers every exit the dispatch loop
//! can take:
//!
//! * **fall-through / taken backedge / side exit** — every slot's next
//!   pc matches the guest's, and slots are pc-anchored (`base + 4·i`),
//!   so any entry/resume/backedge pc lands on the slot with the guest's
//!   semantics (induction over slots);
//! * **fault** — both evaluators expose the single data access a slot
//!   attempts before committing state; equal accesses mean equal fault
//!   pcs and no partial effects;
//! * **mid-block fuel boundary** — the loop stops *before* a slot, at
//!   its anchored pc, so the boundary is covered by anchoring; the
//!   boundary *inside* a fused pair resumes at `pc + 4`, which is the
//!   shadow `CondBr` slot, validated standalone;
//! * **macro-op fusion** — a fused `CmpBr`/`CmpiBr` must carry exactly
//!   its shadow's condition and target (the dispatch loop patches the
//!   branch event from the *fused* op's fields);
//! * **SMC side exit** — a store slot's side exit resumes at `pc + 4`
//!   with the store retired, which is exactly the guest's state; the
//!   obligation is that store-semantics ops really take the
//!   store-retire path, which the template's `is_store`/length check
//!   enforces.
//!
//! ## Transfer contract
//!
//! Dispatch stubs and glue must, on every maximal path, hand control to
//! an accepted landing: a translated fragment entry, application code,
//! a registered translator trap (`TRAP_MISS`/`TRAP_RC_MISS`), a
//! `jmem` transfer slot, or a lookup-routine return. The dataflow pass
//! already records every discovered edge; this pass re-walks its
//! results and flags any reachable overhead word where a path simply
//! stops — a dead end the word-level lints cannot attribute.

use std::collections::BTreeSet;

use strata_core::protocol::{SLOT_JUMP_TARGET, SLOT_RESUME, TRAP_MISS, TRAP_RC_MISS};
use strata_core::Origin;
use strata_isa::{decode, Instr};
use strata_machine::{LoweredOp as Op, Machine, TierBlockMeta};
use strata_stats::Json;

use crate::cfg::Labels;
use crate::dataflow::DataflowResult;
use crate::diag::{Diagnostic, Lint, Severity, VerifyReport};
use crate::image::CacheImage;
use crate::sym::{first_difference, step_guest, step_op, Pred};

/// The result of validating one machine's translated superblocks.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// Superblocks validated.
    pub blocks: usize,
    /// Lowered slots checked (including fall-through stubs).
    pub slots: usize,
    /// Macro-op-fused compare+branch pairs among them.
    pub fused_pairs: usize,
    /// Findings, sorted most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl TierReport {
    /// True when nothing at warning severity or above fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity() < Severity::Warning)
    }

    /// Renders the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut s = format!(
            "validate-tiers: {} superblocks, {} slots, {} fused pairs\n",
            self.blocks, self.slots, self.fused_pairs
        );
        if self.diagnostics.is_empty() {
            s.push_str("  clean: every translated slot proved equivalent\n");
            return s;
        }
        for d in &self.diagnostics {
            s.push_str(&format!(
                "{}[{}] at {:#010x} ({}): {}\n",
                d.severity().label(),
                d.lint.name(),
                d.addr,
                d.location,
                d.message
            ));
            for line in &d.excerpt {
                s.push_str(&format!("    {line}\n"));
            }
        }
        s
    }

    /// Renders the report as a JSON object. Carries the same
    /// [`SCHEMA_VERSION`](crate::SCHEMA_VERSION) as [`VerifyReport`]:
    /// both shapes version together.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::uint(crate::diag::SCHEMA_VERSION)),
            ("clean", Json::Bool(self.is_clean())),
            ("blocks", Json::uint(self.blocks as u64)),
            ("slots", Json::uint(self.slots as u64)),
            ("fused_pairs", Json::uint(self.fused_pairs as u64)),
            (
                "diagnostics",
                Json::arr(self.diagnostics.iter().map(|d| {
                    Json::obj([
                        ("lint", Json::str(d.lint.name())),
                        ("severity", Json::str(d.severity().label())),
                        ("addr", Json::uint(d.addr as u64)),
                        ("location", Json::str(&d.location)),
                        ("message", Json::str(&d.message)),
                    ])
                })),
            ),
        ])
    }
}

/// Validates every superblock `machine`'s threaded tier currently
/// holds, decoding the guest reference from the machine's own memory.
/// Machines without a tier (or with only stale blocks) yield an empty,
/// clean report.
pub fn validate_machine_tier(machine: &Machine) -> TierReport {
    let blocks = machine.tier_blocks();
    let mem = machine.mem();
    validate_tier_blocks(&blocks, &|pc| {
        mem.read_u32(pc).ok().and_then(|w| decode(w).ok())
    })
}

/// Runs `program` to completion natively under `tier` (no SDT in the
/// loop — this is the reference execution path), then validates every
/// superblock the tier translated along the way. This is the whole-
/// workload entry point `strata verify --validate-tiers` and the
/// execution-tier experiment use: the blocks checked are exactly the
/// ones a real run promotes, not a synthetic corpus.
///
/// # Errors
///
/// Returns the machine's own error string when the program faults or
/// raises a reserved trap — validation needs a completed run.
pub fn validate_program_tier(
    program: &strata_machine::Program,
    tier: strata_machine::ExecTier,
    fuel: u64,
) -> Result<TierReport, String> {
    use strata_machine::syscall::{SyscallState, SDT_TRAP_BASE};
    use strata_machine::{layout, InstrCounter, StepOutcome};

    let mut machine = Machine::new(layout::DEFAULT_MEM_BYTES);
    program.load(&mut machine).map_err(|e| e.to_string())?;
    machine.set_tier(tier);
    let mut syscalls = SyscallState::new();
    let mut counter = InstrCounter::default();
    loop {
        let budget = fuel.saturating_sub(counter.retired());
        match machine
            .run(&mut counter, budget)
            .map_err(|e| e.to_string())?
        {
            StepOutcome::Halted => break,
            StepOutcome::Trap(code) if code < SDT_TRAP_BASE => {
                syscalls.handle(code, &machine);
            }
            StepOutcome::Trap(code) => {
                return Err(format!("reserved trap {code:#x} during native run"));
            }
            StepOutcome::Running => return Err("fuel exhausted before halt".into()),
        }
    }
    Ok(validate_machine_tier(&machine))
}

/// Validates translated superblocks against the guest code `fetch`
/// exposes (`fetch` returns the decoded instruction at a guest pc, or
/// `None` where memory is unmapped/undecodable).
pub fn validate_tier_blocks(
    blocks: &[TierBlockMeta],
    fetch: &dyn Fn(u32) -> Option<Instr>,
) -> TierReport {
    let mut report = TierReport {
        blocks: blocks.len(),
        slots: 0,
        fused_pairs: 0,
        diagnostics: Vec::new(),
    };
    for block in blocks {
        validate_block(block, fetch, &mut report);
    }
    report
        .diagnostics
        .sort_by(|a, b| b.severity().cmp(&a.severity()).then(a.addr.cmp(&b.addr)));
    report
}

fn tier_diag(
    report: &mut TierReport,
    lint: Lint,
    block: &TierBlockMeta,
    i: usize,
    message: String,
    excerpt: Vec<String>,
) {
    let addr = block.base.wrapping_add(i as u32 * 4);
    report.diagnostics.push(Diagnostic {
        lint,
        addr,
        location: format!("tier@{:#x}+{i}", block.base),
        message,
        excerpt,
    });
}

/// Is `op` one of the terminators `translate` may end a block with?
fn is_terminator(op: &Op) -> bool {
    matches!(
        op,
        Op::Jmp { .. }
            | Op::CallD { .. }
            | Op::Jr { .. }
            | Op::Callr { .. }
            | Op::Ret
            | Op::Jmem { .. }
            | Op::Trap { .. }
            | Op::Halt
            | Op::FallThrough { .. }
    )
}

fn validate_block(
    block: &TierBlockMeta,
    fetch: &dyn Fn(u32) -> Option<Instr>,
    report: &mut TierReport,
) {
    if block.slots.is_empty() {
        tier_diag(
            report,
            Lint::TierStructure,
            block,
            0,
            "translated superblock has no slots".into(),
            Vec::new(),
        );
        return;
    }
    let last = block.slots.len() - 1;
    if !is_terminator(&block.slots[last].op) {
        tier_diag(
            report,
            Lint::TierStructure,
            block,
            last,
            format!(
                "superblock does not end in a terminator (last op {:?})",
                block.slots[last].op
            ),
            Vec::new(),
        );
    }
    for (i, slot) in block.slots.iter().enumerate() {
        report.slots += 1;
        let pc = block.base.wrapping_add(i as u32 * 4);

        // Pc anchoring: every resume/backedge/fuel-boundary pc the
        // dispatch loop materializes is `base + 4·i`, so the slot's
        // exported pc and its retire template must agree with it.
        if slot.pc != pc {
            tier_diag(
                report,
                Lint::TierStructure,
                block,
                i,
                format!("slot pc {:#010x} is not anchored at {pc:#010x}", slot.pc),
                Vec::new(),
            );
            continue;
        }

        if let Op::FallThrough { next } = slot.op {
            // The fuel stub retires nothing and must transfer to its own
            // anchored pc — anything else skews every fuel boundary and
            // block-cap resume that lands on it.
            if i != last {
                tier_diag(
                    report,
                    Lint::TierStructure,
                    block,
                    i,
                    "fall-through stub is not the last slot".into(),
                    Vec::new(),
                );
            }
            if i == 0 {
                tier_diag(
                    report,
                    Lint::TierStructure,
                    block,
                    i,
                    "superblock is a bare fall-through stub".into(),
                    Vec::new(),
                );
            }
            if next != slot.pc {
                tier_diag(
                    report,
                    Lint::TierStructure,
                    block,
                    i,
                    format!(
                        "fuel-boundary resume pc {next:#010x} skewed from the stub's \
                         anchored pc {:#010x}",
                        slot.pc
                    ),
                    Vec::new(),
                );
            }
            continue;
        }

        let Some(instr) = fetch(pc) else {
            tier_diag(
                report,
                Lint::TierStructure,
                block,
                i,
                "guest word at the slot's pc is unreadable or undecodable".into(),
                vec![format!("  lowered: {:?}", slot.op)],
            );
            continue;
        };

        // Fused pairs: the dispatch loop retires the branch using the
        // *fused* op's condition and target, with the shadow `CondBr`'s
        // template — the two must agree exactly, and the shadow is
        // additionally validated standalone (which also discharges the
        // fuel boundary falling between compare and branch: the resume
        // pc `pc + 4` is the shadow's anchored slot).
        if let Op::CmpBr { cond, target, .. } | Op::CmpiBr { cond, target, .. } = slot.op {
            report.fused_pairs += 1;
            match block.slots.get(i + 1).map(|s| &s.op) {
                Some(&Op::CondBr {
                    cond: scond,
                    target: starget,
                }) => {
                    if scond != cond || starget != target {
                        tier_diag(
                            report,
                            Lint::TierStructure,
                            block,
                            i,
                            format!(
                                "fused pair disagrees with its shadow branch: fused \
                                 {cond:?}->{target:#010x}, shadow {scond:?}->{starget:#010x}"
                            ),
                            Vec::new(),
                        );
                    }
                }
                other => {
                    tier_diag(
                        report,
                        Lint::TierStructure,
                        block,
                        i,
                        format!(
                            "fused compare+branch has no shadow CondBr at slot {} ({other:?})",
                            i + 1
                        ),
                        Vec::new(),
                    );
                    continue;
                }
            }
        }

        // Path-sensitive comparison: conditional branches are checked
        // under both assumed directions plus predicate agreement;
        // everything else has a single path.
        let guest_pred = Pred::of_instr(instr);
        if let Op::CondBr { cond, .. } = slot.op {
            match guest_pred {
                Some(p) if p == Pred::of_cond(cond) => {}
                _ => {
                    tier_diag(
                        report,
                        Lint::TierLowering,
                        block,
                        i,
                        format!(
                            "branch predicate differs: guest {instr:?} evaluates {guest_pred:?}, \
                             lowered CondBr evaluates {:?}",
                            Pred::of_cond(cond)
                        ),
                        Vec::new(),
                    );
                    continue;
                }
            }
        }
        let assumes: &[Option<bool>] = if guest_pred.is_some() {
            &[Some(false), Some(true)]
        } else {
            &[None]
        };
        for &assume in assumes {
            let guest = step_guest(pc, instr, assume);
            let lowered = match step_op(slot, assume) {
                Ok(sem) => sem,
                Err(msg) => {
                    tier_diag(
                        report,
                        Lint::TierStructure,
                        block,
                        i,
                        msg,
                        vec![format!("  lowered: {:?}", slot.op)],
                    );
                    break;
                }
            };
            if let Some(diff) = first_difference(&guest, &lowered) {
                let path = match assume {
                    Some(true) => " (taken path)",
                    Some(false) => " (not-taken path)",
                    None => "",
                };
                tier_diag(
                    report,
                    Lint::TierLowering,
                    block,
                    i,
                    format!("lowered slot is not equivalent to the guest{path}: {diff}"),
                    vec![
                        format!("  guest:   {instr:?}"),
                        format!("  lowered: {:?}", slot.op),
                    ],
                );
                break;
            }
        }
    }
}

/// Flags reachable overhead words where a dispatch path dead-ends
/// without reaching an accepted landing: a fragment entry, application
/// code, a registered translator trap, a `jmem` transfer slot, or a
/// lookup-routine return. Run over the dataflow pass's discovered
/// edges, so every maximal glue path is covered without re-walking.
pub(crate) fn check_transfer_contract(
    img: &CacheImage,
    labels: &Labels,
    flow: &DataflowResult,
    report: &mut VerifyReport,
) {
    let has_succ = |addr: u32| {
        flow.edges
            .range((addr, 0)..=(addr, u32::MAX))
            .next()
            .is_some()
    };
    let dead_ends: BTreeSet<u32> = flow
        .visited
        .iter()
        .copied()
        .filter(|&a| !has_succ(a))
        .collect();
    for addr in dead_ends {
        let Some(line) = img.line_at(addr) else {
            continue;
        };
        // Application code may do anything, including halting; the
        // contract constrains the translator's own glue.
        if line.origin == Origin::App {
            continue;
        }
        let Some(instr) = line.instr else {
            // Undecodable words are already an error from the audit pass.
            continue;
        };
        let accepted = match instr {
            // Control handed back to the translator at a registered
            // miss/fill trap.
            Instr::Trap { code } => code == TRAP_MISS || code == TRAP_RC_MISS,
            // Declared transfer points: the target provenance checks on
            // these live in the dataflow pass; the contract accepts the
            // transfer shape itself.
            Instr::Jmem { addr: a } => a == SLOT_JUMP_TARGET || a == SLOT_RESUME,
            // A lookup routine returning to its caller's continuation
            // (the continuation edge is modeled at the call site).
            Instr::Ret => true,
            // A return-cache `jr` with no filled entries yet: the table
            // walk found no in-cache successors, which is a state, not a
            // dead path (entries are installed by the runtime).
            Instr::Jr { .. } => true,
            _ => false,
        };
        if !accepted {
            report.diagnostics.push(Diagnostic {
                lint: Lint::TransferContract,
                addr,
                location: labels.locate(addr),
                message: format!(
                    "dispatch path dead-ends at {} without reaching a fragment entry, \
                     application code, a registered trap, or a transfer slot",
                    line.text()
                ),
                excerpt: img.excerpt(addr, 2),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_asm::assemble;
    use strata_machine::{layout, ExecTier, Machine, NullObserver, TierConfig, TierMutation};

    /// A machine running `src` under an aggressive threaded tier so a
    /// single pass through the code translates it.
    fn tiered_machine(src: &str, cfg: TierConfig) -> Machine {
        let code = assemble(layout::APP_BASE, src).unwrap();
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        m.write_code(layout::APP_BASE, &code).unwrap();
        m.cpu_mut().pc = layout::APP_BASE;
        m.cpu_mut()
            .set_reg(strata_isa::Reg::SP, layout::APP_DATA_BASE);
        m.set_tier(ExecTier::Threaded(cfg));
        m.run(&mut NullObserver, 10_000).unwrap();
        m
    }

    fn hot() -> TierConfig {
        TierConfig {
            threshold: 1,
            ..TierConfig::default()
        }
    }

    /// Covers ALU/immediates, fused and unfused branches, memory, stack,
    /// calls, and an indirect return — every lowering family.
    const MIXED: &str = r"
        li r4, 5
        li r5, 3
    loop:
        sub r4, r4, r5
        addi r5, r5, -1
        push r5
        pop r6
        cmp r5, r0
        bne loop
        call fn
        halt
    fn:
        sw r4, -8(sp)
        lw r7, -8(sp)
        ret
    ";

    #[test]
    fn clean_translation_validates() {
        let m = tiered_machine(MIXED, hot());
        let report = validate_machine_tier(&m);
        assert!(report.blocks > 0, "tier translated nothing");
        assert!(report.fused_pairs > 0, "no fused pair exercised");
        assert!(
            report.is_clean(),
            "clean translation flagged:\n{}",
            report.render_text()
        );
    }

    #[test]
    fn every_mutation_class_is_caught() {
        for mutation in TierMutation::ALL {
            // A small block cap guarantees a fall-through stub exists for
            // the fuel-boundary mutation to target.
            let cfg = if mutation == TierMutation::FuelBoundarySkew {
                TierConfig {
                    max_block: 2,
                    ..hot()
                }
            } else {
                hot()
            };
            let mut m = tiered_machine(MIXED, cfg);
            assert!(
                m.corrupt_lowered_op(mutation),
                "no op eligible for {}",
                mutation.name()
            );
            let report = validate_machine_tier(&m);
            assert!(
                !report.is_clean(),
                "{} not caught by the validator",
                mutation.name()
            );
        }
    }

    #[test]
    fn untiered_machine_is_trivially_clean() {
        let code = assemble(layout::APP_BASE, "halt\n").unwrap();
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        m.write_code(layout::APP_BASE, &code).unwrap();
        m.cpu_mut().pc = layout::APP_BASE;
        m.run(&mut NullObserver, 10).unwrap();
        let report = validate_machine_tier(&m);
        assert_eq!(report.blocks, 0);
        assert!(report.is_clean());
    }

    #[test]
    fn stale_blocks_are_not_exported_after_smc() {
        // Translate, then store over the translated code: the export
        // hook must withhold the now-stale blocks rather than let the
        // validator compare them against the new bytes.
        let src = r"
        loop:
            addi r4, r4, 1
            cmpi r4, 3
            blt loop
            halt
        ";
        let code = assemble(layout::APP_BASE, src).unwrap();
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        m.write_code(layout::APP_BASE, &code).unwrap();
        m.cpu_mut().pc = layout::APP_BASE;
        m.set_tier(ExecTier::Threaded(hot()));
        m.run(&mut NullObserver, 10_000).unwrap();
        assert!(
            validate_machine_tier(&m).blocks > 0,
            "hot loop was not translated"
        );
        m.mem_mut()
            .write_u32(
                layout::APP_BASE,
                strata_isa::encode(&strata_isa::Instr::Nop),
            )
            .unwrap();
        let report = validate_machine_tier(&m);
        assert_eq!(
            report.blocks,
            0,
            "stale superblocks exported after SMC:\n{}",
            report.render_text()
        );
    }

    #[test]
    fn validator_is_read_only() {
        let m = tiered_machine(MIXED, hot());
        let before = m.tier_blocks();
        let _ = validate_machine_tier(&m);
        let after = m.tier_blocks();
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            assert_eq!(a.base, b.base);
            assert_eq!(a.slots.len(), b.slots.len());
        }
    }

    #[test]
    fn report_json_shape() {
        let m = tiered_machine(MIXED, hot());
        let rendered = validate_machine_tier(&m).to_json().render();
        for key in [
            "\"clean\":",
            "\"blocks\":",
            "\"slots\":",
            "\"fused_pairs\":",
        ] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }
}
