//! CFG recovery over the cache image: named landmarks (stubs, glue,
//! fragment entries, trampolines, lookup routines, sieve stanzas) and
//! basic-block reconstruction from the edges the dataflow pass discovers.

use std::collections::{BTreeMap, BTreeSet};

use strata_core::FragKind;

use crate::image::CacheImage;

/// Named landmarks in the cache, used to render locations like
/// `miss_tail_reg_flags+0x8` and to seed the dataflow analysis.
#[derive(Debug, Clone)]
pub struct Labels {
    names: BTreeMap<u32, String>,
}

impl Labels {
    /// Builds the landmark map from the image's metadata.
    pub fn build(img: &CacheImage) -> Labels {
        let m = &img.meta;
        let mut names = BTreeMap::new();
        let mut put = |addr: u32, name: String| {
            names.entry(addr).or_insert(name);
        };

        put(m.stubs.restore, "restore".into());
        put(m.stubs.rc_restore, "rc_restore".into());
        put(
            m.stubs.miss_tail_stack_flags,
            "miss_tail_stack_flags".into(),
        );
        put(m.stubs.miss_tail_reg_flags, "miss_tail_reg_flags".into());
        put(m.stubs.shared_miss_glue, "shared_miss_glue".into());
        put(m.stubs.nofill_miss_glue, "nofill_miss_glue".into());
        put(m.stubs.rc_miss, "rc_miss".into());
        for b in &m.binds {
            if let Some(glue) = b.glue {
                put(glue, format!("glue[{}:{}]", b.index, b.id));
            }
            if let Some(routine) = b.lookup_routine {
                put(routine, format!("lookup[{}:{}]", b.index, b.id));
            }
        }
        for f in &m.fragments {
            let kind = match f.kind {
                FragKind::Body => "frag",
                FragKind::ReturnPoint => "rp_frag",
            };
            put(f.entry, format!("{kind}@{:#x}", f.app_addr));
            if f.restore_entry != f.entry {
                put(f.restore_entry, format!("{kind}@{:#x}.restore", f.app_addr));
            }
        }
        for e in &m.exit_sites {
            put(e.patch_addr, format!("exit->{:#x}", e.target));
        }
        for (i, a) in m.adaptive_sites.iter().enumerate() {
            put(a.entry_jmp, format!("adaptive[{i}]"));
        }
        // Sieve stanza heads live in the cache and are only named by the
        // bucket tables that point at them.
        for b in &m.binds {
            if let Some(t) = b.table {
                if matches!(t.kind, strata_core::TableKind::SieveBuckets) {
                    for (i, &w) in img.table_words(t.base).iter().enumerate() {
                        if img.in_cache(w) && !names.contains_key(&w) {
                            names.insert(w, format!("sieve[{}:{i}]", b.index));
                        }
                    }
                }
            }
        }
        Labels { names }
    }

    /// Renders `addr` relative to the nearest landmark at or below it.
    pub fn locate(&self, addr: u32) -> String {
        match self.names.range(..=addr).next_back() {
            Some((&base, name)) if addr - base < 0x400 => {
                if base == addr {
                    name.clone()
                } else {
                    format!("{name}+{:#x}", addr - base)
                }
            }
            _ => format!("{addr:#010x}"),
        }
    }

    /// The landmark exactly at `addr`, if any.
    pub fn at(&self, addr: u32) -> Option<&str> {
        self.names.get(&addr).map(String::as_str)
    }
}

/// Basic-block statistics recovered from the traversal: leaders are the
/// landmark/seed addresses plus every edge target; a block runs from its
/// leader to the next leader or the first non-fallthrough transfer.
pub fn block_stats(
    visited: &BTreeSet<u32>,
    edges: &BTreeSet<(u32, u32)>,
    seeds: &[u32],
) -> (usize, usize) {
    let mut leaders: BTreeSet<u32> = seeds.iter().copied().collect();
    for &(from, to) in edges {
        // A non-adjacent edge makes its target a leader; fallthrough
        // (from + 4 == to) extends the block.
        if from + 4 != to {
            leaders.insert(to);
        }
    }
    leaders.retain(|a| visited.contains(a));
    (leaders.len(), edges.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    use strata_arch::ArchProfile;
    use strata_asm::assemble;
    use strata_core::{FragmentMeta, Sdt, SdtConfig};
    use strata_machine::{layout, ExecTier, Machine, NullObserver, Program, TierConfig};

    use crate::image::CacheImage;

    #[test]
    fn block_stats_counts_leaders_and_edges() {
        let visited: BTreeSet<u32> = [0x100, 0x104, 0x108, 0x200].into_iter().collect();
        let edges: BTreeSet<(u32, u32)> = [(0x100, 0x104), (0x104, 0x108), (0x108, 0x200)]
            .into_iter()
            .collect();
        let (blocks, n_edges) = block_stats(&visited, &edges, &[0x100]);
        assert_eq!(blocks, 2, "seed block plus the jump target");
        assert_eq!(n_edges, 3);
    }

    /// An orphan block — a seed the traversal visited but that has no
    /// edges in or out — still counts as a block; an edge whose target
    /// was never visited (e.g. a jump out of the analyzed region) must
    /// not fabricate a phantom leader.
    #[test]
    fn orphan_blocks_and_unvisited_targets() {
        let visited: BTreeSet<u32> = [0x100, 0x200].into_iter().collect();
        let edges: BTreeSet<(u32, u32)> = [(0x100, 0x300)].into_iter().collect();
        let (blocks, n_edges) = block_stats(&visited, &edges, &[0x100, 0x200]);
        assert_eq!(blocks, 2, "seed + orphan, but no leader at unvisited 0x300");
        assert_eq!(n_edges, 1);
        // Degenerate input: nothing visited at all.
        assert_eq!(block_stats(&BTreeSet::new(), &BTreeSet::new(), &[]), (0, 0));
    }

    fn captured_image() -> CacheImage {
        let src = "\
main:
    call f
    li r5, 3
    trap 0x1
    halt
f:
    addi r4, r4, 1
    ret
";
        let code = assemble(layout::APP_BASE, src).expect("program assembles");
        let program = Program::new("cfg-edge", code, Vec::new());
        let mut sdt = Sdt::new(SdtConfig::ibtc_inline(64), &program).expect("sdt constructs");
        sdt.run(ArchProfile::x86_like(), 1_000_000)
            .expect("run completes");
        CacheImage::capture(&sdt)
    }

    /// A zero-length fragment — metadata naming an entry with no words
    /// behind it (the cache cursor itself) — must be labeled and seeded
    /// without panicking anywhere downstream, and must surface as a
    /// visited dead end rather than a recovered block with contents.
    #[test]
    fn zero_length_fragment_is_labeled_but_inert() {
        let mut img = captured_image();
        let ghost = img.meta.cache_base + img.meta.cache_used;
        img.meta.fragments.push(FragmentMeta {
            app_addr: 0xdead_0000,
            kind: FragKind::Body,
            entry: ghost,
            restore_entry: ghost,
            body: ghost,
        });
        img.meta.fragments.sort_by_key(|f| f.entry);
        let labels = Labels::build(&img);
        assert_eq!(labels.at(ghost), Some("frag@0xdead0000"));
        let flow = crate::dataflow::run(&img, &labels);
        assert!(
            flow.visited.contains(&ghost),
            "the ghost entry is seeded and visited"
        );
        assert!(
            !flow.edges.iter().any(|&(from, _)| from == ghost),
            "no words behind the entry, so no successors"
        );
        // Block recovery treats it as an empty leader, never a panic.
        let before = block_stats(&flow.visited, &flow.edges, &flow.seeds);
        assert!(before.0 > 0);
    }

    /// A superblock whose head is invalidated by self-modifying code
    /// mid-session: the tier must retranslate against current memory, so
    /// the exported metadata never contains the stale lowering, and the
    /// blocks recovered from it stay consistent (pc-anchored slots, one
    /// leader per exported base).
    #[test]
    fn smc_invalidated_superblock_head_is_retranslated() {
        let old = strata_isa::encode(&strata_isa::Instr::Addi {
            rd: strata_isa::Reg::R2,
            rs1: strata_isa::Reg::R2,
            imm: 3,
        });
        let new = strata_isa::encode(&strata_isa::Instr::Addi {
            rd: strata_isa::Reg::R2,
            rs1: strata_isa::Reg::R2,
            imm: 5,
        });
        let src = format!(
            "\
main:
    li r1, 40
loop:
    addi r1, r1, -1
    addi r2, r2, 3
    cmpi r1, 0
    bne loop
    cmpi r10, 1
    beq done
    li r10, 1
    li r9, {new}
    li r8, PATCH
    sw r9, 0(r8)
    li r1, 40
    jmp loop
done:
    halt
"
        );
        // Resolve the patch site (the loop-body `addi r2, r2, 3`) from a
        // first assembly pass, then splice its address in.
        let probe = assemble(layout::APP_BASE, &src.replace("PATCH", "0")).expect("assembles");
        let off = probe.iter().position(|&w| w == old).expect("patch site");
        let patch_addr = layout::APP_BASE + 4 * off as u32;
        let code = assemble(
            layout::APP_BASE,
            &src.replace("PATCH", &patch_addr.to_string()),
        )
        .expect("assembles");

        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        Program::new("cfg-smc", code, Vec::new())
            .load(&mut m)
            .expect("loads");
        // Threshold 3: the patched word is interpreted (and re-
        // predecoded) before the post-flush promotion, so the rebuilt
        // superblock extends across the patch site instead of stopping
        // at the not-yet-decoded boundary.
        m.set_tier(ExecTier::Threaded(TierConfig {
            threshold: 3,
            ..TierConfig::default()
        }));
        m.run(&mut NullObserver, 100_000).expect("halts");

        let blocks = m.tier_blocks();
        assert!(!blocks.is_empty(), "hot loop must be translated");
        // The stale lowering (imm 3) must be gone everywhere; the slot at
        // the patched pc, if exported, carries the new immediate.
        let mut saw_patch_site = false;
        for b in &blocks {
            for (i, s) in b.slots.iter().enumerate() {
                assert_eq!(s.pc, b.base + 4 * i as u32, "slots stay pc-anchored");
                if s.pc == patch_addr {
                    match s.op {
                        strata_machine::LoweredOp::Addi { imm, .. } => {
                            saw_patch_site = true;
                            assert_eq!(imm, 5, "stale pre-SMC lowering exported")
                        }
                        // A block ending just before the site lowers the
                        // boundary as a fall-through stub, not the guest
                        // instruction — that slot says nothing about SMC.
                        strata_machine::LoweredOp::FallThrough { .. } => {}
                        ref other => panic!("unexpected lowering {other:?}"),
                    }
                }
            }
        }
        assert!(
            saw_patch_site,
            "retranslated loop must cover the patch site"
        );
        // CFG recovery over the superblock skeleton: one leader per
        // exported base when seeded with the bases themselves.
        let visited: BTreeSet<u32> = blocks
            .iter()
            .flat_map(|b| b.slots.iter().map(|s| s.pc))
            .collect();
        let edges: BTreeSet<(u32, u32)> = blocks
            .iter()
            .flat_map(|b| b.slots.windows(2).map(|w| (w[0].pc, w[1].pc)))
            .collect();
        let seeds: Vec<u32> = blocks.iter().map(|b| b.base).collect();
        let (n_blocks, _) = block_stats(&visited, &edges, &seeds);
        assert_eq!(n_blocks, seeds.len(), "one leader per superblock");
    }
}
