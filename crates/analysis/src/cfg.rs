//! CFG recovery over the cache image: named landmarks (stubs, glue,
//! fragment entries, trampolines, lookup routines, sieve stanzas) and
//! basic-block reconstruction from the edges the dataflow pass discovers.

use std::collections::{BTreeMap, BTreeSet};

use strata_core::FragKind;

use crate::image::CacheImage;

/// Named landmarks in the cache, used to render locations like
/// `miss_tail_reg_flags+0x8` and to seed the dataflow analysis.
#[derive(Debug, Clone)]
pub struct Labels {
    names: BTreeMap<u32, String>,
}

impl Labels {
    /// Builds the landmark map from the image's metadata.
    pub fn build(img: &CacheImage) -> Labels {
        let m = &img.meta;
        let mut names = BTreeMap::new();
        let mut put = |addr: u32, name: String| {
            names.entry(addr).or_insert(name);
        };

        put(m.stubs.restore, "restore".into());
        put(m.stubs.rc_restore, "rc_restore".into());
        put(
            m.stubs.miss_tail_stack_flags,
            "miss_tail_stack_flags".into(),
        );
        put(m.stubs.miss_tail_reg_flags, "miss_tail_reg_flags".into());
        put(m.stubs.shared_miss_glue, "shared_miss_glue".into());
        put(m.stubs.nofill_miss_glue, "nofill_miss_glue".into());
        put(m.stubs.rc_miss, "rc_miss".into());
        for b in &m.binds {
            if let Some(glue) = b.glue {
                put(glue, format!("glue[{}:{}]", b.index, b.id));
            }
            if let Some(routine) = b.lookup_routine {
                put(routine, format!("lookup[{}:{}]", b.index, b.id));
            }
        }
        for f in &m.fragments {
            let kind = match f.kind {
                FragKind::Body => "frag",
                FragKind::ReturnPoint => "rp_frag",
            };
            put(f.entry, format!("{kind}@{:#x}", f.app_addr));
            if f.restore_entry != f.entry {
                put(f.restore_entry, format!("{kind}@{:#x}.restore", f.app_addr));
            }
        }
        for e in &m.exit_sites {
            put(e.patch_addr, format!("exit->{:#x}", e.target));
        }
        for (i, a) in m.adaptive_sites.iter().enumerate() {
            put(a.entry_jmp, format!("adaptive[{i}]"));
        }
        // Sieve stanza heads live in the cache and are only named by the
        // bucket tables that point at them.
        for b in &m.binds {
            if let Some(t) = b.table {
                if matches!(t.kind, strata_core::TableKind::SieveBuckets) {
                    for (i, &w) in img.table_words(t.base).iter().enumerate() {
                        if img.in_cache(w) && !names.contains_key(&w) {
                            names.insert(w, format!("sieve[{}:{i}]", b.index));
                        }
                    }
                }
            }
        }
        Labels { names }
    }

    /// Renders `addr` relative to the nearest landmark at or below it.
    pub fn locate(&self, addr: u32) -> String {
        match self.names.range(..=addr).next_back() {
            Some((&base, name)) if addr - base < 0x400 => {
                if base == addr {
                    name.clone()
                } else {
                    format!("{name}+{:#x}", addr - base)
                }
            }
            _ => format!("{addr:#010x}"),
        }
    }

    /// The landmark exactly at `addr`, if any.
    pub fn at(&self, addr: u32) -> Option<&str> {
        self.names.get(&addr).map(String::as_str)
    }
}

/// Basic-block statistics recovered from the traversal: leaders are the
/// landmark/seed addresses plus every edge target; a block runs from its
/// leader to the next leader or the first non-fallthrough transfer.
pub fn block_stats(
    visited: &BTreeSet<u32>,
    edges: &BTreeSet<(u32, u32)>,
    seeds: &[u32],
) -> (usize, usize) {
    let mut leaders: BTreeSet<u32> = seeds.iter().copied().collect();
    for &(from, to) in edges {
        // A non-adjacent edge makes its target a leader; fallthrough
        // (from + 4 == to) extends the block.
        if from + 4 != to {
            leaders.insert(to);
        }
    }
    leaders.retain(|a| visited.contains(a));
    (leaders.len(), edges.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_stats_counts_leaders_and_edges() {
        let visited: BTreeSet<u32> = [0x100, 0x104, 0x108, 0x200].into_iter().collect();
        let edges: BTreeSet<(u32, u32)> = [(0x100, 0x104), (0x104, 0x108), (0x108, 0x200)]
            .into_iter()
            .collect();
        let (blocks, n_edges) = block_stats(&visited, &edges, &[0x100]);
        assert_eq!(blocks, 2, "seed block plus the jump target");
        assert_eq!(n_edges, 3);
    }
}
