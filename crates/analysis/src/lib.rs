//! strata-verify: a static checker for the code the translator emits.
//!
//! The fragment cache mixes copied application instructions with emitted
//! overhead — dispatch probes, miss trampolines, context-switch stubs —
//! and the correctness argument for every indirect-branch mechanism in
//! the paper rests on invariants that nothing in the translator itself
//! enforces: overhead code must not clobber application flags before
//! saving them, must only touch the scratch registers it spilled, must
//! keep the application stack balanced, and every indirect exit from the
//! cache must land on a registered dispatch path.
//!
//! This crate checks those invariants after the fact. [`CacheImage`]
//! snapshots the occupied cache, the translator's structural metadata,
//! and every lookup table; [`verify_image`] then:
//!
//! 1. recovers a CFG (labeled landmarks + edges discovered by abstract
//!    interpretation over every reachable word),
//! 2. runs a word-level dataflow pass tracking flags location, pushed
//!    tokens, scratch/bulk register discipline, and the provenance of
//!    values flowing into dispatch transfers, and
//! 3. audits the tables: IBTC tags against the fragment map, sieve
//!    buckets against stanza heads, return-cache and shadow-stack
//!    entries, adaptive probe constants, and exit-site link states.
//!
//! Findings come back as a [`VerifyReport`] of [`Diagnostic`]s with
//! severities ([`Severity`]); a report [`is_clean`](VerifyReport::is_clean)
//! when nothing at warning level or above fired.

mod audit;
mod cfg;
mod dataflow;
mod diag;
mod image;
mod sym;
mod validate;

pub use cfg::Labels;
pub use diag::{Diagnostic, Lint, Severity, VerifyReport, VerifyStats, SCHEMA_VERSION};
pub use image::CacheImage;
pub use validate::{
    validate_machine_tier, validate_program_tier, validate_tier_blocks, TierReport,
};

use strata_core::Sdt;

/// Captures `sdt`'s cache and verifies it.
pub fn verify(sdt: &Sdt) -> VerifyReport {
    verify_image(&CacheImage::capture(sdt))
}

/// Verifies a previously captured (possibly deliberately corrupted) image.
pub fn verify_image(img: &CacheImage) -> VerifyReport {
    let labels = Labels::build(img);
    let flow = dataflow::run(img, &labels);
    let mut report = VerifyReport {
        config: img.config.clone(),
        diagnostics: flow.diagnostics.clone(),
        stats: VerifyStats::default(),
    };
    validate::check_transfer_contract(img, &labels, &flow, &mut report);
    audit::run(img, &labels, &flow, &mut report);
    report.finish();
    report
}
