//! A self-contained snapshot of the fragment cache and everything the
//! checker needs to audit it: disassembled words with origin tags, the
//! translator's structural metadata, and copies of every lookup table.
//!
//! Capturing an image decouples verification from the live [`Sdt`]: the
//! checker only reads the image, and tests can deliberately corrupt one
//! word ([`CacheImage::patch_word`]) to prove a lint fires.

use std::collections::HashMap;

use strata_core::{CacheLine, CacheMeta, FlagsPolicy, RetMechanism, Sdt};

/// An immutable snapshot of one SDT run's emitted code and tables.
#[derive(Debug, Clone)]
pub struct CacheImage {
    /// Disassembled cache words in address order.
    pub lines: Vec<CacheLine>,
    /// Structural metadata exported by the translator.
    pub meta: CacheMeta,
    /// The flags-preservation policy the code was emitted under.
    pub flags: FlagsPolicy,
    /// Whether returns use the fast-return mechanism (translated return
    /// addresses on the application stack — the only configuration where
    /// application-origin `call`/`ret` legitimately appear in the cache).
    pub fastret: bool,
    /// Per-class dispatch summary (`jump=…, call=…, ret=…`).
    pub config: String,
    /// Snapshots of every lookup table, keyed by base address.
    tables: HashMap<u32, Vec<u32>>,
    /// Snapshot of the shadow return stack region, when enabled.
    shadow_words: Vec<u32>,
}

impl CacheImage {
    /// Captures the occupied cache, metadata, and table contents of `sdt`.
    pub fn capture(sdt: &Sdt) -> CacheImage {
        let lines = sdt.disassemble_cache(usize::MAX);
        let meta = sdt.cache_meta();
        let mem = sdt.machine().mem();
        let read = |addr: u32| mem.read_u32(addr).unwrap_or(0);

        let mut tables = HashMap::new();
        for t in meta.all_tables() {
            let words = (t.size_bytes() / 4) as usize;
            tables
                .entry(t.base)
                .or_insert_with(|| (0..words).map(|i| read(t.base + 4 * i as u32)).collect());
        }
        let shadow_words = match meta.shadow {
            Some((base, mask)) => {
                let words = ((mask + 1) / 4) as usize;
                (0..words).map(|i| read(base + 4 * i as u32)).collect()
            }
            None => Vec::new(),
        };

        let config = sdt
            .policy_summary()
            .into_iter()
            .map(|(class, mech)| format!("{class}={mech}"))
            .collect::<Vec<_>>()
            .join(", ");

        CacheImage {
            lines,
            meta,
            flags: sdt.config().flags,
            fastret: sdt.config().ret == RetMechanism::FastReturn,
            config,
            tables,
            shadow_words,
        }
    }

    /// The line at cache address `addr`, if within the occupied cache.
    pub fn line_at(&self, addr: u32) -> Option<&CacheLine> {
        let base = self.meta.cache_base;
        if addr < base || !(addr - base).is_multiple_of(4) {
            return None;
        }
        self.lines.get(((addr - base) / 4) as usize)
    }

    /// True when `addr` lies inside the occupied cache.
    pub fn in_cache(&self, addr: u32) -> bool {
        self.line_at(addr).is_some()
    }

    /// The snapshot of the table based at `base` (empty if unknown).
    pub fn table_words(&self, base: u32) -> &[u32] {
        self.tables.get(&base).map_or(&[], Vec::as_slice)
    }

    /// The shadow return stack snapshot (empty when disabled).
    pub fn shadow_words(&self) -> &[u32] {
        &self.shadow_words
    }

    /// Overwrites one cache word in the snapshot (test hook: prove the
    /// checker catches a deliberately corrupted instruction). Panics if
    /// `addr` is outside the occupied cache.
    pub fn patch_word(&mut self, addr: u32, word: u32) {
        let base = self.meta.cache_base;
        let idx = ((addr - base) / 4) as usize;
        let line = &mut self.lines[idx];
        line.word = word;
        line.instr = strata_isa::decode(word).ok();
    }

    /// A short disassembly excerpt around `addr`, the anchor marked `>`.
    pub fn excerpt(&self, addr: u32, context: usize) -> Vec<String> {
        let base = self.meta.cache_base;
        if addr < base {
            return Vec::new();
        }
        let idx = ((addr - base) / 4) as usize;
        let lo = idx.saturating_sub(context);
        let hi = (idx + context + 1).min(self.lines.len());
        self.lines[lo..hi]
            .iter()
            .map(|l| {
                let mark = if l.addr == addr { '>' } else { ' ' };
                format!(
                    "{mark} {:#010x}  {:<24} ; {}",
                    l.addr,
                    l.text(),
                    l.origin.label()
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_arch::ArchProfile;
    use strata_asm::assemble;
    use strata_core::SdtConfig;
    use strata_machine::{layout, Program};

    fn image_for(src: &str, cfg: SdtConfig) -> CacheImage {
        let code = assemble(layout::APP_BASE, src).unwrap();
        let program = Program::new("t", code, Vec::new());
        let mut sdt = Sdt::new(cfg, &program).unwrap();
        sdt.run(ArchProfile::x86_like(), 1_000_000).unwrap();
        CacheImage::capture(&sdt)
    }

    #[test]
    fn capture_snapshots_lines_and_tables() {
        let img = image_for(
            "li r9, t\njr r9\nt:\nli r4, 1\ntrap 0x1\nhalt\n",
            SdtConfig::ibtc_inline(64),
        );
        assert_eq!(img.lines.len() * 4, img.meta.cache_used as usize);
        let t = img.meta.binds[0].table.unwrap();
        assert_eq!(img.table_words(t.base).len(), (t.size_bytes() / 4) as usize);
        // The taken indirect branch filled at least one tagged entry.
        assert!(img.table_words(t.base).iter().any(|&w| w != 0));
    }

    #[test]
    fn patch_word_redecodes() {
        let mut img = image_for("halt\n", SdtConfig::reentry());
        let addr = img.meta.cache_base;
        img.patch_word(addr, 0xFFFF_FFFF);
        assert!(img.line_at(addr).unwrap().instr.is_none());
        assert!(img.excerpt(addr, 1).iter().any(|l| l.contains(".word")));
    }
}
