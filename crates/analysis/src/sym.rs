//! Symbolic SimRISC semantics for translation validation.
//!
//! Two independently written small-step symbolic evaluators live here:
//!
//! * [`step_guest`] mirrors the interpreter's reference semantics
//!   (`Machine::exec` in `strata-machine`) for one guest instruction,
//! * [`step_op`] mirrors the threaded tier's dispatch loop (`run_ops`)
//!   for one lowered op plus its stored retire-event template.
//!
//! Both execute from the same fresh symbolic state — every register `r`
//! holds the opaque entry value `Init(r)`, the flags hold `Init` — and
//! produce a [`SlotSem`]: the post register file, post flags, the single
//! data access (the only fault source), the store performed, the retire
//! event the observer would see, the next pc, and the machine outcome.
//! Expressions are built canonically from each side's *concrete* code,
//! so syntactic equality of the two `SlotSem`s is exactly per-slot
//! observational equivalence: same register/flags/memory effects, same
//! retire event (including patched dynamic fields), same fault
//! condition (both sides attempt the same access before committing any
//! state), and same control outcome.
//!
//! Conditional branches are path-split: the validator runs both
//! evaluators under `assume = taken` and `assume = not taken` and
//! additionally compares the branch predicates themselves ([`Pred`]),
//! making the per-slot check path-sensitive without enumerating paths
//! through the block (induction over anchored slots covers those).

use strata_isa::{ControlKind, Instr, InstrClass, Reg};
use strata_machine::{LoweredCond, LoweredOp as Op, RetireEvent, TierSlotMeta};

/// A word-valued symbolic expression over the slot-entry state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SymExpr {
    /// The value register `r` held when the slot was entered.
    Init(Reg),
    /// A compile-time constant.
    Const(u32),
    /// The entry flags encoded as `Flags::to_bits()` would.
    InitFlagsBits,
    /// A binary operation (wrapping/defined semantics per [`BinOp`]).
    Bin(BinOp, Box<SymExpr>, Box<SymExpr>),
    /// Sign-extension of the low byte of the operand.
    SignExt8(Box<SymExpr>),
    /// The value loaded from `addr`; `len == 1` yields the
    /// zero-extended byte, `len == 4` the word.
    Load { addr: Box<SymExpr>, len: u8 },
}

/// Binary operators (all with SimRISC's defined semantics: wrapping
/// arithmetic, division by zero yielding `u32::MAX`, remainder by zero
/// yielding the dividend, shifts taking the operand as-is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Divu,
    Remu,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
}

impl SymExpr {
    pub(crate) fn c(v: u32) -> SymExpr {
        SymExpr::Const(v)
    }

    pub(crate) fn bin(op: BinOp, a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::Bin(op, Box::new(a), Box::new(b))
    }

    pub(crate) fn load(addr: SymExpr, len: u8) -> SymExpr {
        SymExpr::Load {
            addr: Box::new(addr),
            len,
        }
    }
}

/// Symbolic flags state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SymFlags {
    /// The flags the slot was entered with.
    Init,
    /// `Flags::from_compare(lhs, rhs)`.
    Compare(SymExpr, SymExpr),
    /// `Flags::from_bits(word)` (from `popf`).
    FromBits(SymExpr),
}

/// A conditional-branch predicate over the flags it evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pred {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl Pred {
    /// The predicate a guest conditional branch evaluates (per the
    /// interpreter's `branch` arms).
    pub(crate) fn of_instr(instr: Instr) -> Option<Pred> {
        Some(match instr {
            Instr::Beq { .. } => Pred::Eq,
            Instr::Bne { .. } => Pred::Ne,
            Instr::Blt { .. } => Pred::Lt,
            Instr::Bge { .. } => Pred::Ge,
            Instr::Bltu { .. } => Pred::Ltu,
            Instr::Bgeu { .. } => Pred::Geu,
            _ => return None,
        })
    }

    /// The predicate a lowered condition evaluates (per `Cond::eval`).
    pub(crate) fn of_cond(cond: LoweredCond) -> Pred {
        match cond {
            LoweredCond::Eq => Pred::Eq,
            LoweredCond::Ne => Pred::Ne,
            LoweredCond::Lt => Pred::Lt,
            LoweredCond::Ge => Pred::Ge,
            LoweredCond::Ltu => Pred::Ltu,
            LoweredCond::Geu => Pred::Geu,
        }
    }
}

/// The retire event as the observer would see it, with dynamic fields
/// symbolic.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SymEvent {
    pub pc: u32,
    pub instr: Instr,
    pub class: InstrClass,
    /// Data access reported: (address, length, is_store).
    pub mem: Option<(SymExpr, u8, bool)>,
    pub kind: ControlKind,
    pub taken: bool,
    pub target: SymExpr,
    pub indirect: bool,
}

/// Where control goes after the slot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NextPc {
    Const(u32),
    Expr(SymExpr),
}

/// Machine-level outcome after the slot retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotOutcome {
    Running,
    Trap(u16),
    Halt,
}

/// Everything observable about one slot's execution from a fresh
/// symbolic state. Syntactic equality of two `SlotSem`s is per-slot
/// observational equivalence.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SlotSem {
    /// Post-state of the register file (index order).
    pub regs: [SymExpr; Reg::COUNT],
    /// Post-state of the flags.
    pub flags: SymFlags,
    /// The single data access attempted, if any: (addr, len, is_store).
    /// Both sides attempt it before committing any state, so equal
    /// accesses mean equal fault behavior.
    pub access: Option<(SymExpr, u8, bool)>,
    /// The store performed, if any: (addr, len, value).
    pub store: Option<(SymExpr, u8, SymExpr)>,
    /// The retire event emitted (`None` for the fall-through stub,
    /// which retires nothing).
    pub event: Option<SymEvent>,
    /// The next pc.
    pub next: NextPc,
    /// Trap/halt outcome.
    pub outcome: SlotOutcome,
}

fn fresh_regs() -> [SymExpr; Reg::COUNT] {
    std::array::from_fn(|i| SymExpr::Init(Reg::try_from(i as u8).expect("i < 16")))
}

/// Names the first field in which two slot semantics differ, for
/// diagnostics. `None` when they are equal.
pub(crate) fn first_difference(guest: &SlotSem, op: &SlotSem) -> Option<String> {
    for r in Reg::all() {
        let (g, o) = (&guest.regs[r.index()], &op.regs[r.index()]);
        if g != o {
            return Some(format!("{r} post-value: guest {g:?}, lowered {o:?}"));
        }
    }
    if guest.flags != op.flags {
        return Some(format!(
            "flags: guest {:?}, lowered {:?}",
            guest.flags, op.flags
        ));
    }
    if guest.access != op.access {
        return Some(format!(
            "data access: guest {:?}, lowered {:?}",
            guest.access, op.access
        ));
    }
    if guest.store != op.store {
        return Some(format!(
            "store effect: guest {:?}, lowered {:?}",
            guest.store, op.store
        ));
    }
    match (&guest.event, &op.event) {
        (Some(g), Some(o)) if g != o => {
            let field = if g.pc != o.pc {
                format!("event pc: guest {:#x}, lowered {:#x}", g.pc, o.pc)
            } else if g.instr != o.instr {
                format!("event instr: guest {:?}, lowered {:?}", g.instr, o.instr)
            } else if g.class != o.class {
                format!("event class: guest {:?}, lowered {:?}", g.class, o.class)
            } else if g.mem != o.mem {
                format!("event mem access: guest {:?}, lowered {:?}", g.mem, o.mem)
            } else if g.kind != o.kind || g.taken != o.taken || g.indirect != o.indirect {
                format!(
                    "event control bits: guest {:?}/{}/{}, lowered {:?}/{}/{}",
                    g.kind, g.taken, g.indirect, o.kind, o.taken, o.indirect
                )
            } else {
                format!(
                    "event control target: guest {:?}, lowered {:?}",
                    g.target, o.target
                )
            };
            return Some(field);
        }
        (Some(_), None) => return Some("lowered op retires nothing, guest retires".into()),
        (None, Some(_)) => return Some("lowered op retires, guest retires nothing".into()),
        _ => {}
    }
    if guest.next != op.next {
        return Some(format!(
            "next pc: guest {:?}, lowered {:?}",
            guest.next, op.next
        ));
    }
    if guest.outcome != op.outcome {
        return Some(format!(
            "outcome: guest {:?}, lowered {:?}",
            guest.outcome, op.outcome
        ));
    }
    None
}

/// Symbolically executes one guest instruction at `pc` per the
/// interpreter's reference semantics. For conditional branches the
/// caller supplies the assumed direction in `assume`.
pub(crate) fn step_guest(pc: u32, instr: Instr, assume: Option<bool>) -> SlotSem {
    use BinOp::*;
    use Instr as I;
    use SymExpr as E;

    let next = pc.wrapping_add(4);
    let mut sem = SlotSem {
        regs: fresh_regs(),
        flags: SymFlags::Init,
        access: None,
        store: None,
        event: None,
        next: NextPc::Const(next),
        outcome: SlotOutcome::Running,
    };
    let mut ev = SymEvent {
        pc,
        instr,
        class: instr.class(),
        mem: None,
        kind: instr.control_kind(),
        taken: false,
        target: E::c(next),
        indirect: false,
    };
    let init = |r: Reg| E::Init(r);
    macro_rules! set {
        ($rd:expr, $val:expr) => {
            sem.regs[$rd.index()] = $val
        };
    }
    // The masked register-operand shift amount (`& 31`), exactly as the
    // interpreter computes it.
    let masked = |r: Reg| E::bin(And, init(r), E::c(31));

    match instr {
        I::Add { rd, rs1, rs2 } => set!(rd, E::bin(Add, init(rs1), init(rs2))),
        I::Sub { rd, rs1, rs2 } => set!(rd, E::bin(Sub, init(rs1), init(rs2))),
        I::Mul { rd, rs1, rs2 } => set!(rd, E::bin(Mul, init(rs1), init(rs2))),
        I::Divu { rd, rs1, rs2 } => set!(rd, E::bin(Divu, init(rs1), init(rs2))),
        I::Remu { rd, rs1, rs2 } => set!(rd, E::bin(Remu, init(rs1), init(rs2))),
        I::And { rd, rs1, rs2 } => set!(rd, E::bin(And, init(rs1), init(rs2))),
        I::Or { rd, rs1, rs2 } => set!(rd, E::bin(Or, init(rs1), init(rs2))),
        I::Xor { rd, rs1, rs2 } => set!(rd, E::bin(Xor, init(rs1), init(rs2))),
        I::Sll { rd, rs1, rs2 } => set!(rd, E::bin(Sll, init(rs1), masked(rs2))),
        I::Srl { rd, rs1, rs2 } => set!(rd, E::bin(Srl, init(rs1), masked(rs2))),
        I::Sra { rd, rs1, rs2 } => set!(rd, E::bin(Sra, init(rs1), masked(rs2))),
        I::Mov { rd, rs } => set!(rd, init(rs)),
        I::Addi { rd, rs1, imm } => set!(rd, E::bin(Add, init(rs1), E::c(imm as i32 as u32))),
        I::Andi { rd, rs1, imm } => set!(rd, E::bin(And, init(rs1), E::c(imm as u32))),
        I::Ori { rd, rs1, imm } => set!(rd, E::bin(Or, init(rs1), E::c(imm as u32))),
        I::Xori { rd, rs1, imm } => set!(rd, E::bin(Xor, init(rs1), E::c(imm as u32))),
        I::Slli { rd, rs1, shamt } => set!(rd, E::bin(Sll, init(rs1), E::c(shamt as u32))),
        I::Srli { rd, rs1, shamt } => set!(rd, E::bin(Srl, init(rs1), E::c(shamt as u32))),
        I::Srai { rd, rs1, shamt } => set!(rd, E::bin(Sra, init(rs1), E::c(shamt as u32))),
        I::Lui { rd, imm } => set!(rd, E::c((imm as u32) << 16)),
        I::Lw { rd, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off as i32 as u32));
            sem.access = Some((a.clone(), 4, false));
            ev.mem = Some((a.clone(), 4, false));
            set!(rd, E::load(a, 4));
        }
        I::Sw { rs2, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off as i32 as u32));
            sem.access = Some((a.clone(), 4, true));
            ev.mem = Some((a.clone(), 4, true));
            sem.store = Some((a, 4, init(rs2)));
        }
        I::Lb { rd, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off as i32 as u32));
            sem.access = Some((a.clone(), 1, false));
            ev.mem = Some((a.clone(), 1, false));
            set!(rd, E::SignExt8(Box::new(E::load(a, 1))));
        }
        I::Lbu { rd, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off as i32 as u32));
            sem.access = Some((a.clone(), 1, false));
            ev.mem = Some((a.clone(), 1, false));
            set!(rd, E::load(a, 1));
        }
        I::Sb { rs2, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off as i32 as u32));
            sem.access = Some((a.clone(), 1, true));
            ev.mem = Some((a.clone(), 1, true));
            sem.store = Some((a, 1, init(rs2)));
        }
        I::Lwa { rd, addr } => {
            let a = E::c(addr);
            sem.access = Some((a.clone(), 4, false));
            ev.mem = Some((a.clone(), 4, false));
            set!(rd, E::load(a, 4));
        }
        I::Swa { rs, addr } => {
            let a = E::c(addr);
            sem.access = Some((a.clone(), 4, true));
            ev.mem = Some((a.clone(), 4, true));
            sem.store = Some((a, 4, init(rs)));
        }
        I::Push { rs } => {
            let sp = E::bin(Sub, init(Reg::SP), E::c(4));
            sem.access = Some((sp.clone(), 4, true));
            ev.mem = Some((sp.clone(), 4, true));
            sem.store = Some((sp.clone(), 4, init(rs)));
            set!(Reg::SP, sp);
        }
        I::Pop { rd } => {
            let sp = init(Reg::SP);
            sem.access = Some((sp.clone(), 4, false));
            ev.mem = Some((sp.clone(), 4, false));
            set!(Reg::SP, E::bin(Add, sp.clone(), E::c(4)));
            set!(rd, E::load(sp, 4)); // rd == sp overrides, like the interpreter
        }
        I::Pushf => {
            let sp = E::bin(Sub, init(Reg::SP), E::c(4));
            sem.access = Some((sp.clone(), 4, true));
            ev.mem = Some((sp.clone(), 4, true));
            sem.store = Some((sp.clone(), 4, E::InitFlagsBits));
            set!(Reg::SP, sp);
        }
        I::Popf => {
            let sp = init(Reg::SP);
            sem.access = Some((sp.clone(), 4, false));
            ev.mem = Some((sp.clone(), 4, false));
            set!(Reg::SP, E::bin(Add, sp.clone(), E::c(4)));
            sem.flags = SymFlags::FromBits(E::load(sp, 4));
        }
        I::Cmp { rs1, rs2 } => sem.flags = SymFlags::Compare(init(rs1), init(rs2)),
        I::Cmpi { rs1, imm } => sem.flags = SymFlags::Compare(init(rs1), E::c(imm as i32 as u32)),
        I::Beq { off }
        | I::Bne { off }
        | I::Blt { off }
        | I::Bge { off }
        | I::Bltu { off }
        | I::Bgeu { off } => {
            let taken = assume.expect("conditional branch needs an assumed direction");
            if taken {
                let target = next.wrapping_add((off as i32 as u32).wrapping_mul(4));
                sem.next = NextPc::Const(target);
                ev.taken = true;
                ev.target = E::c(target);
            }
        }
        I::Jmp { target } => {
            sem.next = NextPc::Const(target);
            ev.taken = true;
            ev.target = E::c(target);
        }
        I::Call { target } => {
            let sp = E::bin(Sub, init(Reg::SP), E::c(4));
            sem.access = Some((sp.clone(), 4, true));
            ev.mem = Some((sp.clone(), 4, true));
            sem.store = Some((sp.clone(), 4, E::c(next)));
            set!(Reg::SP, sp);
            sem.next = NextPc::Const(target);
            ev.taken = true;
            ev.target = E::c(target);
        }
        I::Jr { rs } => {
            let t = init(rs);
            sem.next = NextPc::Expr(t.clone());
            ev.taken = true;
            ev.target = t;
            ev.indirect = true;
        }
        I::Callr { rs } => {
            let t = init(rs);
            let sp = E::bin(Sub, init(Reg::SP), E::c(4));
            sem.access = Some((sp.clone(), 4, true));
            ev.mem = Some((sp.clone(), 4, true));
            sem.store = Some((sp.clone(), 4, E::c(next)));
            set!(Reg::SP, sp);
            sem.next = NextPc::Expr(t.clone());
            ev.taken = true;
            ev.target = t;
            ev.indirect = true;
        }
        I::Ret => {
            let sp = init(Reg::SP);
            sem.access = Some((sp.clone(), 4, false));
            ev.mem = Some((sp.clone(), 4, false));
            set!(Reg::SP, E::bin(Add, sp.clone(), E::c(4)));
            let t = E::load(sp, 4);
            sem.next = NextPc::Expr(t.clone());
            ev.taken = true;
            ev.target = t;
            ev.indirect = true;
        }
        I::Jmem { addr } => {
            let a = E::c(addr);
            sem.access = Some((a.clone(), 4, false));
            ev.mem = Some((a.clone(), 4, false));
            let t = E::load(a, 4);
            sem.next = NextPc::Expr(t.clone());
            ev.taken = true;
            ev.target = t;
            ev.indirect = true;
        }
        I::Trap { code } => sem.outcome = SlotOutcome::Trap(code),
        I::Halt => sem.outcome = SlotOutcome::Halt,
        I::Nop => {}
    }
    sem.event = Some(ev);
    sem
}

/// Converts a stored retire-event template to its symbolic form (all
/// fields as translated, nothing patched yet).
fn template_event(ev: &RetireEvent) -> SymEvent {
    SymEvent {
        pc: ev.pc,
        instr: ev.instr,
        class: ev.class,
        mem: ev.mem.map(|m| (SymExpr::c(m.addr), m.len, m.is_store)),
        kind: ev.control.kind,
        taken: ev.control.taken,
        target: SymExpr::c(ev.control.target),
        indirect: ev.control.indirect,
    }
}

/// Symbolically executes one lowered op per the threaded tier's
/// dispatch-loop semantics, patching the stored template exactly as
/// `run_ops` does. Fused `CmpBr`/`CmpiBr` ops contribute only their
/// compare half here (the branch half executes through the shadow
/// `CondBr` slot, which the validator checks structurally and
/// standalone).
///
/// # Errors
///
/// Returns a message when the slot is malformed in a way the dispatch
/// loop cannot execute (a load/store op whose template lacks a memory
/// access).
pub(crate) fn step_op(slot: &TierSlotMeta, assume: Option<bool>) -> Result<SlotSem, String> {
    use BinOp::*;
    use SymExpr as E;

    let pc = slot.pc;
    let next = pc.wrapping_add(4);
    let mut sem = SlotSem {
        regs: fresh_regs(),
        flags: SymFlags::Init,
        access: None,
        store: None,
        event: None,
        next: NextPc::Const(next),
        outcome: SlotOutcome::Running,
    };
    let mut ev = template_event(&slot.ev);
    let init = |r: Reg| E::Init(r);
    macro_rules! set {
        ($rd:expr, $val:expr) => {
            sem.regs[$rd.index()] = $val
        };
    }
    /// The template's access length, which `run_ops`'s retire macros
    /// reuse when patching in the runtime address.
    macro_rules! template_len {
        ($what:literal) => {
            match slot.ev.mem {
                Some(m) => m.len,
                None => {
                    return Err(format!(
                        "{} op but the retire template has no memory access",
                        $what
                    ))
                }
            }
        };
    }
    let masked = |r: Reg| E::bin(And, init(r), E::c(31));

    match slot.op {
        Op::Add { rd, rs1, rs2 } => set!(rd, E::bin(Add, init(rs1), init(rs2))),
        Op::Sub { rd, rs1, rs2 } => set!(rd, E::bin(Sub, init(rs1), init(rs2))),
        Op::Mul { rd, rs1, rs2 } => set!(rd, E::bin(Mul, init(rs1), init(rs2))),
        Op::Divu { rd, rs1, rs2 } => set!(rd, E::bin(Divu, init(rs1), init(rs2))),
        Op::Remu { rd, rs1, rs2 } => set!(rd, E::bin(Remu, init(rs1), init(rs2))),
        Op::And { rd, rs1, rs2 } => set!(rd, E::bin(And, init(rs1), init(rs2))),
        Op::Or { rd, rs1, rs2 } => set!(rd, E::bin(Or, init(rs1), init(rs2))),
        Op::Xor { rd, rs1, rs2 } => set!(rd, E::bin(Xor, init(rs1), init(rs2))),
        Op::Sll { rd, rs1, rs2 } => set!(rd, E::bin(Sll, init(rs1), masked(rs2))),
        Op::Srl { rd, rs1, rs2 } => set!(rd, E::bin(Srl, init(rs1), masked(rs2))),
        Op::Sra { rd, rs1, rs2 } => set!(rd, E::bin(Sra, init(rs1), masked(rs2))),
        Op::Mov { rd, rs } => set!(rd, init(rs)),
        Op::Addi { rd, rs1, imm } => set!(rd, E::bin(Add, init(rs1), E::c(imm))),
        Op::Andi { rd, rs1, imm } => set!(rd, E::bin(And, init(rs1), E::c(imm))),
        Op::Ori { rd, rs1, imm } => set!(rd, E::bin(Or, init(rs1), E::c(imm))),
        Op::Xori { rd, rs1, imm } => set!(rd, E::bin(Xor, init(rs1), E::c(imm))),
        Op::Slli { rd, rs1, shamt } => set!(rd, E::bin(Sll, init(rs1), E::c(shamt))),
        Op::Srli { rd, rs1, shamt } => set!(rd, E::bin(Srl, init(rs1), E::c(shamt))),
        Op::Srai { rd, rs1, shamt } => set!(rd, E::bin(Sra, init(rs1), E::c(shamt))),
        Op::Lui { rd, value } => set!(rd, E::c(value)),
        Op::Lw { rd, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off));
            let len = template_len!("load");
            sem.access = Some((a.clone(), 4, false));
            ev.mem = Some((a.clone(), len, false));
            set!(rd, E::load(a, 4));
        }
        Op::Sw { rs2, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off));
            let len = template_len!("store");
            sem.access = Some((a.clone(), 4, true));
            ev.mem = Some((a.clone(), len, true));
            sem.store = Some((a, 4, init(rs2)));
        }
        Op::Lb { rd, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off));
            let len = template_len!("load");
            sem.access = Some((a.clone(), 1, false));
            ev.mem = Some((a.clone(), len, false));
            set!(rd, E::SignExt8(Box::new(E::load(a, 1))));
        }
        Op::Lbu { rd, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off));
            let len = template_len!("load");
            sem.access = Some((a.clone(), 1, false));
            ev.mem = Some((a.clone(), len, false));
            set!(rd, E::load(a, 1));
        }
        Op::Sb { rs2, rs1, off } => {
            let a = E::bin(Add, init(rs1), E::c(off));
            let len = template_len!("store");
            sem.access = Some((a.clone(), 1, true));
            ev.mem = Some((a.clone(), len, true));
            sem.store = Some((a, 1, init(rs2)));
        }
        Op::Lwa { rd, addr } => {
            // `run_ops` retires the unpatched template for `lwa`.
            let a = E::c(addr);
            sem.access = Some((a.clone(), 4, false));
            set!(rd, E::load(a, 4));
        }
        Op::Swa { rs, addr } => {
            let a = E::c(addr);
            let len = template_len!("store");
            sem.access = Some((a.clone(), 4, true));
            ev.mem = Some((a.clone(), len, true));
            sem.store = Some((a, 4, init(rs)));
        }
        Op::Push { rs } => {
            let sp = E::bin(Sub, init(Reg::SP), E::c(4));
            let len = template_len!("store");
            sem.access = Some((sp.clone(), 4, true));
            ev.mem = Some((sp.clone(), len, true));
            sem.store = Some((sp.clone(), 4, init(rs)));
            set!(Reg::SP, sp);
        }
        Op::Pop { rd } => {
            let sp = init(Reg::SP);
            let len = template_len!("load");
            sem.access = Some((sp.clone(), 4, false));
            ev.mem = Some((sp.clone(), len, false));
            set!(Reg::SP, E::bin(Add, sp.clone(), E::c(4)));
            set!(rd, E::load(sp, 4)); // rd == sp overrides, like run_ops
        }
        Op::Pushf => {
            let sp = E::bin(Sub, init(Reg::SP), E::c(4));
            let len = template_len!("store");
            sem.access = Some((sp.clone(), 4, true));
            ev.mem = Some((sp.clone(), len, true));
            sem.store = Some((sp.clone(), 4, E::InitFlagsBits));
            set!(Reg::SP, sp);
        }
        Op::Popf => {
            let sp = init(Reg::SP);
            let len = template_len!("load");
            sem.access = Some((sp.clone(), 4, false));
            ev.mem = Some((sp.clone(), len, false));
            set!(Reg::SP, E::bin(Add, sp.clone(), E::c(4)));
            sem.flags = SymFlags::FromBits(E::load(sp, 4));
        }
        Op::Cmp { rs1, rs2 } => sem.flags = SymFlags::Compare(init(rs1), init(rs2)),
        Op::Cmpi { rs1, rhs } => sem.flags = SymFlags::Compare(init(rs1), E::c(rhs)),
        // Fused ops: the compare half only. The branch half runs through
        // the shadow `CondBr` in the next slot, which the validator
        // checks structurally (same cond, same target) and standalone.
        Op::CmpBr { rs1, rs2, .. } => sem.flags = SymFlags::Compare(init(rs1), init(rs2)),
        Op::CmpiBr { rs1, rhs, .. } => sem.flags = SymFlags::Compare(init(rs1), E::c(rhs)),
        Op::CondBr { target, .. } => {
            let taken = assume.expect("conditional branch needs an assumed direction");
            if taken {
                ev.taken = true;
                ev.target = E::c(target);
                sem.next = NextPc::Const(target);
            }
            // Not taken: `run_ops` retires the unpatched template.
        }
        Op::Jmp { target } => {
            // `run_ops` retires the unpatched template (the translator
            // precomputed taken/target into it).
            sem.next = NextPc::Const(target);
        }
        Op::CallD { target, ret } => {
            let sp = E::bin(Sub, init(Reg::SP), E::c(4));
            sem.access = Some((sp.clone(), 4, true));
            ev.mem = Some((sp.clone(), 4, true));
            sem.store = Some((sp.clone(), 4, E::c(ret)));
            set!(Reg::SP, sp);
            sem.next = NextPc::Const(target);
        }
        Op::Jr { rs } => {
            let t = init(rs);
            ev.target = t.clone();
            sem.next = NextPc::Expr(t);
        }
        Op::Callr { rs, ret } => {
            let t = init(rs);
            let sp = E::bin(Sub, init(Reg::SP), E::c(4));
            sem.access = Some((sp.clone(), 4, true));
            ev.mem = Some((sp.clone(), 4, true));
            sem.store = Some((sp.clone(), 4, E::c(ret)));
            set!(Reg::SP, sp);
            ev.target = t.clone();
            sem.next = NextPc::Expr(t);
        }
        Op::Ret => {
            let sp = init(Reg::SP);
            sem.access = Some((sp.clone(), 4, false));
            ev.mem = Some((sp.clone(), 4, false));
            set!(Reg::SP, E::bin(Add, sp.clone(), E::c(4)));
            let t = E::load(sp, 4);
            ev.target = t.clone();
            sem.next = NextPc::Expr(t);
        }
        Op::Jmem { addr } => {
            let a = E::c(addr);
            sem.access = Some((a.clone(), 4, false));
            let t = E::load(a, 4);
            ev.target = t.clone();
            sem.next = NextPc::Expr(t);
        }
        Op::Trap { code } => {
            sem.outcome = SlotOutcome::Trap(code);
        }
        Op::Halt => {
            sem.outcome = SlotOutcome::Halt;
        }
        Op::Nop => {}
        Op::FallThrough { next } => {
            // Retires nothing; transfers to `next` (the validator checks
            // `next` equals this very slot's pc).
            sem.next = NextPc::Const(next);
            sem.event = None;
            return Ok(sem);
        }
    }
    sem.event = Some(ev);
    Ok(sem)
}
