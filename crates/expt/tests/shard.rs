//! End-to-end test of the `--shard i/n` workflow: every shard executes
//! its slice of the cell set into a shared cache directory (in practice
//! each machine writes its own directory and the `*.cell` files are
//! merged afterwards — the file set is the same either way), then a
//! plain cached run renders the suite entirely from disk hits.

use strata_expt::{run_shard, run_suite, OutputFormat, Shard, SuiteOptions};
use strata_workloads::Params;

#[test]
fn shards_cover_the_suite_and_merge_renders_from_disk() {
    let dir = std::env::temp_dir().join(format!("strata-shard-merge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let opts = |cache| SuiteOptions {
        jobs: 2,
        filter: Some("fig2".into()),
        format: OutputFormat::Text,
        params: Params::default(),
        cache_dir: cache,
    };

    const COUNT: u32 = 3;
    let mut shard_cells = 0;
    let mut total_cells = None;
    for index in 0..COUNT {
        let report = run_shard(
            &opts(Some(dir.clone())),
            Shard {
                index,
                count: COUNT,
            },
        )
        .expect("shard run");
        shard_cells += report.shard_cells;
        // Every shard sees the same suite-wide work list.
        assert_eq!(
            *total_cells.get_or_insert(report.total_cells),
            report.total_cells
        );
    }
    // The partition is exhaustive and disjoint.
    assert_eq!(Some(shard_cells), total_cells);

    // The merged cache renders the full experiment without simulating:
    // translated cells all land as disk hits (only natives recomputed by
    // other shards may overlap, and those are also already on disk).
    let merged = run_suite(&opts(Some(dir.clone()))).expect("merged render");
    assert_eq!(
        merged.store_stats.computed, 0,
        "merge-then-render must not simulate"
    );

    // And it matches a from-scratch in-memory run byte for byte. (The
    // store's unique-cell count exceeds `total_cells` in both runs: it
    // also holds the native counterparts `execute` schedules implicitly.)
    let fresh = run_suite(&opts(None)).expect("fresh run");
    assert_eq!(merged.unique_cells, fresh.unique_cells);
    assert!(merged.unique_cells >= total_cells.unwrap());
    assert_eq!(merged.rendered, fresh.rendered);
    assert_eq!(merged.artifacts, fresh.artifacts);

    let _ = std::fs::remove_dir_all(&dir);
}
