//! End-to-end guarantees of the orchestrator: parallel suite runs are
//! byte-identical to serial ones, memoization keys never collide, and the
//! on-disk cell cache round-trips results faithfully.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_expt::{run_suite, CellKey, OutputFormat, Store, SuiteOptions};
use strata_workloads::Params;

/// A small but representative filter: table1 touches every workload's
/// native run, fig14 exercises cache-limit configs on two workloads.
const FILTER: &str = "table1,fig14";

fn suite(jobs: usize, format: OutputFormat) -> strata_expt::SuiteReport {
    let opts = SuiteOptions {
        jobs,
        filter: Some(FILTER.into()),
        format,
        params: Params::default(),
        cache_dir: None,
    };
    run_suite(&opts).expect("suite runs")
}

#[test]
fn parallel_suite_is_byte_identical_to_serial() {
    let serial = suite(1, OutputFormat::Text);
    let parallel = suite(4, OutputFormat::Text);
    assert_eq!(
        serial.rendered, parallel.rendered,
        "text output depends on --jobs"
    );
    assert_eq!(
        serial.artifacts, parallel.artifacts,
        "JSON artifacts depend on --jobs"
    );
    assert_eq!(serial.unique_cells, parallel.unique_cells);
}

#[test]
fn json_format_is_deterministic_too() {
    let serial = suite(1, OutputFormat::Json);
    let parallel = suite(3, OutputFormat::Json);
    assert_eq!(serial.rendered, parallel.rendered);
}

#[test]
fn memoization_dedupes_across_experiments() {
    // table1 and fig14 both need gcc/perlbmk natives; the store must
    // compute each unique cell exactly once.
    let report = suite(2, OutputFormat::Text);
    let stats = report.store_stats;
    assert_eq!(stats.computed as usize, report.unique_cells);
    assert!(
        stats.memo_hits > 0,
        "shared natives should hit the memo store"
    );
}

#[test]
fn distinct_cells_never_share_a_key() {
    // Walk every dimension the key must separate; any two distinct cells
    // must yield distinct key strings.
    let profiles = [
        ArchProfile::x86_like(),
        ArchProfile::sparc_like(),
        ArchProfile::mips_like(),
    ];
    let configs = [
        SdtConfig::reentry(),
        SdtConfig::ibtc_inline(512),
        SdtConfig::ibtc_inline(1024),
        SdtConfig::ibtc_out_of_line(1024),
        SdtConfig::sieve(1024),
        SdtConfig::tuned(4096, 1024),
    ];
    let params = [
        Params {
            scale: 1,
            variant: 0,
        },
        Params {
            scale: 2,
            variant: 0,
        },
        Params {
            scale: 1,
            variant: 7,
        },
    ];
    let mut keys = std::collections::HashSet::new();
    let mut total = 0usize;
    for workload in ["gzip", "gcc"] {
        for profile in &profiles {
            for p in params {
                keys.insert(CellKey::native(workload, profile.clone(), p).key_string());
                total += 1;
                for cfg in &configs {
                    keys.insert(
                        CellKey::translated(workload, *cfg, profile.clone(), p).key_string(),
                    );
                    total += 1;
                }
            }
        }
    }
    assert_eq!(keys.len(), total, "cell key collision");
}

#[test]
fn equal_cells_always_hit() {
    let a = CellKey::translated(
        "vortex",
        SdtConfig::tuned(4096, 1024),
        ArchProfile::x86_like(),
        Params::default(),
    );
    let b = CellKey::translated(
        "vortex",
        SdtConfig::tuned(4096, 1024),
        ArchProfile::x86_like(),
        Params::default(),
    );
    assert_eq!(a.key_string(), b.key_string());
    assert_eq!(a.cache_file_name(), b.cache_file_name());
}

#[test]
fn disk_cache_round_trips_suite_cells() {
    let dir = std::env::temp_dir().join(format!("strata-expt-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let opts = SuiteOptions {
        jobs: 2,
        filter: Some("fig14".into()),
        format: OutputFormat::Text,
        params: Params::default(),
        cache_dir: Some(dir.clone()),
    };
    let cold = run_suite(&opts).expect("cold run");
    assert!(cold.store_stats.computed > 0);
    assert_eq!(cold.store_stats.disk_hits, 0);

    let warm = run_suite(&opts).expect("warm run");
    assert_eq!(
        warm.store_stats.computed, 0,
        "warm run must be served from disk"
    );
    assert_eq!(warm.store_stats.disk_hits as usize, warm.unique_cells);
    assert_eq!(cold.rendered, warm.rendered, "disk cache changed results");
    assert_eq!(cold.artifacts, warm.artifacts);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_counts_are_consistent() {
    let store = Store::in_memory();
    assert!(store.is_empty());
    let opts = SuiteOptions {
        jobs: 1,
        filter: Some("fig2".into()),
        format: OutputFormat::Csv,
        params: Params::default(),
        cache_dir: None,
    };
    let report = run_suite(&opts).expect("suite runs");
    // fig2: reentry config across all 12 workloads + 12 natives.
    assert_eq!(report.unique_cells, 24);
    assert!(report.rendered.starts_with("# fig2:"));
}
