//! Exact-mode guarantees of the predictor re-ranking experiment: the
//! render is deterministic, and at least one mechanism pair re-ranks
//! across predictor models — the paper's core claim that no mechanism
//! ranking is predictor-independent.

use strata_expt::{run_suite, OutputFormat, SuiteOptions};
use strata_workloads::Params;

fn render_fig22() -> String {
    let opts = SuiteOptions {
        jobs: 1,
        filter: Some("fig22".into()),
        format: OutputFormat::Text,
        params: Params::default(),
        cache_dir: None,
    };
    run_suite(&opts).expect("fig22 runs").rendered
}

/// Pulls `N` out of the `RANKING INVERSIONS: N (...)` note.
fn inversion_count(rendered: &str) -> u64 {
    let line = rendered
        .lines()
        .find(|l| l.starts_with("RANKING INVERSIONS:"))
        .expect("fig22 prints an inversion note");
    line.split(':')
        .nth(1)
        .expect("count after colon")
        .split_whitespace()
        .next()
        .expect("leading count")
        .parse()
        .expect("numeric inversion count")
}

#[test]
fn fig22_reranks_mechanisms_across_predictors() {
    let rendered = render_fig22();
    assert!(
        inversion_count(&rendered) >= 1,
        "no mechanism pair re-ranked across predictor models:\n{rendered}"
    );
    // Every predictor model of the sweep must appear as table rows.
    for label in ["none", "legacy", "btb:128x4", "ittage:4", "ideal"] {
        assert!(rendered.contains(label), "missing predictor row {label}");
    }
}

#[test]
fn fig22_render_is_deterministic() {
    assert_eq!(render_fig22(), render_fig22());
}
