//! Golden-file tests for the renderers.
//!
//! The regression gate diffs *rendered* artifacts, so format drift in the
//! text/CSV/JSON renderers would surface as a mystery baseline failure
//! (or worse, silently change what the gate compares). These tests pin
//! the renderings byte-for-byte against committed fixtures.
//!
//! To refresh after an intentional format change:
//!
//! ```text
//! STRATA_UPDATE_GOLDEN=1 cargo test -p strata-expt --test golden
//! ```
//!
//! then commit the updated files under `tests/golden/` (and refresh
//! `results/baseline/` — see EXPERIMENTS.md).

use std::path::PathBuf;

use strata_expt::{baseline_gate, run_suite, write_artifacts, OutputFormat, SuiteOptions};
use strata_stats::baseline::{diff, Snapshot};
use strata_workloads::Params;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `STRATA_UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("STRATA_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with STRATA_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "rendered output drifted from {} — if intentional, regenerate with STRATA_UPDATE_GOLDEN=1",
        path.display()
    );
}

fn table1(format: OutputFormat) -> strata_expt::SuiteReport {
    let opts = SuiteOptions {
        jobs: 2,
        filter: Some("table1".into()),
        format,
        params: Params::default(),
        cache_dir: None,
    };
    run_suite(&opts).expect("suite runs")
}

#[test]
fn table1_text_rendering_is_pinned() {
    assert_golden("table1.txt", &table1(OutputFormat::Text).rendered);
}

#[test]
fn table1_csv_rendering_is_pinned() {
    assert_golden("table1.csv", &table1(OutputFormat::Csv).rendered);
}

#[test]
fn table1_json_rendering_and_artifacts_are_pinned() {
    let report = table1(OutputFormat::Json);
    assert_golden("table1.json", &report.rendered);
    // The artifacts are what the baseline gate actually diffs: pin the
    // per-experiment document and the per-cell metrics document.
    let artifact = |name: &str| -> &str {
        report
            .artifacts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_str())
            .unwrap_or_else(|| panic!("missing artifact {name}"))
    };
    assert_golden("table1_artifact.json", artifact("table1.json"));
    assert_golden("table1_cells.json", artifact("cells.json"));
}

/// Two tiny fixture runs, diffed: pins the delta report's text and JSON
/// shape (the other half of what the gate emits).
#[test]
fn delta_report_rendering_is_pinned() {
    let base_doc = r#"{
  "id": "fig4",
  "params": {"scale": 1, "variant": 0},
  "tables": [{
    "title": "slowdowns",
    "columns": ["benchmark", "slowdown", "dispatches", "note"],
    "rows": [
      ["gzip", "1.500x", "1000", "steady"],
      ["gcc", "3.000x", "500000", "hot"],
      ["mcf", "2.000x", "0", "idle"]
    ]
  }]
}"#;
    let fresh_doc = r#"{
  "id": "fig4",
  "params": {"scale": 1, "variant": 0},
  "tables": [{
    "title": "slowdowns",
    "columns": ["benchmark", "slowdown", "dispatches", "note"],
    "rows": [
      ["gzip", "1.530x", "1000", "steady"],
      ["gcc", "3.900x", "500000", "renamed"],
      ["mcf", "2.000x", "7", "idle"]
    ]
  }]
}"#;
    let extra_doc = r#"{"id": "fig9", "params": {"scale": 1, "variant": 0}, "tables": []}"#;
    let baseline = Snapshot::from_documents([("fig4.json", base_doc), ("fig9.json", extra_doc)])
        .expect("baseline parses");
    let fresh = Snapshot::from_documents([("fig4.json", fresh_doc)]).expect("fresh parses");
    let report = diff(&baseline, &fresh, 5.0);
    assert!(!report.is_clean());
    assert_golden("delta_report.txt", &report.render_text());
    assert_golden(
        "delta_report.json",
        &(report.to_json().render_pretty() + "\n"),
    );
}

/// End-to-end: artifacts written by one run gate cleanly against a second
/// run of the same tree — the acceptance property the CI step relies on.
#[test]
fn self_baseline_gates_clean() {
    let dir = std::env::temp_dir().join(format!("strata-golden-base-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let first = table1(OutputFormat::Text);
    write_artifacts(&first, &dir).expect("write baseline");
    let second = table1(OutputFormat::Text);
    let delta = baseline_gate(&second, &dir, 5.0).expect("gate runs");
    assert!(delta.is_clean(), "{}", delta.render_text());
    assert_eq!(
        delta.deltas.len(),
        0,
        "identical runs must not drift at all"
    );
    assert!(delta.compared > 50, "the gate must actually compare cells");
    let _ = std::fs::remove_dir_all(&dir);
}
