//! Integration tests for the regression gate and budget-driven
//! scheduling: budgets are recorded in the cache directory and fed back
//! as a longest-first order, the reordering never changes rendered
//! output, and the baseline gate catches perturbed metrics end to end.

use std::path::PathBuf;

use strata_expt::{
    baseline_gate, run_suite, write_artifacts, BudgetBook, OutputFormat, SuiteOptions,
};
use strata_workloads::Params;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("strata-gate-{name}-{}", std::process::id()))
}

fn opts(filter: &str, cache_dir: Option<PathBuf>) -> SuiteOptions {
    SuiteOptions {
        jobs: 4,
        filter: Some(filter.into()),
        format: OutputFormat::Text,
        params: Params::default(),
        cache_dir,
    }
}

#[test]
fn budgets_are_recorded_and_budget_ordered_rerun_is_byte_identical() {
    let dir = tmp("budgets");
    let _ = std::fs::remove_dir_all(&dir);

    // Cold run: FIFO schedule (no budget records yet), budgets written.
    let cold = run_suite(&opts("table1", Some(dir.clone()))).expect("cold run");
    assert!(cold.store_stats.computed > 0);
    let book = BudgetBook::load(&dir);
    assert_eq!(
        book.len() as u64,
        cold.store_stats.computed,
        "every computed cell must record a budget"
    );

    // Drop the cell cache but keep the budgets: the rerun recomputes
    // everything under a longest-first schedule.
    for entry in std::fs::read_dir(&dir).expect("cache dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "cell") {
            std::fs::remove_file(path).expect("remove cell");
        }
    }
    let warm = run_suite(&opts("table1", Some(dir.clone()))).expect("budget-ordered run");
    assert_eq!(warm.store_stats.disk_hits, 0, "cell cache was dropped");
    assert_eq!(warm.store_stats.computed, cold.store_stats.computed);
    assert_eq!(
        cold.rendered, warm.rendered,
        "longest-first scheduling changed rendered output"
    );
    assert_eq!(cold.artifacts, warm.artifacts);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gate_detects_a_perturbed_metric_and_names_the_experiment() {
    let baseline_dir = tmp("baseline");
    let _ = std::fs::remove_dir_all(&baseline_dir);

    let run = run_suite(&opts("table1", None)).expect("run");
    write_artifacts(&run, &baseline_dir).expect("write baseline");

    // Sanity: unperturbed gate is clean.
    let clean = baseline_gate(&run, &baseline_dir, 5.0).expect("gate");
    assert!(clean.is_clean(), "{}", clean.render_text());

    // Perturb one metric in the committed snapshot by more than the
    // tolerance. gzip at scale 1 executes 515716 instructions; any other
    // figure works as long as it differs by >5%.
    let path = baseline_dir.join("table1.json");
    let text = std::fs::read_to_string(&path).expect("read table1.json");
    let perturbed = text.replace("\"515716\"", "\"600000\"");
    assert_ne!(text, perturbed, "fixture value moved; update this test");
    std::fs::write(&path, perturbed).expect("write perturbed");

    let delta = baseline_gate(&run, &baseline_dir, 5.0).expect("gate");
    assert_eq!(delta.regressions(), 1);
    let rendered = delta.render_text();
    assert!(
        rendered.contains("table1"),
        "report must name the experiment: {rendered}"
    );
    assert!(
        rendered.contains("gzip"),
        "report must name the row: {rendered}"
    );
    assert!(rendered.contains("FAIL"), "{rendered}");

    // Within tolerance, the same drift is visible but does not fail.
    let tolerant = baseline_gate(&run, &baseline_dir, 50.0).expect("gate");
    assert!(tolerant.is_clean());
    assert_eq!(tolerant.deltas.len(), 1);

    let _ = std::fs::remove_dir_all(&baseline_dir);
}

#[test]
fn gate_errors_on_missing_or_empty_baseline_dir() {
    let run = run_suite(&opts("table1", None)).expect("run");
    let missing = tmp("missing");
    let _ = std::fs::remove_dir_all(&missing);
    assert!(baseline_gate(&run, &missing, 5.0).is_err());
    std::fs::create_dir_all(&missing).expect("mkdir");
    let err = baseline_gate(&run, &missing, 5.0).unwrap_err();
    assert!(err.contains("no *.json"), "{err}");
    let _ = std::fs::remove_dir_all(&missing);
}

#[test]
fn filtered_run_gates_against_full_baseline_without_failing() {
    // A baseline captured from table1+fig14, gated by a table1-only run:
    // fig14 must be skipped, not failed.
    let baseline_dir = tmp("filtered");
    let _ = std::fs::remove_dir_all(&baseline_dir);
    let full = run_suite(&opts("table1,fig14", None)).expect("full run");
    write_artifacts(&full, &baseline_dir).expect("write baseline");

    let narrow = run_suite(&opts("table1", None)).expect("narrow run");
    let delta = baseline_gate(&narrow, &baseline_dir, 5.0).expect("gate");
    assert!(delta.is_clean(), "{}", delta.render_text());
    assert_eq!(delta.skipped_experiments, ["fig14"]);
    assert!(
        delta.skipped_rows > 0,
        "fig14's cells are absent from the narrow run's cells.json"
    );

    let _ = std::fs::remove_dir_all(&baseline_dir);
}
