//! Property tests for cell-key stability — the regression gate's
//! foundation. Baselines are matched against fresh runs by cell key, so a
//! key that drifts with registration order, `--jobs` count, or process
//! state would silently decouple the gate from the metrics it pins; and a
//! knob change that *fails* to change the key would alias two different
//! configurations onto one memoization slot.

use std::collections::BTreeSet;

use strata_arch::ArchProfile;
use strata_core::{FlagsPolicy, IbMechanism, IbtcPlacement, IbtcScope, RetMechanism, SdtConfig};
use strata_expt::{execute, registry, CellKey, Store};
use strata_workloads::Params;

/// Expands every registered experiment and returns the deduplicated,
/// sorted key set.
fn all_keys(order: impl Iterator<Item = &'static strata_expt::Experiment>) -> BTreeSet<String> {
    let params = Params::default();
    order
        .flat_map(|e| (e.cells)(params))
        .flat_map(|cell| {
            // The executor also schedules every translated cell's native
            // counterpart; include it like the real expansion does.
            let native = cell.native_counterpart();
            [cell, native]
        })
        .map(|cell| cell.key_string())
        .collect()
}

#[test]
fn key_set_is_invariant_under_registration_order() {
    let forward = all_keys(registry().iter());
    let reverse = all_keys(registry().iter().rev());
    assert_eq!(
        forward, reverse,
        "cell keys depend on job-spec registration order"
    );
    assert!(!forward.is_empty());
}

#[test]
fn key_strings_are_pure_functions_of_cell_content() {
    let make = || {
        CellKey::translated(
            "gcc",
            SdtConfig::tuned(4096, 1024),
            ArchProfile::sparc_like(),
            Params {
                scale: 2,
                variant: 5,
            },
        )
    };
    let a = make();
    // Rebuilding the same cell, and cloning it, must yield the same key
    // and the same disk-cache file name, however many times.
    for _ in 0..3 {
        assert_eq!(make().key_string(), a.key_string());
        assert_eq!(a.clone().key_string(), a.key_string());
        assert_eq!(make().cache_file_name(), a.cache_file_name());
    }
}

#[test]
fn executed_key_set_is_invariant_under_jobs_count() {
    // A small real cell set: two workloads, two configs, plus implied
    // natives. Execute at several --jobs values and compare the stores'
    // full key sets (the disk-cache names derive from these, so this also
    // pins the cache layout).
    let profile = ArchProfile::x86_like();
    let params = Params::default();
    let cells: Vec<CellKey> = ["gzip", "mcf"]
        .iter()
        .flat_map(|w| {
            [
                CellKey::translated(w, SdtConfig::ibtc_inline(512), profile.clone(), params),
                CellKey::translated(w, SdtConfig::sieve(1024), profile.clone(), params),
            ]
        })
        .collect();

    let keys_at = |jobs: usize| -> BTreeSet<String> {
        let store = Store::in_memory();
        execute(&store, &cells, jobs);
        store.snapshot().into_iter().map(|(key, _)| key).collect()
    };

    let serial = keys_at(1);
    assert_eq!(serial.len(), 6, "2 workloads x (2 translated + 1 native)");
    for jobs in [2, 4, 8] {
        assert_eq!(keys_at(jobs), serial, "key set depends on --jobs {jobs}");
    }
}

#[test]
fn every_knob_change_changes_the_key() {
    let base_cfg = SdtConfig::ibtc_inline(4096);
    let base = CellKey::translated("gzip", base_cfg, ArchProfile::x86_like(), Params::default());

    // One mutation per knob, each expected to produce a distinct key.
    let mut variants: Vec<(&str, CellKey)> = vec![
        (
            "workload",
            CellKey::translated("gcc", base_cfg, ArchProfile::x86_like(), Params::default()),
        ),
        (
            "profile",
            CellKey::translated(
                "gzip",
                base_cfg,
                ArchProfile::mips_like(),
                Params::default(),
            ),
        ),
        (
            "scale",
            CellKey::translated(
                "gzip",
                base_cfg,
                ArchProfile::x86_like(),
                Params {
                    scale: 2,
                    variant: 0,
                },
            ),
        ),
        (
            "variant",
            CellKey::translated(
                "gzip",
                base_cfg,
                ArchProfile::x86_like(),
                Params {
                    scale: 1,
                    variant: 3,
                },
            ),
        ),
        (
            "kind",
            CellKey::native("gzip", ArchProfile::x86_like(), Params::default()),
        ),
    ];
    let mut push_cfg = |label: &'static str, cfg: SdtConfig| {
        variants.push((
            label,
            CellKey::translated("gzip", cfg, ArchProfile::x86_like(), Params::default()),
        ));
    };
    push_cfg("ibtc entries", SdtConfig::ibtc_inline(2048));
    push_cfg("ibtc placement", SdtConfig::ibtc_out_of_line(4096));
    push_cfg("ibtc scope", {
        let mut c = base_cfg;
        c.ib = IbMechanism::Ibtc {
            entries: 4096,
            scope: IbtcScope::PerSite,
            placement: IbtcPlacement::Inline,
        };
        c
    });
    push_cfg("mechanism reentry", SdtConfig::reentry());
    push_cfg("mechanism sieve", SdtConfig::sieve(4096));
    push_cfg("return cache", SdtConfig::tuned(4096, 1024));
    push_cfg("return cache entries", SdtConfig::tuned(4096, 512));
    push_cfg("fast return", {
        let mut c = base_cfg;
        c.ret = RetMechanism::FastReturn;
        c
    });
    push_cfg("shadow stack", {
        let mut c = base_cfg;
        c.ret = RetMechanism::ShadowStack { depth: 64 };
        c
    });
    push_cfg("shadow depth", {
        let mut c = base_cfg;
        c.ret = RetMechanism::ShadowStack { depth: 128 };
        c
    });
    push_cfg("flags policy", {
        let mut c = base_cfg;
        c.flags = FlagsPolicy::None;
        c
    });
    push_cfg("fragment linking", {
        let mut c = base_cfg;
        c.link_fragments = false;
        c
    });
    push_cfg("cache limit", {
        let mut c = base_cfg;
        c.cache_limit = Some(1 << 16);
        c
    });
    push_cfg("cache limit value", {
        let mut c = base_cfg;
        c.cache_limit = Some(1 << 17);
        c
    });
    push_cfg("instrumentation", {
        let mut c = base_cfg;
        c.instrument_blocks = true;
        c
    });
    push_cfg("jump elision", {
        let mut c = base_cfg;
        c.elide_direct_jumps = true;
        c
    });
    push_cfg("ibtc ways", {
        let mut c = base_cfg;
        c.ibtc_ways = 2;
        c
    });

    let base_key = base.key_string();
    let mut seen = BTreeSet::from([base_key.clone()]);
    for (label, cell) in &variants {
        let key = cell.key_string();
        assert_ne!(
            key, base_key,
            "changing `{label}` did not change the cell key"
        );
        assert!(
            seen.insert(key.clone()),
            "`{label}` collides with another variant: {key}"
        );
    }
}
