//! Sampled-mode guarantees of the predictor layer, in a dedicated test
//! binary because sampled mode is a process-wide switch: fig21's
//! fidelity gate passes with the predictor-mispredict row armed, and
//! fig22 still re-ranks mechanisms (and renders deterministically) when
//! its cells are SimPoint estimates instead of full runs.
//!
//! Traces record into `CARGO_TARGET_TMPDIR` on first use, so the test
//! never touches the reference bundles under `results/traces`.

use std::path::PathBuf;

use strata_expt::{run_suite, set_sampled, OutputFormat, SuiteOptions};
use strata_workloads::Params;

/// Pins sampled mode to a scratch traces directory (first caller wins,
/// so every test in this binary sees the same directory).
fn init_sampled() {
    set_sampled(PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("predictor-traces"));
}

fn render(filter: &str) -> String {
    init_sampled();
    let opts = SuiteOptions {
        jobs: 1,
        filter: Some(filter.into()),
        format: OutputFormat::Text,
        params: Params::default(),
        cache_dir: None,
    };
    run_suite(&opts).expect("suite runs").rendered
}

#[test]
fn fig21_fidelity_gate_passes_with_predictor_row() {
    let rendered = render("fig21");
    assert!(
        rendered.contains("pred_mispredicts"),
        "fig21 lost its predictor-mispredict fidelity row:\n{rendered}"
    );
    assert!(
        rendered.contains("FIDELITY PASS"),
        "sampled fidelity gate failed:\n{rendered}"
    );
}

#[test]
fn fig22_reranks_mechanisms_in_sampled_mode() {
    let rendered = render("fig22");
    let line = rendered
        .lines()
        .find(|l| l.starts_with("RANKING INVERSIONS:"))
        .expect("fig22 prints an inversion note");
    let count: u64 = line
        .split(':')
        .nth(1)
        .expect("count after colon")
        .split_whitespace()
        .next()
        .expect("leading count")
        .parse()
        .expect("numeric inversion count");
    assert!(
        count >= 1,
        "sampled mode lost the mechanism re-ranking:\n{rendered}"
    );
    assert_eq!(
        rendered,
        render("fig22"),
        "sampled render not deterministic"
    );
}
