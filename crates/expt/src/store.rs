//! The shared, concurrent cell store.
//!
//! Results are memoized under the full [`CellKey::key_string`] so each
//! unique (workload, config, profile, params) cell is simulated at most
//! once per suite run, however many experiments request it. An optional
//! on-disk layer (`results/cache/`) makes re-runs resumable: cells are
//! persisted as versioned flat-text records that embed their full key, so
//! stale or hash-colliding files are ignored rather than trusted.
//!
//! Sampled mode stores its estimated results under a `sampled/` key
//! prefix (see [`crate::sampled::key_prefix`]): memo entries, disk
//! records, and budget-book rows all carry the prefix, so estimates can
//! never be served for exact cells (or pollute the exact LPT schedule)
//! and vice versa — the two populations share a cache directory but are
//! fully disjoint.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use strata_core::{MechanismStats, NativeRun, RunReport};
use strata_workloads::Params;

use crate::budget::BudgetBook;
use crate::cell::{fnv1a64, CellKey, CellResult};
use crate::fsutil::atomic_write;

/// On-disk record format version; bump on any layout change.
const DISK_VERSION: &str = "strata-cell-v2";

/// Hit/miss counters for one suite run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Cells actually simulated.
    pub computed: u64,
    /// Requests served from the in-memory map.
    pub memo_hits: u64,
    /// Cells loaded from the on-disk cache.
    pub disk_hits: u64,
}

/// Concurrent memoizing store for cell results.
pub struct Store {
    cells: Mutex<HashMap<String, Arc<CellResult>>>,
    disk: Option<PathBuf>,
    budgets: Mutex<BudgetBook>,
    /// Key-namespace prefix (`""` exact, `"sampled/"` sampled mode).
    prefix: &'static str,
    computed: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
}

impl Store {
    /// A purely in-memory store in the current mode's key namespace.
    pub fn in_memory() -> Store {
        Store::in_memory_prefixed(crate::sampled::key_prefix())
    }

    /// An in-memory store with an explicit key prefix (tests use this to
    /// exercise the sampled namespace without flipping the process-wide
    /// mode).
    pub fn in_memory_prefixed(prefix: &'static str) -> Store {
        Store {
            cells: Mutex::new(HashMap::new()),
            disk: None,
            budgets: Mutex::new(BudgetBook::new()),
            prefix,
            computed: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// A store that additionally persists cells under `dir` (created on
    /// first write), in the current mode's key namespace. Previously
    /// recorded per-cell cycle budgets are loaded from the same directory
    /// for longest-first scheduling.
    pub fn with_disk_cache(dir: PathBuf) -> Store {
        Store::with_disk_cache_prefixed(dir, crate::sampled::key_prefix())
    }

    /// Disk-backed store with an explicit key prefix (see
    /// [`Store::in_memory_prefixed`]).
    pub fn with_disk_cache_prefixed(dir: PathBuf, prefix: &'static str) -> Store {
        Store {
            budgets: Mutex::new(BudgetBook::load(&dir)),
            disk: Some(dir),
            ..Store::in_memory_prefixed(prefix)
        }
    }

    /// This store's key-namespace prefix (`""` in exact mode).
    pub fn key_prefix(&self) -> &'static str {
        self.prefix
    }

    /// The namespaced key string results are stored under. With the empty
    /// prefix this is exactly [`CellKey::key_string`], so exact-mode disk
    /// caches and budget books from before sampled mode remain valid.
    fn eff_key(&self, key: &CellKey) -> String {
        format!("{}{}", self.prefix, key.key_string())
    }

    /// Number of distinct cells held in memory.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("store lock").len()
    }

    /// Whether the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters for this store's lifetime.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            computed: self.computed.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    /// The memoized result for `key`, if already present in memory.
    pub fn get(&self, key: &CellKey) -> Option<Arc<CellResult>> {
        self.cells
            .lock()
            .expect("store lock")
            .get(&self.eff_key(key))
            .cloned()
    }

    /// A snapshot of the cycle-budget book (recorded this run plus any
    /// loaded from the disk cache).
    pub fn budget_book(&self) -> BudgetBook {
        self.budgets.lock().expect("budget lock").clone()
    }

    /// Persists the budget book into the disk-cache directory, merged
    /// over any records already there (so filtered runs keep budgets for
    /// cells they did not touch) and pruned of keys the registry no
    /// longer produces. No-op for in-memory stores.
    pub fn flush_budgets(&self) {
        let Some(dir) = self.disk.as_ref() else {
            return;
        };
        let mut merged = BudgetBook::load(dir);
        merged.merge(&self.budgets.lock().expect("budget lock"));
        prune_stale(&mut merged);
        merged.save(dir);
    }

    /// Every memoized cell as `(key_string, result)`, sorted by key — the
    /// deterministic iteration order the per-cell artifact renders in.
    pub fn snapshot(&self) -> Vec<(String, Arc<CellResult>)> {
        let cells = self.cells.lock().expect("store lock");
        let mut all: Vec<(String, Arc<CellResult>)> = cells
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Returns the result for `key`, computing it with `compute` on a
    /// miss (after consulting the disk cache, when configured).
    ///
    /// The lock is not held while computing, so independent cells proceed
    /// in parallel. The orchestrator dedupes its work list by key, so two
    /// threads essentially never compute the same cell; if they ever do
    /// (both may race past the initial lookup), the first inserted result
    /// wins and the duplicate — identical, since simulation is pure — is
    /// discarded.
    pub fn get_or_compute(
        &self,
        key: &CellKey,
        compute: impl FnOnce() -> CellResult,
    ) -> Arc<CellResult> {
        let ks = self.eff_key(key);
        if let Some(hit) = self.cells.lock().expect("store lock").get(&ks) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let (result, from_disk) = match self.load_from_disk(&ks) {
            Some(r) => (r, true),
            None => (compute(), false),
        };
        if from_disk {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.computed.fetch_add(1, Ordering::Relaxed);
            self.save_to_disk(&ks, &result);
        }
        self.budgets
            .lock()
            .expect("budget lock")
            .record(&ks, result.total_cycles());
        let mut cells = self.cells.lock().expect("store lock");
        Arc::clone(cells.entry(ks).or_insert_with(|| Arc::new(result)))
    }

    /// Inserts an externally computed result — e.g. one streamed back
    /// from a fleet worker — memoizing it, persisting it to the disk
    /// cache, and recording its cycle budget, exactly as if it had been
    /// computed locally. The first result for a key wins; a duplicate
    /// (at-least-once delivery) returns the existing result unchanged.
    pub fn put(&self, key: &CellKey, result: CellResult) -> Arc<CellResult> {
        let ks = self.eff_key(key);
        if let Some(hit) = self.cells.lock().expect("store lock").get(&ks) {
            return Arc::clone(hit);
        }
        self.save_to_disk(&ks, &result);
        self.budgets
            .lock()
            .expect("budget lock")
            .record(&ks, result.total_cycles());
        let mut cells = self.cells.lock().expect("store lock");
        Arc::clone(cells.entry(ks).or_insert_with(|| Arc::new(result)))
    }

    /// The result for `key` from memory or the disk cache, **without
    /// computing it** on a miss. Lets a resumed fleet run mark already
    /// cached cells done before dispatching anything.
    pub fn cached(&self, key: &CellKey) -> Option<Arc<CellResult>> {
        let ks = self.eff_key(key);
        if let Some(hit) = self.cells.lock().expect("store lock").get(&ks) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(hit));
        }
        let result = self.load_from_disk(&ks)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        self.budgets
            .lock()
            .expect("budget lock")
            .record(&ks, result.total_cycles());
        let mut cells = self.cells.lock().expect("store lock");
        Some(Arc::clone(
            cells.entry(ks).or_insert_with(|| Arc::new(result)),
        ))
    }

    fn load_from_disk(&self, ks: &str) -> Option<CellResult> {
        let dir = self.disk.as_ref()?;
        let text = std::fs::read_to_string(dir.join(disk_file_name(ks))).ok()?;
        parse_record(&text, ks)
    }

    fn save_to_disk(&self, ks: &str, result: &CellResult) {
        let Some(dir) = self.disk.as_ref() else {
            return;
        };
        // Cache writes are best-effort: an unwritable directory degrades
        // to recomputation on the next run, never to an error. The write
        // itself is temp-file + rename, so a killed process can truncate
        // nothing.
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let _ = atomic_write(&dir.join(disk_file_name(ks)), &render_record(ks, result));
    }
}

/// Disk file name for a (possibly prefixed) key string. With the empty
/// prefix this equals [`CellKey::cache_file_name`], so existing exact-mode
/// caches stay valid; the `sampled/` prefix hashes to disjoint names.
fn disk_file_name(ks: &str) -> String {
    format!("{:016x}.cell", fnv1a64(ks.as_bytes()))
}

/// Drops budget entries whose cell keys the registry no longer produces
/// (configs removed from experiments, renamed workloads), so the LPT
/// schedule never sorts on dead keys. Keys are grouped by the params
/// embedded in their tail and checked against the full registry's
/// manifest at those params; a key whose params do not parse is stale by
/// definition. Sampled-namespace keys (`sampled/...`) are validated
/// against the same manifest after stripping the prefix — the estimated
/// population is the same cell grid, just measured differently. If the
/// manifest itself cannot be built, everything is conservatively kept.
fn prune_stale(book: &mut BudgetBook) {
    let mut live: HashMap<(u32, u64), Option<HashSet<String>>> = HashMap::new();
    book.retain(|key| {
        let key = key.strip_prefix("sampled/").unwrap_or(key);
        let Some(params) = params_of_key(key) else {
            return false;
        };
        live.entry((params.scale, params.variant))
            .or_insert_with(|| {
                crate::suite::work_manifest(None, params)
                    .ok()
                    .map(|cells| cells.iter().map(|c| c.key_string()).collect())
            })
            .as_ref()
            .is_none_or(|set| set.contains(key))
    });
}

/// Parses the `s{scale}v{variant}` tail every cell key ends with.
fn params_of_key(key: &str) -> Option<Params> {
    let tail = key.rsplit('|').next()?;
    let (scale, variant) = tail.strip_prefix('s')?.split_once('v')?;
    Some(Params {
        scale: scale.parse().ok()?,
        variant: variant.parse().ok()?,
    })
}

// --- flat-text serialization -------------------------------------------
//
// One `field=value` pair per line; u64 arrays comma-separated; f64 stored
// as IEEE-754 bit patterns in hex so round-trips are exact.
//
// The same records travel over the fleet wire: workers serialize results
// with `render_record` and the coordinator validates them with
// `parse_record` against the assigned key, so the on-disk format and the
// streaming format can never diverge.

/// Serializes a cell result as a versioned flat-text record embedding its
/// full key — the on-disk `*.cell` format and the fleet result payload.
pub fn render_record(key: &str, result: &CellResult) -> String {
    let mut out = String::new();
    out.push_str(DISK_VERSION);
    out.push('\n');
    out.push_str("key=");
    out.push_str(key);
    out.push('\n');
    match result {
        CellResult::Native(n) => {
            out.push_str("kind=native\n");
            let fields: [(&str, u64); 10] = [
                ("checksum", n.checksum as u64),
                ("total_cycles", n.total_cycles),
                ("instructions", n.instructions),
                ("indirect_jumps", n.indirect_jumps),
                ("indirect_calls", n.indirect_calls),
                ("returns", n.returns),
                ("direct_calls", n.direct_calls),
                ("cond_branches", n.cond_branches),
                ("icache_misses", n.icache_misses),
                ("dcache_misses", n.dcache_misses),
            ];
            for (name, value) in fields {
                out.push_str(&format!("{name}={value}\n"));
            }
            out.push_str(&format!(
                "regs={}\n",
                join_u64(n.regs.iter().map(|&r| r as u64))
            ));
        }
        CellResult::Translated(r) => {
            out.push_str("kind=translated\n");
            out.push_str(&format!("config={}\n", r.config));
            out.push_str(&format!("arch={}\n", r.arch));
            out.push_str(&format!("halted={}\n", r.halted as u64));
            let fields: [(&str, u64); 23] = [
                ("checksum", r.checksum as u64),
                ("instructions", r.instructions),
                ("total_cycles", r.total_cycles),
                ("translator_cycles", r.translator_cycles),
                ("icache_misses", r.icache_misses),
                ("dcache_misses", r.dcache_misses),
                ("indirect_mispredicts", r.indirect_mispredicts),
                ("cond_mispredicts", r.cond_mispredicts),
                ("ib_dispatches", r.mech.ib_dispatches),
                ("jump_dispatches", r.mech.jump_dispatches),
                ("call_dispatches", r.mech.call_dispatches),
                ("adaptive_promotions", r.mech.adaptive_promotions),
                ("ib_misses", r.mech.ib_misses),
                ("ret_dispatches", r.mech.ret_dispatches),
                ("rc_misses", r.mech.rc_misses),
                ("exit_misses", r.mech.exit_misses),
                ("exit_links", r.mech.exit_links),
                ("translator_entries", r.mech.translator_entries),
                ("fragments", r.mech.fragments),
                ("translated_app_instrs", r.mech.translated_app_instrs),
                ("cache_used_bytes", r.mech.cache_used_bytes),
                ("cache_flushes", r.mech.cache_flushes),
                ("elided_jumps", r.mech.elided_jumps),
            ];
            for (name, value) in fields {
                out.push_str(&format!("{name}={value}\n"));
            }
            out.push_str(&format!(
                "sieve_mean_chain={:016x}\n",
                r.mech.sieve_mean_chain.to_bits()
            ));
            out.push_str(&format!("sieve_max_chain={}\n", r.mech.sieve_max_chain));
            out.push_str(&format!(
                "cycles_by_origin={}\n",
                join_u64(r.cycles_by_origin.iter().copied())
            ));
            out.push_str(&format!(
                "instrs_by_origin={}\n",
                join_u64(r.instrs_by_origin.iter().copied())
            ));
            // One row per class: `mechanism|dispatches|misses|promotions`
            // (mechanism labels never contain `|` or `=`).
            for c in &r.per_class {
                out.push_str(&format!(
                    "class.{}={}|{}|{}|{}\n",
                    c.class, c.mechanism, c.dispatches, c.misses, c.promotions
                ));
            }
        }
    }
    out
}

/// Parses a flat-text cell record, validating its version header and
/// embedded key against `expected_key`. Returns `None` for truncated,
/// stale-version, corrupt, or mis-keyed records — callers recompute (disk
/// cache) or requeue (fleet) instead of trusting the bytes.
pub fn parse_record(text: &str, expected_key: &str) -> Option<CellResult> {
    let mut lines = text.lines();
    if lines.next()? != DISK_VERSION {
        return None;
    }
    let mut map: HashMap<&str, &str> = HashMap::new();
    for line in lines {
        let (k, v) = line.split_once('=')?;
        map.insert(k, v);
    }
    // A stale or hash-colliding file fails this check and is recomputed.
    if map.get("key").copied() != Some(expected_key) {
        return None;
    }
    let u = |name: &str| -> Option<u64> { map.get(name)?.parse().ok() };
    match map.get("kind").copied()? {
        "native" => {
            let regs_vec = split_u64(map.get("regs")?)?;
            let mut regs = [0u32; 16];
            if regs_vec.len() != regs.len() {
                return None;
            }
            for (slot, value) in regs.iter_mut().zip(regs_vec) {
                *slot = u32::try_from(value).ok()?;
            }
            Some(CellResult::Native(NativeRun {
                checksum: u("checksum")? as u32,
                total_cycles: u("total_cycles")?,
                instructions: u("instructions")?,
                indirect_jumps: u("indirect_jumps")?,
                indirect_calls: u("indirect_calls")?,
                returns: u("returns")?,
                direct_calls: u("direct_calls")?,
                cond_branches: u("cond_branches")?,
                icache_misses: u("icache_misses")?,
                dcache_misses: u("dcache_misses")?,
                regs,
            }))
        }
        "translated" => {
            let mech = MechanismStats {
                ib_dispatches: u("ib_dispatches")?,
                jump_dispatches: u("jump_dispatches")?,
                call_dispatches: u("call_dispatches")?,
                adaptive_promotions: u("adaptive_promotions")?,
                ib_misses: u("ib_misses")?,
                ret_dispatches: u("ret_dispatches")?,
                rc_misses: u("rc_misses")?,
                exit_misses: u("exit_misses")?,
                exit_links: u("exit_links")?,
                translator_entries: u("translator_entries")?,
                fragments: u("fragments")?,
                translated_app_instrs: u("translated_app_instrs")?,
                cache_used_bytes: u("cache_used_bytes")?,
                cache_flushes: u("cache_flushes")?,
                elided_jumps: u("elided_jumps")?,
                sieve_mean_chain: f64::from_bits(
                    u64::from_str_radix(map.get("sieve_mean_chain")?, 16).ok()?,
                ),
                sieve_max_chain: u("sieve_max_chain")? as u32,
            };
            let mut per_class = Vec::new();
            for class in ["jump", "call", "ret"] {
                let Some(row) = map.get(format!("class.{class}").as_str()) else {
                    continue;
                };
                let mut parts = row.split('|');
                let mechanism = parts.next()?.to_string();
                let dispatches: u64 = parts.next()?.parse().ok()?;
                let misses: u64 = parts.next()?.parse().ok()?;
                let promotions: u64 = parts.next()?.parse().ok()?;
                per_class.push(strata_core::ClassReport {
                    class: match class {
                        "jump" => "jump",
                        "call" => "call",
                        _ => "ret",
                    },
                    mechanism,
                    dispatches,
                    misses,
                    promotions,
                });
            }
            Some(CellResult::Translated(Box::new(RunReport {
                config: map.get("config")?.to_string(),
                arch: arch_static(map.get("arch")?)?,
                halted: u("halted")? != 0,
                checksum: u("checksum")? as u32,
                instructions: u("instructions")?,
                total_cycles: u("total_cycles")?,
                cycles_by_origin: fixed6(split_u64(map.get("cycles_by_origin")?)?)?,
                instrs_by_origin: fixed6(split_u64(map.get("instrs_by_origin")?)?)?,
                translator_cycles: u("translator_cycles")?,
                mech,
                per_class,
                icache_misses: u("icache_misses")?,
                dcache_misses: u("dcache_misses")?,
                indirect_mispredicts: u("indirect_mispredicts")?,
                cond_mispredicts: u("cond_mispredicts")?,
            })))
        }
        _ => None,
    }
}

/// Maps a stored profile name back to the `&'static str` the live
/// profiles carry; unknown names invalidate the record.
fn arch_static(name: &str) -> Option<&'static str> {
    use strata_arch::ArchProfile;
    for profile in ArchProfile::all() {
        if profile.name == name {
            return Some(profile.name);
        }
    }
    let ideal = ArchProfile::ideal();
    (ideal.name == name).then_some(ideal.name)
}

fn join_u64(values: impl Iterator<Item = u64>) -> String {
    values.map(|v| v.to_string()).collect::<Vec<_>>().join(",")
}

fn split_u64(s: &str) -> Option<Vec<u64>> {
    s.split(',').map(|p| p.parse().ok()).collect()
}

fn fixed6(v: Vec<u64>) -> Option<[u64; 6]> {
    v.try_into().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_arch::ArchProfile;
    use strata_core::SdtConfig;
    use strata_workloads::Params;

    fn sample_native() -> NativeRun {
        NativeRun {
            checksum: 0xDEAD_BEEF,
            total_cycles: 123_456_789,
            instructions: 1_000_000,
            indirect_jumps: 11,
            indirect_calls: 22,
            returns: 33,
            direct_calls: 44,
            cond_branches: 55,
            icache_misses: 66,
            dcache_misses: 77,
            regs: [7; 16],
        }
    }

    fn sample_report() -> RunReport {
        RunReport {
            config: "ibtc(64,shared,inline)".into(),
            arch: ArchProfile::x86_like().name,
            halted: true,
            checksum: 42,
            instructions: 2_000_000,
            total_cycles: 9_999_999,
            cycles_by_origin: [1, 2, 3, 4, 5, 6],
            instrs_by_origin: [6, 5, 4, 3, 2, 1],
            translator_cycles: 1234,
            mech: MechanismStats {
                ib_dispatches: 10,
                sieve_mean_chain: 1.75,
                ..Default::default()
            },
            per_class: vec![strata_core::ClassReport {
                class: "jump",
                mechanism: "ibtc(64,shared,inline)".into(),
                dispatches: 10,
                misses: 3,
                promotions: 0,
            }],
            icache_misses: 8,
            dcache_misses: 9,
            indirect_mispredicts: 10,
            cond_mispredicts: 11,
        }
    }

    #[test]
    fn records_roundtrip() {
        for result in [
            CellResult::Native(sample_native()),
            CellResult::Translated(Box::new(sample_report())),
        ] {
            let text = render_record("some|key", &result);
            let back = parse_record(&text, "some|key").expect("parses");
            assert_eq!(back, result);
            // The embedded key is verified.
            assert!(parse_record(&text, "other|key").is_none());
        }
    }

    #[test]
    fn version_mismatch_invalidates() {
        let text = render_record("k", &CellResult::Native(sample_native()));
        let old = text.replace(DISK_VERSION, "strata-cell-v0");
        assert!(parse_record(&old, "k").is_none());
    }

    #[test]
    fn put_first_result_wins_and_persists() {
        let dir = std::env::temp_dir().join(format!("strata-store-put-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::with_disk_cache(dir.clone());
        let key = CellKey::native("gzip", ArchProfile::x86_like(), Params::default());
        let first = sample_native();
        let mut second = sample_native();
        second.total_cycles += 1;
        let a = store.put(&key, CellResult::Native(first.clone()));
        // At-least-once delivery: the duplicate is dropped, not applied.
        let b = store.put(&key, CellResult::Native(second));
        assert_eq!(a, b);
        assert_eq!(a.as_native().unwrap(), &first);
        assert_eq!(store.len(), 1);
        // The result is on disk under its key, loadable by a fresh store.
        let fresh = Store::with_disk_cache(dir.clone());
        let loaded = fresh.cached(&key).expect("disk hit");
        assert_eq!(loaded.as_native().unwrap(), &first);
        assert_eq!(fresh.stats().disk_hits, 1);
        assert!(fresh.cached(&key).is_some(), "memoized after first load");
        assert_eq!(fresh.stats().memo_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_never_computes() {
        let store = Store::in_memory();
        let key = CellKey::native("gzip", ArchProfile::x86_like(), Params::default());
        assert!(store.cached(&key).is_none());
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn flush_prunes_stale_budget_keys() {
        let dir = std::env::temp_dir().join(format!("strata-store-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Seed the budget file with one live key, one key the registry
        // never produces, and one unparsable key.
        let live = CellKey::native("gzip", ArchProfile::x86_like(), Params::default());
        let mut book = BudgetBook::new();
        book.record(&live.key_string(), 111);
        book.record("ghost|sdt:ibtc(9,shared,inline)|x86-like|s1v0", 222);
        book.record("not a cell key at all", 333);
        book.save(&dir);

        let store = Store::with_disk_cache(dir.clone());
        store.flush_budgets();
        let pruned = BudgetBook::load(&dir);
        assert_eq!(pruned.get(&live.key_string()), Some(111));
        assert_eq!(pruned.len(), 1, "stale and unparsable keys dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_and_exact_namespaces_are_disjoint() {
        let dir = std::env::temp_dir().join(format!("strata-store-ns-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CellKey::native("gzip", ArchProfile::x86_like(), Params::default());
        let exact = Store::with_disk_cache_prefixed(dir.clone(), "");
        let sampled = Store::with_disk_cache_prefixed(dir.clone(), "sampled/");

        let mut estimated = sample_native();
        estimated.total_cycles = 42; // deliberately different from exact
        exact.put(&key, CellResult::Native(sample_native()));
        sampled.put(&key, CellResult::Native(estimated.clone()));

        // Each namespace serves its own result, through memory and disk.
        assert_eq!(
            exact.get(&key).unwrap().as_native().unwrap(),
            &sample_native()
        );
        assert_eq!(sampled.get(&key).unwrap().as_native().unwrap(), &estimated);
        let fresh_exact = Store::with_disk_cache_prefixed(dir.clone(), "");
        let fresh_sampled = Store::with_disk_cache_prefixed(dir.clone(), "sampled/");
        assert_eq!(
            fresh_exact.cached(&key).unwrap().as_native().unwrap(),
            &sample_native()
        );
        assert_eq!(
            fresh_sampled.cached(&key).unwrap().as_native().unwrap(),
            &estimated
        );

        // Budget rows are namespaced too: each store records under its
        // own prefix, so the exact LPT schedule never sorts on estimates.
        exact.flush_budgets();
        sampled.flush_budgets();
        let book = BudgetBook::load(&dir);
        assert_eq!(
            book.get(&key.key_string()),
            Some(sample_native().total_cycles)
        );
        assert_eq!(
            book.get(&format!("sampled/{}", key.key_string())),
            Some(42),
            "both rows visible in the shared book file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_keeps_live_sampled_keys_and_prunes_ghosts() {
        let dir = std::env::temp_dir().join(format!("strata-store-sns-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let live = CellKey::native("gzip", ArchProfile::x86_like(), Params::default());
        let mut book = BudgetBook::new();
        book.record(&live.key_string(), 1);
        book.record(&format!("sampled/{}", live.key_string()), 2);
        book.record("sampled/ghost|native|x86-like|s1v0", 3);
        book.save(&dir);

        Store::with_disk_cache_prefixed(dir.clone(), "").flush_budgets();
        let pruned = BudgetBook::load(&dir);
        assert_eq!(pruned.get(&live.key_string()), Some(1));
        assert_eq!(
            pruned.get(&format!("sampled/{}", live.key_string())),
            Some(2)
        );
        assert_eq!(pruned.len(), 2, "ghost sampled key dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn params_parse_from_key_tails() {
        assert_eq!(
            params_of_key("gzip|native|x86-like|s1v0"),
            Some(Params {
                scale: 1,
                variant: 0
            })
        );
        assert_eq!(
            params_of_key("gcc|sdt:ibtc(64,shared,inline)|mips-like|s3v12"),
            Some(Params {
                scale: 3,
                variant: 12
            })
        );
        for bad in ["", "gzip", "gzip|native|x86-like|v0s1", "a|b|c|s1vx"] {
            assert_eq!(params_of_key(bad), None, "`{bad}`");
        }
    }

    #[test]
    fn memoizes_and_counts() {
        let store = Store::in_memory();
        let key = CellKey::translated(
            "gzip",
            SdtConfig::ibtc_inline(64),
            ArchProfile::x86_like(),
            Params::default(),
        );
        let mut calls = 0;
        for _ in 0..3 {
            store.get_or_compute(&key, || {
                calls += 1;
                CellResult::Native(sample_native())
            });
        }
        assert_eq!(calls, 1);
        assert_eq!(
            store.stats(),
            StoreStats {
                computed: 1,
                memo_hits: 2,
                disk_hits: 0
            }
        );
        assert_eq!(store.len(), 1);
    }
}
