//! The work-queue executor.
//!
//! Simulation cells are pure, single-threaded, and independent, so the
//! scheduler is embarrassingly simple: dedupe the requested cells, then
//! let a `--jobs N` pool of scoped threads claim indices off a shared
//! atomic counter. Execution runs in two phases — native baselines first,
//! translated cells second — so that every translated cell can verify its
//! checksum against an already-memoized native result without ever racing
//! another thread to compute the same baseline.
//!
//! Within each phase, cells run **longest-first**: the [`BudgetBook`]
//! loaded from the disk cache ranks cells by their previously observed
//! `total_cycles`, so the gcc/perlbmk-sized cells that dominate the tail
//! start immediately instead of serializing at the end of the run. Cells
//! without a recorded budget fall back to FIFO order after the known ones
//! (see [`crate::budget`]); observed costs are recorded back into the
//! cache for the next run.
//!
//! Parallelism and scheduling order only change *when* results land in
//! the [`Store`]; the results themselves are deterministic functions of
//! their keys, and all rendering happens serially afterwards, so suite
//! output is bit-identical for every `--jobs` value and for every budget
//! ordering.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use strata_core::{run_native_tiered, Sdt};
use strata_machine::{ExecTier, Program};
use strata_workloads::{by_name, Params};

use crate::budget::order_longest_first;
use crate::cell::{CellKey, CellResult, RunKind};
use crate::store::Store;

/// Fuel ceiling for every run — far above any workload at default scale.
pub const FUEL: u64 = 4_000_000_000;

/// Process-wide execution tier for native (untranslated) runs.
///
/// Tier choice cannot change any rendered number — retire streams are
/// bit-identical across tiers — so it is process-global configuration
/// like `--jobs`, not part of any cell key. Resolved once: an explicit
/// [`set_exec_tier`] (the CLI's `--tier` flag) wins; otherwise the
/// `STRATA_TIER` environment variable (`interp`, `threaded`,
/// `threaded:<threshold>`) so fleet workers inherit the tier from their
/// environment; otherwise the interpreter.
static EXEC_TIER: OnceLock<ExecTier> = OnceLock::new();

/// Pins the execution tier for this process (first caller wins; later
/// calls and the env fallback are ignored).
pub fn set_exec_tier(tier: ExecTier) {
    let _ = EXEC_TIER.set(tier);
}

/// The resolved process-wide execution tier.
pub fn exec_tier() -> ExecTier {
    *EXEC_TIER.get_or_init(|| match std::env::var("STRATA_TIER") {
        Ok(spec) => ExecTier::parse(&spec).unwrap_or_else(|e| panic!("STRATA_TIER: {e}")),
        Err(_) => ExecTier::Interp,
    })
}

/// Builds the program a cell runs (workload at the cell's params).
pub fn build_program(workload: &str, params: Params) -> Program {
    let spec = by_name(workload).unwrap_or_else(|| panic!("unknown workload `{workload}`"));
    (spec.build)(&params)
}

/// Computes (or recalls) the result of one cell. Translated cells verify
/// their checksum against the memoized native baseline.
///
/// In sampled mode (`--sampled`) every cell is served from trace-driven
/// estimation instead of exact simulation; see [`crate::sampled`]. Exact
/// mode refuses scaled-tier workloads — their full runs are exactly what
/// sampled mode exists to avoid.
pub fn cell_result(store: &Store, key: &CellKey, program: &Program) -> Arc<CellResult> {
    if let Some(dir) = crate::sampled::sampled_mode() {
        return crate::sampled::sampled_cell_result(store, key, dir);
    }
    assert!(
        key.params.scale < strata_workloads::SAMPLED_ONLY_SCALE,
        "{} at scale {} is sampled-only; run with --sampled",
        key.workload,
        key.params.scale
    );
    match &key.kind {
        RunKind::Native => store.get_or_compute(key, || {
            CellResult::Native(
                run_native_tiered(program, key.profile.clone(), FUEL, exec_tier()).unwrap_or_else(
                    |e| panic!("native {} on {}: {e}", key.workload, key.profile.name),
                ),
            )
        }),
        RunKind::Translated(cfg) => {
            let native = cell_result(store, &key.native_counterpart(), program);
            let cfg = *cfg;
            store.get_or_compute(key, || {
                let report = Sdt::new(cfg, program)
                    .unwrap_or_else(|e| {
                        panic!("sdt for {} / {}: {e}", key.workload, cfg.describe())
                    })
                    .run(key.profile.clone(), FUEL)
                    .unwrap_or_else(|e| {
                        panic!(
                            "run {} / {} on {}: {e}",
                            key.workload,
                            cfg.describe(),
                            key.profile.name
                        )
                    });
                assert_eq!(
                    report.checksum,
                    native.checksum(),
                    "{}/{}: translated run diverged from native",
                    key.workload,
                    cfg.describe()
                );
                CellResult::Translated(Box::new(report))
            })
        }
    }
}

/// Executes `cells` (deduped) on `jobs` worker threads, populating `store`.
///
/// Every translated cell's native counterpart is scheduled too, so after
/// this returns the store can answer any slowdown query the cells imply.
pub fn execute(store: &Store, cells: &[CellKey], jobs: usize) {
    // Dedupe by key string, preserving first-seen order, and split into
    // the two phases.
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut natives: Vec<CellKey> = Vec::new();
    let mut translated: Vec<CellKey> = Vec::new();
    let mut push = |key: CellKey, natives: &mut Vec<CellKey>, translated: &mut Vec<CellKey>| {
        if seen.insert(key.key_string(), ()).is_none() {
            match key.kind {
                RunKind::Native => natives.push(key),
                RunKind::Translated(_) => translated.push(key),
            }
        }
    };
    for cell in cells {
        if matches!(cell.kind, RunKind::Translated(_)) {
            push(cell.native_counterpart(), &mut natives, &mut translated);
        }
        push(cell.clone(), &mut natives, &mut translated);
    }

    // Build each (workload, params) program once, shared by all workers.
    let mut programs: HashMap<(&'static str, u32, u64), Program> = HashMap::new();
    for key in natives.iter().chain(&translated) {
        programs
            .entry((key.workload, key.params.scale, key.params.variant))
            .or_insert_with(|| build_program(key.workload, key.params));
    }

    // Longest-first within each phase, from budgets observed on previous
    // runs (empty book = FIFO). The snapshot is taken once up front so
    // this run's own recordings cannot perturb its schedule.
    let book = store.budget_book();
    let jobs = jobs.max(1);
    for phase in [&natives, &translated] {
        run_phase(
            store,
            &order_longest_first(phase, &book, store.key_prefix()),
            &programs,
            jobs,
        );
    }
    store.flush_budgets();
}

fn run_phase(
    store: &Store,
    cells: &[CellKey],
    programs: &HashMap<(&'static str, u32, u64), Program>,
    jobs: usize,
) {
    if cells.is_empty() {
        return;
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(cells.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(key) = cells.get(i) else { break };
                let program = &programs[&(key.workload, key.params.scale, key.params.variant)];
                cell_result(store, key, program);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_arch::ArchProfile;
    use strata_core::SdtConfig;

    #[test]
    fn execute_dedupes_and_verifies() {
        let store = Store::in_memory();
        let x86 = ArchProfile::x86_like();
        let p = Params::default();
        let cfg = SdtConfig::ibtc_inline(512);
        // The same cell requested twice, plus its implied native baseline:
        // exactly two simulations run.
        let cells = vec![
            CellKey::translated("gzip", cfg, x86.clone(), p),
            CellKey::translated("gzip", cfg, x86.clone(), p),
        ];
        execute(&store, &cells, 2);
        assert_eq!(store.stats().computed, 2);
        assert!(store.get(&CellKey::native("gzip", x86, p)).is_some());
    }
}
