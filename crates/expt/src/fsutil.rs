//! Crash-safe writes for the disk-cache artifacts.
//!
//! Cell records and the budget book are consumed by later runs (and by
//! fleet merges), so a process killed mid-write must never leave a
//! truncated file behind: a half-written `*.cell` would silently fail its
//! key check and poison the memo cache into recomputing — acceptable —
//! but a half-written `budgets.v1` would drop the whole schedule, and a
//! torn write racing a concurrent reader could feed it garbage. All cache
//! writes therefore go through [`atomic_write`]: the content lands in a
//! uniquely named temp file in the same directory and is `rename(2)`d
//! into place, which is atomic on POSIX filesystems.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide disambiguator so concurrent writers (worker threads of
/// one run) never share a temp file.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` via temp-file + atomic rename.
///
/// Readers concurrently observing `path` see either the old content or
/// the new content, never a prefix. The temp file lives in `path`'s
/// directory (rename across filesystems is not atomic) and is removed if
/// the rename fails.
///
/// # Errors
///
/// Propagates the underlying I/O error; the temp file is cleaned up.
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    atomic_write_bytes(path, contents.as_bytes())
}

/// Byte-level twin of [`atomic_write`] for binary artifacts (trace
/// files); same temp-file + rename discipline.
///
/// # Errors
///
/// Propagates the underlying I/O error; the temp file is cleaned up.
pub fn atomic_write_bytes(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".into());
    let tmp = dir.join(format!(
        ".{name}.{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_land_and_leave_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("strata-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("record.txt");
        atomic_write(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second overwrites atomically").unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "second overwrites atomically"
        );
        // No temp litter: exactly the one target file remains.
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, ["record.txt"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_errors_without_panicking() {
        let path = std::env::temp_dir()
            .join(format!("strata-atomic-missing-{}", std::process::id()))
            .join("no-such-dir")
            .join("f.txt");
        assert!(atomic_write(&path, "x").is_err());
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let dir = std::env::temp_dir().join(format!("strata-atomic-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.txt");
        // Two full payloads a torn write would interleave.
        let payloads = ["A".repeat(64 * 1024), "B".repeat(64 * 1024)];
        std::thread::scope(|scope| {
            for payload in &payloads {
                scope.spawn(|| {
                    for _ in 0..50 {
                        atomic_write(&path, payload).unwrap();
                        let seen = std::fs::read_to_string(&path).unwrap();
                        assert!(
                            seen == payloads[0] || seen == payloads[1],
                            "torn read: {} bytes",
                            seen.len()
                        );
                    }
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
