//! Suite orchestration: select experiments, expand their cells, execute
//! the deduped cell set in parallel, then render every experiment
//! serially — text, CSV, or JSON — with per-experiment JSON artifacts.
//!
//! Rendering happens strictly after execution and in registry order, so
//! the output is byte-identical for any `--jobs` value (the parallel
//! phase only changes *when* each memoized result appears, never what it
//! contains).

use std::path::{Path, PathBuf};

use strata_stats::baseline::{self, DeltaReport, Snapshot};
use strata_stats::Json;
use strata_workloads::Params;

use crate::cell::CellKey;
use crate::exec::execute;
use crate::experiments::Output;
use crate::knobs::EnvKnobs;
use crate::registry::{registry, Experiment};
use crate::store::{Store, StoreStats};
use crate::view::View;

/// Stdout rendering format for `strata bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned text tables plus reading notes (default).
    Text,
    /// CSV per table, titles as `#` comment lines, notes omitted.
    Csv,
    /// One pretty-printed JSON document for the whole suite.
    Json,
}

impl OutputFormat {
    /// Parses `text` / `csv` / `json`.
    pub fn parse(s: &str) -> Result<OutputFormat, String> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "csv" => Ok(OutputFormat::Csv),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("unknown format `{other}` (text|csv|json)")),
        }
    }
}

/// Options for one suite run.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Worker threads (default: available parallelism).
    pub jobs: usize,
    /// Comma-separated experiment-id substrings; `None` runs everything.
    pub filter: Option<String>,
    /// Stdout format.
    pub format: OutputFormat,
    /// Workload parameters.
    pub params: Params,
    /// Enable the on-disk cell cache under this directory.
    pub cache_dir: Option<PathBuf>,
}

impl Default for SuiteOptions {
    fn default() -> SuiteOptions {
        SuiteOptions {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            filter: None,
            format: OutputFormat::Text,
            params: Params::default(),
            cache_dir: None,
        }
    }
}

/// One rendered experiment.
#[derive(Debug)]
pub struct SuiteSection {
    /// Experiment id (`table1`, `fig4`, …).
    pub id: &'static str,
    /// Experiment title.
    pub title: &'static str,
    /// Rendered tables and notes.
    pub output: Output,
}

/// The result of a suite run.
#[derive(Debug)]
pub struct SuiteReport {
    /// Rendered experiments in registry order.
    pub sections: Vec<SuiteSection>,
    /// The complete stdout rendering in the requested format.
    pub rendered: String,
    /// Per-experiment JSON artifacts as `(file_name, content)` pairs.
    pub artifacts: Vec<(String, String)>,
    /// Distinct cells requested by the selected experiments.
    pub unique_cells: usize,
    /// Store counters (computed / memo hits / disk hits).
    pub store_stats: StoreStats,
}

fn patterns(filter: Option<&str>) -> Vec<&str> {
    filter
        .unwrap_or("")
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

/// Selects experiments matching `filter` (comma-separated substrings of
/// experiment ids; `None` or empty selects all), in registry order.
pub fn select(filter: Option<&str>) -> Vec<&'static Experiment> {
    let patterns = patterns(filter);
    registry()
        .iter()
        .filter(|e| patterns.is_empty() || patterns.iter().any(|p| e.id.contains(p)))
        .collect()
}

/// Checks that every comma-separated filter pattern matches at least one
/// experiment id. A typo'd pattern riding along with valid ones
/// (`--filter fig4,fgi7`) used to be silently dropped, so the run
/// "succeeded" while measuring less than asked.
///
/// # Errors
///
/// Returns a message naming the dead pattern and every valid id.
pub fn validate_filter(filter: Option<&str>) -> Result<(), String> {
    for pattern in patterns(filter) {
        if !registry().iter().any(|e| e.id.contains(pattern)) {
            let ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
            return Err(format!(
                "filter pattern `{pattern}` matches no experiment (ids: {})",
                ids.join(", ")
            ));
        }
    }
    Ok(())
}

/// Expands the selected experiments into their cells, deduped by key
/// string in first-seen order — the canonical work list both `run_suite`
/// and the shard partition operate on.
fn expand_cells(selected: &[&'static Experiment], params: Params) -> Vec<CellKey> {
    let mut seen = std::collections::HashSet::new();
    let mut cells = Vec::new();
    for e in selected {
        for cell in (e.cells)(params) {
            if seen.insert(cell.key_string()) {
                cells.push(cell);
            }
        }
    }
    cells
}

/// The canonical work manifest for a distributed run: the selected
/// experiments' cells **plus** every translated cell's implied native
/// counterpart (a worker must verify against the native checksum, and the
/// coordinator must be able to render slowdowns), deduped by key string
/// in deterministic order — each native counterpart directly precedes the
/// first translated cell that implies it.
///
/// Coordinator and workers both derive this list independently from
/// (filter, params), so work can be assigned by *manifest index* over the
/// wire and verified against the full key string; no cell-key codec is
/// needed, and any registry skew between the two binaries is caught by
/// [`manifest_fingerprint`] before any work is handed out.
///
/// # Errors
///
/// Returns an error when any filter pattern matches no experiment.
pub fn work_manifest(filter: Option<&str>, params: Params) -> Result<Vec<CellKey>, String> {
    validate_filter(filter)?;
    let selected = select(filter);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for cell in expand_cells(&selected, params) {
        if let crate::cell::RunKind::Translated(_) = cell.kind {
            let native = cell.native_counterpart();
            if seen.insert(native.key_string()) {
                out.push(native);
            }
        }
        if seen.insert(cell.key_string()) {
            out.push(cell);
        }
    }
    Ok(out)
}

/// A stable fingerprint of a work manifest (FNV-1a over every key string
/// in order, prefixed by the execution mode). Coordinator and workers
/// compare fingerprints during the fleet handshake: a mismatch means the
/// two binaries expand different cell sets — version skew — and the
/// worker refuses the session instead of silently computing the wrong
/// grid. Sampled mode salts the fingerprint, so a sampled coordinator
/// and an exact worker (or vice versa) refuse each other at handshake
/// instead of mixing estimated and exact results in one store. A
/// non-legacy `--predictor` selection salts it the same way, so every
/// fleet member prices cycles under the same target-predictor model.
pub fn manifest_fingerprint(cells: &[CellKey]) -> u64 {
    let mut joined = String::new();
    if crate::sampled::sampled_mode().is_some() {
        joined.push_str("sampled\n");
    }
    let spec = strata_arch::predictor();
    if spec != strata_arch::PredictorSpec::Legacy {
        joined.push_str(&format!("predictor {}\n", spec.label()));
    }
    for cell in cells {
        joined.push_str(&cell.key_string());
        joined.push('\n');
    }
    crate::cell::fnv1a64(joined.as_bytes())
}

/// One `--shard index/count` slice of a suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index, `< count`.
    pub index: u32,
    /// Total number of shards, `>= 1`.
    pub count: u32,
}

/// The result of one shard's execution (no rendering happens in shard
/// mode — see [`run_shard`]).
#[derive(Debug, Clone, Copy)]
pub struct ShardReport {
    /// Distinct cells the selected experiments expand into, suite-wide.
    pub total_cells: usize,
    /// How many of those this shard owns and executed.
    pub shard_cells: usize,
    /// Store counters (computed / memo hits / disk hits).
    pub store_stats: StoreStats,
}

/// Executes one shard of the suite's cell set into the disk cache and
/// returns counts — **without rendering**.
///
/// The partition assigns each unique cell to exactly one shard by a
/// stable hash of its key string ([`CellKey::shard_of`]), so `n`
/// machines running `--shard 0/n .. (n-1)/n` cover the suite exactly
/// once. Rendering is deliberately skipped: a render would lazily
/// compute every cell the other shards own, defeating the split. Merge
/// the shards' `*.cell` files into one cache directory and render with
/// a plain `strata bench --cache` (all disk hits).
///
/// Translated cells verify against their native baseline, so a shard
/// also computes the (few, cheap) native counterparts of its translated
/// cells even when those hash to another shard — duplicated native work
/// is the price of coordination-free verification, and merging is still
/// well-defined because cell results are pure functions of their keys.
///
/// # Errors
///
/// Returns an error for a malformed shard (`index >= count` or zero
/// `count`), a missing `cache_dir` (a shard's only output is the disk
/// cache), or a filter pattern matching no experiment.
pub fn run_shard(opts: &SuiteOptions, shard: Shard) -> Result<ShardReport, String> {
    if shard.count == 0 {
        return Err("shard count must be at least 1".into());
    }
    if shard.index >= shard.count {
        return Err(format!(
            "shard index {} out of range for {} shard(s)",
            shard.index, shard.count
        ));
    }
    validate_filter(opts.filter.as_deref())?;
    let Some(cache_dir) = &opts.cache_dir else {
        return Err(
            "--shard requires the disk cache (a shard's only output is results/cache/)".into(),
        );
    };
    let selected = select(opts.filter.as_deref());
    let all = expand_cells(&selected, opts.params);
    let mine: Vec<CellKey> = all
        .iter()
        .filter(|c| c.shard_of(shard.count) == shard.index)
        .cloned()
        .collect();

    let store = Store::with_disk_cache(cache_dir.clone());
    execute(&store, &mine, opts.jobs);
    Ok(ShardReport {
        total_cells: all.len(),
        shard_cells: mine.len(),
        store_stats: store.stats(),
    })
}

/// Runs the suite: execute all selected cells in parallel, then render.
///
/// # Errors
///
/// Returns an error when any filter pattern matches no experiment.
pub fn run_suite(opts: &SuiteOptions) -> Result<SuiteReport, String> {
    validate_filter(opts.filter.as_deref())?;
    let selected = select(opts.filter.as_deref());

    let store = match &opts.cache_dir {
        Some(dir) => Store::with_disk_cache(dir.clone()),
        None => Store::in_memory(),
    };

    let cells = expand_cells(&selected, opts.params);
    execute(&store, &cells, opts.jobs);
    render_from_store(&store, opts)
}

/// Renders the selected experiments from an already-populated store — the
/// tail half of [`run_suite`], shared with the fleet coordinator. Cells
/// missing from the store are computed on the spot by the [`View`]'s lazy
/// path (serially), so the output is total regardless of how the store
/// was filled — and byte-identical to a local run over the same cells.
///
/// # Errors
///
/// Returns an error when any filter pattern matches no experiment.
pub fn render_from_store(store: &Store, opts: &SuiteOptions) -> Result<SuiteReport, String> {
    validate_filter(opts.filter.as_deref())?;
    let selected = select(opts.filter.as_deref());
    let unique_cells = store.len();

    let view = View::new(store, opts.params);
    let sections: Vec<SuiteSection> = selected
        .iter()
        .map(|e| SuiteSection {
            id: e.id,
            title: e.title,
            output: (e.render)(&view),
        })
        .collect();

    let mut artifacts: Vec<(String, String)> = sections
        .iter()
        .map(|s| {
            (
                format!("{}.json", s.id),
                section_json(s, opts.params).render_pretty() + "\n",
            )
        })
        .collect();
    // Per-cell raw metrics, rendered after the sections so cells computed
    // lazily during a render are included. This is the finest-grained
    // artifact the baseline gate diffs.
    let cells_doc = Json::obj([
        ("id", Json::str("cells")),
        (
            "title",
            Json::str("Per-cell raw metrics for the selected experiments"),
        ),
        ("params", params_json(opts.params)),
        ("tables", Json::arr([view.cells_table().to_json()])),
        ("notes", Json::arr([])),
    ]);
    artifacts.push(("cells.json".to_string(), cells_doc.render_pretty() + "\n"));

    let rendered = match opts.format {
        OutputFormat::Text => render_text(&sections),
        OutputFormat::Csv => render_csv(&sections),
        OutputFormat::Json => {
            let doc = Json::obj([
                ("params", params_json(opts.params)),
                (
                    "experiments",
                    Json::arr(sections.iter().map(|s| section_json(s, opts.params))),
                ),
            ]);
            doc.render_pretty() + "\n"
        }
    };

    Ok(SuiteReport {
        sections,
        rendered,
        artifacts,
        unique_cells,
        store_stats: store.stats(),
    })
}

/// Writes the report's JSON artifacts under `dir` (created if missing).
///
/// # Errors
///
/// Returns a message naming the file that failed.
pub fn write_artifacts(report: &SuiteReport, dir: &Path) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for (name, content) in &report.artifacts {
        let path = dir.join(name);
        std::fs::write(&path, content).map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}

/// Runs one experiment by exact id with default options — the entry point
/// the `strata-bench` binaries delegate to. Prints text tables (plus CSV
/// when `STRATA_CSV=1`) to stdout.
///
/// # Panics
///
/// Panics on an unknown id; the ids are compiled in, so this is a
/// programming error in the calling binary.
pub fn run_single(id: &str) {
    let knobs = EnvKnobs::from_env();
    crate::registry::by_id(id).unwrap_or_else(|| panic!("unknown experiment id `{id}`"));
    let opts = SuiteOptions {
        // An exact id is also a substring of itself; restrict to the exact
        // match below rather than substring expansion.
        filter: Some(id.to_string()),
        params: knobs.params(),
        ..SuiteOptions::default()
    };
    let selected = select(opts.filter.as_deref());
    let store = Store::in_memory();
    let exact: Vec<_> = selected.into_iter().filter(|e| e.id == id).collect();
    let mut cells = Vec::new();
    for e in &exact {
        cells.extend((e.cells)(opts.params));
    }
    execute(&store, &cells, opts.jobs);
    let view = View::new(&store, opts.params);
    for e in &exact {
        let output = (e.render)(&view);
        for table in &output.tables {
            println!("{}", table.render_text());
            if knobs.csv {
                println!("{}", table.render_csv());
            }
        }
        for note in &output.notes {
            println!("{note}");
        }
    }
}

/// Diffs a fresh suite report against the committed baseline snapshot
/// under `baseline_dir` at `tolerance_pct`.
///
/// The fresh side is the report's JSON artifacts (per-experiment tables
/// plus the per-cell metrics document), so the gate sees exactly what
/// `write_artifacts` would persist. Baseline experiments the run did not
/// select are reported as skipped, not failed — a filtered run can still
/// gate against a full-suite baseline.
///
/// # Errors
///
/// Returns an error when the baseline directory is missing, empty, or
/// holds unparsable documents.
pub fn baseline_gate(
    report: &SuiteReport,
    baseline_dir: &Path,
    tolerance_pct: f64,
) -> Result<DeltaReport, String> {
    let baseline = Snapshot::load_dir(baseline_dir).map_err(|e| {
        format!(
            "baseline: {e} (capture one with `strata bench --artifacts-dir {}`)",
            baseline_dir.display()
        )
    })?;
    let fresh = Snapshot::from_documents(
        report
            .artifacts
            .iter()
            .map(|(name, content)| (name.as_str(), content.as_str())),
    )?;
    Ok(baseline::diff(&baseline, &fresh, tolerance_pct))
}

fn params_json(params: Params) -> Json {
    Json::obj([
        ("scale", Json::uint(params.scale as u64)),
        ("variant", Json::uint(params.variant)),
    ])
}

fn section_json(section: &SuiteSection, params: Params) -> Json {
    Json::obj([
        ("id", Json::str(section.id)),
        ("title", Json::str(section.title)),
        ("params", params_json(params)),
        (
            "tables",
            Json::arr(section.output.tables.iter().map(|t| t.to_json())),
        ),
        (
            "notes",
            Json::arr(section.output.notes.iter().map(Json::str)),
        ),
    ])
}

fn render_text(sections: &[SuiteSection]) -> String {
    let mut out = String::new();
    for section in sections {
        out.push_str(&format!("== {} — {} ==\n\n", section.id, section.title));
        for table in &section.output.tables {
            out.push_str(&table.render_text());
            out.push('\n');
        }
        for note in &section.output.notes {
            out.push_str(note);
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

fn render_csv(sections: &[SuiteSection]) -> String {
    let mut out = String::new();
    for section in sections {
        for table in &section.output.tables {
            out.push_str(&format!("# {}: {}\n", section.id, table.title()));
            out.push_str(&table.render_csv());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_filters_by_substring() {
        assert_eq!(select(None).len(), 23);
        assert_eq!(select(Some("")).len(), 23);
        let tables: Vec<&str> = select(Some("table")).iter().map(|e| e.id).collect();
        assert_eq!(tables, ["table1", "table2"]);
        let picked: Vec<&str> = select(Some("fig4, fig7")).iter().map(|e| e.id).collect();
        assert_eq!(picked, ["fig4", "fig7"]);
        // fig1 is a substring of fig10..fig19.
        assert_eq!(select(Some("fig1")).len(), 10);
        // fig2 is likewise a substring of fig20..fig22.
        assert_eq!(select(Some("fig2")).len(), 4);
        assert!(select(Some("nope")).is_empty());
    }

    #[test]
    fn format_parses() {
        assert_eq!(OutputFormat::parse("text"), Ok(OutputFormat::Text));
        assert_eq!(OutputFormat::parse("csv"), Ok(OutputFormat::Csv));
        assert_eq!(OutputFormat::parse("json"), Ok(OutputFormat::Json));
        assert!(OutputFormat::parse("yaml").is_err());
    }

    #[test]
    fn empty_filter_error_names_ids() {
        let opts = SuiteOptions {
            filter: Some("zzz".into()),
            ..SuiteOptions::default()
        };
        let err = run_suite(&opts).unwrap_err();
        assert!(err.contains("table1"), "{err}");
    }

    #[test]
    fn shard_partition_is_disjoint_and_complete() {
        let selected = select(None);
        let all = expand_cells(&selected, Params::default());
        assert!(
            all.len() > 100,
            "expected the full suite grid, got {}",
            all.len()
        );
        for count in [1u32, 2, 3, 8] {
            let mut covered = 0usize;
            for index in 0..count {
                let mine: Vec<_> = all.iter().filter(|c| c.shard_of(count) == index).collect();
                covered += mine.len();
            }
            // Every cell's shard index is in range and deterministic, so
            // counting per-index membership covers each cell exactly once.
            assert_eq!(covered, all.len(), "count={count}");
            assert!(
                all.iter().all(|c| c.shard_of(count) < count),
                "count={count}"
            );
        }
        // One shard owns everything.
        assert!(all.iter().all(|c| c.shard_of(1) == 0));
    }

    #[test]
    fn run_shard_rejects_bad_specs() {
        let cached = SuiteOptions {
            cache_dir: Some(std::env::temp_dir().join("strata-shard-unused")),
            ..SuiteOptions::default()
        };
        let err = run_shard(&cached, Shard { index: 2, count: 2 }).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = run_shard(&cached, Shard { index: 0, count: 0 }).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");

        let uncached = SuiteOptions::default();
        let err = run_shard(&uncached, Shard { index: 0, count: 2 }).unwrap_err();
        assert!(err.contains("disk cache"), "{err}");

        let bad_filter = SuiteOptions {
            filter: Some("zzz".into()),
            cache_dir: Some(std::env::temp_dir().join("strata-shard-unused")),
            ..SuiteOptions::default()
        };
        assert!(run_shard(&bad_filter, Shard { index: 0, count: 2 }).is_err());
    }

    #[test]
    fn dead_pattern_among_valid_ones_errors() {
        // `fig4` matches, `fgi7` does not: the whole run must fail rather
        // than silently measuring less than asked.
        let opts = SuiteOptions {
            filter: Some("fig4,fgi7".into()),
            ..SuiteOptions::default()
        };
        let err = run_suite(&opts).unwrap_err();
        assert!(err.contains("`fgi7`"), "{err}");
        assert!(
            err.contains("fig17"),
            "error must list the valid ids: {err}"
        );

        assert!(validate_filter(None).is_ok());
        assert!(validate_filter(Some("")).is_ok());
        assert!(validate_filter(Some("fig4, fig7")).is_ok());
        assert!(
            validate_filter(Some("fig4,,")).is_ok(),
            "empty segments are ignored"
        );
        assert!(validate_filter(Some("fig4,nope")).is_err());
    }
}
