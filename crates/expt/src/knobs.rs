//! Environment knobs shared by every experiment entry point.
//!
//! Historically each `strata-bench` binary re-parsed `STRATA_SCALE` and
//! `STRATA_CSV` by hand; this module is the single definition the
//! orchestrator, the bench harness, and the CLI all use.
//!
//! * `STRATA_SCALE` — linear workload scale factor (default 1; values
//!   below 1 are ignored).
//! * `STRATA_VARIANT` — workload instance selector (default 0). Non-zero
//!   values perturb every workload generator's RNG seed, producing a
//!   statistically equivalent but distinct program instance; fig17
//!   quantifies the resulting sensitivity.
//! * `STRATA_CSV=1` — additionally print each table as CSV.

use strata_workloads::Params;

/// Parsed environment knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvKnobs {
    /// Workload scale factor (`STRATA_SCALE`, default 1).
    pub scale: u32,
    /// Workload instance selector (`STRATA_VARIANT`, default 0).
    pub variant: u64,
    /// Whether to additionally emit CSV (`STRATA_CSV=1`).
    pub csv: bool,
}

impl EnvKnobs {
    /// Reads the knobs from the process environment. Unparsable or
    /// out-of-range values fall back to the defaults.
    pub fn from_env() -> EnvKnobs {
        let scale = std::env::var("STRATA_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&s| s >= 1)
            .unwrap_or(1);
        let variant = std::env::var("STRATA_VARIANT")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let csv = std::env::var("STRATA_CSV").is_ok_and(|v| v == "1");
        EnvKnobs {
            scale,
            variant,
            csv,
        }
    }

    /// The workload parameters these knobs select.
    pub fn params(&self) -> Params {
        Params {
            scale: self.scale,
            variant: self.variant,
        }
    }
}

impl Default for EnvKnobs {
    /// Scale 1, canonical variant, no CSV — the documented defaults,
    /// independent of the process environment.
    fn default() -> EnvKnobs {
        EnvKnobs {
            scale: 1,
            variant: 0,
            csv: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let k = EnvKnobs::default();
        assert_eq!(
            k.params(),
            Params {
                scale: 1,
                variant: 0
            }
        );
        assert!(!k.csv);
    }
}
