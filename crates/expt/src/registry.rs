//! The experiment registry — one entry per DESIGN.md experiment, binding
//! a stable id to its cell expansion and its render pass.

use strata_workloads::Params;

use crate::cell::CellKey;
use crate::experiments::{self, Output};
use crate::view::View;

/// One registered experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Stable short id (`table1`, `fig2`, …) used by `--filter` and as
    /// the `results/<id>.json` file stem.
    pub id: &'static str,
    /// The historical `strata-bench` binary name that regenerates it.
    pub bin: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Expands the experiment into simulation cells.
    pub cells: fn(Params) -> Vec<CellKey>,
    /// Renders tables + notes from memoized cells.
    pub render: fn(&View) -> Output,
}

macro_rules! experiment {
    ($id:literal, $module:ident, $title:literal) => {
        Experiment {
            id: $id,
            bin: stringify!($module),
            title: $title,
            cells: experiments::$module::cells,
            render: experiments::$module::render,
        }
    };
}

/// Every experiment, in DESIGN.md presentation order.
pub fn registry() -> &'static [Experiment] {
    static REGISTRY: &[Experiment] = &[
        experiment!(
            "table1",
            table1_ib_characteristics,
            "Dynamic indirect-branch characteristics per benchmark"
        ),
        experiment!(
            "fig2",
            fig2_baseline_overhead,
            "Baseline slowdown under translator re-entry"
        ),
        experiment!(
            "fig3",
            fig3_overhead_breakdown,
            "Cycle breakdown by overhead source"
        ),
        experiment!(
            "fig4",
            fig4_ibtc_size_sweep,
            "Shared inlined IBTC size sweep"
        ),
        experiment!(
            "fig5",
            fig5_ibtc_inline_vs_shared,
            "Inlined vs out-of-line IBTC lookup"
        ),
        experiment!(
            "fig6",
            fig6_flags_policy,
            "Flags save/restore tax on dispatch"
        ),
        experiment!("fig7", fig7_sieve_sweep, "Sieve bucket-count sweep"),
        experiment!(
            "fig8",
            fig8_mechanism_comparison,
            "IB mechanism head-to-head comparison"
        ),
        experiment!("fig9", fig9_return_mechanisms, "Return handling mechanisms"),
        experiment!(
            "fig10",
            fig10_cross_arch,
            "Mechanisms across architecture profiles"
        ),
        experiment!(
            "fig11",
            fig11_ibtc_per_site,
            "Per-site vs shared IBTC tables"
        ),
        experiment!(
            "fig12",
            fig12_cache_pressure,
            "I-cache pressure of inlined lookups"
        ),
        experiment!("fig13", fig13_fragment_linking, "Fragment linking ablation"),
        experiment!("fig14", fig14_cache_size, "Fragment-cache capacity sweep"),
        experiment!("fig15", fig15_jump_elision, "Direct-jump elision ablation"),
        experiment!("fig16", fig16_ibtc_assoc, "IBTC associativity ablation"),
        experiment!(
            "fig17",
            fig17_workload_sensitivity,
            "Sensitivity across generated workload instances"
        ),
        experiment!(
            "fig18",
            fig18_mixed_policy,
            "Mixed per-class dispatch policies vs single mechanisms"
        ),
        experiment!(
            "fig19",
            fig19_adaptive_policy,
            "Adaptive promotion vs fixed mechanisms"
        ),
        experiment!(
            "fig20",
            fig20_execution_tiers,
            "Execution tiers: threaded-translation wall-clock vs interpreter"
        ),
        experiment!(
            "fig21",
            fig21_sampled_fidelity,
            "Sampled-simulation fidelity: estimates vs exact trace replay"
        ),
        experiment!(
            "fig22",
            fig22_predictor_reranking,
            "Mechanism re-ranking across hardware target-predictor models"
        ),
        experiment!(
            "table2",
            table2_best_config,
            "Best configuration per architecture"
        ),
    ];
    REGISTRY
}

/// Looks an experiment up by id.
pub fn by_id(id: &str) -> Option<&'static Experiment> {
    registry().iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let mut ids: Vec<_> = registry().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 23);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 23, "duplicate experiment ids");
        assert!(by_id("table1").is_some());
        assert!(by_id("fig10").is_some());
        assert!(by_id("fig1").is_none());
    }

    #[test]
    fn every_experiment_expands_to_cells() {
        for e in registry() {
            let cells = (e.cells)(Params::default());
            assert!(!cells.is_empty(), "{} has no cells", e.id);
            // All keys must be distinct within one experiment after the
            // executor's dedup — not required, but expansion should not
            // be wildly redundant: verify keys are well-formed instead.
            for cell in &cells {
                assert!(cell.key_string().contains(cell.workload));
            }
        }
    }
}
