//! Figure 16 (ablation) — IBTC associativity. At the same total entry
//! budget, a two-way table halves the index space but survives pairwise
//! conflicts; whether that beats direct mapping depends on whether misses
//! are conflict- or capacity-driven.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, ratio, Table};
use strata_workloads::Params;

use super::{fx, grid, names, pct, Output};
use crate::cell::CellKey;
use crate::view::View;

const SIZES: [u32; 4] = [64, 256, 1024, 4096];

fn cfg(entries: u32, ways: u8) -> SdtConfig {
    let mut cfg = SdtConfig::ibtc_inline(entries);
    cfg.ibtc_ways = ways;
    cfg
}

/// Cells: direct-mapped and two-way tables at each entry budget,
/// x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let mut configs = Vec::new();
    for entries in SIZES {
        for ways in [1u8, 2] {
            configs.push(cfg(entries, ways));
        }
    }
    grid(&configs, &[ArchProfile::x86_like()], params)
}

/// Renders Figure 16.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 16: IBTC associativity at equal entry budgets (x86-like)",
        &[
            "entries",
            "direct geomean",
            "direct miss",
            "2-way geomean",
            "2-way miss",
        ],
    );
    for entries in SIZES {
        let mut row = vec![entries.to_string()];
        for ways in [1u8, 2] {
            let c = cfg(entries, ways);
            let mut slowdowns = Vec::new();
            let mut misses = 0u64;
            let mut dispatches = 0u64;
            for name in names() {
                let native = view.native(name, &x86).total_cycles;
                let r = view.translated(name, c, &x86);
                slowdowns.push(r.slowdown(native));
                misses += r.mech.ib_misses;
                dispatches += r.mech.ib_dispatches + r.mech.ret_dispatches;
            }
            row.push(fx(geomean(slowdowns).expect("nonempty")));
            row.push(pct(ratio(misses, dispatches)));
        }
        t.row(row);
    }
    let mut out = Output::default();
    out.table(t).note(
        "Reading: associativity pays only in the conflict-dominated regime\n\
         (working set fits, indices collide); once misses are capacity-driven\n\
         the halved index space and the extra way-1 probe instructions cancel\n\
         the benefit. Strata-style SDTs ship direct-mapped tables for exactly\n\
         this reason — sizing up is cheaper than associativity.",
    );
    out
}
