//! Figure 5 — inlined IBTC lookup code at every site vs one shared
//! out-of-line routine reached by call/return. Inlining removes a
//! transfer pair per lookup at the cost of code-cache and I-cache
//! footprint.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

const ENTRIES: u32 = 4096;

/// Cells: inline and out-of-line placements on every benchmark, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    grid(
        &[
            SdtConfig::ibtc_inline(ENTRIES),
            SdtConfig::ibtc_out_of_line(ENTRIES),
        ],
        &[ArchProfile::x86_like()],
        params,
    )
}

/// Renders Figure 5.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 5: inlined vs out-of-line IBTC lookup (4096 entries, x86-like)",
        &[
            "benchmark",
            "inline",
            "out-of-line",
            "outline penalty",
            "cache bytes in/out",
        ],
    );
    let mut inl = Vec::new();
    let mut out_s = Vec::new();
    for name in names() {
        let native = view.native(name, &x86).total_cycles;
        let ri = view.translated(name, SdtConfig::ibtc_inline(ENTRIES), &x86);
        let ro = view.translated(name, SdtConfig::ibtc_out_of_line(ENTRIES), &x86);
        let si = ri.slowdown(native);
        let so = ro.slowdown(native);
        inl.push(si);
        out_s.push(so);
        t.row([
            name.to_string(),
            fx(si),
            fx(so),
            format!("{:+.1}%", (so / si - 1.0) * 100.0),
            format!("{}/{}", ri.mech.cache_used_bytes, ro.mech.cache_used_bytes),
        ]);
    }
    let gi = geomean(inl.iter().copied()).expect("nonempty");
    let go = geomean(out_s.iter().copied()).expect("nonempty");
    t.row([
        "geomean".to_string(),
        fx(gi),
        fx(go),
        format!("{:+.1}%", (go / gi - 1.0) * 100.0),
        String::new(),
    ]);
    let mut out = Output::default();
    out.table(t).note(
        "Reading: the shared routine pays an extra call/return per lookup, so\n\
         inlining wins wherever IBs are frequent — but note the smaller code-cache\n\
         footprint of the out-of-line variant (see fig12 for the I-cache flip side).",
    );
    out
}
