//! Figure 20 (methodology) — execution-tier comparison.
//!
//! The threaded tier translates hot guest regions into direct-threaded
//! superblocks but is required to produce a bit-identical retire-event
//! stream, so **no simulated number can move**: the table below holds
//! only tier-independent quantities (retired instructions, checksum,
//! and the cross-tier agreement verdict), all of which the baseline
//! gate may diff. Agreement is re-verified on every render: each
//! workload is re-run natively under the threaded tier and its
//! checksum, register file, and total cycles are asserted equal to the
//! memoized suite baseline — a divergence aborts the suite rather than
//! rendering a wrong table. On top of that dynamic check, every
//! superblock the threaded run translated is proved equivalent to its
//! guest code by the symbolic translation validator
//! (`strata-analysis::validate`); any finding likewise aborts the
//! suite. The validated block/slot totals appear as a note, which the
//! baseline gate ignores.
//!
//! The host wall-clock comparison — the entire point of the tier — is
//! inherently machine- and run-dependent, so it is opt-in: set
//! `STRATA_TIER_TIMING=1` to time both tiers per workload and emit the
//! measurements as notes. The gate ignores notes, and the default
//! render omits them entirely so suite output stays byte-identical
//! across runs (the fleet end-to-end tests and the warm-cache
//! determinism tests rely on that).

use std::time::Instant;

use strata_arch::ArchProfile;
use strata_stats::{geomean, Table};
use strata_workloads::registry;

use super::Output;
use crate::cell::CellKey;
use crate::exec::{build_program, FUEL};
use crate::view::View;
use strata_core::run_native_tiered;
use strata_machine::{ExecTier, TierConfig};

/// The threaded tier under test: default promotion threshold and block cap.
fn threaded() -> ExecTier {
    ExecTier::Threaded(TierConfig::default())
}

/// Whether to measure and report host wall-clock (`STRATA_TIER_TIMING=1`).
fn timing_enabled() -> bool {
    std::env::var("STRATA_TIER_TIMING").is_ok_and(|v| v == "1")
}

/// Cells: one native baseline per workload, x86-like. These are shared
/// with (and deduped against) fig2/fig3/table1; the verification and
/// timing runs happen in `render` because wall-clock cannot be memoized.
pub fn cells(params: strata_workloads::Params) -> Vec<CellKey> {
    let x86 = ArchProfile::x86_like();
    registry()
        .iter()
        .map(|spec| CellKey::native(spec.name, x86.clone(), params))
        .collect()
}

/// Renders Figure 20.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let timing = timing_enabled();
    let mut out = Output::default();
    let mut t = Table::new(
        "Fig. 20: execution tiers are observationally identical (x86-like)",
        &["benchmark", "instructions", "checksum", "tiers agree"],
    );
    let mut speedups = Vec::new();
    let mut lines = Vec::new();
    let mut validated = (0usize, 0usize, 0usize);
    for spec in registry() {
        let program = build_program(spec.name, view.params());
        let timed = |tier: ExecTier| {
            let start = Instant::now();
            let run = run_native_tiered(&program, x86.clone(), FUEL, tier)
                .unwrap_or_else(|e| panic!("fig20: native {} ({tier:?}): {e}", spec.name));
            (start.elapsed(), run)
        };
        let (threaded_time, thr) = timed(threaded());
        // Translation validation: the superblocks that same tier config
        // promotes on this workload must prove equivalent symbolically.
        // Dirty reports abort the suite — a wrong table is worse than
        // no table.
        let tv = strata_analysis::validate_program_tier(&program, threaded(), FUEL)
            .unwrap_or_else(|e| panic!("fig20: tier validation run {}: {e}", spec.name));
        assert!(
            tv.is_clean(),
            "fig20: translation validator flagged {}:\n{}",
            spec.name,
            tv.render_text()
        );
        validated.0 += tv.blocks;
        validated.1 += tv.slots;
        validated.2 += tv.fused_pairs;
        // The verification that earns the table's "yes": the threaded
        // re-run must match the memoized suite baseline bit for bit.
        let native = view.native(spec.name, &x86);
        assert_eq!(
            (native.checksum, &native.regs, native.total_cycles),
            (thr.checksum, &thr.regs, thr.total_cycles),
            "fig20: threaded tier diverged on {}",
            spec.name
        );
        t.row([
            spec.name.to_string(),
            native.instructions.to_string(),
            format!("{:#010x}", native.checksum),
            "yes".to_string(),
        ]);
        if timing {
            let (interp_time, interp) = timed(ExecTier::Interp);
            assert_eq!(interp.checksum, thr.checksum, "fig20: {}", spec.name);
            let speedup = interp_time.as_secs_f64() / threaded_time.as_secs_f64().max(1e-9);
            speedups.push(speedup);
            lines.push(format!(
                "  {:<10} interp {:>8.2} ms, threaded {:>8.2} ms, speedup {:.2}x",
                spec.name,
                interp_time.as_secs_f64() * 1e3,
                threaded_time.as_secs_f64() * 1e3,
                speedup,
            ));
        }
    }
    out.table(t);
    out.note(format!(
        "Translation validation: {} superblock(s), {} lowered slot(s), {} fused \
         cmp+branch pair(s) proved equivalent to guest code symbolically \
         (strata verify --validate-tiers re-runs the same check standalone).",
        validated.0, validated.1, validated.2,
    ));
    if timing {
        out.note(
            "Host wall-clock per tier (single run, this machine; excluded from \
             the baseline gate because it is not a simulated quantity):",
        );
        for line in lines {
            out.note(line);
        }
        let geo = geomean(speedups.iter().copied()).expect("nonempty registry");
        out.note(format!(
            "geomean speedup {geo:.2}x. Both tiers drive the same cost-model \
             observer (~7 ns/instr of charged-cycle accounting), so Amdahl caps \
             the costed speedup well below the >=2x the tier shows on uncosted \
             hot loops (see results/microbench.json, machine/dispatch_warm_400k_instrs \
             vs its threaded variant)."
        ));
    } else {
        out.note(
            "Wall-clock timing is machine-dependent and therefore opt-in: \
             re-render with STRATA_TIER_TIMING=1 (e.g. `STRATA_TIER_TIMING=1 \
             strata bench --filter fig20`) to measure both tiers per workload. \
             EXPERIMENTS.md records one such measurement.",
        );
    }
    out
}
