//! Figure 9 — return handling. Returns are usually the most frequent
//! indirect branches; the paper evaluates treating them as generic IBs,
//! routing them through a tagless return cache with in-fragment
//! verification, and fast returns (pushing translated addresses —
//! fastest, transparency-violating).

use strata_arch::ArchProfile;
use strata_core::{RetMechanism, SdtConfig};
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

fn configs() -> [(&'static str, SdtConfig); 5] {
    let mut fast = SdtConfig::ibtc_inline(4096);
    fast.ret = RetMechanism::FastReturn;
    let mut shadow = SdtConfig::ibtc_inline(4096);
    shadow.ret = RetMechanism::ShadowStack { depth: 1024 };
    [
        ("ret-as-ib", SdtConfig::ibtc_inline(4096)),
        ("rc-64", SdtConfig::tuned(4096, 64)),
        ("rc-1024", SdtConfig::tuned(4096, 1024)),
        ("shadow-1024", shadow),
        ("fast-ret", fast),
    ]
}

/// Cells: the five return-handling configurations on every benchmark,
/// x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let cfgs: Vec<SdtConfig> = configs().iter().map(|(_, c)| *c).collect();
    grid(&cfgs, &[ArchProfile::x86_like()], params)
}

/// Renders Figure 9.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let configs = configs();
    let mut t = Table::new(
        "Fig. 9: return handling mechanisms, slowdown vs native (x86-like, IBTC 4096 for other IBs)",
        &["benchmark", "ret-as-ib", "rc-64", "rc-1024", "shadow-1024", "fast-ret", "rc-1024 hit rate"],
    );
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for name in names() {
        let native = view.native(name, &x86).total_cycles;
        let mut cells = vec![name.to_string()];
        let mut rc_rate = String::new();
        for (i, (label, cfg)) in configs.iter().enumerate() {
            let r = view.translated(name, *cfg, &x86);
            per_cfg[i].push(r.slowdown(native));
            cells.push(fx(r.slowdown(native)));
            if *label == "rc-1024" {
                rc_rate = format!("{:.2}%", r.mech.ret_hit_rate() * 100.0);
            }
        }
        cells.push(rc_rate);
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string()];
    for series in &per_cfg {
        cells.push(fx(geomean(series.iter().copied()).expect("nonempty")));
    }
    cells.push(String::new());
    t.row(cells);
    let mut out = Output::default();
    out.table(t).note(
        "Reading: on call/return-heavy benchmarks (crafty, parser, vortex) the\n\
         return cache removes most of the generic-dispatch cost and fast returns\n\
         remove nearly all of it — at the price of exposing fragment-cache\n\
         addresses on the application stack (see examples/transparency.rs). The\n\
         shadow stack is the transparent middle ground: exact return matching\n\
         (no hash conflicts) paid for with extra per-call bookkeeping.",
    );
    out
}
