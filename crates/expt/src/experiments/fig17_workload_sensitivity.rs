//! Figure 17 (methodology) — workload-instance sensitivity. The stand-in
//! workloads are generated; this experiment re-runs the headline
//! configuration over several statistically equivalent instances
//! (different generator seeds) to show the conclusions do not hinge on
//! one particular instance.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};
use strata_workloads::{registry, Params};

use super::{fx, Output};
use crate::cell::CellKey;
use crate::view::View;

const VARIANTS: u64 = 5;

fn cfg() -> SdtConfig {
    SdtConfig::ibtc_inline(4096)
}

/// The parameter points swept: variants `0..VARIANTS` at the suite scale.
fn points(params: Params) -> Vec<Params> {
    (0..VARIANTS)
        .map(|variant| Params {
            scale: params.scale,
            variant,
        })
        .collect()
}

/// Cells: the headline configuration across workload variants, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let x86 = ArchProfile::x86_like();
    let mut cells = Vec::new();
    for point in points(params) {
        for spec in registry() {
            cells.push(CellKey::translated(spec.name, cfg(), x86.clone(), point));
        }
    }
    cells
}

/// Renders Figure 17.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let cfg = cfg();
    let points = points(view.params());
    let mut t = Table::new(
        "Fig. 17: slowdown across generated workload instances (IBTC 4096, x86-like)",
        &["benchmark", "variant 0", "min", "max", "spread"],
    );
    let mut geo_by_variant: Vec<Vec<f64>> = vec![Vec::new(); points.len()];
    for spec in registry() {
        let mut slowdowns = Vec::new();
        for (i, &point) in points.iter().enumerate() {
            let native = view.native_at(spec.name, &x86, point);
            let report = view.translated_at(spec.name, cfg, &x86, point);
            let s = report.slowdown(native.total_cycles);
            slowdowns.push(s);
            geo_by_variant[i].push(s);
        }
        let min = slowdowns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = slowdowns.iter().copied().fold(0.0f64, f64::max);
        t.row([
            spec.name.to_string(),
            fx(slowdowns[0]),
            fx(min),
            fx(max),
            format!("{:.1}%", (max / min - 1.0) * 100.0),
        ]);
    }
    let geos: Vec<f64> = geo_by_variant
        .iter()
        .map(|v| geomean(v.iter().copied()).expect("nonempty"))
        .collect();
    let gmin = geos.iter().copied().fold(f64::INFINITY, f64::min);
    let gmax = geos.iter().copied().fold(0.0f64, f64::max);
    t.row([
        "geomean".to_string(),
        fx(geos[0]),
        fx(gmin),
        fx(gmax),
        format!("{:.1}%", (gmax / gmin - 1.0) * 100.0),
    ]);
    let mut out = Output::default();
    out.table(t).note(
        "Reading: per-benchmark slowdowns move by at most a few percent across\n\
         generated instances and the geomean barely moves — the reproduction's\n\
         conclusions are properties of the IB profiles, not of one particular\n\
         random stream. (Seeds vary data, token streams, opcode mixes, and\n\
         object layouts; code structure is held fixed.)",
    );
    out
}
