//! Figure 6 — the flags save/restore tax. IBTC lookup code compares the
//! branch target against a tag, clobbering the application's flags; a
//! safe SDT must save and restore them around every lookup. On x86 that
//! means a costly `pushf`/`popf` pair; on SPARC-like machines condition
//! codes are cheap to preserve. `FlagsPolicy::None` models an SDT whose
//! liveness analysis proved the flags dead across the branch.

use strata_arch::ArchProfile;
use strata_core::{FlagsPolicy, SdtConfig};
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

fn configs() -> (SdtConfig, SdtConfig) {
    let with = SdtConfig::ibtc_inline(4096);
    let mut without = with;
    without.flags = FlagsPolicy::None;
    (with, without)
}

/// Cells: flags-save and flags-none on every benchmark, x86- and
/// sparc-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let (with, without) = configs();
    grid(
        &[with, without],
        &[ArchProfile::x86_like(), ArchProfile::sparc_like()],
        params,
    )
}

/// Renders Figure 6.
pub fn render(view: &View) -> Output {
    let (with, without) = configs();
    let mut t = Table::new(
        "Fig. 6: flags save/restore tax on IBTC dispatch (4096 entries)",
        &[
            "benchmark",
            "x86 save",
            "x86 none",
            "x86 tax",
            "sparc save",
            "sparc none",
            "sparc tax",
        ],
    );
    let mut tax_x86 = Vec::new();
    let mut tax_sparc = Vec::new();
    for name in names() {
        let mut cells = vec![name.to_string()];
        for profile in [ArchProfile::x86_like(), ArchProfile::sparc_like()] {
            let native = view.native(name, &profile).total_cycles;
            let a = view.translated(name, with, &profile).slowdown(native);
            let b = view.translated(name, without, &profile).slowdown(native);
            let tax = a / b;
            if profile.name == "x86-like" {
                tax_x86.push(tax);
            } else {
                tax_sparc.push(tax);
            }
            cells.push(fx(a));
            cells.push(fx(b));
            cells.push(format!("{:+.1}%", (tax - 1.0) * 100.0));
        }
        t.row(cells);
    }
    let mut out = Output::default();
    out.table(t);
    out.note(format!(
        "geomean flags tax: x86-like {:+.1}%, sparc-like {:+.1}%",
        (geomean(tax_x86).expect("nonempty") - 1.0) * 100.0,
        (geomean(tax_sparc).expect("nonempty") - 1.0) * 100.0,
    ));
    out.note(
        "Reading: the pushf/popf pair is a real tax on the x86-like profile and\n\
         noise on sparc-like — one of the paper's architecture-dependence levers.",
    );
    out
}
