//! Figure 7 — sieve bucket-count sensitivity. With few buckets, targets
//! share chains and every dispatch walks multiple compare-and-branch
//! stanzas; with many buckets chains stay short and a hit is one table
//! load plus one stanza ending in a *direct* jump.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

const SHIFTS: [u32; 7] = [4, 6, 8, 10, 12, 14, 16];

/// Cells: the sieve bucket-count ladder on every benchmark, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let configs: Vec<SdtConfig> = SHIFTS.iter().map(|&s| SdtConfig::sieve(1 << s)).collect();
    grid(&configs, &[ArchProfile::x86_like()], params)
}

/// Renders Figure 7.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 7: sieve bucket-count sweep (x86-like)",
        &[
            "buckets",
            "geomean slowdown",
            "mean chain",
            "max chain",
            "perlbmk",
            "gcc",
        ],
    );
    for shift in SHIFTS {
        let buckets = 1u32 << shift;
        let cfg = SdtConfig::sieve(buckets);
        let mut slowdowns = Vec::new();
        let mut mean_chain: f64 = 0.0;
        let mut max_chain = 0u32;
        let mut pick = [0.0f64; 2];
        for name in names() {
            let native = view.native(name, &x86).total_cycles;
            let r = view.translated(name, cfg, &x86);
            let s = r.slowdown(native);
            slowdowns.push(s);
            mean_chain = mean_chain.max(r.mech.sieve_mean_chain);
            max_chain = max_chain.max(r.mech.sieve_max_chain);
            match name {
                "perlbmk" => pick[0] = s,
                "gcc" => pick[1] = s,
                _ => {}
            }
        }
        t.row([
            buckets.to_string(),
            fx(geomean(slowdowns.iter().copied()).expect("nonempty")),
            format!("{mean_chain:.2}"),
            max_chain.to_string(),
            fx(pick[0]),
            fx(pick[1]),
        ]);
    }
    let mut out = Output::default();
    out.table(t).note(
        "Reading: slowdown tracks chain length; once buckets exceed the dynamic\n\
         target count, chains are ~1 stanza and performance saturates. (Chain\n\
         columns report the worst benchmark at each size.)",
    );
    out
}
