//! Figure 21 (methodology) — fidelity of SimPoint-sampled simulation.
//!
//! Sampled mode (`--sampled`) estimates every figure's counters from a
//! few replayed trace intervals instead of full runs. This experiment
//! quantifies the bargain: for one representative configuration per
//! figure family (re-entry, IBTC, sieve, tuned returns) on three
//! IB-diverse workloads, it computes both the **exact** whole-trace
//! counters (a full [`DispatchReplay`] over every record — proven equal
//! to exact execution by the replay-exactness tests) and the **sampled**
//! estimate with its 95% confidence interval, then reports relative
//! error, interval coverage, and the work reduction. The
//! `pred_mispredicts` row does the same for the hardware-predictor
//! mirror (under the process-wide [`PredictorSpec`](strata_arch::PredictorSpec)),
//! gating the predictor-aware cycle charge sampled mode synthesizes.
//!
//! The verdict line (`FIDELITY PASS`/`FAIL`) gates CI: every gated
//! metric must estimate within [`MAX_REL_ERROR`] and inside its printed
//! bar, and the sampled replay must touch at most [`MAX_WORK_FRACTION`]
//! of the trace. A dispatch counter only gates when its exact count is
//! at least one event per interval — rarer events are below interval
//! sampling's resolution and print as information. Everything in the
//! table is a deterministic function of the recorded traces, so the
//! render is byte-stable like every other experiment.
//!
//! [`DispatchReplay`]: strata_core::DispatchReplay

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{Estimate, Table};

use super::Output;
use crate::cell::CellKey;
use crate::sampled::{ensure_bundle, estimate_cell, full_trace_counters_with_spec, sampled_mode};
use crate::view::View;

/// CI gate: maximum relative error of any gated dispatch-count estimate.
pub const MAX_REL_ERROR: f64 = 0.05;

/// CI gate: maximum fraction of trace records the sampled replay may
/// touch (warmup included) — the "≤ 1/5 of exact guest-dispatch work"
/// acceptance bound.
pub const MAX_WORK_FRACTION: f64 = 0.2;

/// Systematic half-width floor on printed error bars, as a fraction of
/// the estimate. The stratified CI captures sampling variance only;
/// warmup truncation at interval boundaries adds a small systematic bias
/// the statistics cannot see, so bars narrower than this are widened
/// before the "within bar" verdict.
pub const BAR_FLOOR: f64 = 0.03;

/// IB-diverse probe workloads: almost no IBs / hot indirect jump /
/// return-dominated.
const WORKLOADS: [&str; 3] = ["gzip", "perlbmk", "parser"];

/// One representative configuration per figure family.
fn representatives() -> [(&'static str, SdtConfig); 4] {
    [
        ("fig2", SdtConfig::reentry()),
        ("fig4", SdtConfig::ibtc_inline(512)),
        ("fig7", SdtConfig::sieve(256)),
        ("fig9", SdtConfig::tuned(512, 128)),
    ]
}

/// The traces directory this render reads (and, on first run, records
/// into): the sampled-mode directory when the mode is on, otherwise the
/// default reference location.
fn traces_dir() -> std::path::PathBuf {
    sampled_mode()
        .map(|d| d.to_path_buf())
        .unwrap_or_else(|| std::path::PathBuf::from(crate::sampled::DEFAULT_TRACES_DIR))
}

/// Cells: the probe workloads' x86 native baselines — all shared with
/// (and deduped against) fig2/table1. The estimate-vs-exact comparison
/// happens in `render` over trace bundles, not store cells, so this
/// experiment adds no new rows to `cells.json`.
pub fn cells(params: strata_workloads::Params) -> Vec<CellKey> {
    let x86 = ArchProfile::x86_like();
    WORKLOADS
        .iter()
        .map(|&name| CellKey::native(name, x86.clone(), params))
        .collect()
}

/// The printed error bar: the stratified 95% half-width, floored by the
/// documented systematic fraction of the estimate.
fn bar(e: &Estimate) -> f64 {
    e.ci95.max(BAR_FLOOR * e.mean.abs())
}

/// Renders Figure 21.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let dir = traces_dir();
    let mut out = Output::default();
    let mut t = Table::new(
        "Fig. 21: sampled-simulation fidelity (x86-like)",
        &[
            "figure",
            "benchmark",
            "metric",
            "exact",
            "estimated",
            "ci95",
            "rel err",
            "in bar",
        ],
    );
    let mut max_rel_err: f64 = 0.0;
    let mut max_work: f64 = 0.0;
    let mut all_in_bar = true;
    let mut trace_total: u64 = 0;
    let mut replayed_total: u64 = 0;
    let mut coverage_notes = Vec::new();

    for &workload in &WORKLOADS {
        let bundle =
            ensure_bundle(&dir, workload, view.params()).unwrap_or_else(|e| panic!("fig21: {e}"));
        coverage_notes.push(format!(
            "  {:<8} {} intervals of {} instrs, {} simulation points ({:.1}% coverage)",
            workload,
            bundle.points.intervals,
            bundle.points.interval,
            bundle.points.points.len(),
            bundle.points.coverage() * 100.0,
        ));
        for (figure, cfg) in representatives() {
            let cell = estimate_cell(&dir, workload, view.params(), cfg, x86.clone())
                .unwrap_or_else(|e| panic!("fig21: {e}"));
            let spec = strata_arch::predictor();
            let (truth, pred_truth) = full_trace_counters_with_spec(
                &bundle,
                workload,
                view.params(),
                cfg,
                x86.clone(),
                spec,
            )
            .unwrap_or_else(|e| panic!("fig21: {e}"));
            max_work = max_work.max(cell.work_fraction());
            trace_total += cell.trace_records;
            replayed_total += cell.replayed_records;
            // The predictor-aware cycle charge is linear in the summed
            // mispredict estimate, so gating it gates the cycles too.
            let pred_est = Estimate {
                mean: cell.est.jump_mispredicts.mean
                    + cell.est.call_mispredicts.mean
                    + cell.est.ret_mispredicts.mean,
                ci95: cell.est.jump_mispredicts.ci95
                    + cell.est.call_mispredicts.ci95
                    + cell.est.ret_mispredicts.ci95,
            };
            // Gated metrics: the dispatch counts every figure's overhead
            // model is linear in. Misses ride along as information — they
            // are rarer events with proportionally wider intervals.
            let gated = [
                (
                    "ib_dispatches",
                    &cell.est.ib_dispatches,
                    truth.ib_dispatches,
                    true,
                ),
                (
                    "ret_dispatches",
                    &cell.est.ret_dispatches,
                    truth.ret_dispatches,
                    true,
                ),
                ("ib_misses", &cell.est.ib_misses, truth.ib_misses, false),
                ("pred_mispredicts", &pred_est, pred_truth.total(), true),
            ];
            for (metric, est, exact, gates) in gated {
                let err = est.rel_error(exact as f64);
                let half = bar(est);
                let within = (est.mean - exact as f64).abs() <= half;
                // Interval sampling cannot resolve events rarer than
                // ~one per interval (they mostly fall in unelected
                // intervals); such counters — including zero-truth ones
                // like gzip's near-absent IBs — print for information
                // but do not gate.
                if gates && exact >= bundle.points.intervals {
                    max_rel_err = max_rel_err.max(err);
                    all_in_bar &= within;
                }
                t.row([
                    figure.to_string(),
                    workload.to_string(),
                    metric.to_string(),
                    exact.to_string(),
                    format!("{:.0}", est.mean),
                    format!("±{half:.0}"),
                    if exact > 0 {
                        format!("{:.2}%", err * 100.0)
                    } else {
                        "--".to_string()
                    },
                    if within { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }

    out.table(t);
    out.note("Trace bundles (shared by every sampled cell of the workload):");
    for line in coverage_notes {
        out.note(line);
    }
    let speedup = trace_total as f64 / replayed_total.max(1) as f64;
    out.note(format!(
        "Replayed {replayed_total} of {trace_total} recorded instructions across all \
         cells ({:.1}% — worst single cell {:.1}%), a {speedup:.1}x reduction in \
         guest-dispatch work. Error bars are stratified 95% intervals floored at \
         {:.0}% of the estimate (systematic warmup bias; see DESIGN.md).",
        replayed_total as f64 / trace_total.max(1) as f64 * 100.0,
        max_work * 100.0,
        BAR_FLOOR * 100.0,
    ));
    let pass = max_rel_err <= MAX_REL_ERROR && max_work <= MAX_WORK_FRACTION && all_in_bar;
    out.note(format!(
        "FIDELITY {} (max rel err {:.2}% <= {:.2}%, max work {:.1}% <= {:.0}%, all \
         gated metrics within bars: {})",
        if pass { "PASS" } else { "FAIL" },
        max_rel_err * 100.0,
        MAX_REL_ERROR * 100.0,
        max_work * 100.0,
        MAX_WORK_FRACTION * 100.0,
        all_in_bar,
    ));
    out
}
