//! Figure 18 — mixed per-class dispatch policies. The paper evaluates
//! each mechanism globally; the strategy layer lets indirect jumps,
//! indirect calls, and returns each pick their own mechanism. This
//! experiment pits four single-mechanism configurations (returns handled
//! as generic IBs, as in the paper's head-to-head) against mixed
//! policies that route each branch class through the mechanism that
//! suits its behaviour.

use strata_arch::ArchProfile;
use strata_core::{ClassPolicy, IbMechanism, IbtcPlacement, IbtcScope, RetMechanism, SdtConfig};
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

/// Number of leading single-mechanism entries in [`configs`].
const SINGLES: usize = 4;

fn fixed(mech: IbMechanism) -> ClassPolicy {
    ClassPolicy::Fixed { mech, ways: 1 }
}

fn configs() -> [(&'static str, SdtConfig); 7] {
    let sieve_ibtc_rc = {
        let mut c = SdtConfig::tuned(512, 1024);
        c.policy.jump = fixed(IbMechanism::Sieve { buckets: 4096 });
        c.policy.call = ClassPolicy::Fixed {
            mech: IbMechanism::Ibtc {
                entries: 512,
                scope: IbtcScope::Shared,
                placement: IbtcPlacement::Inline,
            },
            ways: 2,
        };
        c
    };
    let ibtc_sieve_rc = {
        let mut c = SdtConfig::tuned(4096, 1024);
        c.policy.call = fixed(IbMechanism::Sieve { buckets: 1024 });
        c
    };
    let sieve_ibtc_shadow = {
        let mut c = sieve_ibtc_rc;
        c.ret = RetMechanism::ShadowStack { depth: 1024 };
        c
    };
    [
        ("reentry", SdtConfig::reentry()),
        ("ibtc-4096", SdtConfig::ibtc_inline(4096)),
        ("outline-4096", SdtConfig::ibtc_out_of_line(4096)),
        ("sieve-4096", SdtConfig::sieve(4096)),
        ("sv/ibtc/rc", sieve_ibtc_rc),
        ("ibtc/sv/rc", ibtc_sieve_rc),
        ("sv/ibtc/sh", sieve_ibtc_shadow),
    ]
}

/// Cells: four single-mechanism configurations and three mixed policies
/// on every benchmark, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let cfgs: Vec<SdtConfig> = configs().iter().map(|(_, c)| *c).collect();
    grid(&cfgs, &[ArchProfile::x86_like()], params)
}

/// Renders Figure 18.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let configs = configs();
    let mut t = Table::new(
        "Fig. 18: mixed per-class policies vs single mechanisms, slowdown vs native (x86-like; \
         mixed columns are jump/call/ret)",
        &[
            "benchmark",
            "reentry",
            "ibtc-4096",
            "outline-4096",
            "sieve-4096",
            "sv/ibtc/rc",
            "ibtc/sv/rc",
            "sv/ibtc/sh",
        ],
    );
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    // Benchmarks where some mixed policy ran in fewer total cycles than
    // *every* single-mechanism configuration.
    let mut mixed_wins: Vec<String> = Vec::new();
    for name in names() {
        let native = view.native(name, &x86).total_cycles;
        let mut cells = vec![name.to_string()];
        let mut cycles = Vec::with_capacity(configs.len());
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let r = view.translated(name, *cfg, &x86);
            per_cfg[i].push(r.slowdown(native));
            cells.push(fx(r.slowdown(native)));
            cycles.push(r.total_cycles);
        }
        t.row(cells);
        let best_single = cycles[..SINGLES].iter().min().expect("nonempty");
        if let Some(winner) = (SINGLES..configs.len())
            .filter(|&i| cycles[i] < *best_single)
            .min_by_key(|&i| cycles[i])
        {
            mixed_wins.push(format!("{name} ({})", configs[winner].0));
        }
    }
    let mut cells = vec!["geomean".to_string()];
    for series in &per_cfg {
        cells.push(fx(geomean(series.iter().copied()).expect("nonempty")));
    }
    t.row(cells);
    let wins_note = if mixed_wins.is_empty() {
        "Mixed policies beat no single mechanism outright at these parameters.".to_string()
    } else {
        format!(
            "Benchmarks where a mixed policy beats every single mechanism on total\n\
             cycles (best mixed config in parentheses): {}.",
            mixed_wins.join(", ")
        )
    };
    let mut out = Output::default();
    out.table(t).note(format!(
        "Reading: the single-mechanism columns route every indirect transfer —\n\
         returns included — through one mechanism, as in the paper's\n\
         head-to-head. The mixed columns split the classes: sieve buckets for\n\
         the (polymorphic) jumps, a compact IBTC for the (mostly monomorphic)\n\
         calls, and a return cache or shadow stack for the returns.\n\
         {wins_note}"
    ));
    out
}
