//! Figure 19 — adaptive promotion vs fixed mechanisms. The adaptive
//! policy starts every indirect-branch site on a one-entry inline probe
//! and promotes it as observed target arity grows: a second distinct
//! target moves the site to a private IBTC, and more than `sieve_arity`
//! distinct targets move it to a sieve shared by the class's promoted
//! sites. Monomorphic sites thus keep a two-instruction compare while
//! polymorphic sites graduate to structures that can hold their target
//! sets.

use strata_arch::ArchProfile;
use strata_core::{ClassPolicy, SdtConfig};
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

fn adaptive() -> ClassPolicy {
    ClassPolicy::Adaptive {
        ibtc_entries: 256,
        sieve_buckets: 1024,
        sieve_arity: 8,
    }
}

fn configs() -> [(&'static str, SdtConfig); 4] {
    let adaptive_cfg = {
        let mut c = SdtConfig::tuned(512, 1024);
        c.policy.jump = adaptive();
        c.policy.call = adaptive();
        c
    };
    [
        // Fixed mechanisms with the same return cache, so the columns
        // isolate jump/call handling.
        ("ibtc-512", SdtConfig::tuned(512, 1024)),
        ("ibtc-4096", SdtConfig::tuned(4096, 1024)),
        ("sieve-1024", {
            let mut c = SdtConfig::sieve(1024);
            c.ret = SdtConfig::tuned(512, 1024).ret;
            c
        }),
        ("adaptive", adaptive_cfg),
    ]
}

/// Cells: three fixed configurations and the adaptive policy on every
/// benchmark, x86-like (all with a 1024-entry return cache).
pub fn cells(params: Params) -> Vec<CellKey> {
    let cfgs: Vec<SdtConfig> = configs().iter().map(|(_, c)| *c).collect();
    grid(&cfgs, &[ArchProfile::x86_like()], params)
}

/// Renders Figure 19.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let configs = configs();
    let mut t = Table::new(
        "Fig. 19: adaptive promotion vs fixed mechanisms, slowdown vs native (x86-like, rc-1024 \
         returns throughout)",
        &[
            "benchmark",
            "ibtc-512",
            "ibtc-4096",
            "sieve-1024",
            "adaptive",
            "promotions",
        ],
    );
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for name in names() {
        let native = view.native(name, &x86).total_cycles;
        let mut cells = vec![name.to_string()];
        let mut promotions = 0;
        for (i, (label, cfg)) in configs.iter().enumerate() {
            let r = view.translated(name, *cfg, &x86);
            per_cfg[i].push(r.slowdown(native));
            cells.push(fx(r.slowdown(native)));
            if *label == "adaptive" {
                promotions = r.mech.adaptive_promotions;
            }
        }
        cells.push(promotions.to_string());
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string()];
    for series in &per_cfg {
        cells.push(fx(geomean(series.iter().copied()).expect("nonempty")));
    }
    cells.push(String::new());
    t.row(cells);
    let mut out = Output::default();
    out.table(t).note(
        "Reading: the promotions column counts sites that outgrew their inline\n\
         probe (inline-to-IBTC plus IBTC-to-sieve, cumulative across cache\n\
         flushes). Monomorphic workloads promote almost nothing and ride the\n\
         cheap probe; switch-heavy workloads promote their hot sites and\n\
         approach the fixed mechanisms' cost from below.",
    );
    out
}
