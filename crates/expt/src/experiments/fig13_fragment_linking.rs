//! Figure 13 (ablation) — fragment linking. Strata patches direct-branch
//! exits into fragment-to-fragment jumps after their first execution;
//! without linking, *every* taken direct branch pays a full translator
//! crossing. This ablation isolates how much of the SDT's viability comes
//! from linking before any IB mechanism even matters.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

fn configs() -> (SdtConfig, SdtConfig) {
    let linked = SdtConfig::ibtc_inline(4096);
    let mut unlinked = linked;
    unlinked.link_fragments = false;
    (linked, unlinked)
}

/// Cells: linked and unlinked variants on every benchmark, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let (linked, unlinked) = configs();
    grid(&[linked, unlinked], &[ArchProfile::x86_like()], params)
}

/// Renders Figure 13.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let (linked, unlinked) = configs();
    let mut t = Table::new(
        "Fig. 13: fragment linking ablation (IBTC 4096, x86-like)",
        &[
            "benchmark",
            "linked",
            "unlinked",
            "unlinked translator entries",
        ],
    );
    let mut l = Vec::new();
    let mut u = Vec::new();
    for name in names() {
        let native = view.native(name, &x86).total_cycles;
        let rl = view.translated(name, linked, &x86);
        let ru = view.translated(name, unlinked, &x86);
        l.push(rl.slowdown(native));
        u.push(ru.slowdown(native));
        t.row([
            name.to_string(),
            fx(rl.slowdown(native)),
            fx(ru.slowdown(native)),
            ru.mech.translator_entries.to_string(),
        ]);
    }
    t.row([
        "geomean".to_string(),
        fx(geomean(l).expect("nonempty")),
        fx(geomean(u).expect("nonempty")),
        String::new(),
    ]);
    let mut out = Output::default();
    out.table(t).note(
        "Reading: without linking even the loop kernels collapse — every taken\n\
         branch is a context switch. Linking is the table-stakes optimization the\n\
         paper assumes before it starts optimizing indirect branches.",
    );
    out
}
