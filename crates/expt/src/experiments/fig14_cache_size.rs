//! Figure 14 (ablation) — fragment-cache capacity. When the cache cannot
//! hold the working set of translated code, the SDT flushes and
//! retranslates; this sweep shows the cliff and where it sits relative to
//! each benchmark's code footprint.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::Table;
use strata_workloads::Params;

use super::{fx, Output};
use crate::cell::CellKey;
use crate::view::View;

const KIBS: [u32; 6] = [8, 12, 16, 24, 32, 64];
const NAMES: [&str; 2] = ["gcc", "perlbmk"];

fn cfg(kib: u32) -> SdtConfig {
    let mut cfg = SdtConfig::ibtc_inline(1024);
    cfg.cache_limit = Some(kib * 1024);
    cfg
}

/// Cells: the cache-size ladder on the two code-heavy benchmarks,
/// x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let x86 = ArchProfile::x86_like();
    let mut cells = Vec::new();
    for kib in KIBS {
        for name in NAMES {
            cells.push(CellKey::translated(name, cfg(kib), x86.clone(), params));
        }
    }
    cells
}

/// Renders Figure 14.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 14: fragment-cache size sweep (IBTC 1024, x86-like)",
        &[
            "cache bytes",
            "gcc slowdown",
            "gcc flushes",
            "perlbmk slowdown",
            "perlbmk flushes",
        ],
    );
    for kib in KIBS {
        let mut row = vec![format!("{}K", kib)];
        for name in NAMES {
            let native = view.native(name, &x86).total_cycles;
            let r = view.translated(name, cfg(kib), &x86);
            row.push(fx(r.slowdown(native)));
            row.push(r.mech.cache_flushes.to_string());
        }
        t.row(row);
    }
    let mut out = Output::default();
    out.table(t).note(
        "Reading: below the translated-code working set the flush/retranslate\n\
         cycle dominates; once the cache holds the working set, extra capacity is\n\
         free. Code-expanding mechanisms (inlined lookups, sieve stanzas) move\n\
         this cliff — part of the inline-vs-out-of-line trade-off.",
    );
    out
}
