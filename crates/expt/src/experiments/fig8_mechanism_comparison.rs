//! Figure 8 — head-to-head comparison of the indirect-branch mechanisms
//! at their saturated sizes: translator re-entry, out-of-line IBTC,
//! inlined IBTC, and the sieve (returns handled as generic IBs
//! throughout, isolating the IB mechanism itself).

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

const BUDGETS: [u32; 4] = [16, 64, 256, 4096];

fn head_to_head() -> [(&'static str, SdtConfig); 4] {
    [
        ("reentry", SdtConfig::reentry()),
        ("ibtc-outline", SdtConfig::ibtc_out_of_line(4096)),
        ("ibtc-inline", SdtConfig::ibtc_inline(4096)),
        ("sieve", SdtConfig::sieve(4096)),
    ]
}

/// Cells: the four mechanisms at saturated sizes plus the tight-budget
/// IBTC/sieve ladder, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let mut configs: Vec<SdtConfig> = head_to_head().iter().map(|(_, c)| *c).collect();
    for size in BUDGETS {
        configs.push(SdtConfig::ibtc_inline(size));
        configs.push(SdtConfig::sieve(size));
    }
    grid(&configs, &[ArchProfile::x86_like()], params)
}

/// Renders Figure 8.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let configs = head_to_head();
    let mut t = Table::new(
        "Fig. 8: IB mechanism comparison, slowdown vs native (x86-like)",
        &[
            "benchmark",
            "reentry",
            "ibtc-outline",
            "ibtc-inline",
            "sieve",
        ],
    );
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for name in names() {
        let native = view.native(name, &x86).total_cycles;
        let mut cells = vec![name.to_string()];
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let s = view.translated(name, *cfg, &x86).slowdown(native);
            per_cfg[i].push(s);
            cells.push(fx(s));
        }
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string()];
    for series in &per_cfg {
        cells.push(fx(geomean(series.iter().copied()).expect("nonempty")));
    }
    t.row(cells);

    // The crossover: at small structure sizes the sieve wins, because its
    // chains *grow* on conflict while a small IBTC *evicts* and pays a
    // full translator crossing per conflict miss.
    let mut t2 = Table::new(
        "Fig. 8b: IBTC vs sieve under tight table budgets (geomean, x86-like)",
        &["size", "ibtc-inline", "sieve"],
    );
    for size in BUDGETS {
        let gi = view.geomean_slowdown(SdtConfig::ibtc_inline(size), &x86);
        let gs = view.geomean_slowdown(SdtConfig::sieve(size), &x86);
        t2.row([size.to_string(), fx(gi), fx(gs)]);
    }
    let mut out = Output::default();
    out.table(t).table(t2).note(
        "Reading: any in-cache mechanism crushes re-entry; at saturated sizes the\n\
         inlined IBTC leads on this BTB-equipped profile, but under a tight table\n\
         budget the ranking crosses over — the sieve degrades gracefully (longer\n\
         chains) while a small IBTC thrashes (conflict evictions → translator\n\
         crossings). Which mechanism wins depends on configuration and machine.",
    );
    out
}
