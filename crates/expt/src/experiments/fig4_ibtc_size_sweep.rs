//! Figure 4 — IBTC size sensitivity: slowdown and miss rate as the shared
//! inlined table grows from 16 to 65536 entries. The paper's finding:
//! overhead falls steeply until the table covers the dynamic target set,
//! then saturates.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, ratio, Table};
use strata_workloads::Params;

use super::{fx, grid, names, pct, Output};
use crate::cell::CellKey;
use crate::view::View;

const SHIFTS: [u32; 7] = [4, 6, 8, 10, 12, 14, 16];

/// Cells: the IBTC size ladder on every benchmark, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let configs: Vec<SdtConfig> = SHIFTS
        .iter()
        .map(|&s| SdtConfig::ibtc_inline(1 << s))
        .collect();
    grid(&configs, &[ArchProfile::x86_like()], params)
}

/// Renders Figure 4.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 4: shared inlined IBTC size sweep (x86-like)",
        &[
            "entries",
            "geomean slowdown",
            "miss rate",
            "perlbmk",
            "gcc",
            "eon",
        ],
    );
    for shift in SHIFTS {
        let entries = 1u32 << shift;
        let cfg = SdtConfig::ibtc_inline(entries);
        let mut slowdowns = Vec::new();
        let mut misses = 0u64;
        let mut dispatches = 0u64;
        let mut pick = [0.0f64; 3];
        for name in names() {
            let native = view.native(name, &x86).total_cycles;
            let r = view.translated(name, cfg, &x86);
            let s = r.slowdown(native);
            slowdowns.push(s);
            misses += r.mech.ib_misses;
            dispatches += r.mech.ib_dispatches + r.mech.ret_dispatches;
            match name {
                "perlbmk" => pick[0] = s,
                "gcc" => pick[1] = s,
                "eon" => pick[2] = s,
                _ => {}
            }
        }
        t.row([
            entries.to_string(),
            fx(geomean(slowdowns.iter().copied()).expect("nonempty")),
            pct(ratio(misses, dispatches)),
            fx(pick[0]),
            fx(pick[1]),
            fx(pick[2]),
        ]);
    }
    let mut out = Output::default();
    out.table(t).note(
        "Reading: miss rate (and slowdown) falls steeply with table size and\n\
         saturates once the dynamic indirect-target set fits — most benchmarks\n\
         want at least ~1K entries, after which bigger tables buy little.",
    );
    out
}
