//! Figure 12 — the instruction-cache cost of inlining. Inlined IBTC
//! lookup replicates ~20 instructions at every indirect-branch site; on a
//! machine with a small I-cache that replication turns into fetch stalls,
//! narrowing (or reversing) inlining's win. Measured on the mips-like
//! profile (8 KiB I-cache).

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, ratio, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

const ENTRIES: u32 = 4096;

/// Cells: inline and out-of-line placements on every benchmark,
/// mips-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    grid(
        &[
            SdtConfig::ibtc_inline(ENTRIES),
            SdtConfig::ibtc_out_of_line(ENTRIES),
        ],
        &[ArchProfile::mips_like()],
        params,
    )
}

/// Renders Figure 12.
pub fn render(view: &View) -> Output {
    let mips = ArchProfile::mips_like();
    let mut t = Table::new(
        "Fig. 12: I-cache pressure of inlined lookups (mips-like, 8 KiB I-cache)",
        &[
            "benchmark",
            "inline slowdown",
            "outline slowdown",
            "inline i$ miss/1k",
            "outline i$ miss/1k",
            "cache bytes in/out",
        ],
    );
    let mut inl = Vec::new();
    let mut out_s = Vec::new();
    for name in names() {
        let native = view.native(name, &mips).total_cycles;
        let ri = view.translated(name, SdtConfig::ibtc_inline(ENTRIES), &mips);
        let ro = view.translated(name, SdtConfig::ibtc_out_of_line(ENTRIES), &mips);
        inl.push(ri.slowdown(native));
        out_s.push(ro.slowdown(native));
        t.row([
            name.to_string(),
            fx(ri.slowdown(native)),
            fx(ro.slowdown(native)),
            format!("{:.2}", 1000.0 * ratio(ri.icache_misses, ri.instructions)),
            format!("{:.2}", 1000.0 * ratio(ro.icache_misses, ro.instructions)),
            format!("{}/{}", ri.mech.cache_used_bytes, ro.mech.cache_used_bytes),
        ]);
    }
    t.row([
        "geomean".to_string(),
        fx(geomean(inl).expect("nonempty")),
        fx(geomean(out_s).expect("nonempty")),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let mut out = Output::default();
    out.table(t).note(
        "Reading: inlining's per-lookup saving competes with its I-cache\n\
         footprint; with a small I-cache the gap between inline and out-of-line\n\
         closes on code-footprint-heavy benchmarks — configuration must weigh\n\
         both, per architecture.",
    );
    out
}
