//! One module per DESIGN.md experiment (`table1` … `fig17`).
//!
//! Each module exports `cells(params)` — the simulation cells the
//! experiment needs, expanded for the parallel executor — and
//! `render(view)` — the pure read-side pass that turns memoized cells
//! into tables and reading notes. The registry in [`crate::registry`]
//! binds them to stable experiment ids.

pub mod fig10_cross_arch;
pub mod fig11_ibtc_per_site;
pub mod fig12_cache_pressure;
pub mod fig13_fragment_linking;
pub mod fig14_cache_size;
pub mod fig15_jump_elision;
pub mod fig16_ibtc_assoc;
pub mod fig17_workload_sensitivity;
pub mod fig18_mixed_policy;
pub mod fig19_adaptive_policy;
pub mod fig20_execution_tiers;
pub mod fig21_sampled_fidelity;
pub mod fig22_predictor_reranking;
pub mod fig2_baseline_overhead;
pub mod fig3_overhead_breakdown;
pub mod fig4_ibtc_size_sweep;
pub mod fig5_ibtc_inline_vs_shared;
pub mod fig6_flags_policy;
pub mod fig7_sieve_sweep;
pub mod fig8_mechanism_comparison;
pub mod fig9_return_mechanisms;
pub mod table1_ib_characteristics;
pub mod table2_best_config;

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::Table;
use strata_workloads::{registry, Params};

use crate::cell::CellKey;

/// What one experiment produces: tables plus free-form reading notes.
#[derive(Debug, Clone, Default)]
pub struct Output {
    /// Result tables in presentation order.
    pub tables: Vec<Table>,
    /// Interpretation notes printed after the tables.
    pub notes: Vec<String>,
}

impl Output {
    /// Adds a table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }
}

/// Formats a slowdown as `1.234x`.
pub fn fx(v: f64) -> String {
    format!("{v:.3}x")
}

/// Formats a rate as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Benchmark names in presentation order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|s| s.name).collect()
}

/// Translated cells for every benchmark under each (config, profile) pair.
pub fn grid(configs: &[SdtConfig], profiles: &[ArchProfile], params: Params) -> Vec<CellKey> {
    let mut cells = Vec::new();
    for profile in profiles {
        for cfg in configs {
            for name in names() {
                cells.push(CellKey::translated(name, *cfg, profile.clone(), params));
            }
        }
    }
    cells
}

/// Native cells for every benchmark under each profile.
pub fn natives(profiles: &[ArchProfile], params: Params) -> Vec<CellKey> {
    let mut cells = Vec::new();
    for profile in profiles {
        for name in names() {
            cells.push(CellKey::native(name, profile.clone(), params));
        }
    }
    cells
}
