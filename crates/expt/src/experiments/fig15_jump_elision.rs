//! Figure 15 (ablation) — direct-jump elision (fragment formation). The
//! translator can keep translating through unconditional jumps, removing a
//! taken jump per elision at the cost of tail-duplicated code. Whether it
//! pays depends on predecessor counts and I-cache pressure.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

fn configs() -> (SdtConfig, SdtConfig) {
    let base = SdtConfig::ibtc_inline(4096);
    let mut elide = base;
    elide.elide_direct_jumps = true;
    (base, elide)
}

fn profiles() -> [ArchProfile; 2] {
    [ArchProfile::x86_like(), ArchProfile::mips_like()]
}

/// Cells: plain and eliding variants on every benchmark, x86- and
/// mips-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let (base, elide) = configs();
    grid(&[base, elide], &profiles(), params)
}

/// Renders Figure 15.
pub fn render(view: &View) -> Output {
    let (base, elide) = configs();
    let mut out = Output::default();
    for profile in profiles() {
        let mut t = Table::new(
            format!("Fig. 15: direct-jump elision ({})", profile.name),
            &[
                "benchmark",
                "plain",
                "elided",
                "delta",
                "jumps elided",
                "cache bytes plain/elided",
            ],
        );
        let mut p_all = Vec::new();
        let mut e_all = Vec::new();
        for name in names() {
            let native = view.native(name, &profile).total_cycles;
            let rp = view.translated(name, base, &profile);
            let re = view.translated(name, elide, &profile);
            let sp = rp.slowdown(native);
            let se = re.slowdown(native);
            p_all.push(sp);
            e_all.push(se);
            t.row([
                name.to_string(),
                fx(sp),
                fx(se),
                format!("{:+.1}%", (se / sp - 1.0) * 100.0),
                re.mech.elided_jumps.to_string(),
                format!("{}/{}", rp.mech.cache_used_bytes, re.mech.cache_used_bytes),
            ]);
        }
        t.row([
            "geomean".to_string(),
            fx(geomean(p_all).expect("nonempty")),
            fx(geomean(e_all).expect("nonempty")),
            String::new(),
            String::new(),
            String::new(),
        ]);
        out.table(t);
    }
    out.note(
        "Reading: elision wins where jump chains have few predecessors and the\n\
         duplicated code stays cache-resident; on dispatch-heavy benchmarks the\n\
         duplicated tails inflate the I-cache footprint and the win evaporates —\n\
         another configuration knob whose right setting is workload- and\n\
         machine-dependent.",
    );
    out
}
