//! Table 1 — dynamic indirect-branch characteristics of every benchmark:
//! how often each kind of indirect branch retires natively. This is the
//! demand the IB handling mechanisms must serve.

use strata_arch::ArchProfile;
use strata_stats::Table;
use strata_workloads::Params;

use super::{names, natives, Output};
use crate::cell::CellKey;
use crate::view::View;

/// Cells: native baselines on the x86-like profile.
pub fn cells(params: Params) -> Vec<CellKey> {
    natives(&[ArchProfile::x86_like()], params)
}

/// Renders Table 1.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Table 1: dynamic indirect-branch characteristics (native, x86-like)",
        &[
            "benchmark",
            "instructions",
            "ind-jumps",
            "ind-calls",
            "returns",
            "total IBs",
            "IBs/1k instrs",
        ],
    );
    for name in names() {
        let n = view.native(name, &x86);
        let ibs = n.indirect_branches();
        t.row([
            name.to_string(),
            n.instructions.to_string(),
            n.indirect_jumps.to_string(),
            n.indirect_calls.to_string(),
            n.returns.to_string(),
            ibs.to_string(),
            format!("{:.2}", ibs as f64 * 1000.0 / n.instructions as f64),
        ]);
    }
    let mut out = Output::default();
    out.table(t).note(
        "Reading: interpreter/OO benchmarks (perlbmk, gap, eon, vortex) are IB-dense;\n\
         loop kernels (gzip, bzip2, mcf) barely execute IBs — exactly the spread the\n\
         paper relies on to separate mechanism behaviour.",
    );
    out
}
