//! Figure 3 — where the cycles go: per-benchmark breakdown of translated
//! execution into application work, IB dispatch code, context switches,
//! trampolines/call glue, and host-side translator time. Shown for the
//! re-entry baseline (context-switch dominated) and for a tuned IBTC
//! (dispatch-code dominated) to expose the shift the paper describes.

use strata_arch::ArchProfile;
use strata_core::{Origin, SdtConfig};
use strata_stats::Table;
use strata_workloads::Params;

use super::{grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

fn configs() -> [SdtConfig; 2] {
    [SdtConfig::reentry(), SdtConfig::tuned(4096, 1024)]
}

/// Cells: re-entry and tuned configurations on every benchmark, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    grid(&configs(), &[ArchProfile::x86_like()], params)
}

fn breakdown(view: &View, cfg: SdtConfig, title: &str) -> Table {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        title,
        &[
            "benchmark",
            "app%",
            "dispatch%",
            "ctx-switch%",
            "tramp+glue%",
            "translator%",
        ],
    );
    for name in names() {
        let r = view.translated(name, cfg, &x86);
        let total = r.total_cycles as f64;
        let p = |c: u64| format!("{:.1}", c as f64 * 100.0 / total);
        t.row([
            name.to_string(),
            p(r.cycles_for(Origin::App)),
            p(r.cycles_for(Origin::Dispatch)),
            p(r.cycles_for(Origin::ContextSwitch)),
            p(r.cycles_for(Origin::Trampoline) + r.cycles_for(Origin::CallGlue)),
            p(r.translator_cycles),
        ]);
    }
    t
}

/// Renders Figure 3.
pub fn render(view: &View) -> Output {
    let [reentry, tuned] = configs();
    let mut out = Output::default();
    out.table(breakdown(
        view,
        reentry,
        "Fig. 3a: cycle breakdown under translator re-entry (x86-like)",
    ));
    out.table(breakdown(
        view,
        tuned,
        "Fig. 3b: cycle breakdown under inlined IBTC + return cache (x86-like)",
    ));
    out.note(
        "Reading: under re-entry the context switch + translator columns dominate on\n\
         IB-dense benchmarks; the tuned configuration converts nearly all of that\n\
         into (much cheaper) in-cache dispatch code.",
    );
    out
}
