//! Figure 11 — per-site vs shared IBTC tables. A private table per
//! indirect-branch site captures per-branch target locality (a mostly
//! monomorphic branch needs only a handful of entries), at the cost of
//! table space and colder tables.

use strata_arch::ArchProfile;
use strata_core::{IbMechanism, IbtcPlacement, IbtcScope, SdtConfig};
use strata_stats::{geomean, ratio, Table};
use strata_workloads::Params;

use super::{fx, grid, names, pct, Output};
use crate::cell::CellKey;
use crate::view::View;

const SIZES: [u32; 3] = [16, 64, 256];

fn cfg(entries: u32, scope: IbtcScope) -> SdtConfig {
    SdtConfig {
        ib: IbMechanism::Ibtc {
            entries,
            scope,
            placement: IbtcPlacement::Inline,
        },
        ..SdtConfig::ibtc_inline(entries)
    }
}

/// Cells: shared and per-site tables at each size, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    let mut configs = Vec::new();
    for entries in SIZES {
        for scope in [IbtcScope::Shared, IbtcScope::PerSite] {
            configs.push(cfg(entries, scope));
        }
    }
    grid(&configs, &[ArchProfile::x86_like()], params)
}

/// Renders Figure 11.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 11: per-site vs shared IBTC (inline, x86-like)",
        &[
            "entries",
            "shared geomean",
            "shared miss",
            "per-site geomean",
            "per-site miss",
        ],
    );
    for entries in SIZES {
        let mut row = vec![entries.to_string()];
        for scope in [IbtcScope::Shared, IbtcScope::PerSite] {
            let c = cfg(entries, scope);
            let mut slowdowns = Vec::new();
            let mut misses = 0u64;
            let mut dispatches = 0u64;
            for name in names() {
                let native = view.native(name, &x86).total_cycles;
                let r = view.translated(name, c, &x86);
                slowdowns.push(r.slowdown(native));
                misses += r.mech.ib_misses;
                dispatches += r.mech.ib_dispatches + r.mech.ret_dispatches;
            }
            row.push(fx(geomean(slowdowns).expect("nonempty")));
            row.push(pct(ratio(misses, dispatches)));
        }
        t.row(row);
    }
    let mut out = Output::default();
    out.table(t).note(
        "Reading: at small sizes a private table per site out-hits one shared\n\
         table of the same size (no cross-site conflicts); once the shared table\n\
         covers the global target set the difference vanishes — so shared+large is\n\
         the simpler engineering choice, as the paper concludes.",
    );
    out
}
