//! Figure 2 — baseline SDT slowdown when every indirect branch re-enters
//! the translator (full context switch + fragment-map lookup). The
//! paper's starting point: IB handling dominates SDT overhead.

use strata_arch::ArchProfile;
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};
use strata_workloads::Params;

use super::{fx, grid, names, Output};
use crate::cell::CellKey;
use crate::view::View;

/// Cells: the re-entry configuration on every benchmark, x86-like.
pub fn cells(params: Params) -> Vec<CellKey> {
    grid(&[SdtConfig::reentry()], &[ArchProfile::x86_like()], params)
}

/// Renders Figure 2.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 2: slowdown vs native with translator re-entry for all IBs (x86-like)",
        &[
            "benchmark",
            "slowdown",
            "IB dispatches",
            "translator entries",
        ],
    );
    let mut slowdowns = Vec::new();
    for name in names() {
        let native = view.native(name, &x86).total_cycles;
        let r = view.translated(name, SdtConfig::reentry(), &x86);
        let s = r.slowdown(native);
        slowdowns.push(s);
        t.row([
            name.to_string(),
            fx(s),
            (r.mech.ib_dispatches + r.mech.ret_dispatches).to_string(),
            r.mech.translator_entries.to_string(),
        ]);
    }
    t.row([
        "geomean".to_string(),
        fx(geomean(slowdowns.iter().copied()).expect("nonempty")),
        String::new(),
        String::new(),
    ]);
    let mut out = Output::default();
    out.table(t).note(
        "Reading: IB-dense benchmarks suffer multi-x slowdowns under re-entry while\n\
         the loop kernels stay near native — IB handling is the dominant overhead.",
    );
    out
}
