//! Table 2 — best configuration per architecture: a grid search over IB
//! mechanism × size/placement × return mechanism, ranked by geometric-mean
//! slowdown on each architecture profile.

use strata_arch::ArchProfile;
use strata_core::{RetMechanism, SdtConfig};
use strata_stats::Table;
use strata_workloads::Params;

use super::{fx, grid, Output};
use crate::cell::CellKey;
use crate::view::View;

fn config_grid() -> Vec<SdtConfig> {
    let ib_choices = [
        SdtConfig::ibtc_inline(1024),
        SdtConfig::ibtc_inline(4096),
        SdtConfig::ibtc_inline(16384),
        SdtConfig::ibtc_out_of_line(4096),
        SdtConfig::sieve(4096),
        SdtConfig::sieve(16384),
    ];
    let ret_choices = [
        RetMechanism::AsIb,
        RetMechanism::ReturnCache { entries: 1024 },
        RetMechanism::FastReturn,
    ];
    let mut out = Vec::new();
    for ib in ib_choices {
        for ret in ret_choices {
            let mut cfg = ib;
            cfg.ret = ret;
            out.push(cfg);
        }
    }
    out
}

/// Cells: the 18-configuration grid on every benchmark under all three
/// profiles — the largest job in the suite.
pub fn cells(params: Params) -> Vec<CellKey> {
    grid(&config_grid(), &ArchProfile::all(), params)
}

/// Renders Table 2.
pub fn render(view: &View) -> Output {
    let mut t = Table::new(
        "Table 2: best configuration per architecture (grid of 18 configs)",
        &["architecture", "rank", "configuration", "geomean slowdown"],
    );
    for profile in ArchProfile::all() {
        let mut scored: Vec<(SdtConfig, f64)> = config_grid()
            .into_iter()
            .map(|cfg| (cfg, view.geomean_slowdown(cfg, &profile)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (rank, (cfg, g)) in scored.iter().take(3).enumerate() {
            t.row([
                if rank == 0 {
                    profile.name.to_string()
                } else {
                    String::new()
                },
                (rank + 1).to_string(),
                cfg.describe(),
                fx(*g),
            ]);
        }
        let worst = scored.last().expect("grid nonempty");
        t.row([
            String::new(),
            "worst".to_string(),
            worst.0.describe(),
            fx(worst.1),
        ]);
    }
    let mut out = Output::default();
    out.table(t).note(
        "Reading: the winning size/placement/return combination differs across\n\
         profiles — choosing (and sizing) the IB mechanism per target architecture\n\
         is what the paper recommends SDT implementers do.",
    );
    out
}
