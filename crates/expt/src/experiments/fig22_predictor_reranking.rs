//! Figure 22 — predictor-aware re-ranking of IB mechanisms.
//!
//! The Arm BTB study behind this suite argues that the *hardware* target
//! predictor under the translated code decides which *software* dispatch
//! mechanism wins: inline per-site probes hand a PC-indexed BTB one
//! predictor slot per site, while shared dispatch routines funnel every
//! target through one alias-prone entry — until a history-based
//! predictor (ITTAGE) disambiguates the shared site from path history
//! and the economics reverse. This experiment makes that interaction
//! measurable: it runs one IB-heavy workload under every mechanism
//! family crossed with the predictor zoo (no prediction, the legacy
//! direct-mapped BTB, a set-associative BTB, ITTAGE, and the ideal
//! oracle) and reports each model's mechanism ranking. The
//! `RANKING INVERSIONS` note counts mechanism pairs whose order flips
//! between predictor models — the paper's claim is that this count is
//! nonzero, i.e. no mechanism ranking is predictor-independent.
//!
//! In exact mode each (mechanism, predictor) cell is a full [`Sdt`] run
//! under [`ArchModel::with_predictor_spec`]; under `--sampled` it is a
//! SimPoint estimate via
//! [`estimate_cell_with_spec`](crate::sampled::estimate_cell_with_spec).
//! Both are deterministic functions of the workload (and, in sampled
//! mode, its recorded trace), so the render is byte-stable. Like fig21,
//! `cells` contributes only the shared native baseline — the sweep
//! happens in `render`, so `cells.json` and the baseline gate are
//! untouched.

use strata_arch::{ArchModel, ArchProfile, PredictorSpec};
use strata_core::{ClassPolicy, Sdt, SdtConfig};
use strata_stats::Table;

use super::{fx, Output};
use crate::cell::CellKey;
use crate::exec::FUEL;
use crate::sampled::{estimate_cell_with_spec, program_for, sampled_mode};
use crate::view::View;

/// The probe workload: a mix of polymorphic indirect jumps and deep
/// call/return recursion, the class blend where per-site and shared
/// dispatch sites diverge most under history-based prediction.
const WORKLOAD: &str = "parser";

/// The predictor sweep, worst to best. `label()` names the rows.
fn predictors() -> [PredictorSpec; 5] {
    [
        PredictorSpec::None,
        PredictorSpec::Legacy,
        PredictorSpec::SetAssoc { sets: 128, ways: 4 },
        PredictorSpec::Ittage { tables: 4 },
        PredictorSpec::Ideal,
    ]
}

/// One representative configuration per mechanism family, plus the
/// predictor-aware frequency-ordered sieve.
fn mechanisms() -> [(&'static str, SdtConfig); 6] {
    let mut predictive = SdtConfig::ibtc_inline(512);
    predictive.policy.jump = ClassPolicy::Predictive {
        sieve_buckets: 256,
        probation: 64,
    };
    [
        ("reentry", SdtConfig::reentry()),
        ("ibtc", SdtConfig::ibtc_inline(512)),
        ("ibtc-outline", SdtConfig::ibtc_out_of_line(512)),
        ("sieve", SdtConfig::sieve(256)),
        ("tuned", SdtConfig::tuned(512, 128)),
        ("predictive", predictive),
    ]
}

/// Cells: only the probe workload's x86 native baseline — shared with
/// (and deduped against) fig2/table1. The mechanism × predictor sweep
/// happens in `render`, so this experiment adds no rows to `cells.json`.
pub fn cells(params: strata_workloads::Params) -> Vec<CellKey> {
    vec![CellKey::native(WORKLOAD, ArchProfile::x86_like(), params)]
}

/// Total cycles for one (mechanism, predictor) cell, exact or sampled,
/// with the run's indirect-mispredict count.
fn cell_cycles(view: &View, cfg: SdtConfig, spec: PredictorSpec) -> (u64, u64) {
    if let Some(dir) = sampled_mode() {
        let cell = estimate_cell_with_spec(
            dir,
            WORKLOAD,
            view.params(),
            cfg,
            ArchProfile::x86_like(),
            spec,
        )
        .unwrap_or_else(|e| panic!("fig22: {e}"));
        (cell.report.total_cycles, cell.report.indirect_mispredicts)
    } else {
        let program = program_for(WORKLOAD, view.params());
        let report = Sdt::new(cfg, &program)
            .and_then(|mut s| {
                s.run_with_model(
                    ArchModel::with_predictor_spec(ArchProfile::x86_like(), spec),
                    FUEL,
                )
            })
            .unwrap_or_else(|e| panic!("fig22: {e}"));
        (report.total_cycles, report.indirect_mispredicts)
    }
}

/// Renders Figure 22.
pub fn render(view: &View) -> Output {
    let x86 = ArchProfile::x86_like();
    let native_cycles = view.native(WORKLOAD, &x86).total_cycles;
    let mut out = Output::default();
    let mode = if sampled_mode().is_some() {
        "estimated (--sampled)"
    } else {
        "exact"
    };
    let mut t = Table::new(
        format!("Fig. 22: mechanism ranking per predictor model ({WORKLOAD}, x86-like, {mode})"),
        &["predictor", "mechanism", "slowdown", "mispredicts", "rank"],
    );

    // rankings[p] = mechanism indices sorted best (fewest cycles) first
    // under predictor p; ties break on mechanism order for stability.
    let mut rankings: Vec<(String, Vec<usize>)> = Vec::new();
    for spec in predictors() {
        let cells: Vec<(u64, u64)> = mechanisms()
            .iter()
            .map(|&(_, cfg)| cell_cycles(view, cfg, spec))
            .collect();
        let mut order: Vec<usize> = (0..cells.len()).collect();
        order.sort_by_key(|&m| (cells[m].0, m));
        let rank_of = |m: usize| order.iter().position(|&o| o == m).unwrap() + 1;
        for (m, (name, _)) in mechanisms().iter().enumerate() {
            t.row([
                spec.label(),
                name.to_string(),
                fx(cells[m].0 as f64 / native_cycles as f64),
                cells[m].1.to_string(),
                rank_of(m).to_string(),
            ]);
        }
        rankings.push((spec.label(), order));
    }
    out.table(t);

    // A pair of mechanisms (a, b) inverts when some predictor model
    // ranks a above b and another ranks b above a.
    let n = mechanisms().len();
    let mut inversions = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            let above = |order: &[usize]| {
                order.iter().position(|&o| o == a).unwrap()
                    < order.iter().position(|&o| o == b).unwrap()
            };
            let verdicts: Vec<bool> = rankings.iter().map(|(_, o)| above(o)).collect();
            if verdicts.iter().any(|&v| v) && verdicts.iter().any(|&v| !v) {
                inversions.push(format!("{}/{}", mechanisms()[a].0, mechanisms()[b].0));
            }
        }
    }
    out.note(format!(
        "RANKING INVERSIONS: {} (mechanism pairs whose order flips across predictor \
         models{})",
        inversions.len(),
        if inversions.is_empty() {
            String::new()
        } else {
            format!(": {}", inversions.join(", "))
        },
    ));
    out.note(
        "Reading: under a PC-indexed BTB (or none at all) inline per-site probes \
         rank first — each site's final indirect jump gets its own predictor slot. \
         History-based prediction (ITTAGE) flips the table: the shared dispatch \
         sites that alias hopelessly in a BTB become predictable from path \
         history, their mispredicts collapse, and mechanisms with cheaper probe \
         code out-rank inline IBTC. The mechanism ranking is a property of the \
         (mechanism, predictor) pair, not the mechanism alone.",
    );
    out
}
