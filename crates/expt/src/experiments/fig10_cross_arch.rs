//! Figure 10 — the cross-architecture evaluation: the same mechanisms,
//! costed under x86-like, SPARC-like, and MIPS-like profiles. The paper's
//! headline: the most efficient mechanism and configuration depend on the
//! underlying architecture's trap cost, flags cost, and indirect-branch
//! prediction hardware.

use strata_arch::ArchProfile;
use strata_core::{RetMechanism, SdtConfig};
use strata_stats::Table;
use strata_workloads::Params;

use super::{fx, grid, Output};
use crate::cell::CellKey;
use crate::view::View;

fn configs() -> [(&'static str, SdtConfig); 6] {
    let mut fast = SdtConfig::ibtc_inline(4096);
    fast.ret = RetMechanism::FastReturn;
    [
        ("reentry", SdtConfig::reentry()),
        ("ibtc-inline", SdtConfig::ibtc_inline(4096)),
        ("ibtc-outline", SdtConfig::ibtc_out_of_line(4096)),
        ("sieve", SdtConfig::sieve(4096)),
        ("ibtc+rc", SdtConfig::tuned(4096, 1024)),
        ("ibtc+fastret", fast),
    ]
}

/// Cells: six mechanisms × every benchmark × all three profiles.
pub fn cells(params: Params) -> Vec<CellKey> {
    let cfgs: Vec<SdtConfig> = configs().iter().map(|(_, c)| *c).collect();
    grid(&cfgs, &ArchProfile::all(), params)
}

/// Renders Figure 10.
pub fn render(view: &View) -> Output {
    let mut t = Table::new(
        "Fig. 10: geomean slowdown by mechanism and architecture",
        &["mechanism", "x86-like", "sparc-like", "mips-like"],
    );
    let mut grid_vals: Vec<(&str, Vec<f64>)> = Vec::new();
    for (label, cfg) in configs() {
        let mut row = vec![label.to_string()];
        let mut vals = Vec::new();
        for profile in ArchProfile::all() {
            let g = view.geomean_slowdown(cfg, &profile);
            vals.push(g);
            row.push(fx(g));
        }
        grid_vals.push((label, vals));
        t.row(row);
    }
    let mut out = Output::default();
    out.table(t);

    // Per-architecture ranking of the in-cache mechanisms.
    for (i, profile) in ArchProfile::all().iter().enumerate() {
        let mut ranked: Vec<(&str, f64)> = grid_vals
            .iter()
            .filter(|(l, _)| *l != "reentry")
            .map(|(l, v)| (*l, v[i]))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        let order: Vec<String> = ranked
            .iter()
            .map(|(l, v)| format!("{l} ({})", fx(*v)))
            .collect();
        out.note(format!(
            "{:<11} ranking: {}",
            profile.name,
            order.join("  >  ")
        ));
    }
    out.note(
        "Reading: re-entry is disproportionately catastrophic on the trap-expensive\n\
         sparc-like profile; the gap between IBTC (whose hits end in an unpredicted\n\
         indirect jump on BTB-less machines) and the sieve (whose hits end in a\n\
         direct jump) narrows or flips off x86 — mechanism choice is\n\
         architecture-dependent, the paper's central claim.",
    );
    out
}
