//! Read-side API experiments render from.
//!
//! A [`View`] wraps the shared [`Store`] and the suite's workload
//! [`Params`], exposing the same vocabulary the old per-binary `Lab`
//! harness had (`native`, `translated`, `slowdown`, `geomean_slowdown`).
//! The parallel executor pre-warms every declared cell, so renders are
//! normally pure store lookups; a cell an experiment forgot to declare is
//! computed on the spot (serially) rather than crashing the suite.

use strata_arch::ArchProfile;
use strata_core::{NativeRun, RunReport, SdtConfig};
use strata_stats::{geomean, Table};
use strata_workloads::{registry, Params};

use crate::cell::{CellKey, CellResult};
use crate::exec::{build_program, cell_result};
use crate::store::Store;

/// Accessor for memoized cell results at a fixed parameter point.
pub struct View<'a> {
    store: &'a Store,
    params: Params,
}

impl<'a> View<'a> {
    /// A view of `store` at `params`.
    pub fn new(store: &'a Store, params: Params) -> View<'a> {
        View { store, params }
    }

    /// The suite's workload parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Benchmark names in presentation order.
    pub fn names(&self) -> Vec<&'static str> {
        registry().iter().map(|s| s.name).collect()
    }

    /// Native baseline at the view's params.
    pub fn native(&self, name: &'static str, profile: &ArchProfile) -> NativeRun {
        self.native_at(name, profile, self.params)
    }

    /// Native baseline at explicit params (fig17 sweeps variants).
    pub fn native_at(
        &self,
        name: &'static str,
        profile: &ArchProfile,
        params: Params,
    ) -> NativeRun {
        let key = CellKey::native(name, profile.clone(), params);
        let result = cell_result(self.store, &key, &build_program(name, params));
        result
            .as_native()
            .expect("native key yields native result")
            .clone()
    }

    /// Translated run at the view's params.
    pub fn translated(
        &self,
        name: &'static str,
        cfg: SdtConfig,
        profile: &ArchProfile,
    ) -> RunReport {
        self.translated_at(name, cfg, profile, self.params)
    }

    /// Translated run at explicit params.
    pub fn translated_at(
        &self,
        name: &'static str,
        cfg: SdtConfig,
        profile: &ArchProfile,
        params: Params,
    ) -> RunReport {
        let key = CellKey::translated(name, cfg, profile.clone(), params);
        let result = cell_result(self.store, &key, &build_program(name, params));
        result
            .as_translated()
            .expect("translated key yields report")
            .clone()
    }

    /// Slowdown of `cfg` on `name` under `profile`.
    pub fn slowdown(&self, name: &'static str, cfg: SdtConfig, profile: &ArchProfile) -> f64 {
        let native = self.native(name, profile).total_cycles;
        self.translated(name, cfg, profile).slowdown(native)
    }

    /// Geometric-mean slowdown of `cfg` across all benchmarks.
    pub fn geomean_slowdown(&self, cfg: SdtConfig, profile: &ArchProfile) -> f64 {
        geomean(self.names().iter().map(|n| self.slowdown(n, cfg, profile)))
            .expect("nonempty benchmark set")
    }

    /// Every memoized cell's raw metrics as one table, sorted by cell key.
    ///
    /// This is the regression gate's finest-grained surface: the
    /// `cells.json` artifact rendered from it pins `total_cycles` and
    /// dispatch counts per cell, so a drift localized to one
    /// (workload, config, profile) point names itself in the delta report
    /// instead of hiding inside a geomean.
    pub fn cells_table(&self) -> Table {
        let mut t = Table::new(
            "per-cell metrics",
            &[
                "cell",
                "total_cycles",
                "instructions",
                "ib_dispatches",
                "ret_dispatches",
            ],
        );
        for (key, result) in self.store.snapshot() {
            let (ib, ret) = match result.as_translated() {
                Some(r) => (
                    r.mech.ib_dispatches.to_string(),
                    r.mech.ret_dispatches.to_string(),
                ),
                None => (String::new(), String::new()),
            };
            t.row([
                key,
                result.total_cycles().to_string(),
                instructions(&result).to_string(),
                ib,
                ret,
            ]);
        }
        t
    }
}

fn instructions(result: &CellResult) -> u64 {
    match result {
        CellResult::Native(n) => n.instructions,
        CellResult::Translated(r) => r.instructions,
    }
}
