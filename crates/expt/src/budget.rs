//! Per-cell cycle budgets and longest-first scheduling.
//!
//! The executor's work queue hands cells to workers in list order, so the
//! *order* of the list determines the parallel makespan: with FIFO order a
//! multi-second gcc or perlbmk cell claimed last leaves every other worker
//! idle while it finishes. A [`BudgetBook`] records each cell's observed
//! `total_cycles` (an excellent proxy for host wall time — the simulator's
//! cost is linear in simulated work) in the disk-cache directory, and
//! [`order_longest_first`] feeds it back as a priority: known-expensive
//! cells start first, so the tail of the schedule is made of cheap cells.
//!
//! Longest-processing-time-first list scheduling is a classic 4/3-
//! approximation of optimal makespan; FIFO is only bounded by 2. The
//! ordering changes *when* each result is computed, never what it
//! contains, so rendered output stays byte-identical (the determinism
//! tests assert this).
//!
//! Missing data degrades gracefully: cells without a recorded budget keep
//! their FIFO position relative to each other (after the known ones), and
//! an empty book reproduces FIFO exactly.

use std::collections::HashMap;
use std::path::Path;

use crate::cell::CellKey;

/// File name of the budget record inside the cache directory.
pub const BUDGET_FILE: &str = "budgets.v1";

/// Budget record format version; bump on any layout change.
const BUDGET_VERSION: &str = "strata-budgets-v1";

/// Observed `total_cycles` per cell key string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetBook {
    cycles: HashMap<String, u64>,
}

impl BudgetBook {
    /// An empty book (schedules degrade to FIFO).
    pub fn new() -> BudgetBook {
        BudgetBook::default()
    }

    /// Loads the book from `dir/budgets.v1`. A missing, unversioned, or
    /// partially corrupt file degrades to whatever lines parse — budgets
    /// are a scheduling hint, never a correctness input.
    pub fn load(dir: &Path) -> BudgetBook {
        let mut book = BudgetBook::new();
        let Ok(text) = std::fs::read_to_string(dir.join(BUDGET_FILE)) else {
            return book;
        };
        let mut lines = text.lines();
        if lines.next() != Some(BUDGET_VERSION) {
            return book;
        }
        for line in lines {
            if let Some((cycles, key)) = line.split_once('\t') {
                if let Ok(cycles) = cycles.parse() {
                    book.record(key, cycles);
                }
            }
        }
        book
    }

    /// Records the observed cost of a cell (last observation wins).
    pub fn record(&mut self, key: &str, total_cycles: u64) {
        self.cycles.insert(key.to_string(), total_cycles);
    }

    /// The recorded cost of a cell, if any.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.cycles.get(key).copied()
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether the book holds no records.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Folds another book's records into this one.
    pub fn merge(&mut self, other: &BudgetBook) {
        for (key, &cycles) in &other.cycles {
            self.record(key, cycles);
        }
    }

    /// Keeps only the records whose key satisfies `keep` — the pruning
    /// hook the store uses to drop keys the registry no longer produces.
    pub fn retain(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.cycles.retain(|key, _| keep(key));
    }

    /// Writes the book to `dir/budgets.v1`, sorted by key so the file is
    /// byte-stable for identical contents, via temp-file + atomic rename
    /// so a killed process never leaves a truncated book. Best-effort,
    /// like the cell cache: an unwritable directory costs scheduling
    /// quality only.
    pub fn save(&self, dir: &Path) {
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut entries: Vec<(&String, &u64)> = self.cycles.iter().collect();
        entries.sort();
        let mut out = String::from(BUDGET_VERSION);
        out.push('\n');
        for (key, cycles) in entries {
            out.push_str(&format!("{cycles}\t{key}\n"));
        }
        let _ = crate::fsutil::atomic_write(&dir.join(BUDGET_FILE), &out);
    }
}

/// Reorders `cells` longest-known-budget-first, consulting the book
/// under `prefix` (the store's key namespace — `""` exact, `"sampled/"`
/// sampled mode — so estimated budgets never steer the exact schedule).
///
/// The sort is stable with unknown budgets treated as zero, so cells the
/// book has never seen keep their FIFO order after the known ones, and an
/// empty book returns the input order unchanged.
pub fn order_longest_first(cells: &[CellKey], book: &BudgetBook, prefix: &str) -> Vec<CellKey> {
    let mut ordered: Vec<CellKey> = cells.to_vec();
    ordered.sort_by_key(|cell| {
        std::cmp::Reverse(
            book.get(&format!("{prefix}{}", cell.key_string()))
                .unwrap_or(0),
        )
    });
    ordered
}

/// Simulates the executor's work queue: each of `jobs` workers takes the
/// next unclaimed cell whenever it goes idle. Returns the makespan of
/// running `durations` in list order. Used by the scheduler tests to show
/// longest-first never loses to FIFO on recorded budgets.
pub fn makespan(durations: &[u64], jobs: usize) -> u64 {
    let jobs = jobs.max(1);
    let mut loads = vec![0u64; jobs.min(durations.len().max(1))];
    for &d in durations {
        // The next cell goes to the worker that frees up first.
        let min = loads.iter_mut().min().expect("at least one worker");
        *min += d;
    }
    loads.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_arch::ArchProfile;
    use strata_core::SdtConfig;
    use strata_workloads::Params;

    fn cells(n: usize) -> Vec<CellKey> {
        let profile = ArchProfile::x86_like();
        (0..n)
            .map(|i| {
                CellKey::native(
                    "gzip",
                    profile.clone(),
                    Params {
                        scale: 1,
                        variant: i as u64,
                    },
                )
            })
            .collect()
    }

    fn durations(order: &[CellKey], book: &BudgetBook) -> Vec<u64> {
        order
            .iter()
            .map(|c| book.get(&c.key_string()).unwrap_or(0))
            .collect()
    }

    #[test]
    fn empty_book_degrades_to_fifo() {
        let set = cells(5);
        assert_eq!(order_longest_first(&set, &BudgetBook::new(), ""), set);
    }

    #[test]
    fn partial_budgets_keep_unknowns_in_fifo_order() {
        let set = cells(4);
        let mut book = BudgetBook::new();
        book.record(&set[2].key_string(), 100);
        let ordered = order_longest_first(&set, &book, "");
        // The known-expensive cell moves to the front; the unknown cells
        // keep their relative FIFO order.
        assert_eq!(ordered[0], set[2]);
        assert_eq!(
            &ordered[1..],
            &[set[0].clone(), set[1].clone(), set[3].clone()]
        );
    }

    #[test]
    fn longest_first_beats_fifo_on_a_tail_heavy_set() {
        // The pathological FIFO case: the expensive cell is claimed last.
        let set = cells(5);
        let mut book = BudgetBook::new();
        let costs = [10u64, 10, 10, 10, 100];
        for (cell, &cost) in set.iter().zip(&costs) {
            book.record(&cell.key_string(), cost);
        }
        let fifo = makespan(&durations(&set, &book), 2);
        let lpt = makespan(&durations(&order_longest_first(&set, &book, ""), &book), 2);
        assert_eq!(fifo, 120, "three cheap cells wait behind the giant");
        assert_eq!(lpt, 100, "the giant starts first and hides the cheap tail");
    }

    #[test]
    fn longest_first_never_worse_than_fifo() {
        // Pseudo-random cost sets across several worker counts.
        let mut seed = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in [1usize, 3, 8, 17, 40] {
            let set = cells(n);
            let mut book = BudgetBook::new();
            for cell in &set {
                book.record(&cell.key_string(), next() % 1000);
            }
            for jobs in [1usize, 2, 4, 7] {
                let fifo = makespan(&durations(&set, &book), jobs);
                let ordered = order_longest_first(&set, &book, "");
                let lpt = makespan(&durations(&ordered, &book), jobs);
                assert!(lpt <= fifo, "n={n} jobs={jobs}: LPT {lpt} > FIFO {fifo}");
            }
        }
    }

    #[test]
    fn makespan_degenerate_cases() {
        assert_eq!(makespan(&[], 4), 0);
        assert_eq!(makespan(&[7], 0), 7, "jobs clamps to 1");
        assert_eq!(makespan(&[3, 4, 5], 1), 12, "serial sums");
        assert_eq!(makespan(&[5, 4, 3], 100), 5, "more workers than cells");
    }

    #[test]
    fn book_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("strata-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut book = BudgetBook::new();
        let key = CellKey::translated(
            "gcc",
            SdtConfig::ibtc_inline(4096),
            ArchProfile::x86_like(),
            Params::default(),
        )
        .key_string();
        book.record(&key, 123_456_789);
        book.record("other|native|x86-like|s1v0", 42);
        book.save(&dir);
        let back = BudgetBook::load(&dir);
        assert_eq!(back, book);
        // Corrupt lines degrade to the parseable subset.
        let path = dir.join(BUDGET_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not a record\nxyz\tabc\n");
        std::fs::write(&path, text).unwrap();
        assert_eq!(BudgetBook::load(&dir), book);
        // A wrong version header empties the book.
        std::fs::write(&path, "strata-budgets-v0\n1\tk\n").unwrap();
        assert!(BudgetBook::load(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
        assert!(BudgetBook::load(&dir).is_empty(), "missing dir loads empty");
    }

    #[test]
    fn retain_drops_rejected_keys() {
        let mut book = BudgetBook::new();
        book.record("keep", 1);
        book.record("drop", 2);
        book.retain(|k| k == "keep");
        assert_eq!(book.get("keep"), Some(1));
        assert_eq!(book.len(), 1);
    }

    #[test]
    fn merge_last_observation_wins() {
        let mut a = BudgetBook::new();
        a.record("k", 1);
        let mut b = BudgetBook::new();
        b.record("k", 2);
        b.record("j", 3);
        a.merge(&b);
        assert_eq!(a.get("k"), Some(2));
        assert_eq!(a.get("j"), Some(3));
        assert_eq!(a.len(), 2);
    }
}
