//! Cells — the unit of simulation work.
//!
//! A [`CellKey`] names one run: a workload, a kind (native baseline or
//! translated under some [`SdtConfig`]), an [`ArchProfile`], and workload
//! [`Params`]. Every experiment expands into a set of cells; the
//! orchestrator dedupes them by key so each unique cell is simulated
//! exactly once per suite run.
//!
//! The memoization key is the *full* rendered [`CellKey::key_string`] —
//! collision-free by construction, because `SdtConfig::describe()` spells
//! out every configuration field and profile names are unique. The FNV-1a
//! hash is used only to derive short on-disk cache file names, and disk
//! entries embed the full key string so a hash collision degrades to a
//! recompute, never to a wrong result.

use strata_arch::ArchProfile;
use strata_core::{NativeRun, RunReport, SdtConfig};
use strata_workloads::Params;

/// What kind of run a cell is.
#[derive(Debug, Clone, PartialEq)]
pub enum RunKind {
    /// Untranslated execution under the architecture model — the baseline
    /// every slowdown is computed against.
    Native,
    /// Execution under the SDT with the given configuration.
    Translated(SdtConfig),
}

/// Names one unit of simulation work.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Workload name from the `strata-workloads` registry.
    pub workload: &'static str,
    /// Native baseline or translated configuration.
    pub kind: RunKind,
    /// Architecture cost model.
    pub profile: ArchProfile,
    /// Workload scale and variant.
    pub params: Params,
}

impl CellKey {
    /// A native-baseline cell.
    pub fn native(workload: &'static str, profile: ArchProfile, params: Params) -> CellKey {
        CellKey {
            workload,
            kind: RunKind::Native,
            profile,
            params,
        }
    }

    /// A translated cell.
    pub fn translated(
        workload: &'static str,
        cfg: SdtConfig,
        profile: ArchProfile,
        params: Params,
    ) -> CellKey {
        CellKey {
            workload,
            kind: RunKind::Translated(cfg),
            profile,
            params,
        }
    }

    /// The native counterpart of this cell (identity for native cells).
    pub fn native_counterpart(&self) -> CellKey {
        CellKey::native(self.workload, self.profile.clone(), self.params)
    }

    /// The stable, collision-free memoization key.
    ///
    /// `SdtConfig::describe()` covers every configuration field, so two
    /// distinct configurations always render distinct strings.
    pub fn key_string(&self) -> String {
        let kind = match &self.kind {
            RunKind::Native => "native".to_string(),
            RunKind::Translated(cfg) => format!("sdt:{}", cfg.describe()),
        };
        format!(
            "{}|{}|{}|s{}v{}",
            self.workload, kind, self.profile.name, self.params.scale, self.params.variant
        )
    }

    /// File name for the on-disk cell cache (hash of the key string).
    pub fn cache_file_name(&self) -> String {
        format!("{:016x}.cell", fnv1a64(self.key_string().as_bytes()))
    }

    /// Which of `count` shards owns this cell (`--shard i/n`).
    ///
    /// The partition hashes the full [`CellKey::key_string`], so it is
    /// stable across machines and processes: every shard of a run agrees
    /// on ownership without coordinating, and the per-shard disk caches
    /// are disjoint (up to shared native baselines) and merge cleanly.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn shard_of(&self, count: u32) -> u32 {
        assert!(count > 0, "shard count must be nonzero");
        (fnv1a64(self.key_string().as_bytes()) % count as u64) as u32
    }
}

/// FNV-1a 64-bit hash — used only to derive disk-cache file names.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The measured outcome of one cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellResult {
    /// Outcome of a native run.
    Native(NativeRun),
    /// Outcome of a translated run.
    Translated(Box<RunReport>),
}

impl CellResult {
    /// The run's syscall checksum (the observable program result).
    pub fn checksum(&self) -> u32 {
        match self {
            CellResult::Native(n) => n.checksum,
            CellResult::Translated(r) => r.checksum,
        }
    }

    /// The run's total guest cycles — recorded as the cell's budget and
    /// used by the scheduler as its cost proxy (simulation host time is
    /// linear in simulated work).
    pub fn total_cycles(&self) -> u64 {
        match self {
            CellResult::Native(n) => n.total_cycles,
            CellResult::Translated(r) => r.total_cycles,
        }
    }

    /// The native run, if this is a native cell.
    pub fn as_native(&self) -> Option<&NativeRun> {
        match self {
            CellResult::Native(n) => Some(n),
            CellResult::Translated(_) => None,
        }
    }

    /// The translated report, if this is a translated cell.
    pub fn as_translated(&self) -> Option<&RunReport> {
        match self {
            CellResult::Native(_) => None,
            CellResult::Translated(r) => Some(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_strings_distinguish_every_component() {
        let x86 = ArchProfile::x86_like();
        let p = Params::default();
        let a = CellKey::native("gzip", x86.clone(), p);
        let b = CellKey::native("gcc", x86.clone(), p);
        let c = CellKey::native("gzip", ArchProfile::mips_like(), p);
        let d = CellKey::native(
            "gzip",
            x86.clone(),
            Params {
                scale: 2,
                variant: 0,
            },
        );
        let e = CellKey::native(
            "gzip",
            x86.clone(),
            Params {
                scale: 1,
                variant: 3,
            },
        );
        let f = CellKey::translated("gzip", SdtConfig::ibtc_inline(64), x86.clone(), p);
        let g = CellKey::translated("gzip", SdtConfig::ibtc_inline(128), x86, p);
        let keys: Vec<String> = [&a, &b, &c, &d, &e, &f, &g]
            .iter()
            .map(|k| k.key_string())
            .collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "all keys distinct: {keys:?}");
    }

    #[test]
    fn fnv_is_stable() {
        // Frozen reference values for the FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
