//! # strata-expt — parallel experiment orchestration with memoized cells
//!
//! The paper's evaluation is a large grid — mechanism × table size ×
//! placement × flags policy × architecture × 12 workloads — and many
//! experiments share simulation work (every figure needs the same native
//! baselines; several share translated configurations). This crate turns
//! each DESIGN.md experiment (`table1` … `fig17`) into a declarative job
//! spec that expands into independent **cells** (workload, [`SdtConfig`],
//! [`ArchProfile`], [`Params`]) and executes the deduplicated cell set on
//! a work-queue scheduler over [`std::thread::scope`]:
//!
//! * **Memoization** — results live in a shared concurrent [`Store`]
//!   keyed by a stable, collision-free content key, so each unique cell
//!   is simulated exactly once per suite run however many experiments
//!   request it. An optional on-disk cache (`results/cache/`) makes
//!   re-runs resumable.
//! * **Determinism** — simulations are pure; parallelism only changes
//!   when results land in the store. Rendering is serial and ordered, so
//!   `--jobs N` output is byte-identical to `--jobs 1` (a test asserts
//!   this).
//! * **Structured results** — every experiment renders aligned text, CSV,
//!   and JSON (via the hand-rolled writer in `strata-stats`), with
//!   per-experiment artifacts written to `results/*.json`.
//!
//! Run the whole suite through the CLI:
//!
//! ```text
//! strata bench --jobs 8                 # everything, parallel
//! strata bench --filter fig4,fig7      # a subset
//! strata bench --format json           # machine-readable stdout
//! strata bench --cache                 # resumable on-disk cell cache
//! ```
//!
//! The historical `strata-bench` binaries (`fig4_ibtc_size_sweep`, …)
//! remain as thin delegates to [`run_single`], so one code path defines
//! each experiment.
//!
//! [`SdtConfig`]: strata_core::SdtConfig
//! [`ArchProfile`]: strata_arch::ArchProfile
//! [`Params`]: strata_workloads::Params
//! [`Store`]: store::Store

pub mod budget;
pub mod cell;
pub mod exec;
pub mod experiments;
pub mod fsutil;
pub mod knobs;
pub mod registry;
pub mod sampled;
pub mod store;
pub mod suite;
pub mod view;

pub use budget::{makespan, order_longest_first, BudgetBook};
pub use cell::{CellKey, CellResult, RunKind};
pub use exec::{exec_tier, execute, set_exec_tier, FUEL};
pub use experiments::Output;
pub use fsutil::{atomic_write, atomic_write_bytes};
pub use knobs::EnvKnobs;
pub use registry::{by_id, registry, Experiment};
pub use sampled::{sampled_mode, set_sampled, SampledCell, DEFAULT_TRACES_DIR};
pub use store::{parse_record, render_record, Store, StoreStats};
pub use suite::{
    baseline_gate, manifest_fingerprint, render_from_store, run_shard, run_single, run_suite,
    select, validate_filter, work_manifest, write_artifacts, OutputFormat, Shard, ShardReport,
    SuiteOptions, SuiteReport,
};
pub use view::View;
