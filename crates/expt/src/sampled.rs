//! Sampled (SimPoint) execution mode.
//!
//! Exact mode re-executes every guest instruction of every cell through
//! the SDT. Sampled mode replaces that with trace-driven estimation:
//!
//! 1. **Bundle** ([`ensure_bundle`]): one reference recording per
//!    (workload, params) — a compressed retire trace plus a SimPoint
//!    sidecar — loaded from the traces directory or recorded on demand
//!    and persisted (crash-safe, with orphaned artifacts pruned).
//! 2. **Estimate** ([`estimate_cell`]): a [`DispatchReplay`] walks only
//!    the elected intervals (plus one warmup interval each), snapshots
//!    the mechanism counters around every measured interval, and feeds
//!    the per-cluster deltas through
//!    [`strata_stats::stratified_estimate`]. Rate counters (dispatches,
//!    misses) are extrapolated with 95% confidence intervals; structural
//!    counters (fragments, cache bytes, translator work) come from the
//!    replay's final state.
//! 3. **Synthesize**: the estimates are assembled into an ordinary
//!    [`RunReport`] — cycles from the exact per-profile native baseline
//!    recorded in the trace header plus an analytic dispatch-overhead
//!    model over the [`ArchProfile`] cost tables — so every existing
//!    renderer works unchanged. `fig21_sampled_fidelity` reads the raw
//!    [`CounterEstimates`] side channel to print estimate-vs-exact rows
//!    with stated error bars.
//!
//! The mode is strictly opt-in (`strata bench --sampled`, or
//! `STRATA_SAMPLED` for fleet workers); when off, nothing here runs and
//! exact mode is byte-identical to before. Sampled results are memoized
//! and budgeted under a `sampled/` key prefix so they can never collide
//! with exact cells (see [`crate::store`]).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use strata_arch::{ArchProfile, PredictorSpec};
use strata_core::{
    ClassReport, DispatchReplay, MechanismStats, PredictorStats, RunReport, SdtConfig,
};
use strata_machine::Program;
use strata_stats::{stratified_estimate, Estimate, Stratum};
use strata_trace::{record, select, SimPoints, Trace};
use strata_workloads::{by_name, Params};

use crate::cell::{CellKey, CellResult, RunKind};
use crate::exec::{build_program, exec_tier, FUEL};
use crate::fsutil::{atomic_write, atomic_write_bytes};
use crate::store::Store;

/// Where reference traces live unless `--traces` overrides it.
pub const DEFAULT_TRACES_DIR: &str = "results/traces";

/// Warmup intervals replayed (but not measured) before each
/// non-contiguous simulation point, so cold mechanism state does not
/// bleed into the measured deltas.
const WARMUP_INTERVALS: u64 = 1;

/// Process-wide sampled-mode switch, mirroring
/// [`crate::exec::exec_tier`]: an explicit [`set_sampled`] (the CLI's
/// `--sampled` flag) wins; otherwise the `STRATA_SAMPLED` environment
/// variable (a traces directory, or `1` for [`DEFAULT_TRACES_DIR`]) so
/// fleet workers inherit the mode; otherwise off (exact mode).
static MODE: OnceLock<Option<PathBuf>> = OnceLock::new();

/// Turns sampled mode on for this process with traces under
/// `traces_dir` (first caller wins; the env fallback is then ignored).
pub fn set_sampled(traces_dir: PathBuf) {
    let _ = MODE.set(Some(traces_dir));
}

/// The resolved traces directory when sampled mode is on, `None` in
/// exact mode.
pub fn sampled_mode() -> Option<&'static Path> {
    MODE.get_or_init(|| match std::env::var("STRATA_SAMPLED") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" => Some(PathBuf::from(DEFAULT_TRACES_DIR)),
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => None,
    })
    .as_deref()
}

/// The store/budget key prefix for the current mode: `"sampled/"` when
/// sampled mode is on, plus a `pred-<label>/` component when a
/// non-legacy [`PredictorSpec`] is selected, `""` in the default exact
/// mode. Keeps estimated results, predictor-model results, and their
/// cycle budgets fully disjoint from exact legacy ones.
pub fn key_prefix() -> &'static str {
    static PREFIX: OnceLock<String> = OnceLock::new();
    PREFIX.get_or_init(|| {
        let mut s = String::new();
        if sampled_mode().is_some() {
            s.push_str("sampled/");
        }
        let spec = strata_arch::predictor();
        if spec != PredictorSpec::Legacy {
            s.push_str(&format!("pred-{}/", spec.label()));
        }
        s
    })
}

/// Deterministic sampling interval for a trace of `instructions`
/// retired instructions: targets ~250 intervals (so k-means sees enough
/// phases and coverage stays well under 20%), floored so tiny programs
/// keep meaningful intervals.
pub fn pick_interval(instructions: u64) -> u64 {
    (instructions / 250).max(500)
}

/// File name of a workload's trace at `params` (the canonical instance
/// drops the params suffix, matching `results/traces/<workload>.strace`).
pub fn trace_file_name(workload: &str, params: Params) -> String {
    if params == Params::default() {
        format!("{workload}.strace")
    } else {
        format!("{workload}.s{}v{}.strace", params.scale, params.variant)
    }
}

/// File name of the SimPoint sidecar next to the trace.
pub fn simpts_file_name(workload: &str, params: Params) -> String {
    if params == Params::default() {
        format!("{workload}.simpts")
    } else {
        format!("{workload}.s{}v{}.simpts", params.scale, params.variant)
    }
}

/// A loaded trace plus its SimPoint selection — everything one
/// (workload, params) needs for any number of sampled cells.
#[derive(Debug)]
pub struct Bundle {
    /// The full recorded trace (header baselines + retire stream).
    pub trace: Trace,
    /// The elected simulation points.
    pub points: SimPoints,
}

fn bundle_cache() -> &'static Mutex<HashMap<String, Arc<Bundle>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<Bundle>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Program cache key: (workload, scale, variant).
type ProgramKey = (String, u32, u64);

fn program_cache() -> &'static Mutex<HashMap<ProgramKey, Arc<Program>>> {
    static CACHE: OnceLock<Mutex<HashMap<ProgramKey, Arc<Program>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The (cached) program for a workload at `params`.
pub fn program_for(workload: &str, params: Params) -> Arc<Program> {
    let key: ProgramKey = (workload.to_string(), params.scale, params.variant);
    let mut cache = program_cache().lock().expect("program cache lock");
    Arc::clone(
        cache
            .entry(key)
            .or_insert_with(|| Arc::new(build_program(workload, params))),
    )
}

/// Loads — or records, selects, and persists — the trace + SimPoints
/// bundle for `workload` at `params` under `dir`. Bundles are memoized
/// process-wide, so a suite run records each reference trace at most
/// once however many cells replay it.
///
/// # Errors
///
/// Returns a message when recording fails or an existing artifact is
/// unreadable *and* cannot be re-recorded.
pub fn ensure_bundle(dir: &Path, workload: &str, params: Params) -> Result<Arc<Bundle>, String> {
    let cache_key = format!(
        "{}|{workload}|s{}v{}",
        dir.display(),
        params.scale,
        params.variant
    );
    if let Some(hit) = bundle_cache()
        .lock()
        .expect("bundle cache lock")
        .get(&cache_key)
    {
        return Ok(Arc::clone(hit));
    }

    let trace_path = dir.join(trace_file_name(workload, params));
    let trace = match Trace::read(&trace_path) {
        Ok(t)
            if t.workload == workload && t.scale == params.scale && t.variant == params.variant =>
        {
            t
        }
        // Missing, corrupt, or mislabeled: re-record from scratch. The
        // recording is deterministic, so an overwrite is always safe.
        _ => record_trace(dir, workload, params)?,
    };

    let simpts_path = dir.join(simpts_file_name(workload, params));
    let points = match std::fs::read_to_string(&simpts_path)
        .ok()
        .and_then(|text| SimPoints::parse(&text).ok())
    {
        Some(p) if p.interval == trace.interval && p.instructions == trace.records.len() as u64 => {
            p
        }
        _ => {
            let p = select(&trace);
            persist_simpoints(dir, &simpts_path, &p);
            p
        }
    };

    let bundle = Arc::new(Bundle { trace, points });
    bundle_cache()
        .lock()
        .expect("bundle cache lock")
        .insert(cache_key, Arc::clone(&bundle));
    Ok(bundle)
}

/// Records a fresh reference trace for `workload` at `params` and
/// persists it (plus its SimPoint sidecar) under `dir`, pruning
/// orphaned artifacts of unregistered workloads in the same pass —
/// the `strata trace record` entry point.
///
/// # Errors
///
/// Returns a message when the reference run itself fails.
pub fn record_trace(dir: &Path, workload: &str, params: Params) -> Result<Trace, String> {
    by_name(workload).ok_or_else(|| format!("unknown workload `{workload}`"))?;
    let program = program_for(workload, params);
    let recorded =
        record(&program, FUEL, exec_tier()).map_err(|e| format!("recording {workload}: {e}"))?;
    let interval = pick_interval(recorded.log.records().len() as u64);
    let trace = recorded.into_trace(workload, params.scale, params.variant, interval);
    // Persistence is best-effort, like the cell cache: an unwritable
    // directory degrades to re-recording next run, never to an error.
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = atomic_write_bytes(
            &dir.join(trace_file_name(workload, params)),
            &trace.to_bytes(),
        );
        prune_orphans(dir);
    }
    let points = select(&trace);
    persist_simpoints(dir, &dir.join(simpts_file_name(workload, params)), &points);
    Ok(trace)
}

fn persist_simpoints(dir: &Path, path: &Path, points: &SimPoints) {
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = atomic_write(path, &points.render());
    }
}

/// Removes `*.strace` / `*.simpts` files whose workload (the file-name
/// stem before the first `.`) is no longer registered — the trace-dir
/// twin of the budget book's stale-key pruning, run on every save so
/// renamed or deleted workloads cannot leave multi-megabyte orphans.
pub fn prune_orphans(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || !(name.ends_with(".strace") || name.ends_with(".simpts")) {
            continue;
        }
        let stem = name.split('.').next().unwrap_or("");
        if by_name(stem).is_none() {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Whole-run estimates (with 95% confidence half-widths) for the rate
/// counters sampled replay extrapolates. Structural counters are not
/// listed here — they are read off the replay's final state.
#[derive(Debug, Clone)]
pub struct CounterEstimates {
    /// All indirect-branch dispatches (jumps + indirect calls).
    pub ib_dispatches: Estimate,
    /// Indirect-jump dispatches.
    pub jump_dispatches: Estimate,
    /// Indirect-call dispatches.
    pub call_dispatches: Estimate,
    /// Return dispatches.
    pub ret_dispatches: Estimate,
    /// IB mechanism misses.
    pub ib_misses: Estimate,
    /// Return-mechanism misses.
    pub rc_misses: Estimate,
    /// Per class row (replay order): (dispatches, misses).
    pub per_class: Vec<(Estimate, Estimate)>,
    /// Hardware target-predictor mispredicts on indirect jumps.
    pub jump_mispredicts: Estimate,
    /// Hardware target-predictor mispredicts on indirect calls.
    pub call_mispredicts: Estimate,
    /// Return-address-stack mispredicts on returns.
    pub ret_mispredicts: Estimate,
}

/// One estimated cell: the synthesized [`RunReport`] every renderer
/// consumes, plus the raw estimates and sampling accounting the
/// fidelity experiment reports.
#[derive(Debug)]
pub struct SampledCell {
    /// The synthesized report (counters rounded from the estimates).
    pub report: RunReport,
    /// Raw whole-run estimates with confidence intervals.
    pub est: CounterEstimates,
    /// Total intervals in the trace.
    pub intervals: u64,
    /// Simulation points replayed.
    pub points: usize,
    /// Instructions in the full trace.
    pub trace_records: u64,
    /// Instructions actually replayed (warmup + measured).
    pub replayed_records: u64,
}

impl SampledCell {
    /// Replayed fraction of the trace — the sampled guest-dispatch work
    /// relative to exact mode, warmup included.
    pub fn work_fraction(&self) -> f64 {
        if self.trace_records == 0 {
            return 0.0;
        }
        self.replayed_records as f64 / self.trace_records as f64
    }
}

/// Counter snapshot around a measured interval.
struct Snap {
    mech: MechanismStats,
    class: Vec<(u64, u64)>,
    pred: PredictorStats,
}

fn snap(rp: &DispatchReplay) -> Snap {
    Snap {
        mech: rp.stats(),
        class: rp
            .per_class()
            .iter()
            .map(|c| (c.dispatches, c.misses))
            .collect(),
        pred: rp.predictor_stats(),
    }
}

/// Per-interval deltas, in the fixed layout the estimator strata use:
/// `[ib, jump, call, ret, ib_miss, rc_miss, class0_d, class0_m, ...,
/// jump_mis, call_mis, ret_mis]`. The predictor counters append after
/// the per-class pairs so every pre-existing index is unchanged.
fn deltas(before: &Snap, after: &Snap) -> Vec<f64> {
    let d = |a: u64, b: u64| (a - b) as f64;
    let mut v = vec![
        d(after.mech.ib_dispatches, before.mech.ib_dispatches),
        d(after.mech.jump_dispatches, before.mech.jump_dispatches),
        d(after.mech.call_dispatches, before.mech.call_dispatches),
        d(after.mech.ret_dispatches, before.mech.ret_dispatches),
        d(after.mech.ib_misses, before.mech.ib_misses),
        d(after.mech.rc_misses, before.mech.rc_misses),
    ];
    for ((ad, am), (bd, bm)) in after.class.iter().zip(&before.class) {
        v.push(d(*ad, *bd));
        v.push(d(*am, *bm));
    }
    v.push(d(after.pred.jump_mispredicts, before.pred.jump_mispredicts));
    v.push(d(after.pred.call_mispredicts, before.pred.call_mispredicts));
    v.push(d(after.pred.ret_mispredicts, before.pred.ret_mispredicts));
    v
}

/// Estimates one translated cell from its workload's bundle: replays
/// the elected intervals (each preceded by a warmup interval unless the
/// replay is already positioned there), stratifies the per-interval
/// counter deltas by phase cluster, and synthesizes a [`RunReport`]
/// from the whole-run estimates plus the replay's structural state.
///
/// # Errors
///
/// Returns a message when the bundle cannot be produced or the replay
/// desynchronizes (which would mean a recorder/replayer bug — the
/// equivalence tests pin this).
pub fn estimate_cell(
    dir: &Path,
    workload: &str,
    params: Params,
    cfg: SdtConfig,
    profile: ArchProfile,
) -> Result<SampledCell, String> {
    estimate_cell_with_spec(
        dir,
        workload,
        params,
        cfg,
        profile,
        strata_arch::predictor(),
    )
}

/// [`estimate_cell`] with an explicit [`PredictorSpec`] — how fig22
/// sweeps predictor models per cell without touching the process-wide
/// selection.
///
/// # Errors
///
/// As [`estimate_cell`].
pub fn estimate_cell_with_spec(
    dir: &Path,
    workload: &str,
    params: Params,
    cfg: SdtConfig,
    profile: ArchProfile,
    spec: PredictorSpec,
) -> Result<SampledCell, String> {
    let bundle = ensure_bundle(dir, workload, params)?;
    let program = program_for(workload, params);
    let trace = &bundle.trace;
    let pts = &bundle.points;
    let interval = pts.interval.max(1);
    let records = &trace.records;
    let n_intervals = pts.intervals.max(1);

    let mut rp = DispatchReplay::with_predictor(cfg, &program, profile.clone(), spec)
        .map_err(|e| format!("{workload}/{}: {e}", cfg.describe()))?;
    let fail = |e: strata_core::SdtError| format!("{workload}/{}: replay: {e}", cfg.describe());

    // Replays records of interval `i`, returning how many were fed.
    let run_interval = |rp: &mut DispatchReplay, i: u64| -> Result<u64, String> {
        let start = (i * interval) as usize;
        let end = (((i + 1) * interval) as usize).min(records.len());
        for ev in &records[start..end] {
            rp.step(ev).map_err(fail)?;
        }
        Ok((end - start) as u64)
    };

    let mut replayed: u64 = 0;
    // The next interval index the replay is positioned at (having
    // consumed the stream contiguously up to its first record).
    let mut cursor: Option<u64> = None;
    // (cluster, per-counter deltas) per measured point, in point order.
    let mut samples: Vec<(u32, Vec<f64>)> = Vec::with_capacity(pts.points.len());

    for p in &pts.points {
        let idx = p.interval;
        let warm_from = if cursor == Some(idx) {
            idx
        } else {
            idx.saturating_sub(WARMUP_INTERVALS)
        };
        if cursor != Some(warm_from) {
            let first = &records[(warm_from * interval) as usize];
            rp.seek(first.pc).map_err(fail)?;
        }
        for i in warm_from..idx {
            replayed += run_interval(&mut rp, i)?;
        }
        let before = snap(&rp);
        replayed += run_interval(&mut rp, idx)?;
        let after = snap(&rp);
        samples.push((p.cluster, deltas(&before, &after)));
        cursor = Some(idx + 1);
    }

    // Per-cluster strata: weight = the cluster's share of all intervals,
    // samples = its measured points' deltas for one counter at a time.
    let n_counters = samples.first().map_or(6, |(_, d)| d.len());
    let cluster_weight: HashMap<u32, u64> = {
        let mut w: HashMap<u32, u64> = HashMap::new();
        for p in &pts.points {
            *w.entry(p.cluster).or_default() += p.weight;
        }
        w
    };
    let mut clusters: Vec<u32> = cluster_weight.keys().copied().collect();
    clusters.sort_unstable();
    let estimate = |counter: usize| -> Estimate {
        let strata: Vec<Stratum> = clusters
            .iter()
            .map(|&c| Stratum {
                weight: cluster_weight[&c] as f64,
                samples: samples
                    .iter()
                    .filter(|(sc, _)| *sc == c)
                    .map(|(_, d)| d[counter])
                    .collect(),
            })
            .collect();
        let per_interval = stratified_estimate(&strata).unwrap_or(Estimate {
            mean: 0.0,
            ci95: 0.0,
        });
        Estimate {
            mean: per_interval.mean * n_intervals as f64,
            ci95: per_interval.ci95 * n_intervals as f64,
        }
    };

    let final_snap = snap(&rp);
    let zero = Estimate {
        mean: 0.0,
        ci95: 0.0,
    };
    // Predictor counters sit after the per-class pairs (see `deltas`).
    let pred_base = 6 + 2 * final_snap.class.len();
    let pred_estimate = |off: usize| {
        if pred_base + off < n_counters {
            estimate(pred_base + off)
        } else {
            zero
        }
    };
    let est = CounterEstimates {
        ib_dispatches: estimate(0),
        jump_dispatches: estimate(1),
        call_dispatches: estimate(2),
        ret_dispatches: estimate(3),
        ib_misses: estimate(4),
        rc_misses: estimate(5),
        per_class: (0..final_snap.class.len())
            .map(|c| {
                let base = 6 + 2 * c;
                if base + 1 < n_counters {
                    (estimate(base), estimate(base + 1))
                } else {
                    (zero, zero)
                }
            })
            .collect(),
        jump_mispredicts: pred_estimate(0),
        call_mispredicts: pred_estimate(1),
        ret_mispredicts: pred_estimate(2),
    };

    let report = synthesize_report(
        trace,
        &profile,
        cfg,
        &est,
        &final_snap.mech,
        &rp.per_class(),
        rp.translator_cycles(),
    )?;

    Ok(SampledCell {
        report,
        est,
        intervals: pts.intervals,
        points: pts.points.len(),
        trace_records: records.len() as u64,
        replayed_records: replayed,
    })
}

fn round_u64(e: &Estimate) -> u64 {
    e.mean.round().max(0.0) as u64
}

/// Assembles a [`RunReport`] from sampled estimates: rate counters are
/// the rounded whole-run estimates, structural counters come from the
/// replay's final state, and cycles are the exact native baseline from
/// the trace header plus an analytic dispatch/miss overhead model over
/// the profile's cost table. The model is deliberately coarse — sampled
/// mode's fidelity contract is on the *counters* (gated by fig21); the
/// cycle numbers are labeled estimates.
#[allow(clippy::too_many_arguments)]
fn synthesize_report(
    trace: &Trace,
    profile: &ArchProfile,
    cfg: SdtConfig,
    est: &CounterEstimates,
    final_mech: &MechanismStats,
    final_class: &[ClassReport],
    translator_cycles: u64,
) -> Result<RunReport, String> {
    let native = trace.native_for(profile.name).ok_or_else(|| {
        format!(
            "trace for {} lacks a {} baseline",
            trace.workload, profile.name
        )
    })?;

    let mut mech = *final_mech;
    mech.ib_dispatches = round_u64(&est.ib_dispatches);
    mech.jump_dispatches = round_u64(&est.jump_dispatches);
    mech.call_dispatches = round_u64(&est.call_dispatches);
    mech.ret_dispatches = round_u64(&est.ret_dispatches);
    mech.ib_misses = round_u64(&est.ib_misses);
    mech.rc_misses = round_u64(&est.rc_misses);

    let mut per_class: Vec<ClassReport> = final_class.to_vec();
    for (row, (d, m)) in per_class.iter_mut().zip(&est.per_class) {
        row.dispatches = round_u64(d);
        row.misses = round_u64(m);
    }

    // Analytic overhead model: a hit-path dispatch is flags save/restore
    // plus a short hash/probe/compare/jump sequence; a miss crosses into
    // the runtime and back (two traps) around a context save/restore.
    let p = profile;
    let hit_cost = p.flags_save_cost
        + p.flags_restore_cost
        + 3 * p.alu_cost
        + p.load_cost
        + p.branch_cost
        + p.taken_branch_cost;
    let miss_cost = 2 * p.trap_cost + 16 * (p.load_cost + p.store_cost) + p.translator_lookup_cost;
    let glue_cost = p.store_cost + p.alu_cost;
    let dispatches = mech.ib_dispatches + mech.ret_dispatches;
    let misses = mech.ib_misses + mech.rc_misses;
    // The hardware target predictor's contribution per transfer class:
    // every mispredicted dispatch-site indirect eats the profile's
    // flush penalty on top of the analytic dispatch sequence.
    let indirect_mispredicts = round_u64(&est.jump_mispredicts)
        + round_u64(&est.call_mispredicts)
        + round_u64(&est.ret_mispredicts);
    let cycles_by_origin = [
        native.total_cycles,
        native.direct_calls * glue_cost,
        dispatches * hit_cost + indirect_mispredicts * p.mispredict_penalty,
        misses * miss_cost,
        0,
        0,
    ];
    let instrs_by_origin = [
        native.instructions,
        native.direct_calls * 2,
        dispatches * 8,
        misses * 24,
        0,
        0,
    ];
    let total_cycles = cycles_by_origin.iter().sum::<u64>() + translator_cycles;
    let instructions = instrs_by_origin.iter().sum::<u64>();

    Ok(RunReport {
        config: cfg.describe(),
        arch: profile.name,
        halted: true,
        checksum: trace.checksum,
        instructions,
        total_cycles,
        cycles_by_origin,
        instrs_by_origin,
        translator_cycles,
        mech,
        per_class,
        icache_misses: native.icache_misses,
        dcache_misses: native.dcache_misses,
        indirect_mispredicts,
        // Conditional-predictor interactions are not modeled in sampled
        // mode (the replay carries no per-branch outcome stream).
        cond_mispredicts: 0,
    })
}

/// Exact whole-trace counters for a configuration — the fidelity
/// experiment's ground truth. Replays *every* record (no sampling);
/// the replay-exactness tests prove this equals exact-mode counters.
///
/// # Errors
///
/// Returns a message on construction failure or desync.
pub fn full_trace_counters(
    bundle: &Bundle,
    workload: &str,
    params: Params,
    cfg: SdtConfig,
    profile: ArchProfile,
) -> Result<MechanismStats, String> {
    full_trace_counters_with_spec(
        bundle,
        workload,
        params,
        cfg,
        profile,
        strata_arch::predictor(),
    )
    .map(|(mech, _)| mech)
}

/// [`full_trace_counters`] with an explicit [`PredictorSpec`], also
/// returning the replay's hardware-predictor mirror counters — the
/// fidelity ground truth for fig22's predictor-aware cycles.
///
/// # Errors
///
/// As [`full_trace_counters`].
pub fn full_trace_counters_with_spec(
    bundle: &Bundle,
    workload: &str,
    params: Params,
    cfg: SdtConfig,
    profile: ArchProfile,
    spec: PredictorSpec,
) -> Result<(MechanismStats, PredictorStats), String> {
    let program = program_for(workload, params);
    let mut rp = DispatchReplay::with_predictor(cfg, &program, profile, spec)
        .map_err(|e| format!("{workload}/{}: {e}", cfg.describe()))?;
    rp.seek(program.entry)
        .map_err(|e| format!("{workload}: {e}"))?;
    for ev in &bundle.trace.records {
        rp.step(ev)
            .map_err(|e| format!("{workload}/{}: {e}", cfg.describe()))?;
    }
    Ok((rp.stats(), rp.predictor_stats()))
}

/// The sampled-mode twin of [`crate::exec::cell_result`]: native cells
/// are served exactly from the trace header's per-profile baselines;
/// translated cells are estimated via [`estimate_cell`]. Results are
/// memoized in the store under the `sampled/` key prefix.
pub fn sampled_cell_result(store: &Store, key: &CellKey, dir: &Path) -> Arc<CellResult> {
    match &key.kind {
        RunKind::Native => store.get_or_compute(key, || {
            let bundle = ensure_bundle(dir, key.workload, key.params)
                .unwrap_or_else(|e| panic!("sampled native {}: {e}", key.workload));
            let run = bundle
                .trace
                .native_for(key.profile.name)
                .unwrap_or_else(|| {
                    panic!(
                        "trace for {} lacks a {} baseline (re-record it)",
                        key.workload, key.profile.name
                    )
                })
                .clone();
            CellResult::Native(run)
        }),
        RunKind::Translated(cfg) => {
            let cfg = *cfg;
            store.get_or_compute(key, || {
                let cell = estimate_cell(dir, key.workload, key.params, cfg, key.profile.clone())
                    .unwrap_or_else(|e| panic!("sampled cell: {e}"));
                CellResult::Translated(Box::new(cell.report))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("strata-sampled-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn interval_targets_250_with_a_floor() {
        assert_eq!(pick_interval(0), 500);
        assert_eq!(pick_interval(100_000), 500);
        assert_eq!(pick_interval(1_000_000), 4000);
        assert_eq!(pick_interval(100_000_000), 400_000);
    }

    #[test]
    fn artifact_names_suffix_noncanonical_params() {
        let p = Params::default();
        assert_eq!(trace_file_name("gzip", p), "gzip.strace");
        assert_eq!(simpts_file_name("gzip", p), "gzip.simpts");
        let big = Params {
            scale: 10,
            variant: 3,
        };
        assert_eq!(trace_file_name("bzip2", big), "bzip2.s10v3.strace");
        assert_eq!(simpts_file_name("bzip2", big), "bzip2.s10v3.simpts");
    }

    #[test]
    fn prune_removes_only_unregistered_trace_artifacts() {
        let dir = temp_dir("prune");
        for name in [
            "gzip.strace",
            "gzip.simpts",
            "ghost.strace",
            "ghost.simpts",
            "ghost.s2v1.strace",
            "notes.txt",
            ".gzip.strace.123.0.tmp",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        prune_orphans(&dir);
        let mut left: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        left.sort();
        assert_eq!(
            left,
            [
                ".gzip.strace.123.0.tmp",
                "gzip.simpts",
                "gzip.strace",
                "notes.txt"
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bundle_records_persists_and_estimates_match_full_replay() {
        let dir = temp_dir("bundle");
        let params = Params::default();
        let bundle = ensure_bundle(&dir, "gzip", params).expect("bundle");
        assert!(dir.join("gzip.strace").exists());
        assert!(dir.join("gzip.simpts").exists());
        assert_eq!(bundle.trace.workload, "gzip");
        assert!(
            bundle.points.coverage() <= 0.2,
            "{}",
            bundle.points.coverage()
        );

        // Determinism: a fresh recording is byte-identical to the file.
        let on_disk = std::fs::read(dir.join("gzip.strace")).unwrap();
        let again = record_trace(&dir, "gzip", params).expect("re-record");
        assert_eq!(again.to_bytes(), on_disk, "recording is deterministic");

        let cfg = SdtConfig::ibtc_inline(512);
        let cell =
            estimate_cell(&dir, "gzip", params, cfg, ArchProfile::x86_like()).expect("estimate");
        assert!(cell.work_fraction() <= 0.2, "{}", cell.work_fraction());
        assert_eq!(cell.report.checksum, bundle.trace.checksum);

        let truth =
            full_trace_counters(&bundle, "gzip", params, cfg, ArchProfile::x86_like()).unwrap();
        let err = cell.est.ib_dispatches.rel_error(truth.ib_dispatches as f64);
        assert!(
            err < 0.25,
            "ib dispatch estimate off by {err} (est {} vs {})",
            cell.est.ib_dispatches.mean,
            truth.ib_dispatches
        );
        let err = cell
            .est
            .ret_dispatches
            .rel_error(truth.ret_dispatches as f64);
        assert!(err < 0.25, "ret dispatch estimate off by {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
