//! Fragment-cache inspection: disassemble translated code with its origin
//! tags — the debugging view an SDT developer lives in.

use strata_isa::Instr;

use crate::{Origin, Sdt};

/// One disassembled fragment-cache word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// Cache address of the instruction.
    pub addr: u32,
    /// The raw instruction word, kept so dumps and verifier excerpts can
    /// render undecodable words instead of truncating mid-fragment.
    pub word: u32,
    /// The decoded instruction (`None` for undecodable words, which the
    /// translator never emits but a dump should survive).
    pub instr: Option<Instr>,
    /// Why the translator emitted it.
    pub origin: Origin,
}

impl CacheLine {
    /// Renders the instruction text: the canonical disassembly, or a
    /// `.word 0x????????` directive for undecodable words.
    pub fn text(&self) -> String {
        match self.instr {
            Some(i) => i.to_string(),
            None => format!(".word {:#010x}", self.word),
        }
    }
}

impl Sdt {
    /// Disassembles the occupied fragment cache (bounded by `max_lines`).
    ///
    /// ```
    /// # use strata_core::{Sdt, SdtConfig};
    /// # use strata_machine::{layout, Program};
    /// # use strata_asm::assemble;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let code = assemble(layout::APP_BASE, "li r1, 7\nhalt\n")?;
    /// let mut sdt = Sdt::new(SdtConfig::ibtc_inline(64), &Program::new("t", code, vec![]))?;
    /// sdt.run(strata_arch::ArchProfile::x86_like(), 10_000)?;
    /// let lines = sdt.disassemble_cache(10_000);
    /// assert!(lines.iter().any(|l| l.origin == strata_core::Origin::App));
    /// # Ok(())
    /// # }
    /// ```
    pub fn disassemble_cache(&self, max_lines: usize) -> Vec<CacheLine> {
        let base = strata_machine::layout::CACHE_BASE;
        let used = self.cache_used_bytes();
        let mut out = Vec::new();
        let mut addr = base;
        while addr < base + used && out.len() < max_lines {
            let word = self.machine().mem().read_u32(addr).unwrap_or(0);
            let instr = strata_isa::decode(word).ok();
            let origin = self.origin_at(addr).unwrap_or(Origin::App);
            out.push(CacheLine {
                addr,
                word,
                instr,
                origin,
            });
            addr += 4;
        }
        out
    }

    /// Renders a human-readable dump of the occupied fragment cache.
    /// Undecodable words render as `.word 0x????????` so the dump never
    /// truncates mid-fragment.
    pub fn dump_cache(&self, max_lines: usize) -> String {
        let mut s = String::new();
        for line in self.disassemble_cache(max_lines) {
            s.push_str(&format!(
                "{:#010x}  {:<24} ; {}\n",
                line.addr,
                line.text(),
                line.origin.label()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SdtConfig;
    use strata_arch::ArchProfile;
    use strata_asm::assemble;
    use strata_machine::{layout, Program};

    fn sdt_for(src: &str, cfg: SdtConfig) -> Sdt {
        let code = assemble(layout::APP_BASE, src).unwrap();
        let program = Program::new("t", code, Vec::new());
        let mut sdt = Sdt::new(cfg, &program).unwrap();
        sdt.run(ArchProfile::x86_like(), 1_000_000).unwrap();
        sdt
    }

    #[test]
    fn dump_shows_app_and_overhead_code() {
        let sdt = sdt_for(
            "li r9, t\njr r9\nt:\nli r4, 1\ntrap 0x1\nhalt\n",
            SdtConfig::ibtc_inline(64),
        );
        let dump = sdt.dump_cache(100_000);
        assert!(dump.contains("; app"));
        assert!(dump.contains("; ib-dispatch"));
        assert!(dump.contains("; context-switch"));
        assert!(dump.contains("halt"));
    }

    #[test]
    fn disassembly_covers_exactly_the_used_cache() {
        let sdt = sdt_for("halt\n", SdtConfig::reentry());
        let lines = sdt.disassemble_cache(usize::MAX);
        assert_eq!(lines.len() * 4, sdt.cache_used_bytes() as usize);
        assert!(
            lines.iter().all(|l| l.instr.is_some()),
            "translator never emits junk"
        );
    }

    #[test]
    fn max_lines_bounds_output() {
        let sdt = sdt_for("halt\n", SdtConfig::reentry());
        assert_eq!(sdt.disassemble_cache(3).len(), 3);
    }

    #[test]
    fn lines_carry_the_raw_word() {
        let sdt = sdt_for("halt\n", SdtConfig::reentry());
        for line in sdt.disassemble_cache(usize::MAX) {
            assert_eq!(line.word, sdt.machine().mem().read_u32(line.addr).unwrap());
        }
    }

    #[test]
    fn undecodable_words_render_as_word_directives() {
        // 0xFFFF_FFFF is not a valid SimRISC encoding; a dump line built
        // from it must render a `.word` directive, not error or truncate.
        let line = CacheLine {
            addr: 0x60_0000,
            word: 0xFFFF_FFFF,
            instr: strata_isa::decode(0xFFFF_FFFF).ok(),
            origin: Origin::App,
        };
        assert!(line.instr.is_none(), "0xFFFFFFFF must not decode");
        assert_eq!(line.text(), ".word 0xffffffff");
    }
}
