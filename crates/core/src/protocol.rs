//! The dispatch protocol: save-area slots and trap codes shared between
//! emitted code and the runtime.
//!
//! Every indirect-branch dispatch sequence follows one register protocol so
//! that the shared stubs (miss tails, restore stubs, sieve stanzas,
//! return-cache prologues) compose with any mechanism:
//!
//! 1. spill `r1` to [`SLOT_R1`], move the branch target into `r1`
//!    (`mov`/`pop`/load),
//! 2. spill `r2`/`r3` to [`SLOT_R2`]/[`SLOT_R3`],
//! 3. under [`FlagsPolicy::Always`](crate::FlagsPolicy) push the flags on
//!    the application stack,
//! 4. probe using `r2`/`r3` as scratch, keeping the target in `r1`,
//! 5. *hit*: store the fragment address to [`SLOT_JUMP_TARGET`], restore
//!    flags and `r1`–`r3`, transfer via `jmem [SLOT_JUMP_TARGET]`
//!    (the x86 `jmp [mem]` idiom);
//!    *miss*: fall into a miss tail that completes a full context save and
//!    traps into the translator.
//!
//! The save area lives below the 1 MiB `lwa`/`swa` addressing boundary (see
//! [`strata_machine::layout::SAVE_AREA_BASE`]) so spill code needs no free
//! base register.

use strata_machine::layout::SAVE_AREA_BASE;
use strata_machine::syscall::SDT_TRAP_BASE;

/// Spill slot for `r1` during dispatch.
pub const SLOT_R1: u32 = SAVE_AREA_BASE;
/// Spill slot for `r2` during dispatch.
pub const SLOT_R2: u32 = SAVE_AREA_BASE + 4;
/// Spill slot for `r3` during dispatch.
pub const SLOT_R3: u32 = SAVE_AREA_BASE + 8;
/// Holds the resolved fragment address for the final `jmem` of a dispatch
/// hit.
pub const SLOT_JUMP_TARGET: u32 = SAVE_AREA_BASE + 12;
/// Written by the runtime before resuming: the fragment address the restore
/// stub jumps to.
pub const SLOT_RESUME: u32 = SAVE_AREA_BASE + 16;
/// Holds the saved flags word across a full context switch.
pub const SLOT_FLAGS: u32 = SAVE_AREA_BASE + 20;
/// The application-space branch target handed to the runtime on a miss.
pub const SLOT_TARGET: u32 = SAVE_AREA_BASE + 24;
/// The site/exit identifier handed to the runtime on a miss.
pub const SLOT_SITE: u32 = SAVE_AREA_BASE + 28;
/// Base of the 16-word full register save area (`r0` at `+0` … `r15` at
/// `+60`).
pub const SLOT_REGS: u32 = SAVE_AREA_BASE + 32;
/// Current byte offset into the shadow return stack (circular; only used
/// under [`RetMechanism::ShadowStack`](crate::RetMechanism::ShadowStack)).
pub const SLOT_SHADOW_SP: u32 = SAVE_AREA_BASE + 96;

/// Returns the save slot for register index `i` in the full context save.
pub const fn reg_slot(i: u32) -> u32 {
    SLOT_REGS + i * 4
}

/// Trap: an indirect branch (or unlinked exit) missed; the runtime reads
/// [`SLOT_TARGET`] and [`SLOT_SITE`].
pub const TRAP_MISS: u16 = SDT_TRAP_BASE;
/// Trap: a return-cache transfer reached the wrong fragment (or a cold
/// slot); the runtime reads the actual return target from `r1`.
pub const TRAP_RC_MISS: u16 = SDT_TRAP_BASE + 1;

/// [`SLOT_SITE`] sentinel: the miss came from the shared (site-less)
/// lookup path of a shared IBTC or the sieve.
pub const SITE_SHARED: u32 = u32::MAX;

/// [`SLOT_SITE`] sentinel: resolve the target but update no lookup
/// structure (shadow-stack return fallbacks — the next balanced call will
/// repopulate the shadow entry itself).
pub const SITE_NOFILL: u32 = u32::MAX - 1;

/// Base of the per-binding [`SLOT_SITE`] sentinel range used by mixed
/// dispatch policies: binding `k`'s miss glue reports
/// `SITE_BIND_BASE - k`. Single-binding configurations keep using
/// [`SITE_SHARED`], which is how legacy configurations stay bit-identical.
pub const SITE_BIND_BASE: u32 = u32::MAX - 2;

/// Maximum strategy bindings a policy can resolve to (bounds the sentinel
/// range; a policy has at most one jump and one call binding today).
pub const MAX_BINDS: usize = 4;

/// The [`SLOT_SITE`] sentinel for binding `k`'s shared miss glue.
pub const fn bind_sentinel(bind: usize) -> u32 {
    SITE_BIND_BASE - bind as u32
}

/// Decodes a per-binding sentinel back to its binding index.
pub fn sentinel_bind(site: u32) -> Option<usize> {
    if site <= SITE_BIND_BASE && site > SITE_BIND_BASE - MAX_BINDS as u32 {
        Some((SITE_BIND_BASE - site) as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_isa::MAX_ABS_ADDR;

    #[test]
    fn slots_fit_absolute_addressing() {
        for slot in [
            SLOT_R1,
            SLOT_R2,
            SLOT_R3,
            SLOT_JUMP_TARGET,
            SLOT_RESUME,
            SLOT_FLAGS,
            SLOT_TARGET,
            SLOT_SITE,
            reg_slot(15),
            SLOT_SHADOW_SP,
        ] {
            assert!(
                slot <= MAX_ABS_ADDR,
                "slot {slot:#x} unreachable by lwa/swa"
            );
            assert_eq!(slot % 4, 0);
        }
    }

    #[test]
    fn slots_do_not_overlap() {
        let mut slots = vec![
            SLOT_R1,
            SLOT_R2,
            SLOT_R3,
            SLOT_JUMP_TARGET,
            SLOT_RESUME,
            SLOT_FLAGS,
            SLOT_TARGET,
            SLOT_SITE,
        ];
        for i in 0..16 {
            slots.push(reg_slot(i));
        }
        slots.push(SLOT_SHADOW_SP);
        let n = slots.len();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), n);
    }

    #[test]
    fn bind_sentinels_stay_clear_of_other_sentinels() {
        for k in 0..MAX_BINDS {
            let s = bind_sentinel(k);
            assert_ne!(s, SITE_SHARED);
            assert_ne!(s, SITE_NOFILL);
            assert_eq!(sentinel_bind(s), Some(k));
        }
        assert_eq!(sentinel_bind(SITE_SHARED), None);
        assert_eq!(sentinel_bind(SITE_NOFILL), None);
        assert_eq!(sentinel_bind(bind_sentinel(MAX_BINDS - 1) - 1), None);
        assert_eq!(sentinel_bind(0), None);
    }

    #[test]
    fn trap_codes_reserved() {
        const { assert!(TRAP_MISS >= SDT_TRAP_BASE) };
        const { assert!(TRAP_RC_MISS >= SDT_TRAP_BASE) };
        assert_ne!(TRAP_MISS, TRAP_RC_MISS);
    }
}
