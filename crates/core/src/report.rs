use crate::Origin;

/// Host-side counters kept by the SDT across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct HostStats {
    pub translator_entries: u64,
    pub ib_misses: u64,
    pub rc_misses: u64,
    pub exit_misses: u64,
    pub exit_links: u64,
    pub fragments: u64,
    pub translated_app_instrs: u64,
    pub cache_flushes: u64,
    pub elided_jumps: u64,
}

/// Mechanism-level statistics for one translated run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MechanismStats {
    /// Executions of indirect-jump/call dispatch sequences.
    pub ib_dispatches: u64,
    /// Executions of indirect-*jump* dispatch sequences (subset of
    /// [`ib_dispatches`](Self::ib_dispatches)).
    pub jump_dispatches: u64,
    /// Executions of indirect-*call* dispatch sequences (subset of
    /// [`ib_dispatches`](Self::ib_dispatches)).
    pub call_dispatches: u64,
    /// Dispatch executions that missed into the translator (IBTC/sieve
    /// fill events; every dispatch under re-entry).
    pub ib_misses: u64,
    /// Executions of return dispatch sequences (returns-as-IB or return
    /// cache).
    pub ret_dispatches: u64,
    /// Return-cache misses (cold slots + verification mismatches).
    pub rc_misses: u64,
    /// Direct-branch exits that trapped (first executions).
    pub exit_misses: u64,
    /// Exits patched into direct jumps (fragment linking events).
    pub exit_links: u64,
    /// Crossings into the translator of any kind.
    pub translator_entries: u64,
    /// Fragments in the cache.
    pub fragments: u64,
    /// Application instructions translated.
    pub translated_app_instrs: u64,
    /// Fragment-cache bytes used.
    pub cache_used_bytes: u64,
    /// Times the fragment cache filled and was flushed.
    pub cache_flushes: u64,
    /// Direct jumps elided during translation (tail duplication).
    pub elided_jumps: u64,
    /// Adaptive-site promotions (inline→IBTC plus IBTC→sieve), cumulative
    /// across cache flushes. 0 without an adaptive policy.
    pub adaptive_promotions: u64,
    /// Mean sieve chain length over non-empty buckets (0 without a sieve).
    pub sieve_mean_chain: f64,
    /// Longest sieve chain.
    pub sieve_max_chain: u32,
}

impl MechanismStats {
    /// Hit rate of the indirect-branch mechanism in `0.0..=1.0`
    /// (1.0 when no dispatches executed).
    pub fn ib_hit_rate(&self) -> f64 {
        if self.ib_dispatches == 0 {
            1.0
        } else {
            1.0 - (self.ib_misses.min(self.ib_dispatches) as f64 / self.ib_dispatches as f64)
        }
    }

    /// Hit rate of the return mechanism in `0.0..=1.0`.
    pub fn ret_hit_rate(&self) -> f64 {
        if self.ret_dispatches == 0 {
            1.0
        } else {
            1.0 - (self.rc_misses.min(self.ret_dispatches) as f64 / self.ret_dispatches as f64)
        }
    }
}

/// Per-branch-class dispatch accounting under the active
/// [`DispatchPolicy`](crate::DispatchPolicy).
///
/// Classes that resolve to the same strategy binding share that binding's
/// tables — and therefore its miss counter, so their rows report the same
/// (combined) miss total. Returns handled as generic indirect branches
/// ([`RetMechanism::AsIb`](crate::RetMechanism::AsIb)) miss into the jump
/// binding's counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassReport {
    /// Branch class label: `"jump"`, `"call"`, or `"ret"`.
    pub class: &'static str,
    /// The serving mechanism's parameterized label.
    pub mechanism: String,
    /// Dispatch-sequence executions for this class.
    pub dispatches: u64,
    /// Misses serviced by the serving binding (see type docs for
    /// sharing semantics).
    pub misses: u64,
    /// Adaptive-site promotions in the serving binding.
    pub promotions: u64,
}

/// Everything measured about one translated run.
///
/// Compare against a [`NativeRun`](crate::NativeRun) of the same program
/// under the same [`ArchProfile`](strata_arch::ArchProfile) to compute
/// slowdowns; the per-origin cycle buckets regenerate the paper's
/// overhead-source breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// `SdtConfig::describe()` of the configuration that ran.
    pub config: String,
    /// Architecture profile name.
    pub arch: &'static str,
    /// Whether the program ran to `halt` (as opposed to exhausting fuel).
    pub halted: bool,
    /// Syscall checksum at the end of the run (compare with native).
    pub checksum: u32,
    /// Retired guest instructions (application + all overhead code).
    pub instructions: u64,
    /// Total cycles charged by the architecture model, including
    /// translator charges.
    pub total_cycles: u64,
    /// Cycles attributed to each [`Origin`] (index with
    /// [`Origin::index`]).
    pub cycles_by_origin: [u64; 6],
    /// Retired instructions per [`Origin`].
    pub instrs_by_origin: [u64; 6],
    /// Host-side translator cycles (map lookups + translation work).
    pub translator_cycles: u64,
    /// Mechanism-level statistics.
    pub mech: MechanismStats,
    /// Per-branch-class dispatch breakdown (jump, call, ret — in that
    /// order).
    pub per_class: Vec<ClassReport>,
    /// I-cache misses across the run.
    pub icache_misses: u64,
    /// D-cache misses across the run.
    pub dcache_misses: u64,
    /// Indirect-transfer mispredictions (BTB + RAS).
    pub indirect_mispredicts: u64,
    /// Conditional-branch mispredictions.
    pub cond_mispredicts: u64,
}

impl RunReport {
    /// Cycles attributed to `origin`.
    pub fn cycles_for(&self, origin: Origin) -> u64 {
        self.cycles_by_origin[origin.index()]
    }

    /// Cycles not attributable to translated application instructions
    /// (dispatch + context switches + trampolines + glue + translator).
    pub fn overhead_cycles(&self) -> u64 {
        self.total_cycles - self.cycles_for(Origin::App)
    }

    /// Slowdown relative to a native cycle count for the same program and
    /// profile.
    pub fn slowdown(&self, native_cycles: u64) -> f64 {
        if native_cycles == 0 {
            0.0
        } else {
            self.total_cycles as f64 / native_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates() {
        let mut m = MechanismStats {
            ib_dispatches: 100,
            ib_misses: 10,
            ..Default::default()
        };
        assert!((m.ib_hit_rate() - 0.9).abs() < 1e-12);
        m.ib_dispatches = 0;
        assert_eq!(m.ib_hit_rate(), 1.0);
        m.ret_dispatches = 4;
        m.rc_misses = 1;
        assert_eq!(m.ret_hit_rate(), 0.75);
    }

    #[test]
    fn slowdown_math() {
        let r = RunReport {
            config: "x".into(),
            arch: "t",
            halted: true,
            checksum: 0,
            instructions: 0,
            total_cycles: 300,
            cycles_by_origin: [100, 0, 100, 100, 0, 0],
            instrs_by_origin: [0; 6],
            translator_cycles: 0,
            mech: MechanismStats::default(),
            per_class: Vec::new(),
            icache_misses: 0,
            dcache_misses: 0,
            indirect_mispredicts: 0,
            cond_mispredicts: 0,
        };
        assert_eq!(r.slowdown(100), 3.0);
        assert_eq!(r.overhead_cycles(), 200);
        assert_eq!(r.cycles_for(Origin::Dispatch), 100);
        assert_eq!(r.slowdown(0), 0.0);
    }
}
