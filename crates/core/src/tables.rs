//! Guest-memory lookup tables (IBTC, sieve buckets, return cache).

use strata_machine::{MachineError, Memory};

/// A table in guest memory: base address plus an index mask.
///
/// IBTC tables hold 8-byte `{tag, fragment}` entries; sieve bucket tables
/// and return caches hold 4-byte code addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TableRef {
    /// Guest base address.
    pub base: u32,
    /// `entries - 1`.
    pub mask: u32,
    /// Bytes per entry (4 or 8).
    pub entry_bytes: u32,
}

impl TableRef {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.mask + 1) * self.entry_bytes
    }

    /// The hash all emitted probe sequences implement:
    /// `(addr >> 2) & mask` — drop the alignment bits, mask to the table.
    #[inline]
    pub fn index_of(&self, app_addr: u32) -> u32 {
        (app_addr >> 2) & self.mask
    }

    /// Guest address of the entry for `app_addr`.
    #[inline]
    pub fn entry_addr(&self, app_addr: u32) -> u32 {
        self.base + self.index_of(app_addr) * self.entry_bytes
    }

    /// Fills the IBTC entry for `app_addr` with `{tag, value}` (8-byte
    /// entries only).
    pub fn fill_tagged(
        &self,
        mem: &mut Memory,
        app_addr: u32,
        value: u32,
    ) -> Result<(), MachineError> {
        debug_assert_eq!(self.entry_bytes, 8);
        let e = self.entry_addr(app_addr);
        mem.write_u32(e, app_addr)?;
        mem.write_u32(e + 4, value)
    }

    /// Fills the tagless entry for `app_addr` with a code address (4-byte
    /// entries only).
    pub fn fill_untagged(
        &self,
        mem: &mut Memory,
        app_addr: u32,
        value: u32,
    ) -> Result<(), MachineError> {
        debug_assert_eq!(self.entry_bytes, 4);
        mem.write_u32(self.entry_addr(app_addr), value)
    }

    /// Installs `{tag, value}` into the two-way set for `app_addr`: the
    /// previous way-0 entry shifts to way-1 (LRU-by-shifting) and the new
    /// entry takes way-0. 16-byte sets only.
    pub fn fill_tagged_2way(
        &self,
        mem: &mut Memory,
        app_addr: u32,
        value: u32,
    ) -> Result<(), MachineError> {
        debug_assert_eq!(self.entry_bytes, 16);
        let e = self.entry_addr(app_addr);
        let old_tag = mem.read_u32(e)?;
        let old_val = mem.read_u32(e + 4)?;
        mem.write_u32(e + 8, old_tag)?;
        mem.write_u32(e + 12, old_val)?;
        mem.write_u32(e, app_addr)?;
        mem.write_u32(e + 4, value)
    }

    /// Initializes every 4-byte entry to `value` (cold sieve buckets and
    /// return-cache slots point at their miss stubs).
    pub fn fill_all(&self, mem: &mut Memory, value: u32) -> Result<(), MachineError> {
        debug_assert_eq!(self.entry_bytes, 4);
        for i in 0..=self.mask {
            mem.write_u32(self.base + i * 4, value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_entry_math() {
        let t = TableRef {
            base: 0x1000,
            mask: 0xF,
            entry_bytes: 8,
        };
        assert_eq!(t.size_bytes(), 128);
        assert_eq!(t.index_of(0x0040_0000), 0);
        assert_eq!(t.index_of(0x0040_0004), 1);
        assert_eq!(t.index_of(0x0040_0040), 0); // wraps at 16 entries
        assert_eq!(t.entry_addr(0x0040_0008), 0x1010);
    }

    #[test]
    fn tagged_fill() {
        let mut mem = Memory::new(0x2000);
        let t = TableRef {
            base: 0x1000,
            mask: 0xF,
            entry_bytes: 8,
        };
        t.fill_tagged(&mut mem, 0xBEEF0, 0x600_004).unwrap();
        let e = t.entry_addr(0xBEEF0);
        assert_eq!(mem.read_u32(e).unwrap(), 0xBEEF0);
        assert_eq!(mem.read_u32(e + 4).unwrap(), 0x600_004);
    }

    #[test]
    fn untagged_fill_and_init() {
        let mut mem = Memory::new(0x2000);
        let t = TableRef {
            base: 0x1000,
            mask: 0x7,
            entry_bytes: 4,
        };
        t.fill_all(&mut mem, 0xAAAA).unwrap();
        for i in 0..8 {
            assert_eq!(mem.read_u32(0x1000 + i * 4).unwrap(), 0xAAAA);
        }
        t.fill_untagged(&mut mem, 0x10_0004, 0xBBBB).unwrap();
        assert_eq!(mem.read_u32(t.entry_addr(0x10_0004)).unwrap(), 0xBBBB);
    }
}
