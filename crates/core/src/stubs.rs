//! Shared code stubs emitted once at fragment-cache initialization.
//!
//! The stubs are the physical manifestation of "context switch overhead":
//! a miss tail saves the full register file and flags before trapping into
//! the translator, and a restore stub reloads everything before resuming in
//! the cache. Their instruction counts (≈18 each way, plus the trap cost)
//! are why the paper's baseline — re-entering the translator on *every*
//! indirect branch — is so expensive.

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::{FlagsPolicy, IbMechanism, IbtcPlacement};
use crate::emitter::Cache;
use crate::protocol::{
    reg_slot, SITE_NOFILL, SITE_SHARED, SLOT_FLAGS, SLOT_JUMP_TARGET, SLOT_R1, SLOT_R2, SLOT_R3,
    SLOT_RESUME, SLOT_SITE, SLOT_TARGET, TRAP_MISS, TRAP_RC_MISS,
};
use crate::tables::TableRef;
use crate::{Origin, SdtConfig, SdtError};

/// Addresses of the shared stubs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stubs {
    /// Full restore (registers + flags + dispatch spills) ending
    /// `jmem [SLOT_RESUME]`; resume point after a `TRAP_MISS`.
    pub restore: u32,
    /// Partial restore (`r0`, `r4`–`r15` only) for return-cache misses —
    /// flags and `r1`–`r3` are restored by the target fragment's own
    /// restore sequence.
    pub rc_restore: u32,
    /// Miss tail entered with the flags word already pushed on the
    /// application stack (dispatch-sequence misses).
    pub miss_tail_stack_flags: u32,
    /// Miss tail entered with the application flags still live in the
    /// flags register (direct-branch exit stubs).
    pub miss_tail_reg_flags: u32,
    /// Sets `SLOT_SITE = SITE_SHARED` and falls into the stack-flags miss
    /// tail; target of shared-structure (IBTC/sieve) miss paths.
    pub shared_miss_glue: u32,
    /// Sets `SLOT_SITE = SITE_NOFILL` and falls into the stack-flags miss
    /// tail; target of shadow-stack return fallbacks.
    pub nofill_miss_glue: u32,
    /// Return-cache miss stub: partial save + `TRAP_RC_MISS`.
    pub rc_miss: u32,
    /// Shared out-of-line IBTC probe routine (only under
    /// [`IbtcPlacement::OutOfLine`]).
    pub ibtc_lookup: Option<u32>,
}

/// The registers a full context switch must save/restore beyond the
/// dispatch spills `r1`–`r3`: `r0` and `r4`–`r15`.
fn bulk_regs() -> impl Iterator<Item = Reg> {
    std::iter::once(Reg::R0).chain((4..16).map(|i| Reg::try_from(i).expect("0..16")))
}

/// Emits all shared stubs. `shared_ibtc` must be the shared IBTC table when
/// the configuration uses an out-of-line lookup.
pub(crate) fn emit_stubs(
    cache: &mut Cache,
    mem: &mut Memory,
    cfg: &SdtConfig,
    shared_ibtc: Option<TableRef>,
) -> Result<Stubs, SdtError> {
    let save_flags = cfg.flags == FlagsPolicy::Always;
    let o = Origin::ContextSwitch;

    // --- restore stub -----------------------------------------------------
    let restore = cache.addr();
    for r in bulk_regs() {
        cache.emit(mem, Instr::Lwa { rd: r, addr: reg_slot(r.index() as u32) }, o)?;
    }
    if save_flags {
        cache.emit(mem, Instr::Lwa { rd: Reg::R3, addr: SLOT_FLAGS }, o)?;
        cache.emit(mem, Instr::Push { rs: Reg::R3 }, o)?;
        cache.emit(mem, Instr::Popf, o)?;
    }
    cache.emit(mem, Instr::Lwa { rd: Reg::R1, addr: SLOT_R1 }, o)?;
    cache.emit(mem, Instr::Lwa { rd: Reg::R2, addr: SLOT_R2 }, o)?;
    cache.emit(mem, Instr::Lwa { rd: Reg::R3, addr: SLOT_R3 }, o)?;
    cache.emit(mem, Instr::Jmem { addr: SLOT_RESUME }, o)?;

    // --- return-cache partial restore --------------------------------------
    let rc_restore = cache.addr();
    for r in bulk_regs() {
        cache.emit(mem, Instr::Lwa { rd: r, addr: reg_slot(r.index() as u32) }, o)?;
    }
    cache.emit(mem, Instr::Jmem { addr: SLOT_RESUME }, o)?;

    // --- miss tails --------------------------------------------------------
    let emit_tail = |cache: &mut Cache, mem: &mut Memory, flags_on_stack: bool| {
        let at = cache.addr();
        cache.emit(mem, Instr::Swa { rs: Reg::R1, addr: SLOT_TARGET }, o)?;
        if save_flags {
            if !flags_on_stack {
                cache.emit(mem, Instr::Pushf, o)?;
            }
            cache.emit(mem, Instr::Pop { rd: Reg::R3 }, o)?;
            cache.emit(mem, Instr::Swa { rs: Reg::R3, addr: SLOT_FLAGS }, o)?;
        }
        for r in bulk_regs() {
            cache.emit(mem, Instr::Swa { rs: r, addr: reg_slot(r.index() as u32) }, o)?;
        }
        cache.emit(mem, Instr::Trap { code: TRAP_MISS }, o)?;
        Ok::<u32, SdtError>(at)
    };
    let miss_tail_stack_flags = emit_tail(cache, mem, true)?;
    let miss_tail_reg_flags = if save_flags {
        emit_tail(cache, mem, false)?
    } else {
        // Without flags saving the two tails are identical; share one.
        miss_tail_stack_flags
    };

    // --- shared miss glue ----------------------------------------------------
    let shared_miss_glue = cache.addr();
    cache.emit_li(mem, Reg::R2, SITE_SHARED, o)?;
    cache.emit(mem, Instr::Swa { rs: Reg::R2, addr: SLOT_SITE }, o)?;
    cache.emit(mem, Instr::Jmp { target: miss_tail_stack_flags }, o)?;

    // --- no-fill miss glue (shadow-stack fallbacks) ----------------------------
    let nofill_miss_glue = cache.addr();
    cache.emit_li(mem, Reg::R2, SITE_NOFILL, o)?;
    cache.emit(mem, Instr::Swa { rs: Reg::R2, addr: SLOT_SITE }, o)?;
    cache.emit(mem, Instr::Jmp { target: miss_tail_stack_flags }, o)?;

    // --- return-cache miss stub ----------------------------------------------
    let rc_miss = cache.addr();
    cache.emit(mem, Instr::Swa { rs: Reg::R1, addr: SLOT_TARGET }, o)?;
    for r in bulk_regs() {
        cache.emit(mem, Instr::Swa { rs: r, addr: reg_slot(r.index() as u32) }, o)?;
    }
    cache.emit(mem, Instr::Trap { code: TRAP_RC_MISS }, o)?;

    // --- shared out-of-line IBTC lookup ---------------------------------------
    let ibtc_lookup = match cfg.ib {
        IbMechanism::Ibtc { placement: IbtcPlacement::OutOfLine, .. } => {
            let table = shared_ibtc.expect("out-of-line IBTC requires the shared table");
            let d = Origin::Dispatch;
            let at = cache.addr();
            cache.emit(mem, Instr::Srli { rd: Reg::R2, rs1: Reg::R1, shamt: 2 }, d)?;
            cache.emit(
                mem,
                Instr::Andi { rd: Reg::R2, rs1: Reg::R2, imm: table.mask as u16 },
                d,
            )?;
            cache.emit(mem, Instr::Slli { rd: Reg::R2, rs1: Reg::R2, shamt: 3 }, d)?;
            if table.base & 0xFFFF == 0 {
                cache.emit(mem, Instr::Lui { rd: Reg::R3, imm: (table.base >> 16) as u16 }, d)?;
            } else {
                cache.emit_li(mem, Reg::R3, table.base, d)?;
            }
            cache.emit(mem, Instr::Add { rd: Reg::R2, rs1: Reg::R2, rs2: Reg::R3 }, d)?;
            cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R2, off: 0 }, d)?;
            cache.emit(mem, Instr::Cmp { rs1: Reg::R3, rs2: Reg::R1 }, d)?;
            let bne = cache.emit(mem, Instr::Bne { off: 0 }, d)?;
            cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R2, off: 4 }, d)?;
            cache.emit(mem, Instr::Swa { rs: Reg::R3, addr: SLOT_JUMP_TARGET }, d)?;
            cache.emit(mem, Instr::Ret, d)?;
            let miss = cache.addr();
            cache.emit(mem, Instr::Pop { rd: Reg::R2 }, d)?; // discard return addr
            cache.emit(mem, Instr::Jmp { target: shared_miss_glue }, d)?;
            cache.patch_branch(mem, bne, Instr::Bne { off: 0 }, miss)?;
            Some(at)
        }
        _ => None,
    };

    Ok(Stubs {
        restore,
        rc_restore,
        miss_tail_stack_flags,
        miss_tail_reg_flags,
        shared_miss_glue,
        nofill_miss_glue,
        rc_miss,
        ibtc_lookup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_machine::layout;

    fn setup(cfg: SdtConfig) -> (Cache, Memory, Stubs) {
        let mut mem = Memory::new(layout::DEFAULT_MEM_BYTES);
        let mut cache = Cache::new(layout::CACHE_BASE, layout::CACHE_BYTES);
        let table = TableRef { base: layout::TABLES_BASE, mask: 255, entry_bytes: 8 };
        let stubs = emit_stubs(&mut cache, &mut mem, &cfg, Some(table)).unwrap();
        (cache, mem, stubs)
    }

    #[test]
    fn stubs_are_disjoint_and_tagged() {
        let (cache, _mem, s) = setup(SdtConfig::ibtc_out_of_line(256));
        let addrs = [
            s.restore,
            s.rc_restore,
            s.miss_tail_stack_flags,
            s.miss_tail_reg_flags,
            s.shared_miss_glue,
            s.nofill_miss_glue,
            s.rc_miss,
            s.ibtc_lookup.unwrap(),
        ];
        let mut sorted = addrs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), addrs.len());
        assert_eq!(cache.origin_at(s.restore), Some(Origin::ContextSwitch));
        assert_eq!(cache.origin_at(s.ibtc_lookup.unwrap()), Some(Origin::Dispatch));
    }

    #[test]
    fn flags_none_merges_tails() {
        let mut cfg = SdtConfig::reentry();
        cfg.flags = FlagsPolicy::None;
        let (_, _, s) = setup(cfg);
        assert_eq!(s.miss_tail_stack_flags, s.miss_tail_reg_flags);
        assert!(s.ibtc_lookup.is_none());
    }

    #[test]
    fn inline_config_has_no_lookup_routine() {
        let (_, _, s) = setup(SdtConfig::ibtc_inline(256));
        assert!(s.ibtc_lookup.is_none());
    }
}
