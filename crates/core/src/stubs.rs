//! Shared code stubs emitted once at fragment-cache initialization.
//!
//! The stubs are the physical manifestation of "context switch overhead":
//! a miss tail saves the full register file and flags before trapping into
//! the translator, and a restore stub reloads everything before resuming in
//! the cache. Their instruction counts (≈18 each way, plus the trap cost)
//! are why the paper's baseline — re-entering the translator on *every*
//! indirect branch — is so expensive.
//!
//! Strategy-specific stub code (per-binding miss glue, out-of-line lookup
//! routines) is emitted right after these by the strategy layer — see
//! [`crate::strategy`].

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::FlagsPolicy;
use crate::emitter::Cache;
use crate::protocol::{
    reg_slot, SITE_NOFILL, SITE_SHARED, SLOT_FLAGS, SLOT_R1, SLOT_R2, SLOT_R3, SLOT_RESUME,
    SLOT_SITE, SLOT_TARGET, TRAP_MISS, TRAP_RC_MISS,
};
use crate::{Origin, SdtConfig, SdtError};

/// Addresses of the shared stubs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stubs {
    /// Full restore (registers + flags + dispatch spills) ending
    /// `jmem [SLOT_RESUME]`; resume point after a `TRAP_MISS`.
    pub restore: u32,
    /// Partial restore (`r0`, `r4`–`r15` only) for return-cache misses —
    /// flags and `r1`–`r3` are restored by the target fragment's own
    /// restore sequence.
    pub rc_restore: u32,
    /// Miss tail entered with the flags word already pushed on the
    /// application stack (dispatch-sequence misses).
    pub miss_tail_stack_flags: u32,
    /// Miss tail entered with the application flags still live in the
    /// flags register (direct-branch exit stubs).
    pub miss_tail_reg_flags: u32,
    /// Sets `SLOT_SITE = SITE_SHARED` and falls into the stack-flags miss
    /// tail; target of shared-structure (IBTC/sieve) miss paths under a
    /// single strategy binding.
    pub shared_miss_glue: u32,
    /// Sets `SLOT_SITE = SITE_NOFILL` and falls into the stack-flags miss
    /// tail; target of shadow-stack return fallbacks.
    pub nofill_miss_glue: u32,
    /// Return-cache miss stub: partial save + `TRAP_RC_MISS`.
    pub rc_miss: u32,
}

/// The registers a full context switch must save/restore beyond the
/// dispatch spills `r1`–`r3`: `r0` and `r4`–`r15`.
fn bulk_regs() -> impl Iterator<Item = Reg> {
    std::iter::once(Reg::R0).chain((4..16).map(|i| Reg::try_from(i).expect("0..16")))
}

/// Emits all strategy-independent shared stubs.
pub(crate) fn emit_stubs(
    cache: &mut Cache,
    mem: &mut Memory,
    cfg: &SdtConfig,
) -> Result<Stubs, SdtError> {
    let save_flags = cfg.flags == FlagsPolicy::Always;
    let o = Origin::ContextSwitch;

    // --- restore stub -----------------------------------------------------
    let restore = cache.addr();
    for r in bulk_regs() {
        cache.emit(
            mem,
            Instr::Lwa {
                rd: r,
                addr: reg_slot(r.index() as u32),
            },
            o,
        )?;
    }
    if save_flags {
        cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R3,
                addr: SLOT_FLAGS,
            },
            o,
        )?;
        cache.emit(mem, Instr::Push { rs: Reg::R3 }, o)?;
        cache.emit(mem, Instr::Popf, o)?;
    }
    cache.emit(
        mem,
        Instr::Lwa {
            rd: Reg::R1,
            addr: SLOT_R1,
        },
        o,
    )?;
    cache.emit(
        mem,
        Instr::Lwa {
            rd: Reg::R2,
            addr: SLOT_R2,
        },
        o,
    )?;
    cache.emit(
        mem,
        Instr::Lwa {
            rd: Reg::R3,
            addr: SLOT_R3,
        },
        o,
    )?;
    cache.emit(mem, Instr::Jmem { addr: SLOT_RESUME }, o)?;

    // --- return-cache partial restore --------------------------------------
    let rc_restore = cache.addr();
    for r in bulk_regs() {
        cache.emit(
            mem,
            Instr::Lwa {
                rd: r,
                addr: reg_slot(r.index() as u32),
            },
            o,
        )?;
    }
    cache.emit(mem, Instr::Jmem { addr: SLOT_RESUME }, o)?;

    // --- miss tails --------------------------------------------------------
    let emit_tail = |cache: &mut Cache, mem: &mut Memory, flags_on_stack: bool| {
        let at = cache.addr();
        cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R1,
                addr: SLOT_TARGET,
            },
            o,
        )?;
        if save_flags {
            if !flags_on_stack {
                cache.emit(mem, Instr::Pushf, o)?;
            }
            cache.emit(mem, Instr::Pop { rd: Reg::R3 }, o)?;
            cache.emit(
                mem,
                Instr::Swa {
                    rs: Reg::R3,
                    addr: SLOT_FLAGS,
                },
                o,
            )?;
        }
        for r in bulk_regs() {
            cache.emit(
                mem,
                Instr::Swa {
                    rs: r,
                    addr: reg_slot(r.index() as u32),
                },
                o,
            )?;
        }
        cache.emit(mem, Instr::Trap { code: TRAP_MISS }, o)?;
        Ok::<u32, SdtError>(at)
    };
    let miss_tail_stack_flags = emit_tail(cache, mem, true)?;
    let miss_tail_reg_flags = if save_flags {
        emit_tail(cache, mem, false)?
    } else {
        // Without flags saving the two tails are identical; share one.
        miss_tail_stack_flags
    };

    // --- shared miss glue ----------------------------------------------------
    let shared_miss_glue = cache.addr();
    cache.emit_li(mem, Reg::R2, SITE_SHARED, o)?;
    cache.emit(
        mem,
        Instr::Swa {
            rs: Reg::R2,
            addr: SLOT_SITE,
        },
        o,
    )?;
    cache.emit(
        mem,
        Instr::Jmp {
            target: miss_tail_stack_flags,
        },
        o,
    )?;

    // --- no-fill miss glue (shadow-stack fallbacks) ----------------------------
    let nofill_miss_glue = cache.addr();
    cache.emit_li(mem, Reg::R2, SITE_NOFILL, o)?;
    cache.emit(
        mem,
        Instr::Swa {
            rs: Reg::R2,
            addr: SLOT_SITE,
        },
        o,
    )?;
    cache.emit(
        mem,
        Instr::Jmp {
            target: miss_tail_stack_flags,
        },
        o,
    )?;

    // --- return-cache miss stub ----------------------------------------------
    let rc_miss = cache.addr();
    cache.emit(
        mem,
        Instr::Swa {
            rs: Reg::R1,
            addr: SLOT_TARGET,
        },
        o,
    )?;
    for r in bulk_regs() {
        cache.emit(
            mem,
            Instr::Swa {
                rs: r,
                addr: reg_slot(r.index() as u32),
            },
            o,
        )?;
    }
    cache.emit(mem, Instr::Trap { code: TRAP_RC_MISS }, o)?;

    Ok(Stubs {
        restore,
        rc_restore,
        miss_tail_stack_flags,
        miss_tail_reg_flags,
        shared_miss_glue,
        nofill_miss_glue,
        rc_miss,
    })
}

/// Emits one strategy binding's miss glue: records the binding's
/// [`SLOT_SITE`] sentinel and falls into the stack-flags miss tail. Only
/// emitted under multi-binding policies.
pub(crate) fn emit_bind_glue(
    cache: &mut Cache,
    mem: &mut Memory,
    stubs: &Stubs,
    sentinel: u32,
) -> Result<u32, SdtError> {
    let o = Origin::ContextSwitch;
    let at = cache.addr();
    cache.emit_li(mem, Reg::R2, sentinel, o)?;
    cache.emit(
        mem,
        Instr::Swa {
            rs: Reg::R2,
            addr: SLOT_SITE,
        },
        o,
    )?;
    cache.emit(
        mem,
        Instr::Jmp {
            target: stubs.miss_tail_stack_flags,
        },
        o,
    )?;
    Ok(at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_machine::layout;

    fn setup(cfg: SdtConfig) -> (Cache, Memory, Stubs) {
        let mut mem = Memory::new(layout::DEFAULT_MEM_BYTES);
        let mut cache = Cache::new(layout::CACHE_BASE, layout::CACHE_BYTES);
        let stubs = emit_stubs(&mut cache, &mut mem, &cfg).unwrap();
        (cache, mem, stubs)
    }

    #[test]
    fn stubs_are_disjoint_and_tagged() {
        let (cache, _mem, s) = setup(SdtConfig::ibtc_out_of_line(256));
        let addrs = [
            s.restore,
            s.rc_restore,
            s.miss_tail_stack_flags,
            s.miss_tail_reg_flags,
            s.shared_miss_glue,
            s.nofill_miss_glue,
            s.rc_miss,
        ];
        let mut sorted = addrs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), addrs.len());
        assert_eq!(cache.origin_at(s.restore), Some(Origin::ContextSwitch));
    }

    /// Decodes the stub instructions at `addr`, stopping after the first
    /// control transfer (`trap`/`jmem`/`jmp`).
    fn decode_stub(mem: &Memory, addr: u32) -> Vec<Instr> {
        let mut out = Vec::new();
        for i in 0..64 {
            let word = mem.read_u32(addr + 4 * i).unwrap();
            let instr = strata_isa::decode(word).unwrap();
            let done = matches!(
                instr,
                Instr::Trap { .. } | Instr::Jmem { .. } | Instr::Jmp { .. }
            );
            out.push(instr);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn flags_none_merges_tails() {
        let mut cfg = SdtConfig::reentry();
        cfg.flags = FlagsPolicy::None;
        let (_, mem, s) = setup(cfg);
        assert_eq!(s.miss_tail_stack_flags, s.miss_tail_reg_flags);
        // The merged tail spills the target, saves the bulk registers, and
        // traps — it must not touch flags or the application stack.
        let tail = decode_stub(&mem, s.miss_tail_stack_flags);
        assert_eq!(
            tail[0],
            Instr::Swa {
                rs: Reg::R1,
                addr: SLOT_TARGET
            }
        );
        assert_eq!(tail.last(), Some(&Instr::Trap { code: TRAP_MISS }));
        assert!(
            !tail.iter().any(|i| matches!(
                i,
                Instr::Pushf | Instr::Popf | Instr::Push { .. } | Instr::Pop { .. }
            )),
            "merged tail must not touch flags or the stack: {tail:?}"
        );
    }

    /// Under [`FlagsPolicy::Always`] the two miss tails are distinct and
    /// each honors its documented entry convention: the stack-flags tail
    /// pops the flags word its caller already pushed, while the reg-flags
    /// tail pushes the still-live flags itself before popping.
    #[test]
    fn flags_always_keeps_tails_distinct() {
        let cfg = SdtConfig::reentry();
        assert_eq!(cfg.flags, FlagsPolicy::Always);
        let (_, mem, s) = setup(cfg);
        assert_ne!(s.miss_tail_stack_flags, s.miss_tail_reg_flags);

        let spill_target = Instr::Swa {
            rs: Reg::R1,
            addr: SLOT_TARGET,
        };
        let save_flags = [
            Instr::Pop { rd: Reg::R3 },
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_FLAGS,
            },
        ];
        let stack = decode_stub(&mem, s.miss_tail_stack_flags);
        assert_eq!(stack[0], spill_target);
        assert_eq!(&stack[1..3], &save_flags, "caller already pushed flags");

        let reg = decode_stub(&mem, s.miss_tail_reg_flags);
        assert_eq!(reg[0], spill_target);
        assert_eq!(reg[1], Instr::Pushf, "flags still live: push them first");
        assert_eq!(&reg[2..4], &save_flags);

        for tail in [&stack, &reg] {
            assert_eq!(tail.last(), Some(&Instr::Trap { code: TRAP_MISS }));
        }
    }

    /// The restore stubs honor their doc comments: the full restore
    /// reloads flags (under Always) and all of `r1`–`r3`; the return-cache
    /// partial restore reloads only the bulk registers — flags and the
    /// scratch registers stay saved for the target fragment's prologue.
    #[test]
    fn restore_stubs_match_documented_conventions() {
        let (_, mem, s) = setup(SdtConfig::reentry());
        let restore = decode_stub(&mem, s.restore);
        assert_eq!(restore.last(), Some(&Instr::Jmem { addr: SLOT_RESUME }));
        assert!(
            restore.contains(&Instr::Popf),
            "full restore must reload flags under FlagsPolicy::Always"
        );
        for (reg, slot) in [(Reg::R1, SLOT_R1), (Reg::R2, SLOT_R2), (Reg::R3, SLOT_R3)] {
            assert!(restore.contains(&Instr::Lwa {
                rd: reg,
                addr: slot
            }));
        }

        let rc = decode_stub(&mem, s.rc_restore);
        assert_eq!(rc.last(), Some(&Instr::Jmem { addr: SLOT_RESUME }));
        assert!(
            !rc.iter().any(|i| matches!(
                i,
                Instr::Popf
                    | Instr::Lwa {
                        addr: SLOT_R1 | SLOT_R2 | SLOT_R3,
                        ..
                    }
            )),
            "partial restore must leave flags and r1-r3 to the fragment prologue: {rc:?}"
        );
        // Exactly the bulk registers (r0, r4-r15) reload from their slots.
        let reloads = rc.iter().filter(|i| matches!(i, Instr::Lwa { .. })).count();
        assert_eq!(reloads, 13);
    }

    /// The canned glue stubs materialise their site sentinel and fall into
    /// the stack-flags miss tail.
    #[test]
    fn glue_stubs_store_sentinel_and_enter_stack_flags_tail() {
        let (_, mem, s) = setup(SdtConfig::ibtc_inline(256));
        for (glue, sentinel) in [
            (s.shared_miss_glue, SITE_SHARED),
            (s.nofill_miss_glue, SITE_NOFILL),
        ] {
            let code = decode_stub(&mem, glue);
            assert_eq!(
                code[0],
                Instr::Lui {
                    rd: Reg::R2,
                    imm: (sentinel >> 16) as u16
                }
            );
            assert_eq!(
                code[1],
                Instr::Ori {
                    rd: Reg::R2,
                    rs1: Reg::R2,
                    imm: (sentinel & 0xFFFF) as u16
                }
            );
            assert!(code.contains(&Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_SITE
            }));
            assert_eq!(
                code.last(),
                Some(&Instr::Jmp {
                    target: s.miss_tail_stack_flags
                })
            );
        }
    }

    #[test]
    fn bind_glue_is_distinct_from_shared_glue() {
        let (mut cache, mut mem, s) = setup(SdtConfig::ibtc_inline(256));
        let g0 =
            emit_bind_glue(&mut cache, &mut mem, &s, crate::protocol::bind_sentinel(0)).unwrap();
        let g1 =
            emit_bind_glue(&mut cache, &mut mem, &s, crate::protocol::bind_sentinel(1)).unwrap();
        assert_ne!(g0, s.shared_miss_glue);
        assert_ne!(g0, g1);
        assert_eq!(cache.origin_at(g0), Some(Origin::ContextSwitch));
    }
}
