//! Returns handled as generic indirect branches: the popped return
//! address dispatches through the jump-class strategy binding. The
//! slowest transparent option, and the paper's reference point for how
//! much return-specific mechanisms buy.

use strata_machine::Memory;

use crate::config::BranchClass;
use crate::dispatch::{CallPush, TargetSource};
use crate::sdt::SdtState;
use crate::strategy::RetStrategy;
use crate::SdtError;

#[derive(Debug)]
pub(crate) struct AsIb;

impl RetStrategy for AsIb {
    fn id(&self) -> &'static str {
        "asib"
    }

    fn describe(&self) -> String {
        "asib".into()
    }

    fn call_push(&self, ret_app: u32) -> CallPush {
        CallPush::AppAddr(ret_app)
    }

    fn emit_ret(&self, st: &mut SdtState, mem: &mut Memory) -> Result<(), SdtError> {
        st.emit_ib_dispatch(
            mem,
            TargetSource::PoppedReturn,
            CallPush::None,
            BranchClass::Ret,
        )?;
        Ok(())
    }

    fn emit_direct_call(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        target: u32,
        ret_app: u32,
    ) -> Result<(), SdtError> {
        st.emit_transparent_direct_call(mem, target, ret_app)
    }
}
