//! Adaptive per-site promotion: every site starts on a cheap single-entry
//! inline probe; when the observed target arity crosses thresholds the
//! runtime re-emits the probe at the cache frontier and repatches the
//! site's entry jump — inline → per-site IBTC → sieve.
//!
//! Promotion machinery:
//!
//! * Stage 0 (*inline*): compare `r1` against one patchable target
//!   constant and jump straight to its (patchable) fragment address. The
//!   first miss fills both constants; the tag starts at 0, which no
//!   application target can equal.
//! * Stage 1 (*IBTC*): on the second distinct target, a per-site
//!   direct-mapped IBTC probe is emitted at the cache frontier and the
//!   site's entry `jmp` is repatched onto it. The table is allocated above
//!   the flush floor, so a cache flush reclaims it.
//! * Stage 2 (*sieve*): past `sieve_arity` distinct targets, the probe is
//!   repatched onto a hash into the binding's shared sieve bucket table;
//!   stanza chains are installed through the normal sieve miss path.
//!
//! Promotion counts are kept per binding and surfaced in
//! [`RunReport`](crate::RunReport). A cache flush discards every adaptive
//! site (their probes live in flushed cache space) and resets the shared
//! sieve, so sites re-learn their arity afterwards — counters are
//! cumulative across flushes.

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::BranchClass;
use crate::dispatch::ibtc_table_ref;
use crate::emitter::TableAlloc;
use crate::fragment::{Fragment, SieveBucket, Site};
use crate::protocol::SLOT_JUMP_TARGET;
use crate::sdt::SdtState;
use crate::strategy::{Bind, IbStrategy};
use crate::tables::TableRef;
use crate::{Origin, SdtError};

/// Host-side record of one adaptive (or predictive) dispatch site.
#[derive(Debug)]
pub(crate) struct AdaptiveSite {
    /// Patchable `jmp` heading the probe; promotion repoints it.
    pub entry_jmp: u32,
    pub stage: AdaptiveStage,
    /// Distinct application targets observed (bounded by the sieve
    /// threshold — past promotion to the sieve the exact count is moot).
    pub targets: Vec<u32>,
    /// Per-target dispatch counts, parallel to `targets`. Only the
    /// predictive strategy maintains these (its observation stage traps
    /// every dispatch, so they are exact frequencies); adaptive sites
    /// leave the vector empty.
    pub counts: Vec<u64>,
    /// Per-target fragment entries, parallel to `targets` — again only
    /// maintained by the predictive strategy, which needs them to
    /// install every observed target's stanza at promotion time. A
    /// cache flush discards the whole site, so entries never dangle.
    pub frags: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum AdaptiveStage {
    /// Single-target inline probe; the two `li` pairs to patch on fill.
    Inline { tag_li: u32, frag_li: u32 },
    /// Per-site direct-mapped IBTC.
    Ibtc { table: TableRef },
    /// Hashing into the binding's shared sieve.
    Sieve,
    /// Predictive observation: every dispatch traps to the translator,
    /// which tallies exact per-target frequencies before promoting the
    /// site to a frequency-ordered sieve probe.
    Observe,
}

#[derive(Debug)]
pub(crate) struct Adaptive {
    pub ibtc_entries: u32,
    pub sieve_buckets: u32,
    pub sieve_arity: u32,
}

impl IbStrategy for Adaptive {
    fn id(&self) -> &'static str {
        "adaptive"
    }

    fn describe(&self) -> String {
        format!(
            "adaptive({},{},{})",
            self.ibtc_entries, self.sieve_buckets, self.sieve_arity
        )
    }

    fn alloc_fixed(&self, bind: &mut Bind, alloc: &mut TableAlloc) -> Result<(), SdtError> {
        // The promotion sieve's bucket table is fixed; per-site IBTC
        // tables are allocated at promotion time above the flush floor.
        let base = alloc.alloc(self.sieve_buckets * 4, 0x1_0000)?;
        bind.table = Some(TableRef {
            base,
            mask: self.sieve_buckets - 1,
            entry_bytes: 4,
        });
        Ok(())
    }

    fn reset(&self, bind: &mut Bind, mem: &mut Memory, miss_glue: u32) -> Result<(), SdtError> {
        let t = bind.table.expect("adaptive sieve allocated");
        t.fill_all(mem, miss_glue)?;
        bind.sieve_buckets = vec![SieveBucket::default(); self.sieve_buckets as usize];
        Ok(())
    }

    fn emit_probe(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        _class: BranchClass,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        // Patchable entry jump, initially falling through to the inline
        // probe emitted right after it.
        let entry_jmp = st.cache.addr();
        st.cache.emit(
            mem,
            Instr::Jmp {
                target: entry_jmp + 4,
            },
            d,
        )?;
        let idx = st.adaptive.len() as u32;
        let site = st.new_site(Site::Adaptive {
            bind: bind as u8,
            idx,
        });
        let tag_li = st.cache.emit_li(mem, Reg::R2, 0, d)?;
        st.cache.emit(
            mem,
            Instr::Cmp {
                rs1: Reg::R1,
                rs2: Reg::R2,
            },
            d,
        )?;
        let bne = st.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        let frag_li = st.cache.emit_li(mem, Reg::R3, 0, d)?;
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        st.emit_hit_epilogue(mem)?;
        let miss = st.cache.addr();
        st.cache
            .patch_branch(mem, bne, Instr::Bne { off: 0 }, miss)?;
        st.emit_site_miss_path(mem, site)?;
        st.adaptive.push(AdaptiveSite {
            entry_jmp,
            stage: AdaptiveStage::Inline { tag_li, frag_li },
            targets: Vec::new(),
            counts: Vec::new(),
            frags: Vec::new(),
        });
        Ok(())
    }

    fn on_shared_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        target: u32,
        frag_entry: u32,
    ) -> Result<(), SdtError> {
        // A sieve-stage probe missed: grow the stanza chain.
        st.sieve_install(mem, bind, target, frag_entry)
    }

    fn on_site_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        site: u32,
        target: u32,
        frag: Fragment,
    ) -> Result<(), SdtError> {
        let Site::Adaptive { idx, .. } = st.sites[site as usize] else {
            unreachable!("adaptive site misses carry an adaptive site id");
        };
        let idx = idx as usize;
        let a = &mut st.adaptive[idx];
        if !a.targets.contains(&target) && a.targets.len() <= self.sieve_arity as usize {
            a.targets.push(target);
        }
        let arity = a.targets.len() as u32;
        let stage = a.stage;
        match stage {
            AdaptiveStage::Inline { tag_li, frag_li } => {
                if arity <= 1 {
                    st.cache.patch_li(mem, tag_li, Reg::R2, target)?;
                    st.cache.patch_li(mem, frag_li, Reg::R3, frag.entry)?;
                } else {
                    self.promote_to_ibtc(st, mem, bind, idx, site, target, frag.entry)?;
                }
            }
            AdaptiveStage::Ibtc { table } => {
                if arity > self.sieve_arity {
                    self.promote_to_sieve(st, mem, bind, idx, target, frag.entry)?;
                } else {
                    table.fill_tagged(mem, target, frag.entry)?;
                }
            }
            AdaptiveStage::Sieve => {
                // The hash led to an un-installed chain slot for this
                // target; extend the chain exactly like a shared miss.
                st.sieve_install(mem, bind, target, frag.entry)?;
            }
            AdaptiveStage::Observe => {
                unreachable!("observation sites belong to the predictive strategy")
            }
        }
        Ok(())
    }
}

impl Adaptive {
    /// Re-emits the site as a per-site IBTC probe at the cache frontier
    /// and repatches the entry jump onto it. On [`SdtError::CacheFull`]
    /// the site is left unpromoted (the caller flushes anyway).
    #[allow(clippy::too_many_arguments)]
    fn promote_to_ibtc(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        idx: usize,
        site: u32,
        target: u32,
        frag_entry: u32,
    ) -> Result<(), SdtError> {
        let base = st.alloc.alloc(self.ibtc_entries * 8, 16)?;
        for i in 0..self.ibtc_entries * 2 {
            mem.write_u32(base + i * 4, 0)?;
        }
        let table = ibtc_table_ref(base, self.ibtc_entries, 1)?;
        let stub = st.cache.addr();
        let glue = st.glue_for(bind);
        st.emit_inline_ibtc_probe(mem, table, Some(site), glue)?;
        let entry_jmp = st.adaptive[idx].entry_jmp;
        st.cache
            .patch(mem, entry_jmp, Instr::Jmp { target: stub }, None)?;
        table.fill_tagged(mem, target, frag_entry)?;
        st.adaptive[idx].stage = AdaptiveStage::Ibtc { table };
        st.binds[bind].promotions_to_ibtc += 1;
        Ok(())
    }

    /// Re-emits the site as a sieve hash probe into the binding's shared
    /// bucket table and repatches the entry jump onto it. The abandoned
    /// per-site IBTC table is reclaimed at the next cache flush.
    fn promote_to_sieve(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        idx: usize,
        target: u32,
        frag_entry: u32,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        let table = st.binds[bind].table.expect("adaptive sieve allocated");
        let stub = st.cache.addr();
        st.emit_hash(mem, table, 2)?;
        st.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R2,
                rs1: Reg::R2,
                off: 0,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Jmem {
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        let entry_jmp = st.adaptive[idx].entry_jmp;
        st.cache
            .patch(mem, entry_jmp, Instr::Jmp { target: stub }, None)?;
        st.sieve_install(mem, bind, target, frag_entry)?;
        st.adaptive[idx].stage = AdaptiveStage::Sieve;
        st.binds[bind].promotions_to_sieve += 1;
        Ok(())
    }
}
