//! The pluggable indirect-branch strategy layer.
//!
//! Each handling mechanism is a self-contained module implementing
//! [`IbStrategy`] (table allocation, stub support, per-site dispatch
//! emission, miss servicing, flush behaviour) or — for return-specific
//! mechanisms — [`RetStrategy`]. A [`DispatchPolicy`] resolves each branch
//! class to a [`StrategySpec`]; classes resolving to the same spec share
//! one [`Bind`] (tables, miss glue, counters), which is how the legacy
//! single-mechanism configurations stay bit-identical: they resolve to a
//! single bind whose allocation and emission order match the pre-strategy
//! code exactly.
//!
//! Misses route back to their bind through `SLOT_SITE`: single-bind
//! configurations use the legacy `SITE_SHARED` sentinel, multi-bind
//! configurations get one glue stub (and sentinel) per bind — see
//! [`crate::protocol`].

pub(crate) mod adaptive;
pub(crate) mod asib;
pub(crate) mod fastret;
pub(crate) mod ibtc;
pub(crate) mod predictive;
pub(crate) mod reentry;
pub(crate) mod retcache;
pub(crate) mod shadow;
pub(crate) mod sieve;

use std::sync::Arc;

use strata_machine::Memory;

use crate::config::{BranchClass, ClassPolicy, IbMechanism, RetMechanism, SdtConfig};
use crate::dispatch::CallPush;
use crate::emitter::{Cache, TableAlloc};
use crate::fragment::{Fragment, SieveBucket};
use crate::sdt::SdtState;
use crate::tables::TableRef;
use crate::SdtError;

/// A fully-resolved per-class strategy choice. Two classes with equal
/// specs share one [`Bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StrategySpec {
    Reentry,
    Ibtc {
        entries: u32,
        scope: crate::config::IbtcScope,
        placement: crate::config::IbtcPlacement,
        ways: u8,
    },
    Sieve {
        buckets: u32,
    },
    Adaptive {
        ibtc_entries: u32,
        sieve_buckets: u32,
        sieve_arity: u32,
    },
    Predictive {
        sieve_buckets: u32,
        probation: u32,
    },
}

impl StrategySpec {
    fn from_mech(mech: IbMechanism, ways: u8) -> StrategySpec {
        match mech {
            IbMechanism::Reentry => StrategySpec::Reentry,
            IbMechanism::Ibtc {
                entries,
                scope,
                placement,
            } => StrategySpec::Ibtc {
                entries,
                scope,
                placement,
                ways,
            },
            IbMechanism::Sieve { buckets } => StrategySpec::Sieve { buckets },
        }
    }

    /// Resolves the spec governing `class` under `cfg`. `Ret` resolves to
    /// the jump-class strategy: [`RetMechanism::AsIb`] routes returns
    /// through the generic indirect-branch path, which under a mixed
    /// policy means the jump binding.
    pub(crate) fn resolve(cfg: &SdtConfig, class: BranchClass) -> StrategySpec {
        let policy = match class {
            BranchClass::Jump | BranchClass::Ret => cfg.policy.jump,
            BranchClass::Call => cfg.policy.call,
        };
        match policy {
            ClassPolicy::Inherit => StrategySpec::from_mech(cfg.ib, cfg.ibtc_ways),
            ClassPolicy::Fixed { mech, ways } => StrategySpec::from_mech(mech, ways),
            ClassPolicy::Adaptive {
                ibtc_entries,
                sieve_buckets,
                sieve_arity,
            } => StrategySpec::Adaptive {
                ibtc_entries,
                sieve_buckets,
                sieve_arity,
            },
            ClassPolicy::Predictive {
                sieve_buckets,
                probation,
            } => StrategySpec::Predictive {
                sieve_buckets,
                probation,
            },
        }
    }
}

/// Per-binding mutable state: one binding per distinct [`StrategySpec`]
/// in the active policy, shared by every class that resolved to it.
#[derive(Debug)]
pub(crate) struct Bind {
    pub strategy: Arc<dyn IbStrategy>,
    /// The binding's fixed shared table (IBTC table, sieve bucket table,
    /// or the adaptive promotion sieve), if the strategy uses one.
    pub table: Option<TableRef>,
    /// Host-side sieve chain bookkeeping (sieve and adaptive bindings).
    pub sieve_buckets: Vec<SieveBucket>,
    /// Out-of-line probe routine address, if the strategy emits one.
    pub lookup_routine: Option<u32>,
    /// This binding's miss glue stub. `None` for single-bind
    /// configurations, which use the legacy `SITE_SHARED` glue.
    pub glue: Option<u32>,
    /// Misses serviced for this binding (shared-glue and site paths).
    pub misses: u64,
    /// Adaptive sites promoted inline → per-site IBTC (cumulative across
    /// cache flushes).
    pub promotions_to_ibtc: u64,
    /// Adaptive sites promoted IBTC → sieve (cumulative).
    pub promotions_to_sieve: u64,
}

impl Bind {
    fn new(strategy: Arc<dyn IbStrategy>) -> Bind {
        Bind {
            strategy,
            table: None,
            sieve_buckets: Vec::new(),
            lookup_routine: None,
            glue: None,
            misses: 0,
            promotions_to_ibtc: 0,
            promotions_to_sieve: 0,
        }
    }
}

/// The common interface every indirect-branch mechanism implements.
///
/// Strategy objects are immutable parameter carriers (`Arc`-shared so the
/// runtime can clone them out of [`SdtState`] before re-borrowing it);
/// all mutable state lives in the [`Bind`] and [`SdtState`].
pub(crate) trait IbStrategy: std::fmt::Debug + Send + Sync {
    /// Registry key ("reentry", "ibtc", "sieve", "adaptive").
    fn id(&self) -> &'static str;

    /// Stable parameterized label for reports.
    fn describe(&self) -> String;

    /// Allocates the binding's fixed guest tables at construction time.
    fn alloc_fixed(&self, _bind: &mut Bind, _alloc: &mut TableAlloc) -> Result<(), SdtError> {
        Ok(())
    }

    /// Geometry `(entries, ways)` of the IBTC tables this strategy hangs
    /// off individual sites ([`Site::Ib`](crate::fragment::Site::Ib) with
    /// a table base). `None` for strategies whose sites carry no private
    /// table. Used by cache-metadata export to reconstruct per-site
    /// [`TableRef`]s for external auditing.
    fn site_table_geometry(&self) -> Option<(u32, u8)> {
        None
    }

    /// Emits per-binding stub support (out-of-line probe routines) right
    /// after the shared stubs. `miss_glue` is where a routine's miss path
    /// must jump.
    fn emit_stub_support(
        &self,
        _cache: &mut Cache,
        _mem: &mut Memory,
        _bind: &mut Bind,
        _miss_glue: u32,
    ) -> Result<(), SdtError> {
        Ok(())
    }

    /// (Re)initializes the binding's tables — called once after stub
    /// emission and again after every cache flush.
    fn reset(&self, _bind: &mut Bind, _mem: &mut Memory, _miss_glue: u32) -> Result<(), SdtError> {
        Ok(())
    }

    /// Emits the probe portion of one dispatch site (the caller has
    /// already emitted the spill prologue, call glue, and flags push).
    fn emit_probe(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        class: BranchClass,
    ) -> Result<(), SdtError>;

    /// Services a miss that arrived through the binding's shared glue
    /// (no site id — shared IBTC and sieve paths).
    fn on_shared_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        target: u32,
        frag_entry: u32,
    ) -> Result<(), SdtError>;

    /// Services a miss at a site owned by this binding.
    fn on_site_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        site: u32,
        target: u32,
        frag: Fragment,
    ) -> Result<(), SdtError>;
}

/// Fixed guest structures a return mechanism allocates at construction:
/// the return-cache table and the shadow-stack region (base address and
/// size mask), either of which may be absent.
pub(crate) type RetTables = (Option<TableRef>, Option<(u32, u32)>);

/// The common interface every return mechanism implements.
pub(crate) trait RetStrategy: std::fmt::Debug + Send + Sync {
    /// Registry key ("asib", "retcache", "fastret", "shadow").
    fn id(&self) -> &'static str;

    /// Stable parameterized label for reports.
    fn describe(&self) -> String;

    /// Allocates fixed guest structures: `(return cache, shadow region)`.
    fn alloc_fixed(&self, _alloc: &mut TableAlloc) -> Result<RetTables, SdtError> {
        Ok((None, None))
    }

    /// (Re)initializes the mechanism's structures — called once after stub
    /// emission and again after every cache flush.
    fn reset(&self, _st: &mut SdtState, _mem: &mut Memory) -> Result<(), SdtError> {
        Ok(())
    }

    /// Whether cache flushing must be disabled (fast returns leave
    /// translated return addresses live on the application stack).
    fn forbids_flush(&self) -> bool {
        false
    }

    /// The return-address push glue an indirect call must emit before
    /// dispatching, for a call returning to application address `ret_app`.
    fn call_push(&self, ret_app: u32) -> CallPush;

    /// Emits the dispatch sequence for a translated `ret`.
    fn emit_ret(&self, st: &mut SdtState, mem: &mut Memory) -> Result<(), SdtError>;

    /// Translates a direct call returning to `ret_app`.
    fn emit_direct_call(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        target: u32,
        ret_app: u32,
    ) -> Result<(), SdtError>;
}

/// Instantiates the strategy object for a resolved spec.
pub(crate) fn instantiate(spec: StrategySpec) -> Arc<dyn IbStrategy> {
    match spec {
        StrategySpec::Reentry => Arc::new(reentry::Reentry),
        StrategySpec::Ibtc {
            entries,
            scope,
            placement,
            ways,
        } => Arc::new(ibtc::Ibtc {
            entries,
            scope,
            placement,
            ways,
        }),
        StrategySpec::Sieve { buckets } => Arc::new(sieve::Sieve { buckets }),
        StrategySpec::Adaptive {
            ibtc_entries,
            sieve_buckets,
            sieve_arity,
        } => Arc::new(adaptive::Adaptive {
            ibtc_entries,
            sieve_buckets,
            sieve_arity,
        }),
        StrategySpec::Predictive {
            sieve_buckets,
            probation,
        } => Arc::new(predictive::Predictive {
            sieve_buckets,
            probation,
        }),
    }
}

/// Instantiates the return strategy for a configuration.
pub(crate) fn instantiate_ret(ret: RetMechanism) -> Arc<dyn RetStrategy> {
    match ret {
        RetMechanism::AsIb => Arc::new(asib::AsIb),
        RetMechanism::ReturnCache { entries } => Arc::new(retcache::ReturnCache { entries }),
        RetMechanism::FastReturn => Arc::new(fastret::FastReturn),
        RetMechanism::ShadowStack { depth } => Arc::new(shadow::ShadowStack { depth }),
    }
}

/// Resolves the configuration's class policies into bindings: one
/// [`Bind`] per distinct spec, plus the `[jump, call]` class→bind map.
pub(crate) fn resolve_binds(cfg: &SdtConfig) -> (Vec<Bind>, [usize; 2]) {
    let jump = StrategySpec::resolve(cfg, BranchClass::Jump);
    let call = StrategySpec::resolve(cfg, BranchClass::Call);
    let mut binds = vec![Bind::new(instantiate(jump))];
    let call_idx = if call == jump {
        0
    } else {
        binds.push(Bind::new(instantiate(call)));
        1
    };
    (binds, [0, call_idx])
}

/// One entry of the mechanism registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismInfo {
    /// Mechanism id — the key used by the policy grammar.
    pub id: &'static str,
    /// Which branch classes the mechanism can serve.
    pub classes: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The strategy registry: every mechanism the dispatch layer knows,
/// keyed by mechanism id.
pub fn mechanism_registry() -> &'static [MechanismInfo] {
    &[
        MechanismInfo {
            id: "reentry",
            classes: "jump|call",
            summary: "full context switch into the translator on every dispatch",
        },
        MechanismInfo {
            id: "ibtc",
            classes: "jump|call",
            summary: "tagged software translation cache (shared/per-site, inline/outline, 1-2 way)",
        },
        MechanismInfo {
            id: "sieve",
            classes: "jump|call",
            summary: "hash into chains of compare-and-direct-jump stanzas",
        },
        MechanismInfo {
            id: "adaptive",
            classes: "jump|call",
            summary: "inline probe promoted to per-site IBTC then sieve as target arity grows",
        },
        MechanismInfo {
            id: "predictive",
            classes: "jump|call",
            summary: "observes exact target frequencies, then sieve with hottest-first chains",
        },
        MechanismInfo {
            id: "asib",
            classes: "ret",
            summary: "returns dispatch through the jump-class strategy",
        },
        MechanismInfo {
            id: "retcache",
            classes: "ret",
            summary: "tagless return cache verified in the target fragment prologue",
        },
        MechanismInfo {
            id: "fastret",
            classes: "ret",
            summary: "calls push translated return addresses; ret is native (transparency loss)",
        },
        MechanismInfo {
            id: "shadow",
            classes: "ret",
            summary: "private (app, translated) return-pair stack with exact verification",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IbtcPlacement, IbtcScope};

    #[test]
    fn inherit_resolves_to_single_bind() {
        let cfg = SdtConfig::ibtc_inline(256);
        let (binds, class_bind) = resolve_binds(&cfg);
        assert_eq!(binds.len(), 1);
        assert_eq!(class_bind, [0, 0]);
        assert_eq!(binds[0].strategy.id(), "ibtc");
    }

    #[test]
    fn mixed_policy_resolves_to_two_binds() {
        let mut cfg = SdtConfig::ibtc_inline(256);
        cfg.policy.call = ClassPolicy::Fixed {
            mech: IbMechanism::Sieve { buckets: 64 },
            ways: 1,
        };
        let (binds, class_bind) = resolve_binds(&cfg);
        assert_eq!(binds.len(), 2);
        assert_eq!(class_bind, [0, 1]);
        assert_eq!(binds[0].strategy.id(), "ibtc");
        assert_eq!(binds[1].strategy.id(), "sieve");
    }

    #[test]
    fn equal_fixed_policies_share_a_bind() {
        let mut cfg = SdtConfig::reentry();
        let mech = IbMechanism::Ibtc {
            entries: 512,
            scope: IbtcScope::Shared,
            placement: IbtcPlacement::Inline,
        };
        cfg.policy.jump = ClassPolicy::Fixed { mech, ways: 1 };
        cfg.policy.call = ClassPolicy::Fixed { mech, ways: 1 };
        let (binds, class_bind) = resolve_binds(&cfg);
        assert_eq!(binds.len(), 1);
        assert_eq!(class_bind, [0, 0]);
    }

    #[test]
    fn registry_ids_are_unique_and_known() {
        let ids: Vec<&str> = mechanism_registry().iter().map(|m| m.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        for id in [
            "reentry",
            "ibtc",
            "sieve",
            "adaptive",
            "predictive",
            "retcache",
            "fastret",
            "shadow",
        ] {
            assert!(ids.contains(&id), "{id} missing from registry");
        }
    }
}
