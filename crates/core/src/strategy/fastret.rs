//! Fast returns: calls push the *translated* return address, so a `ret`
//! is a single native instruction (and RAS-predictable). Fastest of the
//! return mechanisms, at a transparency cost — the application can observe
//! cache addresses on its stack, and the fragment cache can never be
//! flushed while those addresses are live.

use strata_isa::Instr;
use strata_machine::Memory;

use crate::dispatch::CallPush;
use crate::fragment::FragKind;
use crate::sdt::SdtState;
use crate::strategy::RetStrategy;
use crate::{Origin, SdtError};

#[derive(Debug)]
pub(crate) struct FastReturn;

impl RetStrategy for FastReturn {
    fn id(&self) -> &'static str {
        "fastret"
    }

    fn describe(&self) -> String {
        "fastret".into()
    }

    fn forbids_flush(&self) -> bool {
        // Translated return addresses live on the application stack;
        // flushing would dangle them.
        true
    }

    fn call_push(&self, _ret_app: u32) -> CallPush {
        CallPush::TranslatedPlaceholder
    }

    fn emit_ret(&self, st: &mut SdtState, mem: &mut Memory) -> Result<(), SdtError> {
        // The stack holds a translated address; a plain ret is both
        // correct and RAS-predictable.
        st.cache.emit(mem, Instr::Ret, Origin::App)?;
        Ok(())
    }

    fn emit_direct_call(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        target: u32,
        ret_app: u32,
    ) -> Result<(), SdtError> {
        let call_at = st.cache.emit(
            mem,
            Instr::Call {
                target: call_at_placeholder(),
            },
            Origin::App,
        )?;
        // The pushed return address is the cache word after the call:
        // make that the return-site fragment (or a jump to it).
        match st.map.get(ret_app, FragKind::Body) {
            Some(f) => {
                st.cache
                    .emit(mem, Instr::Jmp { target: f.entry }, Origin::Trampoline)?;
            }
            None => {
                st.translate_fragment(mem, ret_app, FragKind::Body)?;
            }
        }
        let tramp = st.emit_exit(mem, target)?;
        st.cache
            .patch(mem, call_at, Instr::Call { target: tramp }, None)?;
        Ok(())
    }
}

/// Placeholder target for a call whose real target is patched in once the
/// callee trampoline exists; any valid aligned address works.
fn call_at_placeholder() -> u32 {
    0
}
