//! The sieve: the target hash indexes a bucket table whose entries point
//! at chains of compare-and-branch stanzas in the code cache; a hit ends
//! in a *direct* jump (no BTB-hostile indirect transfer). Stanzas are
//! installed lazily by the runtime as targets are first seen.

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::BranchClass;
use crate::emitter::TableAlloc;
use crate::fragment::{Fragment, SieveBucket};
use crate::protocol::SLOT_JUMP_TARGET;
use crate::sdt::SdtState;
use crate::strategy::{Bind, IbStrategy};
use crate::tables::TableRef;
use crate::{Origin, SdtError};

#[derive(Debug)]
pub(crate) struct Sieve {
    pub buckets: u32,
}

impl IbStrategy for Sieve {
    fn id(&self) -> &'static str {
        "sieve"
    }

    fn describe(&self) -> String {
        format!("sieve({})", self.buckets)
    }

    fn alloc_fixed(&self, bind: &mut Bind, alloc: &mut TableAlloc) -> Result<(), SdtError> {
        let base = alloc.alloc(self.buckets * 4, 0x1_0000)?;
        bind.table = Some(TableRef {
            base,
            mask: self.buckets - 1,
            entry_bytes: 4,
        });
        Ok(())
    }

    fn reset(&self, bind: &mut Bind, mem: &mut Memory, miss_glue: u32) -> Result<(), SdtError> {
        let t = bind.table.expect("sieve table allocated");
        t.fill_all(mem, miss_glue)?;
        bind.sieve_buckets = vec![SieveBucket::default(); self.buckets as usize];
        Ok(())
    }

    fn emit_probe(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        _class: BranchClass,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        let table = st.binds[bind].table.expect("sieve table allocated");
        st.emit_hash(mem, table, 2)?;
        st.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R2,
                rs1: Reg::R2,
                off: 0,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Jmem {
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        Ok(())
    }

    fn on_shared_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        target: u32,
        frag_entry: u32,
    ) -> Result<(), SdtError> {
        st.sieve_install(mem, bind, target, frag_entry)
    }

    fn on_site_miss(
        &self,
        _st: &mut SdtState,
        _mem: &mut Memory,
        _bind: usize,
        _site: u32,
        _target: u32,
        _frag: Fragment,
    ) -> Result<(), SdtError> {
        unreachable!("sieve dispatches carry no site id")
    }
}
