//! Translator re-entry: the paper's baseline. Every indirect branch
//! performs a full context switch into the translator, which resolves the
//! target through its fragment map; nothing is ever cached guest-side, so
//! every site re-traps on every execution.

use strata_machine::Memory;

use crate::config::BranchClass;
use crate::fragment::{Fragment, Site};
use crate::sdt::SdtState;
use crate::strategy::IbStrategy;
use crate::SdtError;

#[derive(Debug)]
pub(crate) struct Reentry;

impl IbStrategy for Reentry {
    fn id(&self) -> &'static str {
        "reentry"
    }

    fn describe(&self) -> String {
        "reentry".into()
    }

    fn emit_probe(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        _class: BranchClass,
    ) -> Result<(), SdtError> {
        let site = st.new_site(Site::Ib {
            bind: bind as u8,
            table: None,
        });
        st.emit_site_miss_path(mem, site)
    }

    fn on_shared_miss(
        &self,
        _st: &mut SdtState,
        _mem: &mut Memory,
        _bind: usize,
        _target: u32,
        _frag_entry: u32,
    ) -> Result<(), SdtError> {
        unreachable!("re-entry sites always carry a site id")
    }

    fn on_site_miss(
        &self,
        _st: &mut SdtState,
        _mem: &mut Memory,
        _bind: usize,
        _site: u32,
        _target: u32,
        _frag: Fragment,
    ) -> Result<(), SdtError> {
        // A bare re-entry site has nothing to fill: the next execution
        // traps again.
        Ok(())
    }
}
