//! The tagless return cache: a `ret` hashes the popped application return
//! address and jumps *unconditionally* through the cache; verification
//! happens in the target fragment's [`FragKind::ReturnPoint`] prologue,
//! which compares the actual return address against its expected constant
//! and falls back to the translator on mismatch.
//!
//! [`FragKind::ReturnPoint`]: crate::fragment::FragKind::ReturnPoint

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::FlagsPolicy;
use crate::dispatch::{CallPush, TargetSource};
use crate::emitter::{Mark, TableAlloc};
use crate::sdt::SdtState;
use crate::strategy::{RetStrategy, RetTables};
use crate::tables::TableRef;
use crate::{Origin, SdtError};

#[derive(Debug)]
pub(crate) struct ReturnCache {
    pub entries: u32,
}

impl RetStrategy for ReturnCache {
    fn id(&self) -> &'static str {
        "retcache"
    }

    fn describe(&self) -> String {
        format!("rc({})", self.entries)
    }

    fn alloc_fixed(&self, alloc: &mut TableAlloc) -> Result<RetTables, SdtError> {
        let base = alloc.alloc(self.entries * 4, 0x1_0000)?;
        Ok((
            Some(TableRef {
                base,
                mask: self.entries - 1,
                entry_bytes: 4,
            }),
            None,
        ))
    }

    fn reset(&self, st: &mut SdtState, mem: &mut Memory) -> Result<(), SdtError> {
        let t = st.rc_tab.expect("return cache allocated");
        t.fill_all(mem, st.stubs.rc_miss)?;
        Ok(())
    }

    fn call_push(&self, ret_app: u32) -> CallPush {
        CallPush::AppAddr(ret_app)
    }

    fn emit_ret(&self, st: &mut SdtState, mem: &mut Memory) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        let entry = st.emit_dispatch_prologue(mem, TargetSource::PoppedReturn, d)?;
        st.cache.set_mark(entry, Mark::RetEntry);
        if st.cfg.flags == FlagsPolicy::Always {
            st.cache.emit(mem, Instr::Pushf, d)?;
        }
        let table = st.rc_tab.expect("return cache allocated");
        st.emit_hash(mem, table, 2)?;
        st.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R2,
                rs1: Reg::R2,
                off: 0,
            },
            d,
        )?;
        // r1–r3 are dead until the target's restore sequence reloads them,
        // so the transfer can go straight through r2 — no jump slot needed.
        st.cache.emit(mem, Instr::Jr { rs: Reg::R2 }, d)?;
        Ok(())
    }

    fn emit_direct_call(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        target: u32,
        ret_app: u32,
    ) -> Result<(), SdtError> {
        st.emit_transparent_direct_call(mem, target, ret_app)
    }
}
