//! The indirect branch translation cache: emitted code hashes the target
//! and probes a tagged software cache mapping application addresses to
//! fragment addresses. Variants: one shared table vs. a table per site,
//! lookup code inlined at each site vs. a shared out-of-line routine, and
//! direct-mapped vs. two-way set-associative tables.

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::{BranchClass, IbtcPlacement, IbtcScope};
use crate::dispatch::ibtc_table_ref;
use crate::emitter::{Cache, TableAlloc};
use crate::fragment::{Fragment, Site};
use crate::protocol::SLOT_JUMP_TARGET;
use crate::sdt::SdtState;
use crate::strategy::{Bind, IbStrategy};
use crate::tables::TableRef;
use crate::{Origin, SdtError};

#[derive(Debug)]
pub(crate) struct Ibtc {
    pub entries: u32,
    pub scope: IbtcScope,
    pub placement: IbtcPlacement,
    pub ways: u8,
}

impl Ibtc {
    fn fill(
        &self,
        table: TableRef,
        mem: &mut Memory,
        target: u32,
        entry: u32,
    ) -> Result<(), SdtError> {
        if self.ways == 2 {
            table.fill_tagged_2way(mem, target, entry)?;
        } else {
            table.fill_tagged(mem, target, entry)?;
        }
        Ok(())
    }
}

impl IbStrategy for Ibtc {
    fn id(&self) -> &'static str {
        "ibtc"
    }

    fn describe(&self) -> String {
        let scope = match self.scope {
            IbtcScope::Shared => "shared",
            IbtcScope::PerSite => "persite",
        };
        let placement = match self.placement {
            IbtcPlacement::Inline => "inline",
            IbtcPlacement::OutOfLine => "outline",
        };
        let ways = if self.ways == 2 { "x2" } else { "" };
        format!("ibtc({},{scope},{placement}){ways}", self.entries)
    }

    fn site_table_geometry(&self) -> Option<(u32, u8)> {
        Some((self.entries, self.ways))
    }

    fn alloc_fixed(&self, bind: &mut Bind, alloc: &mut TableAlloc) -> Result<(), SdtError> {
        if self.scope == IbtcScope::Shared {
            let base = alloc.alloc(self.entries * 8, 0x1_0000)?;
            bind.table = Some(ibtc_table_ref(base, self.entries, self.ways)?);
        }
        Ok(())
    }

    fn emit_stub_support(
        &self,
        cache: &mut Cache,
        mem: &mut Memory,
        bind: &mut Bind,
        miss_glue: u32,
    ) -> Result<(), SdtError> {
        if self.placement != IbtcPlacement::OutOfLine {
            return Ok(());
        }
        let table = bind
            .table
            .expect("out-of-line IBTC requires the shared table");
        let d = Origin::Dispatch;
        let at = cache.addr();
        cache.emit(
            mem,
            Instr::Srli {
                rd: Reg::R2,
                rs1: Reg::R1,
                shamt: 2,
            },
            d,
        )?;
        cache.emit(
            mem,
            Instr::Andi {
                rd: Reg::R2,
                rs1: Reg::R2,
                imm: table.mask as u16,
            },
            d,
        )?;
        cache.emit(
            mem,
            Instr::Slli {
                rd: Reg::R2,
                rs1: Reg::R2,
                shamt: 3,
            },
            d,
        )?;
        if table.base & 0xFFFF == 0 {
            cache.emit(
                mem,
                Instr::Lui {
                    rd: Reg::R3,
                    imm: (table.base >> 16) as u16,
                },
                d,
            )?;
        } else {
            cache.emit_li(mem, Reg::R3, table.base, d)?;
        }
        cache.emit(
            mem,
            Instr::Add {
                rd: Reg::R2,
                rs1: Reg::R2,
                rs2: Reg::R3,
            },
            d,
        )?;
        cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R2,
                off: 0,
            },
            d,
        )?;
        cache.emit(
            mem,
            Instr::Cmp {
                rs1: Reg::R3,
                rs2: Reg::R1,
            },
            d,
        )?;
        let bne = cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R2,
                off: 4,
            },
            d,
        )?;
        cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        cache.emit(mem, Instr::Ret, d)?;
        let miss = cache.addr();
        cache.emit(mem, Instr::Pop { rd: Reg::R2 }, d)?; // discard return addr
        cache.emit(mem, Instr::Jmp { target: miss_glue }, d)?;
        cache.patch_branch(mem, bne, Instr::Bne { off: 0 }, miss)?;
        bind.lookup_routine = Some(at);
        Ok(())
    }

    fn reset(&self, bind: &mut Bind, mem: &mut Memory, _miss_glue: u32) -> Result<(), SdtError> {
        if let Some(t) = bind.table {
            // Zeroing the whole table empties it (no code lives at 0).
            for off in (0..t.size_bytes()).step_by(4) {
                mem.write_u32(t.base + off, 0)?;
            }
        }
        Ok(())
    }

    fn emit_probe(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        _class: BranchClass,
    ) -> Result<(), SdtError> {
        match self.placement {
            IbtcPlacement::Inline => {
                let (table, site) = match self.scope {
                    IbtcScope::Shared => {
                        (st.binds[bind].table.expect("shared IBTC allocated"), None)
                    }
                    IbtcScope::PerSite => {
                        let base = st.alloc.alloc(self.entries * 8, 16)?;
                        // The region may be recycled from before a cache
                        // flush; stale tags must not survive.
                        for i in 0..self.entries * 2 {
                            mem.write_u32(base + i * 4, 0)?;
                        }
                        let table = ibtc_table_ref(base, self.entries, self.ways)?;
                        let site = st.new_site(Site::Ib {
                            bind: bind as u8,
                            table: Some(base),
                        });
                        (table, Some(site))
                    }
                };
                let glue = st.glue_for(bind);
                if self.ways == 2 {
                    st.emit_inline_ibtc_probe_2way(mem, table, site, glue)?;
                } else {
                    st.emit_inline_ibtc_probe(mem, table, site, glue)?;
                }
            }
            IbtcPlacement::OutOfLine => {
                let routine = st.binds[bind]
                    .lookup_routine
                    .expect("out-of-line routine emitted");
                st.cache
                    .emit(mem, Instr::Call { target: routine }, Origin::Dispatch)?;
                st.emit_hit_epilogue(mem)?;
            }
        }
        Ok(())
    }

    fn on_shared_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        target: u32,
        frag_entry: u32,
    ) -> Result<(), SdtError> {
        let table = st.binds[bind].table.expect("shared IBTC allocated");
        self.fill(table, mem, target, frag_entry)
    }

    fn on_site_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        _bind: usize,
        site: u32,
        target: u32,
        frag: Fragment,
    ) -> Result<(), SdtError> {
        let Site::Ib {
            table: Some(base), ..
        } = st.sites[site as usize]
        else {
            unreachable!("IBTC site misses carry a per-site table");
        };
        let t = ibtc_table_ref(base, self.entries, self.ways)?;
        self.fill(t, mem, target, frag.entry)
    }
}
