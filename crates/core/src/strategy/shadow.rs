//! The shadow return stack: calls push an `(app, translated)` pair onto a
//! private circular stack; a `ret` pops both, verifies the application
//! address exactly, and jumps to the recorded translated address. Any
//! mismatch (longjmp-style unwinding, stack smashing, overflow wrap) falls
//! back to the translator without filling a structure.

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::FlagsPolicy;
use crate::dispatch::{CallPush, TargetSource};
use crate::emitter::{Mark, TableAlloc};
use crate::protocol::{SLOT_JUMP_TARGET, SLOT_R1, SLOT_R2, SLOT_R3, SLOT_SHADOW_SP};
use crate::sdt::SdtState;
use crate::strategy::{RetStrategy, RetTables};
use crate::{Origin, SdtError};

#[derive(Debug)]
pub(crate) struct ShadowStack {
    pub depth: u32,
}

impl RetStrategy for ShadowStack {
    fn id(&self) -> &'static str {
        "shadow"
    }

    fn describe(&self) -> String {
        format!("shadow({})", self.depth)
    }

    fn alloc_fixed(&self, alloc: &mut TableAlloc) -> Result<RetTables, SdtError> {
        let base = alloc.alloc(self.depth * 8, 8)?;
        Ok((None, Some((base, self.depth * 8 - 1))))
    }

    fn reset(&self, st: &mut SdtState, mem: &mut Memory) -> Result<(), SdtError> {
        // Shadow entries point at discarded code; empty the stack.
        let (base, mask) = st.shadow.expect("shadow stack allocated");
        for off in (0..=mask).step_by(4) {
            mem.write_u32(base + off, 0)?;
        }
        mem.write_u32(SLOT_SHADOW_SP, 0)?;
        Ok(())
    }

    fn call_push(&self, ret_app: u32) -> CallPush {
        CallPush::AppAddrWithShadow(ret_app)
    }

    fn emit_ret(&self, st: &mut SdtState, mem: &mut Memory) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        let (base, mask) = st.shadow.expect("shadow stack allocated");
        let entry = st.emit_dispatch_prologue(mem, TargetSource::PoppedReturn, d)?;
        st.cache.set_mark(entry, Mark::RetEntry);
        if st.cfg.flags == FlagsPolicy::Always {
            st.cache.emit(mem, Instr::Pushf, d)?;
        }
        st.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R2,
                addr: SLOT_SHADOW_SP,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Addi {
                rd: Reg::R2,
                rs1: Reg::R2,
                imm: -8,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Andi {
                rd: Reg::R2,
                rs1: Reg::R2,
                imm: mask as u16,
            },
            d,
        )?;
        st.cache.emit_li(mem, Reg::R3, base, d)?;
        st.cache.emit(
            mem,
            Instr::Add {
                rd: Reg::R3,
                rs1: Reg::R3,
                rs2: Reg::R2,
            },
            d,
        )?;
        // Commit the pop before the verify: on fallback the translator
        // resolves the target anyway and stale shadow entries only cost
        // another fallback.
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_SHADOW_SP,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R2,
                rs1: Reg::R3,
                off: 0,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Cmp {
                rs1: Reg::R2,
                rs2: Reg::R1,
            },
            d,
        )?;
        let bne = st.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        st.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R3,
                off: 4,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        st.emit_hit_epilogue(mem)?;
        let miss = st.cache.addr();
        st.cache
            .patch_branch(mem, bne, Instr::Bne { off: 0 }, miss)?;
        st.cache.emit(
            mem,
            Instr::Jmp {
                target: st.stubs.nofill_miss_glue,
            },
            Origin::ContextSwitch,
        )?;
        Ok(())
    }

    fn emit_direct_call(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        target: u32,
        ret_app: u32,
    ) -> Result<(), SdtError> {
        let g = Origin::CallGlue;
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R1,
                addr: SLOT_R1,
            },
            g,
        )?;
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_R2,
            },
            g,
        )?;
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_R3,
            },
            g,
        )?;
        st.cache.emit_li(mem, Reg::R1, ret_app, g)?;
        st.cache.emit(mem, Instr::Push { rs: Reg::R1 }, g)?;
        let patch = emit_shadow_push(st, mem, ret_app)?;
        st.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R3,
                addr: SLOT_R3,
            },
            g,
        )?;
        st.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R2,
                addr: SLOT_R2,
            },
            g,
        )?;
        st.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R1,
                addr: SLOT_R1,
            },
            g,
        )?;
        st.emit_exit(mem, target)?;
        let ret_frag = st.ensure_fragment(mem, ret_app, crate::fragment::FragKind::Body)?;
        st.cache.patch_li(mem, patch, Reg::R2, ret_frag.entry)?;
        Ok(())
    }
}

/// Emits the shadow-stack push: stores `(app_ret, translated_ret)` at the
/// current shadow offset and advances it circularly. Uses `r2`/`r3`
/// (already spilled by the caller). Returns the `li` address of the
/// translated-return placeholder for patching.
pub(crate) fn emit_shadow_push(
    st: &mut SdtState,
    mem: &mut Memory,
    app_ret: u32,
) -> Result<u32, SdtError> {
    let g = Origin::CallGlue;
    let (base, mask) = st.shadow.expect("shadow stack allocated");
    st.cache.emit(
        mem,
        Instr::Lwa {
            rd: Reg::R2,
            addr: SLOT_SHADOW_SP,
        },
        g,
    )?;
    st.cache.emit_li(mem, Reg::R3, base, g)?;
    st.cache.emit(
        mem,
        Instr::Add {
            rd: Reg::R3,
            rs1: Reg::R3,
            rs2: Reg::R2,
        },
        g,
    )?;
    st.cache.emit(
        mem,
        Instr::Addi {
            rd: Reg::R2,
            rs1: Reg::R2,
            imm: 8,
        },
        g,
    )?;
    st.cache.emit(
        mem,
        Instr::Andi {
            rd: Reg::R2,
            rs1: Reg::R2,
            imm: mask as u16,
        },
        g,
    )?;
    st.cache.emit(
        mem,
        Instr::Swa {
            rs: Reg::R2,
            addr: SLOT_SHADOW_SP,
        },
        g,
    )?;
    st.cache.emit_li(mem, Reg::R2, app_ret, g)?;
    st.cache.emit(
        mem,
        Instr::Sw {
            rs2: Reg::R2,
            rs1: Reg::R3,
            off: 0,
        },
        g,
    )?;
    let patch = st.cache.emit_li(mem, Reg::R2, 0, g)?;
    st.cache.emit(
        mem,
        Instr::Sw {
            rs2: Reg::R2,
            rs1: Reg::R3,
            off: 4,
        },
        g,
    )?;
    Ok(patch)
}
