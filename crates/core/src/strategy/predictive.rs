//! Predictor-aware sieve dispatch: order stanza chains by observed
//! target frequency instead of discovery order.
//!
//! A plain sieve installs compare-and-direct-jump stanzas in the order
//! targets first miss, so a site whose hottest target shows up late
//! pays extra compares on every subsequent dispatch. This strategy
//! spends a short *observation* stage to fix that:
//!
//! * Stage 0 (*observe*): the site's probe is just a patchable entry
//!   `jmp` into the site miss path — every dispatch traps to the
//!   translator, which tallies exact per-target frequencies (the same
//!   observed-frequency statistics the adaptive policy's promotion
//!   thresholds key off, but kept as full counts rather than arities).
//! * Stage 1 (*sieve*): once `probation` dispatches have been observed,
//!   the site is re-emitted as a hash probe into the binding's shared
//!   sieve bucket table, and stanzas for every observed target are
//!   installed **in descending frequency order** — the sieve appends at
//!   each chain's tail, so install order *is* probe order, and the
//!   hottest target sits first in its chain. Targets that first appear
//!   after promotion extend chains through the normal miss paths.
//!
//! The observation stage is bounded, so its trap cost amortizes to
//! nothing on long runs; the payoff is shorter average chain walks on
//! polymorphic sites, which is exactly the term a hardware target
//! predictor does *not* hide (a BTB caches the final indirect jump of
//! the dispatch sequence, not the compare ladder in front of it).
//! Sites reuse the adaptive machinery's [`AdaptiveSite`] records and
//! [`Site::Adaptive`] ids; a cache flush discards every site, so they
//! re-observe afterwards.

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::BranchClass;
use crate::emitter::TableAlloc;
use crate::fragment::{Fragment, SieveBucket, Site};
use crate::protocol::SLOT_JUMP_TARGET;
use crate::sdt::SdtState;
use crate::strategy::adaptive::{AdaptiveSite, AdaptiveStage};
use crate::strategy::{Bind, IbStrategy};
use crate::tables::TableRef;
use crate::{Origin, SdtError};

/// Cap on distinct targets tracked (and pre-installed) per site; a
/// megamorphic site's tail targets install through the ordinary sieve
/// miss path after promotion instead.
const MAX_OBSERVED: usize = 64;

#[derive(Debug)]
pub(crate) struct Predictive {
    pub sieve_buckets: u32,
    pub probation: u32,
}

impl IbStrategy for Predictive {
    fn id(&self) -> &'static str {
        "predictive"
    }

    fn describe(&self) -> String {
        format!("predictive({},{})", self.sieve_buckets, self.probation)
    }

    fn alloc_fixed(&self, bind: &mut Bind, alloc: &mut TableAlloc) -> Result<(), SdtError> {
        let base = alloc.alloc(self.sieve_buckets * 4, 0x1_0000)?;
        bind.table = Some(TableRef {
            base,
            mask: self.sieve_buckets - 1,
            entry_bytes: 4,
        });
        Ok(())
    }

    fn reset(&self, bind: &mut Bind, mem: &mut Memory, miss_glue: u32) -> Result<(), SdtError> {
        let t = bind.table.expect("predictive sieve allocated");
        t.fill_all(mem, miss_glue)?;
        bind.sieve_buckets = vec![SieveBucket::default(); self.sieve_buckets as usize];
        Ok(())
    }

    fn emit_probe(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        _class: BranchClass,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        // Patchable entry jump falling straight through to the site miss
        // path: during observation every dispatch traps, which is what
        // makes the tallied frequencies exact.
        let entry_jmp = st.cache.addr();
        st.cache.emit(
            mem,
            Instr::Jmp {
                target: entry_jmp + 4,
            },
            d,
        )?;
        let idx = st.adaptive.len() as u32;
        let site = st.new_site(Site::Adaptive {
            bind: bind as u8,
            idx,
        });
        st.emit_site_miss_path(mem, site)?;
        st.adaptive.push(AdaptiveSite {
            entry_jmp,
            stage: AdaptiveStage::Observe,
            targets: Vec::new(),
            counts: Vec::new(),
            frags: Vec::new(),
        });
        Ok(())
    }

    fn on_shared_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        target: u32,
        frag_entry: u32,
    ) -> Result<(), SdtError> {
        // A promoted probe's hash led to a chain without this target:
        // extend the chain, exactly like a plain sieve.
        st.sieve_install(mem, bind, target, frag_entry)
    }

    fn on_site_miss(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        site: u32,
        target: u32,
        frag: Fragment,
    ) -> Result<(), SdtError> {
        let Site::Adaptive { idx, .. } = st.sites[site as usize] else {
            unreachable!("predictive site misses carry an adaptive site id");
        };
        let idx = idx as usize;
        let stage = st.adaptive[idx].stage;
        match stage {
            AdaptiveStage::Observe => {
                let a = &mut st.adaptive[idx];
                if let Some(i) = a.targets.iter().position(|&t| t == target) {
                    a.counts[i] += 1;
                } else if a.targets.len() < MAX_OBSERVED {
                    a.targets.push(target);
                    a.counts.push(1);
                    a.frags.push(frag.entry);
                }
                let observed: u64 = a.counts.iter().sum();
                if observed >= self.probation as u64 {
                    self.promote(st, mem, bind, idx)?;
                }
            }
            AdaptiveStage::Sieve => {
                st.sieve_install(mem, bind, target, frag.entry)?;
            }
            _ => unreachable!("predictive sites only observe or sieve"),
        }
        Ok(())
    }
}

impl Predictive {
    /// Re-emits the site as a sieve hash probe and pre-installs every
    /// observed target's stanza in descending (count, first-seen) order.
    /// On [`SdtError::CacheFull`] the site is left unpromoted (the
    /// caller flushes anyway, which discards the whole site).
    fn promote(
        &self,
        st: &mut SdtState,
        mem: &mut Memory,
        bind: usize,
        idx: usize,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        let table = st.binds[bind].table.expect("predictive sieve allocated");
        let stub = st.cache.addr();
        st.emit_hash(mem, table, 2)?;
        st.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R2,
                rs1: Reg::R2,
                off: 0,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        st.cache.emit(
            mem,
            Instr::Jmem {
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        let entry_jmp = st.adaptive[idx].entry_jmp;
        st.cache
            .patch(mem, entry_jmp, Instr::Jmp { target: stub }, None)?;
        // The sieve appends at each chain's tail, so installing in
        // descending-frequency order puts the hottest target first in
        // its chain. Ties break on first-seen order for determinism.
        let a = &st.adaptive[idx];
        let mut order: Vec<usize> = (0..a.targets.len()).collect();
        let counts = a.counts.clone();
        order.sort_by(|&x, &y| counts[y].cmp(&counts[x]).then(x.cmp(&y)));
        let pairs: Vec<(u32, u32)> = order.iter().map(|&i| (a.targets[i], a.frags[i])).collect();
        for (target, frag_entry) in pairs {
            st.sieve_install(mem, bind, target, frag_entry)?;
        }
        st.adaptive[idx].stage = AdaptiveStage::Sieve;
        st.binds[bind].promotions_to_sieve += 1;
        Ok(())
    }
}
