//! Trace-driven dispatch replay: feeds a recorded native control-flow
//! stream through the real translator and dispatch structures without
//! re-executing guest code.
//!
//! [`DispatchReplay`] owns a full [`Sdt`] — fragment cache, strategy
//! bindings, guest lookup tables — and walks a retire stream's *control
//! events*. Every hit/miss decision is made against the same guest-memory
//! structures exact execution would probe (IBTC tags, return-cache slots,
//! patched exit trampolines), and every miss is serviced by the *real*
//! runtime trap handlers, so fragments, fills, links, promotions, and
//! cache flushes are exact by construction. Only the structures exact
//! mode keeps in emitted code rather than in tables are mirrored
//! host-side: sieve chain membership, the shadow return stack, and the
//! elided-jump bookkeeping captured in
//! [`FragMeta`](crate::fragment::FragMeta).
//!
//! On a gap-free walk of a full trace the resulting mechanism counters
//! equal exact mode's [`RunReport::mech`](crate::RunReport); sampled
//! (SimPoint) execution instead [`seek`](DispatchReplay::seek)s between
//! intervals and pays only for the events it measures.

use std::collections::HashSet;

use strata_arch::{ArchModel, ArchProfile, PredictorSpec, Ras, TargetPredictor};
use strata_isa::{ControlKind, Instr};
use strata_machine::observers::CompactRetire;
use strata_machine::{Memory, Program};

use crate::config::{BranchClass, ClassPolicy, IbMechanism, IbtcPlacement, RetMechanism};
use crate::dispatch::ibtc_table_ref;
use crate::fragment::{FragKind, Site, Terminal};
use crate::protocol::{bind_sentinel, SITE_NOFILL, SITE_SHARED, SLOT_SITE, SLOT_TARGET};
use crate::report::{ClassReport, MechanismStats};
use crate::strategy::adaptive::AdaptiveStage;
use crate::strategy::Bind;
use crate::tables::TableRef;
use crate::{Sdt, SdtConfig, SdtError};

/// Dispatch-model replay over a recorded retire stream.
#[derive(Debug)]
pub struct DispatchReplay {
    sdt: Sdt,
    model: ArchModel,
    translator_cycles: u64,
    jump_dispatches: u64,
    call_dispatches: u64,
    ret_dispatches: u64,
    /// The fragment the replayed control flow is currently inside.
    cur: Option<(u32, FragKind)>,
    /// Sieve chain membership per `(binding, application target)` — the
    /// host-side mirror of the installed stanza chains.
    sim_sieve: HashSet<(usize, u32)>,
    /// Shadow return stack mirror: application return addresses per slot
    /// (empty unless the shadow-stack mechanism is configured).
    shadow_slots: Vec<u32>,
    shadow_sp: usize,
    /// Hardware indirect-target predictor mirror — how sampled mode
    /// models predictor stalls per transfer class. Keyed by the
    /// mechanism's dispatch-site shape (see [`shared_dispatch_key`]):
    /// per-site probe code retires its final indirect transfer at a
    /// distinct host pc per site (key = the application branch pc),
    /// while a shared out-of-line routine — and the translator re-entry
    /// path — funnels every site through one (key = one synthetic pc
    /// per class). Predictor state survives cache flushes: it models the
    /// CPU, not the translator.
    target_pred: Box<dyn TargetPredictor>,
    /// Whether the jump class dispatches through one shared host-level
    /// indirect transfer (see `target_pred`).
    jump_key_shared: bool,
    /// Same, for the indirect-call class.
    call_key_shared: bool,
    /// Return prediction mode (see [`ret_predictor_mode`]).
    ret_key_shared: Option<bool>,
    /// Hardware return-address stack mirror (pushes on every call
    /// terminal, pops on returns), matching the exact model's RAS role.
    ras: Ras,
    jump_mispredicts: u64,
    call_mispredicts: u64,
    ret_mispredicts: u64,
}

/// Per-class indirect mispredictions accumulated by the replay's hardware
/// predictor mirror.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Indirect-jump dispatches the target predictor missed.
    pub jump_mispredicts: u64,
    /// Indirect-call dispatches the target predictor missed.
    pub call_mispredicts: u64,
    /// Returns the return-address stack missed.
    pub ret_mispredicts: u64,
}

impl PredictorStats {
    /// All classes combined.
    pub fn total(&self) -> u64 {
        self.jump_mispredicts + self.call_mispredicts + self.ret_mispredicts
    }
}

/// Synthetic host pcs for shared dispatch routines, one per class —
/// outside the application address range, so they never collide with a
/// per-site key.
const SHARED_JUMP_KEY: u32 = 0xFFFF_FF00;
const SHARED_CALL_KEY: u32 = 0xFFFF_FF04;
const SHARED_RET_KEY: u32 = 0xFFFF_FF08;

/// Whether `class` dispatches through one shared host-level indirect
/// transfer under `cfg` — the translator re-entry context switch or an
/// out-of-line IBTC routine. Inline probes (shared *table* or not),
/// sieve hash stanzas, and adaptive/predictive sites all emit per-site
/// probe code whose final indirect transfer has its own host pc.
fn shared_dispatch_key(cfg: &SdtConfig, class: BranchClass) -> bool {
    let policy = match class {
        BranchClass::Jump => cfg.policy.jump,
        BranchClass::Call => cfg.policy.call,
        BranchClass::Ret => return false,
    };
    let mech = match policy {
        ClassPolicy::Inherit => cfg.ib,
        ClassPolicy::Fixed { mech, .. } => mech,
        ClassPolicy::Adaptive { .. } | ClassPolicy::Predictive { .. } => return false,
    };
    match mech {
        IbMechanism::Reentry => true,
        IbMechanism::Ibtc { placement, .. } => placement == IbtcPlacement::OutOfLine,
        IbMechanism::Sieve { .. } => false,
    }
}

/// How the hardware mirror predicts returns under `cfg`: `None` means
/// the return-address stack (fast returns jump straight to the pushed
/// translated address — the host-level transfer is call/return paired),
/// `Some(shared)` means the target predictor (the emitted dispatch is an
/// indirect *jump*, invisible to a hardware RAS), with the same
/// shared-vs-per-site key split as `shared_dispatch_key`.
fn ret_predictor_mode(cfg: &SdtConfig) -> Option<bool> {
    match cfg.ret {
        RetMechanism::FastReturn => None,
        RetMechanism::ReturnCache { .. } | RetMechanism::ShadowStack { .. } => Some(false),
        RetMechanism::AsIb => Some(match cfg.ib {
            IbMechanism::Reentry => true,
            IbMechanism::Ibtc { placement, .. } => placement == IbtcPlacement::OutOfLine,
            IbMechanism::Sieve { .. } => false,
        }),
    }
}

impl DispatchReplay {
    /// Builds a replay instance: a fresh [`Sdt`] for `config` and
    /// `program`, costing translator work under `profile`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Sdt::new`].
    pub fn new(
        config: SdtConfig,
        program: &Program,
        profile: ArchProfile,
    ) -> Result<DispatchReplay, SdtError> {
        DispatchReplay::with_predictor(config, program, profile, strata_arch::predictor())
    }

    /// Like [`DispatchReplay::new`], with an explicit predictor spec for
    /// the hardware mirror instead of the process-wide selection (fig22
    /// sweeps predictors per cell).
    pub fn with_predictor(
        config: SdtConfig,
        program: &Program,
        profile: ArchProfile,
        spec: PredictorSpec,
    ) -> Result<DispatchReplay, SdtError> {
        let sdt = Sdt::new(config, program)?;
        let depth = match sdt.config().ret {
            RetMechanism::ShadowStack { depth } => depth as usize,
            _ => 0,
        };
        let target_pred = spec.build(&profile);
        let ras = Ras::new(profile.ras_depth);
        let jump_key_shared = shared_dispatch_key(sdt.config(), BranchClass::Jump);
        let call_key_shared = shared_dispatch_key(sdt.config(), BranchClass::Call);
        let ret_key_shared = ret_predictor_mode(sdt.config());
        Ok(DispatchReplay {
            sdt,
            model: ArchModel::with_predictor_spec(profile, spec),
            translator_cycles: 0,
            jump_dispatches: 0,
            call_dispatches: 0,
            ret_dispatches: 0,
            cur: None,
            sim_sieve: HashSet::new(),
            shadow_slots: vec![0; depth],
            shadow_sp: 0,
            target_pred,
            jump_key_shared,
            call_key_shared,
            ret_key_shared,
            ras,
            jump_mispredicts: 0,
            call_mispredicts: 0,
            ret_mispredicts: 0,
        })
    }

    /// The configuration under replay.
    pub fn config(&self) -> &SdtConfig {
        self.sdt.config()
    }

    /// (Re)positions the replay at application address `app_pc`,
    /// translating its fragment on demand — the replay analogue of the
    /// translator's initial entry, also used to jump between simulation
    /// intervals.
    ///
    /// # Errors
    ///
    /// Propagates translation failures ([`SdtError::CacheFull`] when the
    /// mechanism forbids flushing, reserved traps, machine faults).
    pub fn seek(&mut self, app_pc: u32) -> Result<(), SdtError> {
        let before = self.sdt.state.stats.translated_app_instrs;
        let flushes_before = self.sdt.state.stats.cache_flushes;
        self.sdt.state.ensure_fragment_flushing(
            self.sdt.machine.mem_mut(),
            app_pc,
            FragKind::Body,
        )?;
        self.translator_cycles += self
            .model
            .charge_translator(self.sdt.state.stats.translated_app_instrs - before, 1);
        if self.sdt.state.stats.cache_flushes > flushes_before {
            self.clear_sim();
        }
        self.cur = Some((app_pc, FragKind::Body));
        Ok(())
    }

    /// Feeds one recorded retire event. Non-control events return
    /// immediately; control events advance the replay through the
    /// fragment graph, probing and filling dispatch structures exactly as
    /// translated execution would.
    ///
    /// # Errors
    ///
    /// [`SdtError::ReplayDesync`] when the event stream does not match
    /// the fragment graph (wrong trace, or no [`seek`](Self::seek) yet);
    /// translation failures propagate as from [`Sdt::run`].
    pub fn step(&mut self, ev: &CompactRetire) -> Result<(), SdtError> {
        if ev.kind == ControlKind::None {
            return Ok(());
        }
        let (cur_app, cur_kind) = self.cur.ok_or(SdtError::ReplayDesync {
            pc: ev.pc,
            detail: String::new(),
        })?;
        let meta = self
            .sdt
            .state
            .frag_meta
            .get(&(cur_app, cur_kind))
            .cloned()
            .ok_or_else(|| SdtError::ReplayDesync {
                pc: ev.pc,
                detail: format!("no metadata for fragment {cur_app:#x} ({cur_kind:?})"),
            })?;
        if ev.pc != meta.term_pc {
            if meta.elided_jmp_pcs.contains(&ev.pc) {
                // An elided direct jump: translation inlined its target,
                // so execution just continues inside this fragment.
                return Ok(());
            }
            return Err(SdtError::ReplayDesync {
                pc: ev.pc,
                detail: format!(
                    "expected terminal {:#x} of fragment {cur_app:#x}",
                    meta.term_pc
                ),
            });
        }
        match meta.terminal {
            Terminal::Cond {
                next_site,
                taken_site,
            } => {
                let site = if ev.taken { taken_site } else { next_site };
                self.traverse_exit(site, ev.target)?;
                self.cur = Some((ev.target, FragKind::Body));
            }
            Terminal::DirectJump { site } => {
                self.traverse_exit(site, ev.target)?;
                self.cur = Some((ev.target, FragKind::Body));
            }
            Terminal::DirectCall { site, ret_app } => {
                self.shadow_push(ret_app);
                self.ras.push(ret_app);
                self.traverse_exit(site, ev.target)?;
                self.cur = Some((ev.target, FragKind::Body));
            }
            Terminal::IndirectJump { site } => {
                self.jump_dispatches += 1;
                let key = if self.jump_key_shared {
                    SHARED_JUMP_KEY
                } else {
                    ev.pc
                };
                if !self.target_pred.predict_and_update(key, ev.target) {
                    self.jump_mispredicts += 1;
                }
                let bind = self.sdt.state.bind_for(BranchClass::Jump);
                self.dispatch_ib(bind, site, ev.target)?;
                self.cur = Some((ev.target, FragKind::Body));
            }
            Terminal::IndirectCall { site, ret_app } => {
                self.call_dispatches += 1;
                self.shadow_push(ret_app);
                self.ras.push(ret_app);
                let key = if self.call_key_shared {
                    SHARED_CALL_KEY
                } else {
                    ev.pc
                };
                if !self.target_pred.predict_and_update(key, ev.target) {
                    self.call_mispredicts += 1;
                }
                let bind = self.sdt.state.bind_for(BranchClass::Call);
                self.dispatch_ib(bind, site, ev.target)?;
                self.cur = Some((ev.target, FragKind::Body));
            }
            Terminal::Ret { site } => {
                let hit = match self.ret_key_shared {
                    None => self.ras.pop_and_check(ev.target),
                    Some(shared) => {
                        let key = if shared { SHARED_RET_KEY } else { ev.pc };
                        self.target_pred.predict_and_update(key, ev.target)
                    }
                };
                if !hit {
                    self.ret_mispredicts += 1;
                }
                self.replay_ret(site, ev.target)?;
            }
            Terminal::Halt => {
                return Err(SdtError::ReplayDesync {
                    pc: ev.pc,
                    detail: "control event at a halt terminal".into(),
                });
            }
        }
        Ok(())
    }

    /// One return dispatch, per the configured mechanism.
    fn replay_ret(&mut self, site: Option<u32>, target: u32) -> Result<(), SdtError> {
        match self.sdt.state.cfg.ret {
            RetMechanism::FastReturn => {
                // Calls pushed the translated return address; the ret is a
                // single native instruction with no dispatch at all. On a
                // gap-free walk the return point always exists (the call's
                // translation created it), but after a seek the pushing
                // call may lie outside the replayed window — translate the
                // return point on demand, like the seek itself.
                self.ensure_body(target)?;
                self.cur = Some((target, FragKind::Body));
            }
            RetMechanism::ReturnCache { .. } => {
                self.ret_dispatches += 1;
                let rc = self.sdt.state.rc_tab.expect("return cache allocated");
                let slot = self.sdt.machine.mem().read_u32(rc.entry_addr(target))?;
                // The table is tagless: a hit requires the slot to hold
                // *this* return point's prologue (a colliding entry fails
                // the prologue's verification and re-traps).
                let hit = self
                    .sdt
                    .state
                    .map
                    .get(target, FragKind::ReturnPoint)
                    .is_some_and(|f| f.entry == slot);
                if !hit {
                    self.service_rc_miss(target)?;
                }
                self.cur = Some((target, FragKind::ReturnPoint));
            }
            RetMechanism::ShadowStack { .. } => {
                self.ret_dispatches += 1;
                let popped = self.shadow_pop();
                if popped != target {
                    // The emitted fallback jumps through the no-fill miss
                    // glue: translate/find the target, fill nothing.
                    self.service_miss(target, SITE_NOFILL)?;
                }
                self.cur = Some((target, FragKind::Body));
            }
            RetMechanism::AsIb => {
                self.ret_dispatches += 1;
                let bind = self.sdt.state.bind_for(BranchClass::Ret);
                self.dispatch_ib(bind, site, target)?;
                self.cur = Some((target, FragKind::Body));
            }
        }
        Ok(())
    }

    /// Translates a body fragment at `app_pc` if none exists yet — a
    /// no-op on gap-free walks, so exact-equivalence is unaffected; only
    /// seeked replays whose fragment-creating event fell in a skipped
    /// interval pay for it (as warmup translator work).
    fn ensure_body(&mut self, app_pc: u32) -> Result<(), SdtError> {
        if self
            .sdt
            .state
            .frag_meta
            .contains_key(&(app_pc, FragKind::Body))
        {
            return Ok(());
        }
        let before = self.sdt.state.stats.translated_app_instrs;
        let flushes_before = self.sdt.state.stats.cache_flushes;
        self.sdt.state.ensure_fragment_flushing(
            self.sdt.machine.mem_mut(),
            app_pc,
            FragKind::Body,
        )?;
        self.translator_cycles += self
            .model
            .charge_translator(self.sdt.state.stats.translated_app_instrs - before, 1);
        if self.sdt.state.stats.cache_flushes > flushes_before {
            self.clear_sim();
        }
        Ok(())
    }

    /// Walks a direct-branch exit trampoline: a linked head (patched into
    /// a direct jump) is a hit; an unlinked head traps into the translator
    /// exactly as the emitted context save would.
    fn traverse_exit(&mut self, site: u32, target: u32) -> Result<(), SdtError> {
        let Some(&Site::Exit { patch_addr, .. }) = self.sdt.state.sites.get(site as usize) else {
            return Err(SdtError::ReplayDesync {
                pc: target,
                detail: format!("exit site {site} unknown"),
            });
        };
        let head = self.sdt.machine.mem().read_u32(patch_addr)?;
        if matches!(strata_isa::decode(head), Ok(Instr::Jmp { .. })) {
            return Ok(());
        }
        self.service_miss(target, site)?;
        Ok(())
    }

    /// One indirect dispatch through strategy binding `bind`: probe the
    /// structures the emitted sequence reads; on a miss, trap into the
    /// real handler and mirror any sieve install.
    fn dispatch_ib(&mut self, bind: usize, site: Option<u32>, target: u32) -> Result<(), SdtError> {
        if self.probe_ib(bind, site, target)? {
            return Ok(());
        }
        // Route the miss as the emitted miss path would: per-site paths
        // store their site id; shared structures — and sieve-stage
        // adaptive probes, whose chains end in the binding's glue — store
        // the binding sentinel.
        let shared_word = if self.sdt.state.binds[bind].glue.is_some() {
            bind_sentinel(bind)
        } else {
            SITE_SHARED
        };
        let site_word = match site {
            Some(s) => match self.sdt.state.sites[s as usize] {
                Site::Adaptive { idx, .. }
                    if matches!(
                        self.sdt.state.adaptive[idx as usize].stage,
                        AdaptiveStage::Sieve
                    ) =>
                {
                    shared_word
                }
                _ => s,
            },
            None => shared_word,
        };
        // A predictive site still observing before this service: if the
        // service promotes it, the stanzas installed are exactly its
        // recorded targets — not necessarily this one (the tracked set
        // is capped).
        let was_observe = match site {
            Some(s) => match self.sdt.state.sites[s as usize] {
                Site::Adaptive { idx, .. } => matches!(
                    self.sdt.state.adaptive[idx as usize].stage,
                    AdaptiveStage::Observe
                ),
                _ => false,
            },
            None => false,
        };
        let flushed = self.service_miss(target, site_word)?;
        if flushed {
            return Ok(());
        }
        // Mirror stanza installs: a miss serviced by (or promoting into)
        // a sieve appended a chain entry for this target.
        let now_sieve = match site {
            None => matches!(
                self.sdt.state.binds[bind].strategy.id(),
                "sieve" | "predictive"
            ),
            Some(s) => match self.sdt.state.sites[s as usize] {
                Site::Adaptive { idx, .. } => matches!(
                    self.sdt.state.adaptive[idx as usize].stage,
                    AdaptiveStage::Sieve
                ),
                _ => false,
            },
        };
        if now_sieve {
            if was_observe {
                // The service crossed a predictive promotion: mirror the
                // pre-installed hottest-first stanzas, which cover this
                // target only if it made the tracked set.
                if let Some(s) = site {
                    if let Site::Adaptive { idx, .. } = self.sdt.state.sites[s as usize] {
                        let targets = self.sdt.state.adaptive[idx as usize].targets.clone();
                        for t in targets {
                            self.sim_sieve.insert((bind, t));
                        }
                    }
                }
            } else {
                self.sim_sieve.insert((bind, target));
            }
        }
        Ok(())
    }

    /// Whether the dispatch structure serving (`bind`, `site`) currently
    /// hits for `target`, reading the same guest state the emitted probe
    /// sequence reads.
    fn probe_ib(&self, bind: usize, site: Option<u32>, target: u32) -> Result<bool, SdtError> {
        let st = &self.sdt.state;
        let mem = self.sdt.machine.mem();
        let hit = match site {
            None => match st.binds[bind].strategy.id() {
                "sieve" | "predictive" => self.sim_sieve.contains(&(bind, target)),
                _ => {
                    let table = st.binds[bind].table.expect("shared table allocated");
                    probe_tagged(mem, table, target)?
                }
            },
            Some(s) => match st.sites[s as usize] {
                // Translator re-entry: every dispatch is a full context
                // switch (the runtime never fills anything).
                Site::Ib { table: None, .. } => false,
                Site::Ib {
                    table: Some(base), ..
                } => {
                    let (entries, ways) = st.binds[bind]
                        .strategy
                        .site_table_geometry()
                        .expect("per-site table has a geometry");
                    probe_tagged(mem, ibtc_table_ref(base, entries, ways)?, target)?
                }
                Site::Adaptive { idx, .. } => {
                    let a = &st.adaptive[idx as usize];
                    match a.stage {
                        AdaptiveStage::Inline { .. } => a.targets.first() == Some(&target),
                        AdaptiveStage::Ibtc { table } => probe_tagged(mem, table, target)?,
                        AdaptiveStage::Sieve => self.sim_sieve.contains(&(bind, target)),
                        // An observing predictive site traps every
                        // dispatch by construction.
                        AdaptiveStage::Observe => false,
                    }
                }
                Site::Exit { .. } => {
                    return Err(SdtError::ReplayDesync {
                        pc: target,
                        detail: format!("indirect dispatch through exit site {s}"),
                    });
                }
            },
        };
        Ok(hit)
    }

    /// Stages `SLOT_TARGET`/`SLOT_SITE` like the emitted miss tail and
    /// runs the real `TRAP_MISS` handler. Returns whether the handler
    /// flushed the cache (invalidating every host-side mirror).
    fn service_miss(&mut self, target: u32, site_word: u32) -> Result<bool, SdtError> {
        let mem = self.sdt.machine.mem_mut();
        mem.write_u32(SLOT_TARGET, target)?;
        mem.write_u32(SLOT_SITE, site_word)?;
        let flushes_before = self.sdt.state.stats.cache_flushes;
        let w = self.sdt.state.handle_trap_miss(&mut self.sdt.machine)?;
        self.translator_cycles += self.model.charge_translator(w.new_instrs, w.lookups);
        let flushed = self.sdt.state.stats.cache_flushes > flushes_before;
        if flushed {
            self.clear_sim();
        }
        Ok(flushed)
    }

    /// Stages `SLOT_TARGET` and runs the real `TRAP_RC_MISS` handler.
    fn service_rc_miss(&mut self, target: u32) -> Result<(), SdtError> {
        self.sdt.machine.mem_mut().write_u32(SLOT_TARGET, target)?;
        let flushes_before = self.sdt.state.stats.cache_flushes;
        let w = self.sdt.state.handle_trap_rc_miss(&mut self.sdt.machine)?;
        self.translator_cycles += self.model.charge_translator(w.new_instrs, w.lookups);
        if self.sdt.state.stats.cache_flushes > flushes_before {
            self.clear_sim();
        }
        Ok(())
    }

    /// A cache flush discarded every fragment, site, and stanza chain and
    /// zeroed the guest shadow stack; drop the host-side mirrors with
    /// them.
    fn clear_sim(&mut self) {
        self.sim_sieve.clear();
        self.shadow_slots.fill(0);
        self.shadow_sp = 0;
    }

    /// Pushes a shadow-stack entry (no-op unless shadow returns are
    /// configured), mirroring the emitted circular-buffer write.
    fn shadow_push(&mut self, ret_app: u32) {
        let depth = self.shadow_slots.len();
        if depth == 0 {
            return;
        }
        self.shadow_slots[self.shadow_sp] = ret_app;
        self.shadow_sp = (self.shadow_sp + 1) % depth;
    }

    /// Pops the shadow stack, mirroring the emitted pre-decrement read.
    fn shadow_pop(&mut self) -> u32 {
        let depth = self.shadow_slots.len();
        debug_assert!(depth > 0, "shadow pop without a shadow stack");
        self.shadow_sp = (self.shadow_sp + depth - 1) % depth;
        self.shadow_slots[self.shadow_sp]
    }

    /// Mechanism counters in exact-mode shape. After a gap-free walk of a
    /// full trace these equal the exact run's
    /// [`RunReport::mech`](crate::RunReport).
    pub fn stats(&self) -> MechanismStats {
        let st = &self.sdt.state;
        let s = &st.stats;
        let (sieve_mean_chain, sieve_max_chain) = st.sieve_chain_stats();
        let promotions = |b: &Bind| b.promotions_to_ibtc + b.promotions_to_sieve;
        MechanismStats {
            ib_dispatches: self.jump_dispatches + self.call_dispatches,
            jump_dispatches: self.jump_dispatches,
            call_dispatches: self.call_dispatches,
            ib_misses: s.ib_misses,
            ret_dispatches: self.ret_dispatches,
            rc_misses: s.rc_misses,
            exit_misses: s.exit_misses,
            exit_links: s.exit_links,
            translator_entries: s.translator_entries,
            fragments: s.fragments,
            translated_app_instrs: s.translated_app_instrs,
            cache_used_bytes: st.cache.used_bytes() as u64,
            cache_flushes: s.cache_flushes,
            elided_jumps: s.elided_jumps,
            adaptive_promotions: st.binds.iter().map(promotions).sum(),
            sieve_mean_chain,
            sieve_max_chain,
        }
    }

    /// Per-branch-class dispatch breakdown, exact-mode shape.
    pub fn per_class(&self) -> Vec<ClassReport> {
        let st = &self.sdt.state;
        let promotions = |b: &Bind| b.promotions_to_ibtc + b.promotions_to_sieve;
        let jump_bind = &st.binds[st.class_bind[0]];
        let call_bind = &st.binds[st.class_bind[1]];
        vec![
            ClassReport {
                class: BranchClass::Jump.label(),
                mechanism: jump_bind.strategy.describe(),
                dispatches: self.jump_dispatches,
                misses: jump_bind.misses,
                promotions: promotions(jump_bind),
            },
            ClassReport {
                class: BranchClass::Call.label(),
                mechanism: call_bind.strategy.describe(),
                dispatches: self.call_dispatches,
                misses: call_bind.misses,
                promotions: promotions(call_bind),
            },
            ClassReport {
                class: BranchClass::Ret.label(),
                mechanism: st.ret_strat.describe(),
                dispatches: self.ret_dispatches,
                misses: st.stats.rc_misses,
                promotions: 0,
            },
        ]
    }

    /// Host-side translator cycles charged so far (translation work plus
    /// fragment-map lookups, same accounting as exact mode).
    pub fn translator_cycles(&self) -> u64 {
        self.translator_cycles
    }

    /// Per-class mispredictions from the hardware predictor mirror.
    pub fn predictor_stats(&self) -> PredictorStats {
        PredictorStats {
            jump_mispredicts: self.jump_mispredicts,
            call_mispredicts: self.call_mispredicts,
            ret_mispredicts: self.ret_mispredicts,
        }
    }
}

/// Probes a tagged IBTC table exactly as the emitted sequence does: one
/// tag compare per way.
fn probe_tagged(mem: &Memory, table: TableRef, target: u32) -> Result<bool, SdtError> {
    let e = table.entry_addr(target);
    Ok(match table.entry_bytes {
        8 => mem.read_u32(e)? == target,
        16 => mem.read_u32(e)? == target || mem.read_u32(e + 8)? == target,
        other => unreachable!("tagged probe of {other}-byte entries"),
    })
}
