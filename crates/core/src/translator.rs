//! The basic-block translator: decodes application code and emits
//! fragments into the cache. Indirect control transfers are delegated to
//! the branch class's bound [`IbStrategy`](crate::strategy::IbStrategy)
//! (jumps/calls) or the configured
//! [`RetStrategy`](crate::strategy::RetStrategy) (returns, direct-call
//! return glue).

use strata_isa::{Instr, Reg};
use strata_machine::syscall::SDT_TRAP_BASE;
use strata_machine::Memory;

use crate::config::BranchClass;
use crate::dispatch::{CallPush, TargetSource};
use crate::fragment::{FragKind, FragMeta, Fragment, Site, Terminal};
use crate::protocol::{SLOT_R1, SLOT_R2, SLOT_R3, SLOT_SITE};
use crate::sdt::SdtState;
use crate::{Origin, SdtError};

impl SdtState {
    /// Returns the fragment for (`app_addr`, `kind`), translating it (and,
    /// under fast returns, any fall-through return-site fragments) on
    /// first request.
    pub(crate) fn ensure_fragment(
        &mut self,
        mem: &mut Memory,
        app_addr: u32,
        kind: FragKind,
    ) -> Result<Fragment, SdtError> {
        if let Some(f) = self.map.get(app_addr, kind) {
            return Ok(f);
        }
        self.translate_fragment(mem, app_addr, kind)
    }

    pub(crate) fn translate_fragment(
        &mut self,
        mem: &mut Memory,
        app_addr: u32,
        kind: FragKind,
    ) -> Result<Fragment, SdtError> {
        // The exit-site scratch is per-invocation: nested translations
        // (fast-return fall-through fragments, shadow return sites) must
        // not leak their exits into this fragment's terminal record.
        let saved = std::mem::take(&mut self.exit_scratch);
        let result = self.translate_fragment_inner(mem, app_addr, kind);
        self.exit_scratch = saved;
        result
    }

    fn translate_fragment_inner(
        &mut self,
        mem: &mut Memory,
        app_addr: u32,
        kind: FragKind,
    ) -> Result<Fragment, SdtError> {
        let entry = self.cache.addr();

        // Return-point fragments begin with the return-cache verification
        // prologue, then the restore sequence the dispatch skipped.
        let restore_entry = match kind {
            FragKind::ReturnPoint => {
                let d = Origin::Dispatch;
                self.cache.emit_li(mem, Reg::R2, app_addr, d)?;
                self.cache.emit(
                    mem,
                    Instr::Cmp {
                        rs1: Reg::R1,
                        rs2: Reg::R2,
                    },
                    d,
                )?;
                self.cache.emit(mem, Instr::Beq { off: 1 }, d)?;
                self.cache.emit(
                    mem,
                    Instr::Jmp {
                        target: self.stubs.rc_miss,
                    },
                    d,
                )?;
                let restore = self.cache.addr();
                if self.cfg.flags == crate::FlagsPolicy::Always {
                    self.cache.emit(mem, Instr::Popf, d)?;
                }
                self.cache.emit(
                    mem,
                    Instr::Lwa {
                        rd: Reg::R1,
                        addr: SLOT_R1,
                    },
                    d,
                )?;
                self.cache.emit(
                    mem,
                    Instr::Lwa {
                        rd: Reg::R2,
                        addr: SLOT_R2,
                    },
                    d,
                )?;
                self.cache.emit(
                    mem,
                    Instr::Lwa {
                        rd: Reg::R3,
                        addr: SLOT_R3,
                    },
                    d,
                )?;
                restore
            }
            FragKind::Body => entry,
        };

        // Injected basic-block counter: bump a per-fragment guest counter
        // without disturbing application state (addi does not touch flags).
        if self.cfg.instrument_blocks {
            let slot = self.alloc.alloc(4, 4)?;
            mem.write_u32(slot, 0)?; // the slot may be recycled post-flush
            self.block_counters.push((app_addr, slot));
            let o = Origin::Instrumentation;
            self.cache.emit(
                mem,
                Instr::Swa {
                    rs: Reg::R1,
                    addr: SLOT_R1,
                },
                o,
            )?;
            self.cache.emit(
                mem,
                Instr::Swa {
                    rs: Reg::R2,
                    addr: SLOT_R2,
                },
                o,
            )?;
            self.cache.emit_li(mem, Reg::R1, slot, o)?;
            self.cache.emit(
                mem,
                Instr::Lw {
                    rd: Reg::R2,
                    rs1: Reg::R1,
                    off: 0,
                },
                o,
            )?;
            self.cache.emit(
                mem,
                Instr::Addi {
                    rd: Reg::R2,
                    rs1: Reg::R2,
                    imm: 1,
                },
                o,
            )?;
            self.cache.emit(
                mem,
                Instr::Sw {
                    rs2: Reg::R2,
                    rs1: Reg::R1,
                    off: 0,
                },
                o,
            )?;
            self.cache.emit(
                mem,
                Instr::Lwa {
                    rd: Reg::R1,
                    addr: SLOT_R1,
                },
                o,
            )?;
            self.cache.emit(
                mem,
                Instr::Lwa {
                    rd: Reg::R2,
                    addr: SLOT_R2,
                },
                o,
            )?;
        }

        let body = self.cache.addr();
        let frag = Fragment {
            entry,
            restore_entry,
            body,
        };
        // Register before translating the body so fall-through recursion
        // (fast returns) terminates.
        self.map.insert(app_addr, kind, frag);
        self.stats.fragments += 1;

        let mut pc = app_addr;
        // Block starts already inlined into this fragment (jump elision).
        let mut elided: Vec<u32> = vec![app_addr];
        // Application pcs of the elided jumps themselves (for replay).
        let mut elided_jmp_pcs: Vec<u32> = Vec::new();
        let (term_pc, terminal) = loop {
            let instr = mem.fetch(pc)?;
            let next = pc + 4;
            self.stats.translated_app_instrs += 1;
            match instr {
                Instr::Trap { code } if code >= SDT_TRAP_BASE => {
                    return Err(SdtError::ReservedTrap { code, pc });
                }
                Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Blt { .. }
                | Instr::Bge { .. }
                | Instr::Bltu { .. }
                | Instr::Bgeu { .. } => {
                    let off = branch_off(instr);
                    let taken = next.wrapping_add((off as i32 as u32).wrapping_mul(4));
                    let bxx = self.cache.emit(mem, instr, Origin::App)?;
                    let scratch_base = self.exit_scratch.len();
                    self.emit_exit(mem, next)?;
                    let taken_head = self.emit_exit(mem, taken)?;
                    self.cache.patch_branch(mem, bxx, instr, taken_head)?;
                    break (
                        pc,
                        Terminal::Cond {
                            next_site: self.exit_scratch[scratch_base],
                            taken_site: self.exit_scratch[scratch_base + 1],
                        },
                    );
                }
                Instr::Jmp { target } => {
                    // Jump elision: keep translating at the target instead
                    // of ending the fragment, unless the target is already
                    // part of this fragment (a loop), already has its own
                    // fragment, or the duplication budget is spent.
                    if self.cfg.elide_direct_jumps
                        && elided.len() < 16
                        && !elided.contains(&target)
                        && self.map.get(target, FragKind::Body).is_none()
                    {
                        elided.push(target);
                        elided_jmp_pcs.push(pc);
                        self.stats.elided_jumps += 1;
                        pc = target;
                        continue;
                    }
                    let scratch_base = self.exit_scratch.len();
                    self.emit_exit(mem, target)?;
                    break (
                        pc,
                        Terminal::DirectJump {
                            site: self.exit_scratch[scratch_base],
                        },
                    );
                }
                Instr::Call { target } => {
                    let scratch_base = self.exit_scratch.len();
                    let ret = self.ret_strat.clone();
                    ret.emit_direct_call(self, mem, target, next)?;
                    debug_assert_eq!(
                        self.exit_scratch.len(),
                        scratch_base + 1,
                        "direct-call glue emits exactly one exit at this level"
                    );
                    break (
                        pc,
                        Terminal::DirectCall {
                            site: self.exit_scratch[scratch_base],
                            ret_app: next,
                        },
                    );
                }
                Instr::Callr { rs } => {
                    let push = self.ret_strat.call_push(next);
                    let sites_before = self.sites.len();
                    let patch =
                        self.emit_ib_dispatch(mem, TargetSource::Reg(rs), push, BranchClass::Call)?;
                    let site = (self.sites.len() > sites_before).then_some(sites_before as u32);
                    if let Some(at) = patch {
                        let ret_frag = self.ensure_fragment(mem, next, FragKind::Body)?;
                        self.cache.patch_li(mem, at, Reg::R2, ret_frag.entry)?;
                    }
                    break (
                        pc,
                        Terminal::IndirectCall {
                            site,
                            ret_app: next,
                        },
                    );
                }
                Instr::Jr { rs } => {
                    let sites_before = self.sites.len();
                    self.emit_ib_dispatch(
                        mem,
                        TargetSource::Reg(rs),
                        CallPush::None,
                        BranchClass::Jump,
                    )?;
                    let site = (self.sites.len() > sites_before).then_some(sites_before as u32);
                    break (pc, Terminal::IndirectJump { site });
                }
                Instr::Jmem { addr } => {
                    let sites_before = self.sites.len();
                    self.emit_ib_dispatch(
                        mem,
                        TargetSource::MemSlot(addr),
                        CallPush::None,
                        BranchClass::Jump,
                    )?;
                    let site = (self.sites.len() > sites_before).then_some(sites_before as u32);
                    break (pc, Terminal::IndirectJump { site });
                }
                Instr::Ret => {
                    let sites_before = self.sites.len();
                    let ret = self.ret_strat.clone();
                    ret.emit_ret(self, mem)?;
                    let site = (self.sites.len() > sites_before).then_some(sites_before as u32);
                    break (pc, Terminal::Ret { site });
                }
                Instr::Halt => {
                    self.cache.emit(mem, Instr::Halt, Origin::App)?;
                    break (pc, Terminal::Halt);
                }
                other => {
                    self.cache.emit(mem, other, Origin::App)?;
                    pc = next;
                }
            }
        };
        self.frag_meta.insert(
            (app_addr, kind),
            FragMeta {
                term_pc,
                elided_jmp_pcs,
                terminal,
            },
        );
        Ok(frag)
    }

    /// Emits the transparent direct-call glue shared by every return
    /// mechanism that keeps application return addresses on the stack:
    /// push the application return address and exit to the callee.
    pub(crate) fn emit_transparent_direct_call(
        &mut self,
        mem: &mut Memory,
        target: u32,
        ret_app: u32,
    ) -> Result<(), SdtError> {
        let g = Origin::CallGlue;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R1,
                addr: SLOT_R1,
            },
            g,
        )?;
        self.cache.emit_li(mem, Reg::R1, ret_app, g)?;
        self.cache.emit(mem, Instr::Push { rs: Reg::R1 }, g)?;
        self.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R1,
                addr: SLOT_R1,
            },
            g,
        )?;
        self.emit_exit(mem, target)?;
        Ok(())
    }

    /// Emits a direct-branch exit trampoline for `target` and returns its
    /// head address. The head starts as the first instruction of a full
    /// context save + trap; when the runtime links the exit it patches the
    /// head into a direct jump to the target fragment.
    pub(crate) fn emit_exit(&mut self, mem: &mut Memory, target: u32) -> Result<u32, SdtError> {
        let o = Origin::ContextSwitch;
        let head = self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R1,
                addr: SLOT_R1,
            },
            o,
        )?;
        let site = self.new_site(Site::Exit {
            target,
            patch_addr: head,
        });
        self.exit_scratch.push(site);
        self.cache.emit_li(mem, Reg::R1, target, o)?;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_R2,
            },
            o,
        )?;
        self.cache.emit_li(mem, Reg::R2, site, o)?;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_SITE,
            },
            o,
        )?;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_R3,
            },
            o,
        )?;
        self.cache.emit(
            mem,
            Instr::Jmp {
                target: self.stubs.miss_tail_reg_flags,
            },
            o,
        )?;
        Ok(head)
    }
}

fn branch_off(instr: Instr) -> i16 {
    match instr {
        Instr::Beq { off }
        | Instr::Bne { off }
        | Instr::Blt { off }
        | Instr::Bge { off }
        | Instr::Bltu { off }
        | Instr::Bgeu { off } => off,
        other => unreachable!("not a conditional branch: {other:?}"),
    }
}
