//! The SDT runtime: services `TRAP_MISS` / `TRAP_RC_MISS` crossings from
//! the fragment cache — translating new fragments, linking exits, and
//! routing structure fills to the owning strategy binding.

use strata_isa::{Instr, Reg};
use strata_machine::{Machine, Memory};

use crate::config::FlagsPolicy;
use crate::fragment::{FragKind, Fragment, Site};
use crate::protocol::{
    sentinel_bind, SITE_NOFILL, SITE_SHARED, SLOT_RESUME, SLOT_SITE, SLOT_TARGET,
};
use crate::sdt::SdtState;
use crate::{Origin, SdtError};

/// Host-side translator work performed while servicing one trap, used to
/// charge translator cycles to the architecture model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TranslatorWork {
    /// Application instructions newly translated.
    pub new_instrs: u64,
    /// Fragment-map lookups performed.
    pub lookups: u64,
}

impl SdtState {
    /// Whether the fragment cache may be flushed when full.
    fn can_flush(&self) -> bool {
        !self.ret_strat.forbids_flush()
    }

    /// Discards every fragment, site, and lookup-structure entry, keeping
    /// only the shared stubs — Strata's response to a full fragment cache.
    pub(crate) fn flush_cache(&mut self, mem: &mut Memory) -> Result<(), SdtError> {
        debug_assert!(self.can_flush());
        self.stats.cache_flushes += 1;
        // Preserve instrumentation counts across the flush.
        for (app_addr, slot) in self.block_counters.drain(..) {
            let count = mem.read_u32(slot).unwrap_or(0) as u64;
            *self.flushed_counts.entry(app_addr).or_insert(0) += count;
        }
        self.cache.reset_to(self.post_stub_cursor);
        self.alloc.reset_to(self.alloc_floor);
        self.map = crate::fragment::FragmentMap::default();
        self.sites.clear();
        // Adaptive probes (and promoted per-site tables) lived in the
        // flushed region; sites re-learn their arity from scratch.
        self.adaptive.clear();
        self.frag_meta.clear();
        self.reset_mechanism_structures(mem)
    }

    /// [`SdtState::ensure_fragment`] with flush-on-overflow. Returns the
    /// fragment and whether a flush happened (in which case the missing
    /// site's structures no longer exist and must not be updated).
    pub(crate) fn ensure_fragment_flushing(
        &mut self,
        mem: &mut Memory,
        app_addr: u32,
        kind: FragKind,
    ) -> Result<(crate::fragment::Fragment, bool), SdtError> {
        match self.ensure_fragment(mem, app_addr, kind) {
            Err(SdtError::CacheFull { .. }) if self.can_flush() => {
                self.flush_cache(mem)?;
                Ok((self.ensure_fragment(mem, app_addr, kind)?, true))
            }
            r => Ok((r?, false)),
        }
    }

    /// Services a `TRAP_MISS`: resolve the target fragment, route the fill
    /// to the missing site's strategy binding, and arrange resumption
    /// through the restore stub.
    pub(crate) fn handle_trap_miss(
        &mut self,
        machine: &mut Machine,
    ) -> Result<TranslatorWork, SdtError> {
        self.stats.translator_entries += 1;
        let target = machine.mem().read_u32(SLOT_TARGET)?;
        let site = machine.mem().read_u32(SLOT_SITE)?;
        let before = self.stats.translated_app_instrs;
        let (mut frag, flushed) =
            self.ensure_fragment_flushing(machine.mem_mut(), target, FragKind::Body)?;

        if flushed {
            // The dispatch code that missed was itself discarded; count the
            // miss but skip structure updates for the stale site id.
            self.stats.ib_misses += 1;
        } else if site == SITE_NOFILL {
            // Shadow-stack fallback: the next balanced call repopulates the
            // shadow entry, so there is nothing to fill here.
            self.stats.rc_misses += 1;
        } else if site == SITE_SHARED || sentinel_bind(site).is_some() {
            // A binding's shared (site-less) miss path. SITE_SHARED is the
            // legacy single-binding sentinel for binding 0.
            let bind = sentinel_bind(site).unwrap_or(0);
            self.stats.ib_misses += 1;
            self.binds[bind].misses += 1;
            frag = self.fill_catching_flush(machine.mem_mut(), target, frag, |st, mem| {
                let strat = st.binds[bind].strategy.clone();
                strat.on_shared_miss(st, mem, bind, target, frag.entry)
            })?;
        } else {
            match self.sites[site as usize] {
                Site::Exit {
                    patch_addr,
                    target: exit_target,
                } => {
                    debug_assert_eq!(exit_target, target);
                    self.stats.exit_misses += 1;
                    if self.cfg.link_fragments {
                        self.stats.exit_links += 1;
                        self.cache.patch(
                            machine.mem_mut(),
                            patch_addr,
                            Instr::Jmp { target: frag.entry },
                            Some(Origin::Trampoline),
                        )?;
                    }
                }
                Site::Ib { bind, .. } | Site::Adaptive { bind, .. } => {
                    let bind = bind as usize;
                    self.stats.ib_misses += 1;
                    self.binds[bind].misses += 1;
                    frag =
                        self.fill_catching_flush(machine.mem_mut(), target, frag, |st, mem| {
                            let strat = st.binds[bind].strategy.clone();
                            strat.on_site_miss(st, mem, bind, site, target, frag)
                        })?;
                }
            }
        }

        machine.mem_mut().write_u32(SLOT_RESUME, frag.entry)?;
        machine.cpu_mut().pc = self.stubs.restore;
        Ok(TranslatorWork {
            new_instrs: self.stats.translated_app_instrs - before,
            lookups: 1,
        })
    }

    /// Runs a strategy fill that may emit into the cache (sieve stanzas,
    /// adaptive promotions). If the cache is full, flush and retranslate
    /// the target — its first fragment was discarded — and skip the fill
    /// (the missing site no longer exists).
    fn fill_catching_flush(
        &mut self,
        mem: &mut Memory,
        target: u32,
        frag: Fragment,
        fill: impl FnOnce(&mut SdtState, &mut Memory) -> Result<(), SdtError>,
    ) -> Result<Fragment, SdtError> {
        match fill(self, mem) {
            Err(SdtError::CacheFull { .. }) if self.can_flush() => {
                self.flush_cache(mem)?;
                self.ensure_fragment(mem, target, FragKind::Body)
            }
            r => {
                r?;
                Ok(frag)
            }
        }
    }

    /// Services a `TRAP_RC_MISS`: the actual return target is in
    /// `SLOT_TARGET`; install the return-point fragment in the return
    /// cache and resume at its restore sequence.
    pub(crate) fn handle_trap_rc_miss(
        &mut self,
        machine: &mut Machine,
    ) -> Result<TranslatorWork, SdtError> {
        self.stats.translator_entries += 1;
        self.stats.rc_misses += 1;
        let target = machine.mem().read_u32(SLOT_TARGET)?;
        let before = self.stats.translated_app_instrs;
        let (frag, _flushed) =
            self.ensure_fragment_flushing(machine.mem_mut(), target, FragKind::ReturnPoint)?;
        let rc = self.rc_tab.expect("return cache allocated");
        rc.fill_untagged(machine.mem_mut(), target, frag.entry)?;
        machine
            .mem_mut()
            .write_u32(SLOT_RESUME, frag.restore_entry)?;
        machine.cpu_mut().pc = self.stubs.rc_restore;
        Ok(TranslatorWork {
            new_instrs: self.stats.translated_app_instrs - before,
            lookups: 1,
        })
    }

    /// Appends a sieve stanza for `target → frag_entry` to its bucket's
    /// chain in binding `bind`'s sieve.
    pub(crate) fn sieve_install(
        &mut self,
        mem: &mut Memory,
        bind: usize,
        target: u32,
        frag_entry: u32,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        let table = self.binds[bind].table.expect("sieve table allocated");
        let glue = self.glue_for(bind);
        let bucket = table.index_of(target) as usize;

        let stanza = self.cache.addr();
        self.cache.emit_li(mem, Reg::R2, target, d)?;
        self.cache.emit(
            mem,
            Instr::Cmp {
                rs1: Reg::R1,
                rs2: Reg::R2,
            },
            d,
        )?;
        self.cache.emit(mem, Instr::Beq { off: 1 }, d)?;
        let link = self.cache.emit(mem, Instr::Jmp { target: glue }, d)?;
        if self.cfg.flags == FlagsPolicy::Always {
            self.cache.emit(mem, Instr::Popf, d)?;
        }
        self.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R1,
                addr: crate::protocol::SLOT_R1,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R2,
                addr: crate::protocol::SLOT_R2,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R3,
                addr: crate::protocol::SLOT_R3,
            },
            d,
        )?;
        // The sieve's defining property: a hit ends in a DIRECT jump.
        self.cache.emit(mem, Instr::Jmp { target: frag_entry }, d)?;

        match self.binds[bind].sieve_buckets[bucket].last_link {
            None => {
                // First stanza in the bucket: point the bucket head at it.
                mem.write_u32(table.base + bucket as u32 * 4, stanza)?;
            }
            Some(prev_link) => {
                self.cache
                    .patch(mem, prev_link, Instr::Jmp { target: stanza }, None)?;
            }
        }
        self.binds[bind].sieve_buckets[bucket].last_link = Some(link);
        self.binds[bind].sieve_buckets[bucket].len += 1;
        Ok(())
    }

    /// Mean and max sieve chain lengths across every binding's buckets
    /// (0 when no sieve is in use).
    pub(crate) fn sieve_chain_stats(&self) -> (f64, u32) {
        let lens: Vec<u32> = self
            .binds
            .iter()
            .flat_map(|b| b.sieve_buckets.iter())
            .map(|b| b.len)
            .filter(|&l| l > 0)
            .collect();
        if lens.is_empty() {
            return (0.0, 0);
        }
        let max = lens.iter().copied().max().unwrap_or(0);
        let mean = lens.iter().map(|&l| l as f64).sum::<f64>() / lens.len() as f64;
        (mean, max)
    }
}
