//! # strata-core — a software dynamic translator with pluggable
//! indirect-branch handling
//!
//! This crate is the reproduction of the system evaluated in *“Evaluating
//! Indirect Branch Handling Mechanisms in Software Dynamic Translation
//! Systems”* (Hiser, Williams, Hu, Davidson, Mars, Childers — CGO 2007): a
//! Strata-style SDT that executes a guest program from a *fragment cache*,
//! translating basic blocks on demand, linking direct branches
//! fragment-to-fragment, and handling indirect branches through one of
//! several mechanisms:
//!
//! * **Translator re-entry** ([`IbMechanism::Reentry`]) — every indirect
//!   branch performs a full context switch into the translator, which looks
//!   the target up in its fragment map. The baseline the paper starts from.
//! * **IBTC** ([`IbMechanism::Ibtc`]) — an *indirect branch translation
//!   cache*: emitted code hashes the target and probes a tagged software
//!   cache mapping application addresses to fragment addresses. Variants:
//!   one shared table vs. a table per indirect-branch site
//!   ([`IbtcScope`]), and lookup code inlined at each site vs. a shared
//!   out-of-line routine ([`IbtcPlacement`]).
//! * **Sieve** ([`IbMechanism::Sieve`]) — the target hash indexes a bucket
//!   table whose entries point at chains of compare-and-branch stanzas in
//!   the code cache; a hit ends in a *direct* jump (no BTB-hostile
//!   indirect transfer).
//! * **Return caches / fast returns** ([`RetMechanism`]) — returns are the
//!   most frequent indirect branches; a return cache jumps through a
//!   tagless table into a verification prologue, while fast returns push
//!   the *translated* return address (fastest, but transparency-violating).
//!
//! All mechanism code is emitted as real SimRISC instructions and executed
//! by the simulated machine, so overheads emerge from execution under a
//! pluggable [`ArchProfile`](strata_arch::ArchProfile) rather than from
//! closed-form estimates. Every emitted instruction carries an [`Origin`]
//! tag, letting [`RunReport`] attribute cycles to app work, lookup code,
//! context switches, trampolines, and the translator itself.
//!
//! ## Quick start
//!
//! ```
//! use strata_core::{run_native, Sdt, SdtConfig};
//! use strata_arch::ArchProfile;
//! use strata_machine::{layout, Program};
//! use strata_asm::assemble;
//!
//! // A toy program with an indirect jump.
//! let code = assemble(layout::APP_BASE, r"
//!     li   r9, done
//!     li   r4, 42
//!     trap 0x1        ; fold r4 into the checksum
//!     jr   r9
//! done:
//!     halt
//! ")?;
//! let program = Program::new("toy", code, Vec::new());
//!
//! let native = run_native(&program, ArchProfile::x86_like(), 10_000)?;
//! let mut sdt = Sdt::new(SdtConfig::ibtc_inline(512), &program)?;
//! let report = sdt.run(ArchProfile::x86_like(), 100_000)?;
//!
//! // Same observable behaviour...
//! assert_eq!(report.checksum, native.checksum);
//! // ...at a cost: translation and dispatch cycles on top of app work.
//! assert!(report.total_cycles > native.total_cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod dispatch;
mod emitter;
mod error;
mod fragment;
mod harness;
mod inspect;
mod meta;
mod origin;
pub mod protocol;
mod replay;
mod report;
mod runtime;
mod sdt;
mod strategy;
mod stubs;
mod tables;
mod translator;

pub use config::{
    BranchClass, ClassPolicy, DispatchPolicy, FlagsPolicy, IbMechanism, IbtcPlacement, IbtcScope,
    RetMechanism, SdtConfig,
};
pub use error::SdtError;
pub use fragment::FragKind;
pub use harness::{run_native, run_native_tiered, NativeRun};
pub use inspect::CacheLine;
pub use meta::{
    AdaptiveSiteMeta, AdaptiveStageMeta, BindMeta, CacheMeta, ExitSiteMeta, FragmentMeta,
    StubsMeta, TableKind, TableMeta,
};
pub use origin::Origin;
pub use replay::{DispatchReplay, PredictorStats};
pub use report::{ClassReport, MechanismStats, RunReport};
pub use sdt::Sdt;
pub use strategy::{mechanism_registry, MechanismInfo};
