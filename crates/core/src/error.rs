use std::fmt;

use strata_machine::MachineError;

/// Errors produced by the SDT.
#[derive(Debug)]
pub enum SdtError {
    /// A configuration parameter was out of range.
    BadConfig {
        /// Which parameter.
        what: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// The fragment cache region is full.
    CacheFull {
        /// Bytes the cache can hold.
        capacity: u32,
    },
    /// The lookup-table region is full (e.g. too many per-site IBTC
    /// tables).
    TableSpaceExhausted {
        /// Bytes requested by the failed allocation.
        requested: u32,
    },
    /// The guest program used a trap code reserved for the SDT runtime.
    ReservedTrap {
        /// Offending code.
        code: u16,
        /// Application pc of the trap.
        pc: u32,
    },
    /// The application stored into its own (already translated) code —
    /// the translator's fragments would silently go stale, so execution is
    /// refused instead.
    SelfModifyingCode {
        /// Cache pc of the offending store.
        pc: u32,
        /// Application code address that was written.
        addr: u32,
    },
    /// The trace-replay engine lost sync with the recorded control-flow
    /// stream: an event does not match the translated fragment graph
    /// (wrong trace for the program, or a corrupted stream).
    ReplayDesync {
        /// Application pc of the offending trace event.
        pc: u32,
        /// What the replay expected instead.
        detail: String,
    },
    /// The underlying machine faulted.
    Machine(MachineError),
}

impl fmt::Display for SdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdtError::BadConfig { what, detail } => write!(f, "bad config for {what}: {detail}"),
            SdtError::CacheFull { capacity } => {
                write!(f, "fragment cache of {capacity} bytes is full")
            }
            SdtError::TableSpaceExhausted { requested } => {
                write!(f, "lookup-table space exhausted allocating {requested} bytes")
            }
            SdtError::ReservedTrap { code, pc } => {
                write!(f, "application trap {code:#x} at {pc:#x} is reserved for the SDT runtime")
            }
            SdtError::SelfModifyingCode { pc, addr } => write!(
                f,
                "store to application code {addr:#x} (from {pc:#x}): self-modifying code is unsupported"
            ),
            SdtError::ReplayDesync { pc, detail } => {
                write!(f, "trace replay desynchronized at {pc:#x}: {detail}")
            }
            SdtError::Machine(e) => write!(f, "machine fault: {e}"),
        }
    }
}

impl std::error::Error for SdtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdtError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for SdtError {
    fn from(e: MachineError) -> SdtError {
        SdtError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SdtError::BadConfig {
            what: "ibtc entries",
            detail: "nope".into(),
        };
        assert!(e.to_string().contains("ibtc entries"));
        assert!(SdtError::CacheFull { capacity: 64 }
            .to_string()
            .contains("64"));
        let m: SdtError = MachineError::UnalignedPc { pc: 2 }.into();
        assert!(m.to_string().contains("unaligned"));
    }
}
