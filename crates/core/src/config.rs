use crate::SdtError;

/// Which indirect-branch handling mechanism translated code uses for
/// indirect jumps and indirect calls (and, under
/// [`RetMechanism::AsIb`], returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IbMechanism {
    /// Full context switch into the translator on every indirect branch —
    /// the unoptimized baseline.
    Reentry,
    /// Indirect-branch translation cache: emitted code probes a tagged
    /// software cache mapping application targets to fragment addresses.
    Ibtc {
        /// Table entries (power of two, `2..=65536`).
        entries: u32,
        /// One shared table, or one per indirect-branch site.
        scope: IbtcScope,
        /// Lookup code inlined at each site, or a shared out-of-line
        /// routine reached by call/return.
        placement: IbtcPlacement,
    },
    /// Sieve dispatch: hash into a bucket table whose entries point to
    /// chains of compare-and-direct-jump stanzas in the code cache.
    Sieve {
        /// Bucket count (power of two, `2..=65536`).
        buckets: u32,
    },
}

/// IBTC table scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IbtcScope {
    /// All indirect-branch sites share one table.
    Shared,
    /// Each indirect-branch site owns a private table (captures per-branch
    /// target locality at the cost of table space).
    PerSite,
}

/// Where IBTC lookup code lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IbtcPlacement {
    /// The probe sequence is emitted at every indirect-branch site.
    Inline,
    /// One shared probe routine; sites `call` it (cheaper I-cache
    /// footprint, extra transfer per lookup).
    OutOfLine,
}

/// How returns are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetMechanism {
    /// Returns go through the generic [`IbMechanism`] like any other
    /// indirect branch.
    AsIb,
    /// Return cache: a tagless table indexed by a hash of the return
    /// address; transfers land on a verification prologue in the target
    /// fragment.
    ReturnCache {
        /// Table entries (power of two, `2..=65536`).
        entries: u32,
    },
    /// Calls push the *translated* return address so `ret` needs no lookup
    /// at all. Fastest, but the application can observe fragment-cache
    /// addresses on its stack (transparency violation).
    FastReturn,
    /// Shadow return stack: calls additionally push an
    /// `(application return address, translated return address)` pair onto
    /// a private circular stack; returns pop it, verify the application
    /// address exactly, and jump. Transparent like the return cache but
    /// immune to hash conflicts; mismatches (underflow, wrap-around,
    /// unbalanced control flow) fall back to the translator.
    ShadowStack {
        /// Entries (power of two, `2..=8192`).
        depth: u32,
    },
}

/// The classes of control transfer a [`DispatchPolicy`] can bind to
/// strategies independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// Indirect jumps (`jr`, `jmem`).
    Jump,
    /// Indirect calls (`callr`).
    Call,
    /// Returns (`ret`).
    Ret,
}

impl BranchClass {
    /// Stable lowercase label used in reports and the policy grammar.
    pub fn label(self) -> &'static str {
        match self {
            BranchClass::Jump => "jump",
            BranchClass::Call => "call",
            BranchClass::Ret => "ret",
        }
    }
}

/// Strategy selection for one branch class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassPolicy {
    /// Use the global [`SdtConfig::ib`] mechanism (the legacy default; the
    /// configuration describes and behaves exactly as before the policy
    /// layer existed).
    Inherit,
    /// A fixed mechanism for this class, with its own IBTC associativity.
    Fixed {
        /// The mechanism this class dispatches through.
        mech: IbMechanism,
        /// IBTC associativity for this class (1 or 2; ignored by
        /// non-IBTC mechanisms).
        ways: u8,
    },
    /// Start every site on a cheap single-target inline probe and promote
    /// it as observed target arity grows: a second distinct target
    /// promotes the site to a private IBTC; more than `sieve_arity`
    /// distinct targets promote it to a sieve shared by this class's
    /// promoted sites. Promotion counts surface in
    /// [`RunReport`](crate::RunReport).
    Adaptive {
        /// Entries of each promoted per-site IBTC (power of two,
        /// `2..=65536`).
        ibtc_entries: u32,
        /// Buckets of the shared promotion sieve (power of two,
        /// `2..=65536`).
        sieve_buckets: u32,
        /// Distinct-target count beyond which a site leaves its IBTC for
        /// the sieve (`1..=64`).
        sieve_arity: u32,
    },
    /// Trap every dispatch during a bounded observation window to tally
    /// exact per-target frequencies, then re-emit the site as a sieve
    /// probe whose stanza chains are installed hottest-target-first —
    /// the predictor-aware ordering a hardware BTB cannot provide (it
    /// caches the dispatch's final indirect jump, not the compare
    /// ladder in front of it).
    Predictive {
        /// Buckets of the shared sieve (power of two, `2..=65536`).
        sieve_buckets: u32,
        /// Dispatches observed per site before promotion (`1..=65536`).
        probation: u32,
    },
}

/// Maps each branch class to a strategy independently. Returns are
/// governed by [`SdtConfig::ret`] (already a per-class selector); this
/// adds the same freedom for indirect jumps and calls. Classes resolving
/// to the same strategy share tables and miss glue, so the all-[`Inherit`]
/// default is bit-identical to the pre-policy single-mechanism layout.
///
/// [`Inherit`]: ClassPolicy::Inherit
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// Strategy for indirect jumps.
    pub jump: ClassPolicy,
    /// Strategy for indirect calls.
    pub call: ClassPolicy,
}

impl Default for DispatchPolicy {
    fn default() -> DispatchPolicy {
        DispatchPolicy {
            jump: ClassPolicy::Inherit,
            call: ClassPolicy::Inherit,
        }
    }
}

impl DispatchPolicy {
    /// Whether both classes inherit the global mechanism (the legacy
    /// configuration space).
    pub fn is_inherit(&self) -> bool {
        self.jump == ClassPolicy::Inherit && self.call == ClassPolicy::Inherit
    }
}

/// Whether dispatch sequences preserve the application's flags register
/// around their `cmp` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagsPolicy {
    /// Save and restore flags around every lookup (safe default; on
    /// x86-like profiles this is the expensive `pushf`/`popf` tax the
    /// paper analyzes).
    Always,
    /// Never save flags — models an SDT whose liveness analysis proved the
    /// flags dead across every indirect branch. Unsafe in general; the
    /// bundled workloads do not carry flags across indirect branches, so
    /// results remain correct and the configuration isolates the flags
    /// tax.
    None,
}

/// Complete SDT configuration.
///
/// Construct via one of the presets and adjust fields, or build the struct
/// literally; call [`SdtConfig::validate`] (done automatically by
/// [`Sdt::new`](crate::Sdt::new)).
///
/// ```
/// use strata_core::{SdtConfig, RetMechanism};
/// let mut cfg = SdtConfig::ibtc_inline(4096);
/// cfg.ret = RetMechanism::ReturnCache { entries: 512 };
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdtConfig {
    /// Mechanism for indirect jumps/calls.
    pub ib: IbMechanism,
    /// Mechanism for returns.
    pub ret: RetMechanism,
    /// Flags preservation policy around lookup code.
    pub flags: FlagsPolicy,
    /// Link direct branches fragment-to-fragment after first execution
    /// (`true` in real SDTs; `false` forces a translator crossing on every
    /// direct-branch exit, an ablation of Strata's fragment linking).
    pub link_fragments: bool,
    /// Fragment-cache capacity in bytes (`None` = the full cache region).
    /// When the cache fills, the SDT *flushes* it — discarding every
    /// fragment and lookup-structure entry, keeping only the shared stubs —
    /// and retranslates on demand, as Strata does. Flushing is incompatible
    /// with [`RetMechanism::FastReturn`] (live translated return addresses
    /// on the application stack would dangle), so fast-return
    /// configurations fail with `CacheFull` instead.
    pub cache_limit: Option<u32>,
    /// Inject a basic-block execution counter at the top of every
    /// translated fragment — the classic SDT-as-instrumentation use case.
    /// Counts are read back with [`Sdt::block_profile`](crate::Sdt::block_profile);
    /// the counting code is real emitted instructions tagged
    /// [`Origin::Instrumentation`](crate::Origin::Instrumentation), so its
    /// overhead is measured like any other.
    pub instrument_blocks: bool,
    /// Elide unconditional direct jumps during translation: instead of
    /// ending the fragment with a trampoline, keep translating at the jump
    /// target (tail duplication, bounded per fragment). Strata's fragment
    /// formation does this; it trades code-cache space for removing a
    /// taken jump per elision.
    pub elide_direct_jumps: bool,
    /// IBTC associativity: 1 (direct mapped, the default) or 2 (two-way
    /// sets probed sequentially, with LRU-by-shifting fills). Two-way
    /// tables require inline lookup placement.
    pub ibtc_ways: u8,
    /// Per-branch-class strategy overrides. The default (all
    /// [`ClassPolicy::Inherit`]) reproduces the legacy single-mechanism
    /// behaviour exactly.
    pub policy: DispatchPolicy,
}

impl SdtConfig {
    /// Baseline configuration: translator re-entry for everything.
    pub fn reentry() -> SdtConfig {
        SdtConfig {
            ib: IbMechanism::Reentry,
            ret: RetMechanism::AsIb,
            flags: FlagsPolicy::Always,
            link_fragments: true,
            cache_limit: None,
            instrument_blocks: false,
            elide_direct_jumps: false,
            ibtc_ways: 1,
            policy: DispatchPolicy::default(),
        }
    }

    /// Shared, inlined IBTC of the given size; returns handled as generic
    /// indirect branches.
    pub fn ibtc_inline(entries: u32) -> SdtConfig {
        SdtConfig {
            ib: IbMechanism::Ibtc {
                entries,
                scope: IbtcScope::Shared,
                placement: IbtcPlacement::Inline,
            },
            ret: RetMechanism::AsIb,
            flags: FlagsPolicy::Always,
            link_fragments: true,
            cache_limit: None,
            instrument_blocks: false,
            elide_direct_jumps: false,
            ibtc_ways: 1,
            policy: DispatchPolicy::default(),
        }
    }

    /// Shared IBTC with the lookup in a shared out-of-line routine.
    pub fn ibtc_out_of_line(entries: u32) -> SdtConfig {
        SdtConfig {
            ib: IbMechanism::Ibtc {
                entries,
                scope: IbtcScope::Shared,
                placement: IbtcPlacement::OutOfLine,
            },
            ..SdtConfig::ibtc_inline(entries)
        }
    }

    /// Sieve dispatch with the given bucket count.
    pub fn sieve(buckets: u32) -> SdtConfig {
        SdtConfig {
            ib: IbMechanism::Sieve { buckets },
            ..SdtConfig::ibtc_inline(0x1000)
        }
    }

    /// The paper's best all-round configuration on BTB-equipped machines:
    /// inlined shared IBTC plus a return cache.
    pub fn tuned(ibtc_entries: u32, rc_entries: u32) -> SdtConfig {
        SdtConfig {
            ret: RetMechanism::ReturnCache {
                entries: rc_entries,
            },
            ..SdtConfig::ibtc_inline(ibtc_entries)
        }
    }

    /// Checks size parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SdtError::BadConfig`] if any table size is not a power of
    /// two in `2..=65536`.
    pub fn validate(&self) -> Result<(), SdtError> {
        let check = |what: &'static str, n: u32| -> Result<(), SdtError> {
            if (2..=65536).contains(&n) && n.is_power_of_two() {
                Ok(())
            } else {
                Err(SdtError::BadConfig {
                    what,
                    detail: format!("{n} must be a power of two in 2..=65536"),
                })
            }
        };
        if let IbMechanism::Ibtc { entries, .. } = self.ib {
            check("ibtc entries", entries)?;
        }
        if let IbMechanism::Sieve { buckets } = self.ib {
            check("sieve buckets", buckets)?;
        }
        if let RetMechanism::ReturnCache { entries } = self.ret {
            check("return cache entries", entries)?;
        }
        if let RetMechanism::ShadowStack { depth } = self.ret {
            if !(2..=8192).contains(&depth) || !depth.is_power_of_two() {
                return Err(SdtError::BadConfig {
                    what: "shadow stack depth",
                    detail: format!("{depth} must be a power of two in 2..=8192"),
                });
            }
        }
        Self::check_ways(self.ibtc_ways, self.ib)?;
        for policy in [self.policy.jump, self.policy.call] {
            match policy {
                ClassPolicy::Inherit => {}
                ClassPolicy::Fixed { mech, ways } => {
                    if let IbMechanism::Ibtc { entries, .. } = mech {
                        check("ibtc entries", entries)?;
                    }
                    if let IbMechanism::Sieve { buckets } = mech {
                        check("sieve buckets", buckets)?;
                    }
                    Self::check_ways(ways, mech)?;
                }
                ClassPolicy::Adaptive {
                    ibtc_entries,
                    sieve_buckets,
                    sieve_arity,
                } => {
                    check("adaptive ibtc entries", ibtc_entries)?;
                    check("adaptive sieve buckets", sieve_buckets)?;
                    if !(1..=64).contains(&sieve_arity) {
                        return Err(SdtError::BadConfig {
                            what: "adaptive sieve arity",
                            detail: format!("{sieve_arity} must be in 1..=64"),
                        });
                    }
                }
                ClassPolicy::Predictive {
                    sieve_buckets,
                    probation,
                } => {
                    check("predictive sieve buckets", sieve_buckets)?;
                    if !(1..=65536).contains(&probation) {
                        return Err(SdtError::BadConfig {
                            what: "predictive probation",
                            detail: format!("{probation} must be in 1..=65536"),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates an IBTC associativity against the mechanism it applies to.
    fn check_ways(ways: u8, mech: IbMechanism) -> Result<(), SdtError> {
        match ways {
            1 => Ok(()),
            2 => {
                if let IbMechanism::Ibtc {
                    entries, placement, ..
                } = mech
                {
                    if placement != IbtcPlacement::Inline {
                        return Err(SdtError::BadConfig {
                            what: "ibtc ways",
                            detail: "two-way IBTC requires inline lookup code".into(),
                        });
                    }
                    if entries < 4 {
                        return Err(SdtError::BadConfig {
                            what: "ibtc ways",
                            detail: "two-way IBTC needs at least 4 entries".into(),
                        });
                    }
                }
                Ok(())
            }
            other => Err(SdtError::BadConfig {
                what: "ibtc ways",
                detail: format!("{other} must be 1 or 2"),
            }),
        }
    }

    /// Stable label for one mechanism, shared by [`SdtConfig::describe`]
    /// and the per-class policy grammar.
    pub(crate) fn mech_label(mech: IbMechanism) -> String {
        match mech {
            IbMechanism::Reentry => "reentry".to_string(),
            IbMechanism::Ibtc {
                entries,
                scope,
                placement,
            } => format!(
                "ibtc({entries},{},{})",
                match scope {
                    IbtcScope::Shared => "shared",
                    IbtcScope::PerSite => "per-site",
                },
                match placement {
                    IbtcPlacement::Inline => "inline",
                    IbtcPlacement::OutOfLine => "outline",
                }
            ),
            IbMechanism::Sieve { buckets } => format!("sieve({buckets})"),
        }
    }

    /// Stable label for one class policy (`None` for
    /// [`ClassPolicy::Inherit`], which adds nothing to the description).
    pub(crate) fn policy_label(policy: ClassPolicy) -> Option<String> {
        match policy {
            ClassPolicy::Inherit => None,
            ClassPolicy::Fixed { mech, ways } => {
                let ways = if ways == 2 { "x2" } else { "" };
                Some(format!("{}{ways}", Self::mech_label(mech)))
            }
            ClassPolicy::Adaptive {
                ibtc_entries,
                sieve_buckets,
                sieve_arity,
            } => Some(format!(
                "adaptive({ibtc_entries},{sieve_buckets},{sieve_arity})"
            )),
            ClassPolicy::Predictive {
                sieve_buckets,
                probation,
            } => Some(format!("predictive({sieve_buckets},{probation})")),
        }
    }

    /// A short, stable description such as `ibtc(4096,shared,inline)+rc(512)`,
    /// used as a row label by the experiment binaries. Non-default class
    /// policies append `+jump=…`/`+call=…`; the all-inherit default appends
    /// nothing, so legacy configurations keep their historical labels (and
    /// their memoization/baseline keys).
    pub fn describe(&self) -> String {
        let ib = Self::mech_label(self.ib);
        let ret = match self.ret {
            RetMechanism::AsIb => String::new(),
            RetMechanism::ReturnCache { entries } => format!("+rc({entries})"),
            RetMechanism::FastReturn => "+fastret".to_string(),
            RetMechanism::ShadowStack { depth } => format!("+shadow({depth})"),
        };
        let flags = match self.flags {
            FlagsPolicy::Always => "",
            FlagsPolicy::None => "+noflags",
        };
        let link = if self.link_fragments { "" } else { "+nolink" };
        let cache = match self.cache_limit {
            Some(bytes) => format!("+cache({bytes})"),
            None => String::new(),
        };
        let instr = if self.instrument_blocks {
            "+bbcount"
        } else {
            ""
        };
        let elide = if self.elide_direct_jumps {
            "+elide"
        } else {
            ""
        };
        let ways = if self.ibtc_ways == 2 { "+2way" } else { "" };
        let mut policy = String::new();
        for (label, class) in [("jump", self.policy.jump), ("call", self.policy.call)] {
            if let Some(spec) = Self::policy_label(class) {
                policy.push_str(&format!("+{label}={spec}"));
            }
        }
        format!("{ib}{ret}{flags}{link}{cache}{instr}{elide}{ways}{policy}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            SdtConfig::reentry(),
            SdtConfig::ibtc_inline(2),
            SdtConfig::ibtc_out_of_line(65536),
            SdtConfig::sieve(16),
            SdtConfig::tuned(4096, 512),
        ] {
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn bad_sizes_rejected() {
        assert!(SdtConfig::ibtc_inline(0).validate().is_err());
        assert!(SdtConfig::ibtc_inline(1).validate().is_err());
        assert!(SdtConfig::ibtc_inline(100).validate().is_err());
        assert!(SdtConfig::ibtc_inline(1 << 17).validate().is_err());
        assert!(SdtConfig::sieve(3).validate().is_err());
        let mut cfg = SdtConfig::reentry();
        cfg.ret = RetMechanism::ReturnCache { entries: 7 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(SdtConfig::reentry().describe(), "reentry");
        assert_eq!(
            SdtConfig::ibtc_inline(4096).describe(),
            "ibtc(4096,shared,inline)"
        );
        assert_eq!(
            SdtConfig::tuned(4096, 512).describe(),
            "ibtc(4096,shared,inline)+rc(512)"
        );
        let mut cfg = SdtConfig::sieve(256);
        cfg.flags = FlagsPolicy::None;
        cfg.link_fragments = false;
        assert_eq!(cfg.describe(), "sieve(256)+noflags+nolink");
    }

    #[test]
    fn inherit_policy_keeps_legacy_labels() {
        // The memoization/baseline keys embed describe(); the default
        // policy must not perturb them.
        let mut cfg = SdtConfig::tuned(4096, 512);
        assert!(cfg.policy.is_inherit());
        assert_eq!(cfg.describe(), "ibtc(4096,shared,inline)+rc(512)");
        cfg.policy.call = ClassPolicy::Fixed {
            mech: IbMechanism::Sieve { buckets: 1024 },
            ways: 1,
        };
        assert_eq!(
            cfg.describe(),
            "ibtc(4096,shared,inline)+rc(512)+call=sieve(1024)"
        );
    }

    #[test]
    fn policy_describe_covers_all_variants() {
        let mut cfg = SdtConfig::reentry();
        cfg.policy.jump = ClassPolicy::Adaptive {
            ibtc_entries: 512,
            sieve_buckets: 1024,
            sieve_arity: 8,
        };
        cfg.policy.call = ClassPolicy::Fixed {
            mech: IbMechanism::Ibtc {
                entries: 512,
                scope: IbtcScope::Shared,
                placement: IbtcPlacement::Inline,
            },
            ways: 2,
        };
        assert_eq!(
            cfg.describe(),
            "reentry+jump=adaptive(512,1024,8)+call=ibtc(512,shared,inline)x2"
        );
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn degenerate_policy_params_rejected() {
        let mut cfg = SdtConfig::reentry();
        cfg.policy.jump = ClassPolicy::Fixed {
            mech: IbMechanism::Ibtc {
                entries: 100,
                scope: IbtcScope::Shared,
                placement: IbtcPlacement::Inline,
            },
            ways: 1,
        };
        assert!(
            cfg.validate().is_err(),
            "non-power-of-two per-class entries"
        );

        cfg.policy.jump = ClassPolicy::Fixed {
            mech: IbMechanism::Ibtc {
                entries: 2,
                scope: IbtcScope::Shared,
                placement: IbtcPlacement::Inline,
            },
            ways: 2,
        };
        assert!(
            cfg.validate().is_err(),
            "two-way table smaller than one set"
        );

        cfg.policy.jump = ClassPolicy::Adaptive {
            ibtc_entries: 512,
            sieve_buckets: 1024,
            sieve_arity: 0,
        };
        assert!(cfg.validate().is_err(), "zero promotion arity");

        cfg.policy.jump = ClassPolicy::Adaptive {
            ibtc_entries: 0,
            sieve_buckets: 1024,
            sieve_arity: 8,
        };
        assert!(cfg.validate().is_err(), "zero-entry adaptive ibtc");
    }
}
