//! Read-only cache metadata export: everything a host-side tool needs to
//! audit the emitted fragment cache without reaching into translator
//! internals — stub addresses, strategy bindings and their tables,
//! fragment entry points, exit trampolines, and adaptive-site stages.
//!
//! The primary consumer is the `strata-analysis` static checker, which
//! lifts the cache into a CFG and runs dataflow lints over it. The export
//! is a *snapshot*: build it after the run whose cache you want to audit.

use strata_machine::layout;

use crate::config::BranchClass;
use crate::fragment::{FragKind, Site};
use crate::sdt::Sdt;
use crate::strategy::adaptive::AdaptiveStage;
use crate::tables::TableRef;

/// What a lookup table's entries mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Tagged IBTC sets: `{tag, fragment}` pairs (`ways` pairs per set).
    IbtcTagged {
        /// Set associativity (1 or 2).
        ways: u8,
    },
    /// Sieve bucket heads: 4-byte cache addresses of stanza chains (cold
    /// buckets point at the binding's miss glue).
    SieveBuckets,
    /// Tagless return cache: 4-byte cache addresses of return-point
    /// prologues (cold slots point at the `rc_miss` stub).
    ReturnCache,
}

/// A guest lookup table: location, shape, and meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableMeta {
    /// Guest base address.
    pub base: u32,
    /// `sets - 1` (the hash mask every probe applies).
    pub mask: u32,
    /// Bytes per set (4, 8, or 16).
    pub entry_bytes: u32,
    /// Entry interpretation.
    pub kind: TableKind,
}

impl TableMeta {
    fn from_ref(t: TableRef, kind: TableKind) -> TableMeta {
        TableMeta {
            base: t.base,
            mask: t.mask,
            entry_bytes: t.entry_bytes,
            kind,
        }
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.mask + 1) * self.entry_bytes
    }

    /// The probe hash: `(addr >> 2) & mask`.
    pub fn index_of(&self, app_addr: u32) -> u32 {
        (app_addr >> 2) & self.mask
    }
}

/// Addresses of the shared runtime stubs (see [`crate::protocol`] for the
/// conventions each expects on entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StubsMeta {
    /// Full restore ending `jmem [SLOT_RESUME]`.
    pub restore: u32,
    /// Partial (bulk-only) restore for return-cache misses.
    pub rc_restore: u32,
    /// Miss tail entered with the flags word already on the stack.
    pub miss_tail_stack_flags: u32,
    /// Miss tail entered with application flags still live.
    pub miss_tail_reg_flags: u32,
    /// Shared (site-less) miss glue.
    pub shared_miss_glue: u32,
    /// No-fill miss glue (shadow-stack fallbacks).
    pub nofill_miss_glue: u32,
    /// Return-cache miss stub.
    pub rc_miss: u32,
}

/// One strategy binding's public face.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindMeta {
    /// Binding index (what [`CacheMeta::class_bind`] points into).
    pub index: usize,
    /// Registry id (`"reentry"`, `"ibtc"`, `"sieve"`, `"adaptive"`).
    pub id: &'static str,
    /// Parameterized label.
    pub describe: String,
    /// The binding's fixed shared table, if any.
    pub table: Option<TableMeta>,
    /// Per-binding miss glue (multi-bind policies only).
    pub glue: Option<u32>,
    /// Out-of-line lookup routine, if the strategy emits one.
    pub lookup_routine: Option<u32>,
}

/// One translated fragment's addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentMeta {
    /// Application address the fragment translates.
    pub app_addr: u32,
    /// Entry kind (body, or return-point with verification prologue).
    pub kind: FragKind,
    /// Entry address in the cache.
    pub entry: u32,
    /// Restore-sequence address (return points; equals `entry` for bodies).
    pub restore_entry: u32,
    /// First body instruction.
    pub body: u32,
}

/// One direct-branch exit trampoline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitSiteMeta {
    /// Application target the exit resolves.
    pub target: u32,
    /// Trampoline head (patched into a direct jump once linked).
    pub patch_addr: u32,
}

/// An adaptive dispatch site's current stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveStageMeta {
    /// Single-target inline probe; the two patchable `li` pair addresses.
    Inline {
        /// `li` pair holding the expected target tag.
        tag_li: u32,
        /// `li` pair holding the target's fragment address.
        frag_li: u32,
    },
    /// Promoted to a private direct-mapped IBTC.
    Ibtc {
        /// The site's private table.
        table: TableMeta,
    },
    /// Promoted to the binding's shared sieve.
    Sieve,
    /// Predictive observation: the probe is a bare jump into the site
    /// miss path while the translator tallies target frequencies.
    Observe,
}

/// One adaptive dispatch site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveSiteMeta {
    /// The patchable `jmp` heading the site's probe.
    pub entry_jmp: u32,
    /// Current promotion stage.
    pub stage: AdaptiveStageMeta,
}

/// A read-only snapshot of the translator's cache bookkeeping, built by
/// [`Sdt::cache_meta`].
#[derive(Debug, Clone)]
pub struct CacheMeta {
    /// Fragment-cache base address.
    pub cache_base: u32,
    /// Cache bytes occupied.
    pub cache_used: u32,
    /// Cursor right after the shared stubs (the flush point): everything
    /// below it is stub code, everything at or above it is fragments and
    /// per-site dispatch code.
    pub post_stub_cursor: u32,
    /// The program's entry application address.
    pub entry_app: u32,
    /// Application code range `[base, end)`.
    pub app_code: (u32, u32),
    /// Guest table-region bounds `[base, limit)` (bump-allocated tables
    /// and instrumentation counters live here).
    pub table_region: (u32, u32),
    /// Shared stub addresses.
    pub stubs: StubsMeta,
    /// Strategy bindings, in binding order.
    pub binds: Vec<BindMeta>,
    /// Class→binding map: `[jump (also ret-as-IB), call]`.
    pub class_bind: [usize; 2],
    /// Every translated fragment, sorted by entry address.
    pub fragments: Vec<FragmentMeta>,
    /// Every direct-branch exit trampoline.
    pub exit_sites: Vec<ExitSiteMeta>,
    /// Per-site IBTC tables (strategies with [`crate::IbtcScope::PerSite`]).
    pub ib_site_tables: Vec<TableMeta>,
    /// Adaptive dispatch sites with their promotion stages.
    pub adaptive_sites: Vec<AdaptiveSiteMeta>,
    /// The return cache, when the return mechanism uses one.
    pub rc_table: Option<TableMeta>,
    /// Shadow return stack `(base, byte mask)`, when enabled.
    pub shadow: Option<(u32, u32)>,
}

impl CacheMeta {
    /// Every table the emitted code may probe, including per-site and
    /// adaptive-stage tables.
    pub fn all_tables(&self) -> Vec<TableMeta> {
        let mut out: Vec<TableMeta> = self.binds.iter().filter_map(|b| b.table).collect();
        out.extend(self.ib_site_tables.iter().copied());
        out.extend(self.adaptive_sites.iter().filter_map(|s| match s.stage {
            AdaptiveStageMeta::Ibtc { table } => Some(table),
            _ => None,
        }));
        out.extend(self.rc_table);
        out
    }

    /// The miss glue serving binding `index`: its own glue stub under a
    /// multi-bind policy, the shared glue otherwise.
    pub fn glue_for(&self, index: usize) -> u32 {
        self.binds[index]
            .glue
            .unwrap_or(self.stubs.shared_miss_glue)
    }
}

impl Sdt {
    /// Exports a read-only snapshot of the cache's structural metadata for
    /// host-side tooling (disassemblers, the `strata-analysis` checker).
    pub fn cache_meta(&self) -> CacheMeta {
        let st = self.state();
        let s = st.stubs;
        let stubs = StubsMeta {
            restore: s.restore,
            rc_restore: s.rc_restore,
            miss_tail_stack_flags: s.miss_tail_stack_flags,
            miss_tail_reg_flags: s.miss_tail_reg_flags,
            shared_miss_glue: s.shared_miss_glue,
            nofill_miss_glue: s.nofill_miss_glue,
            rc_miss: s.rc_miss,
        };

        let binds = st
            .binds
            .iter()
            .enumerate()
            .map(|(index, b)| {
                let id = b.strategy.id();
                let table = b.table.map(|t| {
                    let kind = match id {
                        "ibtc" => TableKind::IbtcTagged {
                            ways: b.strategy.site_table_geometry().map_or(1, |(_, w)| w),
                        },
                        // The sieve's bucket table and the adaptive
                        // promotion sieve share a shape.
                        _ => TableKind::SieveBuckets,
                    };
                    TableMeta::from_ref(t, kind)
                });
                BindMeta {
                    index,
                    id,
                    describe: b.strategy.describe(),
                    table,
                    glue: b.glue,
                    lookup_routine: b.lookup_routine,
                }
            })
            .collect();

        let mut fragments: Vec<FragmentMeta> = st
            .map
            .iter()
            .map(|(&(app_addr, kind), f)| FragmentMeta {
                app_addr,
                kind,
                entry: f.entry,
                restore_entry: f.restore_entry,
                body: f.body,
            })
            .collect();
        fragments.sort_by_key(|f| f.entry);

        let mut exit_sites = Vec::new();
        let mut ib_site_tables = Vec::new();
        for site in &st.sites {
            match *site {
                Site::Exit { target, patch_addr } => {
                    exit_sites.push(ExitSiteMeta { target, patch_addr });
                }
                Site::Ib {
                    bind,
                    table: Some(base),
                } => {
                    if let Some((entries, ways)) =
                        st.binds[bind as usize].strategy.site_table_geometry()
                    {
                        if let Ok(t) = crate::dispatch::ibtc_table_ref(base, entries, ways) {
                            ib_site_tables
                                .push(TableMeta::from_ref(t, TableKind::IbtcTagged { ways }));
                        }
                    }
                }
                Site::Ib { table: None, .. } | Site::Adaptive { .. } => {}
            }
        }

        let adaptive_sites = st
            .adaptive
            .iter()
            .map(|a| AdaptiveSiteMeta {
                entry_jmp: a.entry_jmp,
                stage: match a.stage {
                    AdaptiveStage::Inline { tag_li, frag_li } => {
                        AdaptiveStageMeta::Inline { tag_li, frag_li }
                    }
                    AdaptiveStage::Ibtc { table } => AdaptiveStageMeta::Ibtc {
                        table: TableMeta::from_ref(table, TableKind::IbtcTagged { ways: 1 }),
                    },
                    AdaptiveStage::Sieve => AdaptiveStageMeta::Sieve,
                    AdaptiveStage::Observe => AdaptiveStageMeta::Observe,
                },
            })
            .collect();

        CacheMeta {
            cache_base: layout::CACHE_BASE,
            cache_used: st.cache.used_bytes(),
            post_stub_cursor: st.post_stub_cursor,
            entry_app: self.entry_app(),
            app_code: self.app_code_range(),
            table_region: (layout::TABLES_BASE, layout::TABLES_END),
            stubs,
            binds,
            class_bind: st.class_bind,
            fragments,
            exit_sites,
            ib_site_tables,
            adaptive_sites,
            rc_table: st
                .rc_tab
                .map(|t| TableMeta::from_ref(t, TableKind::ReturnCache)),
            shadow: st.shadow,
        }
    }

    /// The strategy binding index serving `class` under the active policy.
    pub fn bind_for_class(&self, class: BranchClass) -> usize {
        self.state().bind_for(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SdtConfig;
    use strata_arch::ArchProfile;
    use strata_asm::assemble;
    use strata_machine::{layout, Program};

    fn run(src: &str, cfg: SdtConfig) -> Sdt {
        let code = assemble(layout::APP_BASE, src).unwrap();
        let program = Program::new("t", code, Vec::new());
        let mut sdt = Sdt::new(cfg, &program).unwrap();
        sdt.run(ArchProfile::x86_like(), 1_000_000).unwrap();
        sdt
    }

    const IB_SRC: &str = "li r9, t\njr r9\nt:\nli r4, 1\ntrap 0x1\nhalt\n";

    #[test]
    fn meta_reports_stubs_fragments_and_binds() {
        let sdt = run(IB_SRC, SdtConfig::ibtc_inline(64));
        let m = sdt.cache_meta();
        assert_eq!(m.cache_base, layout::CACHE_BASE);
        assert_eq!(m.cache_used, sdt.cache_used_bytes());
        assert!(m.post_stub_cursor > m.cache_base);
        assert_eq!(m.binds.len(), 1);
        assert_eq!(m.binds[0].id, "ibtc");
        let t = m.binds[0].table.expect("shared IBTC allocated");
        assert_eq!(t.kind, TableKind::IbtcTagged { ways: 1 });
        assert_eq!(t.mask, 63);
        assert_eq!(m.fragments.len(), sdt.fragments());
        // Fragment entries are sorted and all inside the used cache.
        for w in m.fragments.windows(2) {
            assert!(w[0].entry < w[1].entry);
        }
        for f in &m.fragments {
            assert!(f.entry >= m.post_stub_cursor && f.entry < m.cache_base + m.cache_used);
        }
        // Stubs precede the flush point.
        assert!(m.stubs.restore < m.post_stub_cursor);
        assert!(m.stubs.rc_miss < m.post_stub_cursor);
    }

    #[test]
    fn per_site_tables_surface_with_geometry() {
        let cfg = SdtConfig {
            ib: crate::IbMechanism::Ibtc {
                entries: 16,
                scope: crate::IbtcScope::PerSite,
                placement: crate::IbtcPlacement::Inline,
            },
            ..SdtConfig::ibtc_inline(64)
        };
        let sdt = run(IB_SRC, cfg);
        let m = sdt.cache_meta();
        assert!(!m.ib_site_tables.is_empty());
        for t in &m.ib_site_tables {
            assert_eq!(t.kind, TableKind::IbtcTagged { ways: 1 });
            assert_eq!(t.mask, 15);
            assert!(t.base >= m.table_region.0 && t.base < m.table_region.1);
        }
    }

    #[test]
    fn exit_sites_and_rc_table_surface() {
        let sdt = run(
            "call f\nhalt\nf:\nli r4, 2\ntrap 0x1\nret\n",
            SdtConfig::tuned(64, 64),
        );
        let m = sdt.cache_meta();
        assert!(!m.exit_sites.is_empty());
        let rc = m.rc_table.expect("return cache allocated");
        assert_eq!(rc.kind, TableKind::ReturnCache);
        assert_eq!(rc.entry_bytes, 4);
        assert!(m.all_tables().iter().any(|t| t.base == rc.base));
    }
}
