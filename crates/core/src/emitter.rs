use strata_isa::{encode, Instr, Reg};
use strata_machine::Memory;

use crate::{Origin, SdtError};

/// Per-word execution marker used for dispatch-rate accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum Mark {
    #[default]
    None,
    /// First instruction of an indirect-jump dispatch sequence.
    JumpEntry,
    /// First instruction of an indirect-call dispatch sequence.
    CallEntry,
    /// First instruction of a return dispatch sequence.
    RetEntry,
}

/// The fragment cache: an emit cursor over a guest-memory region, plus
/// per-word [`Origin`] tags and execution [`Mark`]s.
///
/// All methods take the guest [`Memory`] explicitly so the cache
/// bookkeeping and the machine can be borrowed independently.
#[derive(Debug)]
pub(crate) struct Cache {
    base: u32,
    cursor: u32,
    limit: u32,
    origins: Vec<Origin>,
    marks: Vec<Mark>,
}

impl Cache {
    pub fn new(base: u32, bytes: u32) -> Cache {
        let words = (bytes / 4) as usize;
        Cache {
            base,
            cursor: base,
            limit: base + bytes,
            origins: vec![Origin::App; words],
            marks: vec![Mark::None; words],
        }
    }

    /// Address the next emitted instruction will occupy.
    pub fn addr(&self) -> u32 {
        self.cursor
    }

    /// Bytes of cache space used so far.
    pub fn used_bytes(&self) -> u32 {
        self.cursor - self.base
    }

    /// Resets the emit cursor to `addr` (a flush), clearing the origin
    /// tags and marks of everything at or beyond it. Stubs emitted below
    /// `addr` survive.
    pub fn reset_to(&mut self, addr: u32) {
        debug_assert!(addr >= self.base && addr <= self.limit && addr.is_multiple_of(4));
        let first = ((addr - self.base) / 4) as usize;
        for slot in first..((self.cursor - self.base) / 4) as usize {
            self.origins[slot] = Origin::App;
            self.marks[slot] = Mark::None;
        }
        self.cursor = addr;
    }

    #[inline]
    fn slot(&self, addr: u32) -> usize {
        debug_assert!(addr >= self.base && addr < self.limit && addr.is_multiple_of(4));
        ((addr - self.base) / 4) as usize
    }

    /// Origin tag of the instruction at `pc`, if `pc` is inside the cache.
    #[inline]
    pub fn origin_at(&self, pc: u32) -> Option<Origin> {
        if pc >= self.base && pc < self.limit {
            Some(self.origins[((pc - self.base) / 4) as usize])
        } else {
            None
        }
    }

    /// Execution mark of the instruction at `pc`.
    #[inline]
    pub fn mark_at(&self, pc: u32) -> Mark {
        if pc >= self.base && pc < self.limit {
            self.marks[((pc - self.base) / 4) as usize]
        } else {
            Mark::None
        }
    }

    /// Marks the instruction at `addr` (typically a dispatch entry).
    pub fn set_mark(&mut self, addr: u32, mark: Mark) {
        let slot = self.slot(addr);
        self.marks[slot] = mark;
    }

    /// Emits one instruction, returning its address.
    ///
    /// # Errors
    ///
    /// Returns [`SdtError::CacheFull`] when the region is exhausted.
    pub fn emit(
        &mut self,
        mem: &mut Memory,
        instr: Instr,
        origin: Origin,
    ) -> Result<u32, SdtError> {
        if self.cursor >= self.limit {
            return Err(SdtError::CacheFull {
                capacity: self.limit - self.base,
            });
        }
        let addr = self.cursor;
        mem.write_u32(addr, encode(&instr))?;
        let slot = self.slot(addr);
        self.origins[slot] = origin;
        self.cursor += 4;
        Ok(addr)
    }

    /// Emits a `lui`+`ori` pair loading `value` into `rd`; returns the
    /// address of the `lui` (pass it to [`Cache::patch_li`] to change the
    /// constant later).
    ///
    /// # Errors
    ///
    /// Returns [`SdtError::CacheFull`] when the region is exhausted.
    pub fn emit_li(
        &mut self,
        mem: &mut Memory,
        rd: Reg,
        value: u32,
        origin: Origin,
    ) -> Result<u32, SdtError> {
        let at = self.emit(
            mem,
            Instr::Lui {
                rd,
                imm: (value >> 16) as u16,
            },
            origin,
        )?;
        self.emit(
            mem,
            Instr::Ori {
                rd,
                rs1: rd,
                imm: (value & 0xFFFF) as u16,
            },
            origin,
        )?;
        Ok(at)
    }

    /// Overwrites the instruction at `addr` (used for fragment linking),
    /// optionally retagging its origin.
    pub fn patch(
        &mut self,
        mem: &mut Memory,
        addr: u32,
        instr: Instr,
        origin: Option<Origin>,
    ) -> Result<(), SdtError> {
        mem.write_u32(addr, encode(&instr))?;
        if let Some(o) = origin {
            let slot = self.slot(addr);
            self.origins[slot] = o;
        }
        Ok(())
    }

    /// Rewrites the constant of a `lui`+`ori` pair previously emitted with
    /// [`Cache::emit_li`] for register `rd`.
    pub fn patch_li(
        &mut self,
        mem: &mut Memory,
        at: u32,
        rd: Reg,
        value: u32,
    ) -> Result<(), SdtError> {
        mem.write_u32(
            at,
            encode(&Instr::Lui {
                rd,
                imm: (value >> 16) as u16,
            }),
        )?;
        mem.write_u32(
            at + 4,
            encode(&Instr::Ori {
                rd,
                rs1: rd,
                imm: (value & 0xFFFF) as u16,
            }),
        )?;
        Ok(())
    }

    /// Patches the conditional branch at `branch_addr` (emitted with a
    /// placeholder offset) to target `target_addr`.
    ///
    /// # Panics
    ///
    /// Panics if the distance does not fit the i16 word-offset field —
    /// dispatch sequences are short, so this is a code-generator bug, not a
    /// runtime condition.
    pub fn patch_branch(
        &mut self,
        mem: &mut Memory,
        branch_addr: u32,
        template: Instr,
        target_addr: u32,
    ) -> Result<(), SdtError> {
        let delta = (target_addr as i64 - (branch_addr as i64 + 4)) / 4;
        let off = i16::try_from(delta).expect("intra-sequence branch distance fits i16");
        let patched = match template {
            Instr::Beq { .. } => Instr::Beq { off },
            Instr::Bne { .. } => Instr::Bne { off },
            Instr::Blt { .. } => Instr::Blt { off },
            Instr::Bge { .. } => Instr::Bge { off },
            Instr::Bltu { .. } => Instr::Bltu { off },
            Instr::Bgeu { .. } => Instr::Bgeu { off },
            other => unreachable!("patch_branch on non-branch {other:?}"),
        };
        mem.write_u32(branch_addr, encode(&patched))?;
        Ok(())
    }
}

/// Bump allocator over the guest lookup-table region.
#[derive(Debug)]
pub(crate) struct TableAlloc {
    cursor: u32,
    limit: u32,
}

impl TableAlloc {
    pub fn new(base: u32, limit: u32) -> TableAlloc {
        TableAlloc {
            cursor: base,
            limit,
        }
    }

    /// Allocates `bytes` aligned to `align` (a power of two).
    ///
    /// # Errors
    ///
    /// Returns [`SdtError::TableSpaceExhausted`] when the region is full.
    pub fn alloc(&mut self, bytes: u32, align: u32) -> Result<u32, SdtError> {
        debug_assert!(align.is_power_of_two());
        let start = (self.cursor + align - 1) & !(align - 1);
        let end = start.saturating_add(bytes);
        if end > self.limit {
            return Err(SdtError::TableSpaceExhausted { requested: bytes });
        }
        self.cursor = end;
        Ok(start)
    }

    /// Bytes of table space used.
    pub fn used_bytes(&self) -> u32 {
        self.cursor
    }

    /// Resets the bump pointer to `addr` (frees every allocation at or
    /// beyond it).
    pub fn reset_to(&mut self, addr: u32) {
        debug_assert!(addr <= self.cursor);
        self.cursor = addr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_isa::decode;

    #[test]
    fn emit_advances_and_tags() {
        let mut mem = Memory::new(0x1000);
        let mut cache = Cache::new(0x100, 0x100);
        let a0 = cache.emit(&mut mem, Instr::Nop, Origin::App).unwrap();
        let a1 = cache.emit(&mut mem, Instr::Halt, Origin::Dispatch).unwrap();
        assert_eq!(a0, 0x100);
        assert_eq!(a1, 0x104);
        assert_eq!(cache.origin_at(0x100), Some(Origin::App));
        assert_eq!(cache.origin_at(0x104), Some(Origin::Dispatch));
        assert_eq!(cache.origin_at(0x99), None);
        assert_eq!(cache.used_bytes(), 8);
    }

    #[test]
    fn cache_full_detected() {
        let mut mem = Memory::new(0x1000);
        let mut cache = Cache::new(0x100, 8);
        cache.emit(&mut mem, Instr::Nop, Origin::App).unwrap();
        cache.emit(&mut mem, Instr::Nop, Origin::App).unwrap();
        assert!(matches!(
            cache.emit(&mut mem, Instr::Nop, Origin::App),
            Err(SdtError::CacheFull { .. })
        ));
    }

    #[test]
    fn li_emit_and_patch() {
        let mut mem = Memory::new(0x1000);
        let mut cache = Cache::new(0x100, 0x100);
        let at = cache
            .emit_li(&mut mem, Reg::R2, 0xAABB_CCDD, Origin::CallGlue)
            .unwrap();
        assert_eq!(
            decode(mem.read_u32(at).unwrap()).unwrap(),
            Instr::Lui {
                rd: Reg::R2,
                imm: 0xAABB
            }
        );
        cache.patch_li(&mut mem, at, Reg::R2, 0x1122_3344).unwrap();
        assert_eq!(
            decode(mem.read_u32(at + 4).unwrap()).unwrap(),
            Instr::Ori {
                rd: Reg::R2,
                rs1: Reg::R2,
                imm: 0x3344
            }
        );
    }

    #[test]
    fn branch_patching() {
        let mut mem = Memory::new(0x1000);
        let mut cache = Cache::new(0x100, 0x100);
        let b = cache
            .emit(&mut mem, Instr::Bne { off: 0 }, Origin::Dispatch)
            .unwrap();
        for _ in 0..3 {
            cache.emit(&mut mem, Instr::Nop, Origin::Dispatch).unwrap();
        }
        let target = cache.addr();
        cache.emit(&mut mem, Instr::Halt, Origin::Dispatch).unwrap();
        cache
            .patch_branch(&mut mem, b, Instr::Bne { off: 0 }, target)
            .unwrap();
        assert_eq!(
            decode(mem.read_u32(b).unwrap()).unwrap(),
            Instr::Bne { off: 3 }
        );
    }

    #[test]
    fn marks() {
        let mut mem = Memory::new(0x1000);
        let mut cache = Cache::new(0x100, 0x100);
        let a = cache.emit(&mut mem, Instr::Nop, Origin::Dispatch).unwrap();
        cache.set_mark(a, Mark::JumpEntry);
        assert_eq!(cache.mark_at(a), Mark::JumpEntry);
        assert_eq!(cache.mark_at(a + 4), Mark::None);
        assert_eq!(cache.mark_at(0), Mark::None);
    }

    #[test]
    fn table_alloc_alignment_and_exhaustion() {
        let mut t = TableAlloc::new(0x1004, 0x1100);
        let a = t.alloc(8, 16).unwrap();
        assert_eq!(a % 16, 0);
        assert!(a >= 0x1004);
        let b = t.alloc(8, 4).unwrap();
        assert!(b >= a + 8);
        assert!(matches!(
            t.alloc(0x1000, 4),
            Err(SdtError::TableSpaceExhausted { requested: 0x1000 })
        ));
    }
}
