//! Native (untranslated) execution — the baseline every slowdown is
//! measured against.

use strata_arch::{ArchModel, ArchProfile};
use strata_isa::{ControlKind, Reg};
use strata_machine::syscall::{SyscallState, SDT_TRAP_BASE};
use strata_machine::{
    layout, ExecTier, ExecutionObserver, Machine, Program, RetireEvent, StepOutcome,
};

use crate::SdtError;

/// Measurements from a native (untranslated) run of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeRun {
    /// Syscall checksum — the program's observable result.
    pub checksum: u32,
    /// Total cycles under the architecture model.
    pub total_cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Dynamic count of indirect jumps (`jr`, `jmem`).
    pub indirect_jumps: u64,
    /// Dynamic count of indirect calls (`callr`).
    pub indirect_calls: u64,
    /// Dynamic count of returns.
    pub returns: u64,
    /// Dynamic count of direct calls.
    pub direct_calls: u64,
    /// Dynamic count of conditional branches.
    pub cond_branches: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// Final register file (for state-equivalence checks in tests).
    pub regs: [u32; Reg::COUNT],
}

impl NativeRun {
    /// Dynamic count of all indirect branches (jumps + calls + returns) —
    /// the paper's "IB" count.
    pub fn indirect_branches(&self) -> u64 {
        self.indirect_jumps + self.indirect_calls + self.returns
    }
}

struct NativeObserver {
    model: ArchModel,
    indirect_jumps: u64,
    indirect_calls: u64,
    returns: u64,
    direct_calls: u64,
    cond_branches: u64,
}

impl ExecutionObserver for NativeObserver {
    #[inline]
    fn on_retire(&mut self, ev: &RetireEvent) {
        self.model.cost_of(ev);
        match ev.control.kind {
            ControlKind::Indirect => self.indirect_jumps += 1,
            ControlKind::Call if ev.control.indirect => self.indirect_calls += 1,
            ControlKind::Call => self.direct_calls += 1,
            ControlKind::Return => self.returns += 1,
            ControlKind::Conditional => self.cond_branches += 1,
            _ => {}
        }
    }
}

/// Runs `program` directly (no translation) under the cost model for
/// `profile`.
///
/// # Errors
///
/// Returns [`SdtError::ReservedTrap`] if the program uses an SDT-reserved
/// trap code, and machine faults (including fuel exhaustion) as
/// [`SdtError::Machine`].
pub fn run_native(
    program: &Program,
    profile: ArchProfile,
    fuel: u64,
) -> Result<NativeRun, SdtError> {
    run_native_tiered(program, profile, fuel, ExecTier::Interp)
}

/// [`run_native`] with an explicit execution tier.
///
/// The tier decides how the host executes guest instructions (pure
/// interpretation vs direct-threaded superblock translation of hot
/// regions); the retire-event stream — and therefore every charged
/// cycle, cache access, and predictor outcome — is bit-identical across
/// tiers, so tier choice can never move a reported metric. Only
/// wall-clock changes.
///
/// # Errors
///
/// Same contract as [`run_native`].
pub fn run_native_tiered(
    program: &Program,
    profile: ArchProfile,
    fuel: u64,
    tier: ExecTier,
) -> Result<NativeRun, SdtError> {
    let mut machine = Machine::new(layout::DEFAULT_MEM_BYTES);
    program.load(&mut machine)?;
    machine.set_tier(tier);
    let mut syscalls = SyscallState::new();
    let mut obs = NativeObserver {
        model: ArchModel::new(profile),
        indirect_jumps: 0,
        indirect_calls: 0,
        returns: 0,
        direct_calls: 0,
        cond_branches: 0,
    };

    let mut used = 0u64;
    loop {
        let before = obs.model.stats().instructions;
        match machine.run(&mut obs, fuel.saturating_sub(used))? {
            StepOutcome::Halted => break,
            StepOutcome::Trap(code) => {
                if code >= SDT_TRAP_BASE {
                    return Err(SdtError::ReservedTrap {
                        code,
                        pc: machine.cpu().pc.wrapping_sub(4),
                    });
                }
                syscalls.handle(code, &machine);
            }
            StepOutcome::Running => unreachable!("run returns only on halt/trap/error"),
        }
        used += obs.model.stats().instructions - before;
    }

    Ok(NativeRun {
        checksum: syscalls.checksum(),
        total_cycles: obs.model.total_cycles(),
        instructions: obs.model.stats().instructions,
        indirect_jumps: obs.indirect_jumps,
        indirect_calls: obs.indirect_calls,
        returns: obs.returns,
        direct_calls: obs.direct_calls,
        cond_branches: obs.cond_branches,
        icache_misses: obs.model.icache().misses(),
        dcache_misses: obs.model.dcache().misses(),
        regs: *machine.cpu().regs(),
    })
}
