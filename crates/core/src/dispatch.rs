//! Emission of per-site indirect-branch dispatch sequences.
//!
//! Every sequence follows the register protocol documented in
//! [`crate::protocol`]: spill `r1`–`r3`, capture the target in `r1`,
//! optionally save flags, probe, and either transfer through
//! `jmem [SLOT_JUMP_TARGET]` (hit) or fall into a miss path that completes
//! a full context save and traps into the translator.
//!
//! The probe itself is owned by the branch class's bound
//! [`IbStrategy`](crate::strategy::IbStrategy); this module emits the
//! strategy-independent frame (prologue, call glue, flags push) and the
//! shared building blocks every probe composes (hash, hit epilogue, miss
//! paths).

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::{BranchClass, FlagsPolicy};
use crate::emitter::Mark;
use crate::fragment::Site;
use crate::protocol::{SLOT_JUMP_TARGET, SLOT_R1, SLOT_R2, SLOT_R3, SLOT_SITE};
use crate::sdt::SdtState;
use crate::tables::TableRef;
use crate::{Origin, SdtError};

/// Builds the [`TableRef`] for an IBTC allocation of `entries` total
/// entries under the given associativity (two-way tables pair entries into
/// 16-byte sets). Rejects degenerate shapes — zero, non-power-of-two, or
/// fewer entries than ways — instead of silently underflowing the mask.
pub(crate) fn ibtc_table_ref(base: u32, entries: u32, ways: u8) -> Result<TableRef, SdtError> {
    if entries == 0 || !entries.is_power_of_two() || entries < ways as u32 {
        return Err(SdtError::BadConfig {
            what: "ibtc table shape",
            detail: format!("{entries} entries x {ways} ways is degenerate"),
        });
    }
    Ok(if ways == 2 {
        TableRef {
            base,
            mask: entries / 2 - 1,
            entry_bytes: 16,
        }
    } else {
        TableRef {
            base,
            mask: entries - 1,
            entry_bytes: 8,
        }
    })
}

/// Where the dispatch sequence finds the application-space branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TargetSource {
    /// An indirect jump/call through a register.
    Reg(Reg),
    /// A return: the target is popped from the application stack.
    PoppedReturn,
    /// An application `jmem [addr]`: the target is loaded from memory.
    MemSlot(u32),
}

/// Return-address push glue emitted by indirect calls before dispatching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallPush {
    /// Not a call.
    None,
    /// Transparent mode: push the application return address.
    AppAddr(u32),
    /// Fast-return mode: push the *translated* return address. The
    /// constant is not yet known; the emitted `li` pair's address is
    /// returned for later patching.
    TranslatedPlaceholder,
    /// Shadow-stack mode: push the application return address on the
    /// application stack *and* an `(app, translated)` pair on the shadow
    /// stack. The translated constant's `li` address is returned for
    /// patching.
    AppAddrWithShadow(u32),
}

impl SdtState {
    /// Emits the generic indirect-branch dispatch sequence for `class`
    /// through its bound strategy. Returns the patch address of the
    /// translated-return `li` pair when `push` is
    /// [`CallPush::TranslatedPlaceholder`].
    pub(crate) fn emit_ib_dispatch(
        &mut self,
        mem: &mut Memory,
        source: TargetSource,
        push: CallPush,
        class: BranchClass,
    ) -> Result<Option<u32>, SdtError> {
        let d = Origin::Dispatch;
        let entry = self.emit_dispatch_prologue(mem, source, d)?;
        let mark = match class {
            BranchClass::Jump => Mark::JumpEntry,
            BranchClass::Call => Mark::CallEntry,
            BranchClass::Ret => Mark::RetEntry,
        };
        self.cache.set_mark(entry, mark);

        // Call glue: push the return address while r2 is free.
        let mut push_patch = None;
        match push {
            CallPush::None => {}
            CallPush::AppAddr(addr) => {
                self.cache.emit_li(mem, Reg::R2, addr, Origin::CallGlue)?;
                self.cache
                    .emit(mem, Instr::Push { rs: Reg::R2 }, Origin::CallGlue)?;
            }
            CallPush::TranslatedPlaceholder => {
                push_patch = Some(self.cache.emit_li(mem, Reg::R2, 0, Origin::CallGlue)?);
                self.cache
                    .emit(mem, Instr::Push { rs: Reg::R2 }, Origin::CallGlue)?;
            }
            CallPush::AppAddrWithShadow(addr) => {
                self.cache.emit_li(mem, Reg::R2, addr, Origin::CallGlue)?;
                self.cache
                    .emit(mem, Instr::Push { rs: Reg::R2 }, Origin::CallGlue)?;
                push_patch = Some(crate::strategy::shadow::emit_shadow_push(self, mem, addr)?);
            }
        }

        if self.cfg.flags == FlagsPolicy::Always {
            self.cache.emit(mem, Instr::Pushf, d)?;
        }

        let bind = self.bind_for(class);
        let strat = self.binds[bind].strategy.clone();
        strat.emit_probe(self, mem, bind, class)?;
        Ok(push_patch)
    }

    /// Spills `r1`–`r3` and captures the branch target in `r1`. Returns the
    /// sequence's first address (the dispatch entry, for marking).
    pub(crate) fn emit_dispatch_prologue(
        &mut self,
        mem: &mut Memory,
        source: TargetSource,
        d: Origin,
    ) -> Result<u32, SdtError> {
        let entry = self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R1,
                addr: SLOT_R1,
            },
            d,
        )?;
        match source {
            TargetSource::Reg(rs) => {
                self.cache.emit(mem, Instr::Mov { rd: Reg::R1, rs }, d)?;
            }
            TargetSource::PoppedReturn => {
                self.cache.emit(mem, Instr::Pop { rd: Reg::R1 }, d)?;
            }
            TargetSource::MemSlot(addr) => {
                self.cache.emit_li(mem, Reg::R1, addr, d)?;
                self.cache.emit(
                    mem,
                    Instr::Lw {
                        rd: Reg::R1,
                        rs1: Reg::R1,
                        off: 0,
                    },
                    d,
                )?;
            }
        }
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_R2,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_R3,
            },
            d,
        )?;
        Ok(entry)
    }

    /// Emits `r2 = table.base + ((r1 >> 2) & mask) << entry_shift` — the
    /// hash every mechanism shares. Tables aligned to 64 KiB load their
    /// base with a single `lui` (the shared tables are allocated that way;
    /// per-site tables pay the extra `ori`).
    pub(crate) fn emit_hash(
        &mut self,
        mem: &mut Memory,
        table: TableRef,
        entry_shift: u8,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        self.cache.emit(
            mem,
            Instr::Srli {
                rd: Reg::R2,
                rs1: Reg::R1,
                shamt: 2,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Andi {
                rd: Reg::R2,
                rs1: Reg::R2,
                imm: table.mask as u16,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Slli {
                rd: Reg::R2,
                rs1: Reg::R2,
                shamt: entry_shift,
            },
            d,
        )?;
        if table.base & 0xFFFF == 0 {
            self.cache.emit(
                mem,
                Instr::Lui {
                    rd: Reg::R3,
                    imm: (table.base >> 16) as u16,
                },
                d,
            )?;
        } else {
            self.cache.emit_li(mem, Reg::R3, table.base, d)?;
        }
        self.cache.emit(
            mem,
            Instr::Add {
                rd: Reg::R2,
                rs1: Reg::R2,
                rs2: Reg::R3,
            },
            d,
        )?;
        Ok(())
    }

    /// Emits the tag-compare probe of an inlined IBTC, the hit epilogue,
    /// and the miss path (per-site, or `miss_glue` for shared tables).
    pub(crate) fn emit_inline_ibtc_probe(
        &mut self,
        mem: &mut Memory,
        table: TableRef,
        site: Option<u32>,
        miss_glue: u32,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        self.emit_hash(mem, table, 3)?;
        self.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R2,
                off: 0,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Cmp {
                rs1: Reg::R3,
                rs2: Reg::R1,
            },
            d,
        )?;
        let bne = self.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        self.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R2,
                off: 4,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        self.emit_hit_epilogue(mem)?;
        let miss = self.cache.addr();
        self.cache
            .patch_branch(mem, bne, Instr::Bne { off: 0 }, miss)?;
        match site {
            Some(id) => self.emit_site_miss_path(mem, id)?,
            None => {
                self.cache
                    .emit(mem, Instr::Jmp { target: miss_glue }, Origin::ContextSwitch)?;
            }
        }
        Ok(())
    }

    /// Restores flags and `r1`–`r3`, then transfers through the jump slot.
    pub(crate) fn emit_hit_epilogue(&mut self, mem: &mut Memory) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        if self.cfg.flags == FlagsPolicy::Always {
            self.cache.emit(mem, Instr::Popf, d)?;
        }
        self.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R1,
                addr: SLOT_R1,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R2,
                addr: SLOT_R2,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Lwa {
                rd: Reg::R3,
                addr: SLOT_R3,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Jmem {
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        Ok(())
    }

    /// Emits a per-site miss path: record the site id and enter the
    /// stack-flags miss tail.
    pub(crate) fn emit_site_miss_path(
        &mut self,
        mem: &mut Memory,
        site: u32,
    ) -> Result<(), SdtError> {
        let o = Origin::ContextSwitch;
        self.cache.emit_li(mem, Reg::R2, site, o)?;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R2,
                addr: SLOT_SITE,
            },
            o,
        )?;
        self.cache.emit(
            mem,
            Instr::Jmp {
                target: self.stubs.miss_tail_stack_flags,
            },
            o,
        )?;
        Ok(())
    }

    /// Emits the two-way set-associative IBTC probe: way 0, then way 1,
    /// then the miss path. Each hit path carries its own epilogue so a
    /// way-0 hit pays nothing extra.
    pub(crate) fn emit_inline_ibtc_probe_2way(
        &mut self,
        mem: &mut Memory,
        table: TableRef,
        site: Option<u32>,
        miss_glue: u32,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        self.emit_hash(mem, table, 4)?;
        self.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R2,
                off: 0,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Cmp {
                rs1: Reg::R3,
                rs2: Reg::R1,
            },
            d,
        )?;
        let bne0 = self.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        self.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R2,
                off: 4,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        self.emit_hit_epilogue(mem)?;
        let try_way1 = self.cache.addr();
        self.cache
            .patch_branch(mem, bne0, Instr::Bne { off: 0 }, try_way1)?;
        self.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R2,
                off: 8,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Cmp {
                rs1: Reg::R3,
                rs2: Reg::R1,
            },
            d,
        )?;
        let bne1 = self.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        self.cache.emit(
            mem,
            Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::R2,
                off: 12,
            },
            d,
        )?;
        self.cache.emit(
            mem,
            Instr::Swa {
                rs: Reg::R3,
                addr: SLOT_JUMP_TARGET,
            },
            d,
        )?;
        self.emit_hit_epilogue(mem)?;
        let miss = self.cache.addr();
        self.cache
            .patch_branch(mem, bne1, Instr::Bne { off: 0 }, miss)?;
        match site {
            Some(id) => self.emit_site_miss_path(mem, id)?,
            None => {
                self.cache
                    .emit(mem, Instr::Jmp { target: miss_glue }, Origin::ContextSwitch)?;
            }
        }
        Ok(())
    }

    pub(crate) fn new_site(&mut self, site: Site) -> u32 {
        self.sites.push(site);
        (self.sites.len() - 1) as u32
    }
}
