//! Emission of per-site indirect-branch dispatch sequences.
//!
//! Every sequence follows the register protocol documented in
//! [`crate::protocol`]: spill `r1`–`r3`, capture the target in `r1`,
//! optionally save flags, probe, and either transfer through
//! `jmem [SLOT_JUMP_TARGET]` (hit) or fall into a miss path that completes
//! a full context save and traps into the translator.

use strata_isa::{Instr, Reg};
use strata_machine::Memory;

use crate::config::{FlagsPolicy, IbMechanism, IbtcPlacement, IbtcScope};
use crate::emitter::Mark;
use crate::fragment::Site;
use crate::protocol::{
    SLOT_JUMP_TARGET, SLOT_R1, SLOT_R2, SLOT_R3, SLOT_SHADOW_SP, SLOT_SITE,
};
use crate::sdt::SdtState;
use crate::tables::TableRef;
use crate::{Origin, SdtError};

/// Builds the [`TableRef`] for an IBTC allocation of `entries` total
/// entries under the given associativity (two-way tables pair entries into
/// 16-byte sets).
pub(crate) fn ibtc_table_ref(base: u32, entries: u32, ways: u8) -> TableRef {
    if ways == 2 {
        TableRef { base, mask: entries / 2 - 1, entry_bytes: 16 }
    } else {
        TableRef { base, mask: entries - 1, entry_bytes: 8 }
    }
}

/// Where the dispatch sequence finds the application-space branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TargetSource {
    /// An indirect jump/call through a register.
    Reg(Reg),
    /// A return: the target is popped from the application stack.
    PoppedReturn,
    /// An application `jmem [addr]`: the target is loaded from memory.
    MemSlot(u32),
}

/// Return-address push glue emitted by indirect calls before dispatching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallPush {
    /// Not a call.
    None,
    /// Transparent mode: push the application return address.
    AppAddr(u32),
    /// Fast-return mode: push the *translated* return address. The
    /// constant is not yet known; the emitted `li` pair's address is
    /// returned for later patching.
    TranslatedPlaceholder,
    /// Shadow-stack mode: push the application return address on the
    /// application stack *and* an `(app, translated)` pair on the shadow
    /// stack. The translated constant's `li` address is returned for
    /// patching.
    AppAddrWithShadow(u32),
}

impl SdtState {
    /// Emits the generic indirect-branch dispatch sequence for the
    /// configured [`IbMechanism`]. Returns the patch address of the
    /// translated-return `li` pair when `push` is
    /// [`CallPush::TranslatedPlaceholder`].
    pub(crate) fn emit_ib_dispatch(
        &mut self,
        mem: &mut Memory,
        source: TargetSource,
        push: CallPush,
        mark: Mark,
    ) -> Result<Option<u32>, SdtError> {
        let d = Origin::Dispatch;
        let entry = self.emit_dispatch_prologue(mem, source, d)?;
        self.cache.set_mark(entry, mark);

        // Call glue: push the return address while r2 is free.
        let mut push_patch = None;
        match push {
            CallPush::None => {}
            CallPush::AppAddr(addr) => {
                self.cache.emit_li(mem, Reg::R2, addr, Origin::CallGlue)?;
                self.cache.emit(mem, Instr::Push { rs: Reg::R2 }, Origin::CallGlue)?;
            }
            CallPush::TranslatedPlaceholder => {
                push_patch = Some(self.cache.emit_li(mem, Reg::R2, 0, Origin::CallGlue)?);
                self.cache.emit(mem, Instr::Push { rs: Reg::R2 }, Origin::CallGlue)?;
            }
            CallPush::AppAddrWithShadow(addr) => {
                self.cache.emit_li(mem, Reg::R2, addr, Origin::CallGlue)?;
                self.cache.emit(mem, Instr::Push { rs: Reg::R2 }, Origin::CallGlue)?;
                push_patch = Some(self.emit_shadow_push(mem, addr)?);
            }
        }

        if self.cfg.flags == FlagsPolicy::Always {
            self.cache.emit(mem, Instr::Pushf, d)?;
        }

        match self.cfg.ib {
            IbMechanism::Reentry => {
                let site = self.new_site(Site::IbSite { table: None });
                self.emit_site_miss_path(mem, site)?;
            }
            IbMechanism::Ibtc { entries, scope, placement } => match placement {
                IbtcPlacement::Inline => {
                    let (table, site) = match scope {
                        IbtcScope::Shared => {
                            (self.shared_ibtc.expect("shared IBTC allocated"), None)
                        }
                        IbtcScope::PerSite => {
                            let base = self.alloc.alloc(entries * 8, 16)?;
                            // The region may be recycled from before a
                            // cache flush; stale tags must not survive.
                            for i in 0..entries * 2 {
                                mem.write_u32(base + i * 4, 0)?;
                            }
                            let table = ibtc_table_ref(base, entries, self.cfg.ibtc_ways);
                            let site =
                                self.new_site(Site::IbSite { table: Some(base) });
                            (table, Some(site))
                        }
                    };
                    if self.cfg.ibtc_ways == 2 {
                        self.emit_inline_ibtc_probe_2way(mem, table, site)?;
                    } else {
                        self.emit_inline_ibtc_probe(mem, table, site)?;
                    }
                }
                IbtcPlacement::OutOfLine => {
                    let routine = self.stubs.ibtc_lookup.expect("out-of-line routine");
                    self.cache.emit(mem, Instr::Call { target: routine }, d)?;
                    self.emit_hit_epilogue(mem)?;
                }
            },
            IbMechanism::Sieve { .. } => {
                let table = self.sieve_tab.expect("sieve table allocated");
                self.emit_hash(mem, table, 2)?;
                self.cache.emit(mem, Instr::Lw { rd: Reg::R2, rs1: Reg::R2, off: 0 }, d)?;
                self.cache
                    .emit(mem, Instr::Swa { rs: Reg::R2, addr: SLOT_JUMP_TARGET }, d)?;
                self.cache.emit(mem, Instr::Jmem { addr: SLOT_JUMP_TARGET }, d)?;
            }
        }
        Ok(push_patch)
    }

    /// Emits the return-cache dispatch for a translated `ret`: pop the
    /// application return address, hash it, and jump *unconditionally*
    /// through the tagless return cache. Verification happens in the
    /// target fragment's prologue.
    pub(crate) fn emit_rc_dispatch(&mut self, mem: &mut Memory) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        let entry = self.emit_dispatch_prologue(mem, TargetSource::PoppedReturn, d)?;
        self.cache.set_mark(entry, Mark::RetEntry);
        if self.cfg.flags == FlagsPolicy::Always {
            self.cache.emit(mem, Instr::Pushf, d)?;
        }
        let table = self.rc_tab.expect("return cache allocated");
        self.emit_hash(mem, table, 2)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R2, rs1: Reg::R2, off: 0 }, d)?;
        // r1–r3 are dead until the target's restore sequence reloads them,
        // so the transfer can go straight through r2 — no jump slot needed.
        self.cache.emit(mem, Instr::Jr { rs: Reg::R2 }, d)?;
        Ok(())
    }

    /// Spills `r1`–`r3` and captures the branch target in `r1`. Returns the
    /// sequence's first address (the dispatch entry, for marking).
    fn emit_dispatch_prologue(
        &mut self,
        mem: &mut Memory,
        source: TargetSource,
        d: Origin,
    ) -> Result<u32, SdtError> {
        let entry = self.cache.emit(mem, Instr::Swa { rs: Reg::R1, addr: SLOT_R1 }, d)?;
        match source {
            TargetSource::Reg(rs) => {
                self.cache.emit(mem, Instr::Mov { rd: Reg::R1, rs }, d)?;
            }
            TargetSource::PoppedReturn => {
                self.cache.emit(mem, Instr::Pop { rd: Reg::R1 }, d)?;
            }
            TargetSource::MemSlot(addr) => {
                self.cache.emit_li(mem, Reg::R1, addr, d)?;
                self.cache.emit(mem, Instr::Lw { rd: Reg::R1, rs1: Reg::R1, off: 0 }, d)?;
            }
        }
        self.cache.emit(mem, Instr::Swa { rs: Reg::R2, addr: SLOT_R2 }, d)?;
        self.cache.emit(mem, Instr::Swa { rs: Reg::R3, addr: SLOT_R3 }, d)?;
        Ok(entry)
    }

    /// Emits `r2 = table.base + ((r1 >> 2) & mask) << entry_shift` — the
    /// hash every mechanism shares. Tables aligned to 64 KiB load their
    /// base with a single `lui` (the shared tables are allocated that way;
    /// per-site tables pay the extra `ori`).
    fn emit_hash(
        &mut self,
        mem: &mut Memory,
        table: TableRef,
        entry_shift: u8,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        self.cache.emit(mem, Instr::Srli { rd: Reg::R2, rs1: Reg::R1, shamt: 2 }, d)?;
        self.cache
            .emit(mem, Instr::Andi { rd: Reg::R2, rs1: Reg::R2, imm: table.mask as u16 }, d)?;
        self.cache
            .emit(mem, Instr::Slli { rd: Reg::R2, rs1: Reg::R2, shamt: entry_shift }, d)?;
        if table.base & 0xFFFF == 0 {
            self.cache
                .emit(mem, Instr::Lui { rd: Reg::R3, imm: (table.base >> 16) as u16 }, d)?;
        } else {
            self.cache.emit_li(mem, Reg::R3, table.base, d)?;
        }
        self.cache.emit(mem, Instr::Add { rd: Reg::R2, rs1: Reg::R2, rs2: Reg::R3 }, d)?;
        Ok(())
    }

    /// Emits the tag-compare probe of an inlined IBTC, the hit epilogue,
    /// and the miss path (per-site or shared).
    fn emit_inline_ibtc_probe(
        &mut self,
        mem: &mut Memory,
        table: TableRef,
        site: Option<u32>,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        self.emit_hash(mem, table, 3)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R2, off: 0 }, d)?;
        self.cache.emit(mem, Instr::Cmp { rs1: Reg::R3, rs2: Reg::R1 }, d)?;
        let bne = self.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R2, off: 4 }, d)?;
        self.cache.emit(mem, Instr::Swa { rs: Reg::R3, addr: SLOT_JUMP_TARGET }, d)?;
        self.emit_hit_epilogue(mem)?;
        let miss = self.cache.addr();
        self.cache.patch_branch(mem, bne, Instr::Bne { off: 0 }, miss)?;
        match site {
            Some(id) => self.emit_site_miss_path(mem, id)?,
            None => {
                self.cache.emit(
                    mem,
                    Instr::Jmp { target: self.stubs.shared_miss_glue },
                    Origin::ContextSwitch,
                )?;
            }
        }
        Ok(())
    }

    /// Restores flags and `r1`–`r3`, then transfers through the jump slot.
    fn emit_hit_epilogue(&mut self, mem: &mut Memory) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        if self.cfg.flags == FlagsPolicy::Always {
            self.cache.emit(mem, Instr::Popf, d)?;
        }
        self.cache.emit(mem, Instr::Lwa { rd: Reg::R1, addr: SLOT_R1 }, d)?;
        self.cache.emit(mem, Instr::Lwa { rd: Reg::R2, addr: SLOT_R2 }, d)?;
        self.cache.emit(mem, Instr::Lwa { rd: Reg::R3, addr: SLOT_R3 }, d)?;
        self.cache.emit(mem, Instr::Jmem { addr: SLOT_JUMP_TARGET }, d)?;
        Ok(())
    }

    /// Emits a per-site miss path: record the site id and enter the
    /// stack-flags miss tail.
    fn emit_site_miss_path(&mut self, mem: &mut Memory, site: u32) -> Result<(), SdtError> {
        let o = Origin::ContextSwitch;
        self.cache.emit_li(mem, Reg::R2, site, o)?;
        self.cache.emit(mem, Instr::Swa { rs: Reg::R2, addr: SLOT_SITE }, o)?;
        self.cache.emit(mem, Instr::Jmp { target: self.stubs.miss_tail_stack_flags }, o)?;
        Ok(())
    }

    /// Emits the two-way set-associative IBTC probe: way 0, then way 1,
    /// then the miss path. Each hit path carries its own epilogue so a
    /// way-0 hit pays nothing extra.
    fn emit_inline_ibtc_probe_2way(
        &mut self,
        mem: &mut Memory,
        table: TableRef,
        site: Option<u32>,
    ) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        self.emit_hash(mem, table, 4)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R2, off: 0 }, d)?;
        self.cache.emit(mem, Instr::Cmp { rs1: Reg::R3, rs2: Reg::R1 }, d)?;
        let bne0 = self.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R2, off: 4 }, d)?;
        self.cache.emit(mem, Instr::Swa { rs: Reg::R3, addr: SLOT_JUMP_TARGET }, d)?;
        self.emit_hit_epilogue(mem)?;
        let try_way1 = self.cache.addr();
        self.cache.patch_branch(mem, bne0, Instr::Bne { off: 0 }, try_way1)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R2, off: 8 }, d)?;
        self.cache.emit(mem, Instr::Cmp { rs1: Reg::R3, rs2: Reg::R1 }, d)?;
        let bne1 = self.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R2, off: 12 }, d)?;
        self.cache.emit(mem, Instr::Swa { rs: Reg::R3, addr: SLOT_JUMP_TARGET }, d)?;
        self.emit_hit_epilogue(mem)?;
        let miss = self.cache.addr();
        self.cache.patch_branch(mem, bne1, Instr::Bne { off: 0 }, miss)?;
        match site {
            Some(id) => self.emit_site_miss_path(mem, id)?,
            None => {
                self.cache.emit(
                    mem,
                    Instr::Jmp { target: self.stubs.shared_miss_glue },
                    Origin::ContextSwitch,
                )?;
            }
        }
        Ok(())
    }

    /// Emits the shadow-stack push: stores `(app_ret, translated_ret)` at
    /// the current shadow offset and advances it circularly. Uses `r2`/`r3`
    /// (already spilled by the caller). Returns the `li` address of the
    /// translated-return placeholder for patching.
    pub(crate) fn emit_shadow_push(
        &mut self,
        mem: &mut Memory,
        app_ret: u32,
    ) -> Result<u32, SdtError> {
        let g = Origin::CallGlue;
        let (base, mask) = self.shadow.expect("shadow stack allocated");
        self.cache.emit(mem, Instr::Lwa { rd: Reg::R2, addr: SLOT_SHADOW_SP }, g)?;
        self.cache.emit_li(mem, Reg::R3, base, g)?;
        self.cache.emit(mem, Instr::Add { rd: Reg::R3, rs1: Reg::R3, rs2: Reg::R2 }, g)?;
        self.cache.emit(mem, Instr::Addi { rd: Reg::R2, rs1: Reg::R2, imm: 8 }, g)?;
        self.cache.emit(mem, Instr::Andi { rd: Reg::R2, rs1: Reg::R2, imm: mask as u16 }, g)?;
        self.cache.emit(mem, Instr::Swa { rs: Reg::R2, addr: SLOT_SHADOW_SP }, g)?;
        self.cache.emit_li(mem, Reg::R2, app_ret, g)?;
        self.cache.emit(mem, Instr::Sw { rs2: Reg::R2, rs1: Reg::R3, off: 0 }, g)?;
        let patch = self.cache.emit_li(mem, Reg::R2, 0, g)?;
        self.cache.emit(mem, Instr::Sw { rs2: Reg::R2, rs1: Reg::R3, off: 4 }, g)?;
        Ok(patch)
    }

    /// Emits the shadow-stack return dispatch: pop the application return
    /// address, pop the shadow entry, verify the pair exactly, and jump to
    /// the recorded translated address; any mismatch falls back to the
    /// translator without filling a structure.
    pub(crate) fn emit_ss_dispatch(&mut self, mem: &mut Memory) -> Result<(), SdtError> {
        let d = Origin::Dispatch;
        let (base, mask) = self.shadow.expect("shadow stack allocated");
        let entry = self.emit_dispatch_prologue(mem, TargetSource::PoppedReturn, d)?;
        self.cache.set_mark(entry, Mark::RetEntry);
        if self.cfg.flags == FlagsPolicy::Always {
            self.cache.emit(mem, Instr::Pushf, d)?;
        }
        self.cache.emit(mem, Instr::Lwa { rd: Reg::R2, addr: SLOT_SHADOW_SP }, d)?;
        self.cache.emit(mem, Instr::Addi { rd: Reg::R2, rs1: Reg::R2, imm: -8 }, d)?;
        self.cache.emit(mem, Instr::Andi { rd: Reg::R2, rs1: Reg::R2, imm: mask as u16 }, d)?;
        self.cache.emit_li(mem, Reg::R3, base, d)?;
        self.cache.emit(mem, Instr::Add { rd: Reg::R3, rs1: Reg::R3, rs2: Reg::R2 }, d)?;
        // Commit the pop before the verify: on fallback the translator
        // resolves the target anyway and stale shadow entries only cost
        // another fallback.
        self.cache.emit(mem, Instr::Swa { rs: Reg::R2, addr: SLOT_SHADOW_SP }, d)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R2, rs1: Reg::R3, off: 0 }, d)?;
        self.cache.emit(mem, Instr::Cmp { rs1: Reg::R2, rs2: Reg::R1 }, d)?;
        let bne = self.cache.emit(mem, Instr::Bne { off: 0 }, d)?;
        self.cache.emit(mem, Instr::Lw { rd: Reg::R3, rs1: Reg::R3, off: 4 }, d)?;
        self.cache.emit(mem, Instr::Swa { rs: Reg::R3, addr: SLOT_JUMP_TARGET }, d)?;
        self.emit_hit_epilogue(mem)?;
        let miss = self.cache.addr();
        self.cache.patch_branch(mem, bne, Instr::Bne { off: 0 }, miss)?;
        self.cache.emit(
            mem,
            Instr::Jmp { target: self.stubs.nofill_miss_glue },
            Origin::ContextSwitch,
        )?;
        Ok(())
    }

    pub(crate) fn new_site(&mut self, site: Site) -> u32 {
        self.sites.push(site);
        (self.sites.len() - 1) as u32
    }
}
