use std::sync::Arc;

use strata_arch::{ArchModel, ArchProfile};
use strata_machine::syscall::{SyscallState, SDT_TRAP_BASE};
use strata_machine::{
    layout, ExecutionObserver, Machine, MachineError, Program, RetireEvent, StepOutcome,
};

use crate::config::{BranchClass, IbtcPlacement, IbtcScope};
use crate::emitter::{Cache, Mark, TableAlloc};
use crate::fragment::{FragKind, FragMeta, FragmentMap, Site};
use crate::protocol::{bind_sentinel, MAX_BINDS, TRAP_MISS, TRAP_RC_MISS};
use crate::report::{ClassReport, HostStats, MechanismStats};
use crate::strategy::adaptive::AdaptiveSite;
use crate::strategy::{resolve_binds, Bind, RetStrategy, StrategySpec};
use crate::stubs::{emit_bind_glue, emit_stubs, Stubs};
use crate::tables::TableRef;
use crate::{Origin, RunReport, SdtConfig, SdtError};

/// Mutable translator state shared by the dispatch emitter, the
/// translator, and the runtime.
#[derive(Debug)]
pub(crate) struct SdtState {
    pub cfg: SdtConfig,
    pub cache: Cache,
    pub alloc: TableAlloc,
    pub stubs: Stubs,
    pub map: FragmentMap,
    pub sites: Vec<Site>,
    /// Strategy bindings: one per distinct resolved spec in the policy.
    pub binds: Vec<Bind>,
    /// Class→binding map: `[jump (also ret-as-IB), call]`.
    pub class_bind: [usize; 2],
    /// Host-side records of adaptive dispatch sites (cleared on flush).
    pub adaptive: Vec<AdaptiveSite>,
    /// The configured return mechanism.
    pub ret_strat: Arc<dyn RetStrategy>,
    pub rc_tab: Option<TableRef>,
    /// Shadow return stack region: (base, byte mask) when enabled.
    pub shadow: Option<(u32, u32)>,
    pub stats: HostStats,
    /// Control-flow metadata per translated fragment, for trace replay;
    /// keyed like the fragment map and cleared with it on flushes.
    pub frag_meta: std::collections::HashMap<(u32, FragKind), FragMeta>,
    /// Exit-site ids recorded by `emit_exit` during the current
    /// `translate_fragment` invocation (saved/restored around nested
    /// translations, so each fragment sees only its own exits).
    pub exit_scratch: Vec<u32>,
    /// Live (app_addr, guest counter slot) pairs for block instrumentation.
    pub block_counters: Vec<(u32, u32)>,
    /// Block counts folded in from before cache flushes.
    pub flushed_counts: std::collections::HashMap<u32, u64>,
    /// Cache cursor right after the shared stubs — the flush point.
    pub post_stub_cursor: u32,
    /// Table-allocator cursor after the fixed shared tables — per-site
    /// tables allocated beyond it are freed by a flush.
    pub alloc_floor: u32,
}

impl SdtState {
    /// The strategy binding serving `class`. Returns dispatch as a
    /// generic indirect branch routes through the jump binding.
    pub(crate) fn bind_for(&self, class: BranchClass) -> usize {
        match class {
            BranchClass::Jump | BranchClass::Ret => self.class_bind[0],
            BranchClass::Call => self.class_bind[1],
        }
    }

    /// The miss glue serving `bind`: its own glue stub under a multi-bind
    /// policy, the legacy shared glue otherwise.
    pub(crate) fn glue_for(&self, bind: usize) -> u32 {
        self.binds[bind].glue.unwrap_or(self.stubs.shared_miss_glue)
    }

    /// (Re)initializes every binding's and the return mechanism's guest
    /// structures — at construction and after each cache flush.
    pub(crate) fn reset_mechanism_structures(
        &mut self,
        mem: &mut strata_machine::Memory,
    ) -> Result<(), SdtError> {
        for i in 0..self.binds.len() {
            let strat = self.binds[i].strategy.clone();
            let glue = self.glue_for(i);
            strat.reset(&mut self.binds[i], mem, glue)?;
        }
        let ret = self.ret_strat.clone();
        ret.reset(self, mem)
    }
}

/// A software dynamic translator instance bound to one loaded program.
///
/// Construction loads the program into a fresh machine and emits the
/// runtime stubs; [`Sdt::run`] translates lazily from the program entry and
/// executes from the fragment cache under an [`ArchProfile`] cost model.
/// Running again continues with a *warm* cache (useful for measuring
/// steady-state behaviour).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Sdt {
    pub(crate) machine: Machine,
    pub(crate) state: SdtState,
    pub(crate) syscalls: SyscallState,
    pub(crate) entry: u32,
    pub(crate) app_code: std::ops::Range<u32>,
}

impl Sdt {
    /// Creates an SDT for `program` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SdtError::BadConfig`] for invalid configurations
    /// (including a per-site IBTC combined with out-of-line lookup, which
    /// has no shared table for the routine to probe) and propagates
    /// machine errors if the program does not fit memory.
    pub fn new(config: SdtConfig, program: &Program) -> Result<Sdt, SdtError> {
        config.validate()?;
        for class in [BranchClass::Jump, BranchClass::Call] {
            if let StrategySpec::Ibtc {
                scope: IbtcScope::PerSite,
                placement: IbtcPlacement::OutOfLine,
                ..
            } = StrategySpec::resolve(&config, class)
            {
                return Err(SdtError::BadConfig {
                    what: "ibtc placement",
                    detail: "per-site tables require inline lookup code".into(),
                });
            }
        }

        let mut machine = Machine::new(layout::DEFAULT_MEM_BYTES);
        program.load(&mut machine)?;

        let cache_bytes = match config.cache_limit {
            Some(bytes) => {
                if bytes < 8192 || bytes % 4 != 0 {
                    return Err(SdtError::BadConfig {
                        what: "cache limit",
                        detail: format!("{bytes} must be a 4-byte multiple of at least 8192"),
                    });
                }
                bytes.min(layout::CACHE_BYTES)
            }
            None => layout::CACHE_BYTES,
        };
        let mut cache = Cache::new(layout::CACHE_BASE, cache_bytes);
        let mut alloc = TableAlloc::new(layout::TABLES_BASE, layout::TABLES_END);

        let (mut binds, class_bind) = resolve_binds(&config);
        assert!(
            binds.len() <= MAX_BINDS,
            "policy resolved to too many bindings"
        );
        let registered = |id: &str| {
            crate::strategy::mechanism_registry()
                .iter()
                .any(|m| m.id == id)
        };
        for bind in &binds {
            assert!(registered(bind.strategy.id()), "unregistered strategy");
        }
        for bind in binds.iter_mut() {
            let strat = bind.strategy.clone();
            strat.alloc_fixed(bind, &mut alloc)?;
        }
        let ret_strat = crate::strategy::instantiate_ret(config.ret);
        assert!(registered(ret_strat.id()), "unregistered return strategy");
        let (rc_tab, shadow) = ret_strat.alloc_fixed(&mut alloc)?;

        let stubs = emit_stubs(&mut cache, machine.mem_mut(), &config)?;
        // Per-binding miss glue (only under multi-bind policies — the
        // single-bind case keeps the legacy SITE_SHARED glue and with it
        // byte-identical stub emission), then per-binding stub support
        // (out-of-line lookup routines).
        let multi = binds.len() > 1;
        for (i, bind) in binds.iter_mut().enumerate() {
            if multi {
                bind.glue = Some(emit_bind_glue(
                    &mut cache,
                    machine.mem_mut(),
                    &stubs,
                    bind_sentinel(i),
                )?);
            }
            let miss_glue = bind.glue.unwrap_or(stubs.shared_miss_glue);
            let strat = bind.strategy.clone();
            strat.emit_stub_support(&mut cache, machine.mem_mut(), bind, miss_glue)?;
        }
        let post_stub_cursor = cache.addr();
        let alloc_floor = alloc.used_bytes();

        let mut state = SdtState {
            cfg: config,
            cache,
            alloc,
            stubs,
            map: FragmentMap::default(),
            sites: Vec::new(),
            binds,
            class_bind,
            adaptive: Vec::new(),
            ret_strat,
            rc_tab,
            shadow,
            stats: HostStats::default(),
            frag_meta: std::collections::HashMap::new(),
            exit_scratch: Vec::new(),
            block_counters: Vec::new(),
            flushed_counts: std::collections::HashMap::new(),
            post_stub_cursor,
            alloc_floor,
        };
        state.reset_mechanism_structures(machine.mem_mut())?;

        Ok(Sdt {
            machine,
            state,
            syscalls: SyscallState::new(),
            entry: program.entry,
            app_code: program.code_base..program.code_end(),
        })
    }

    /// The configuration this SDT runs under.
    pub fn config(&self) -> &SdtConfig {
        &self.state.cfg
    }

    /// The underlying machine, for inspection.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of fragments currently in the cache.
    pub fn fragments(&self) -> usize {
        self.state.map.len()
    }

    /// Fragment-cache bytes used so far.
    pub fn cache_used_bytes(&self) -> u32 {
        self.state.cache.used_bytes()
    }

    /// Guest bytes dedicated to lookup tables (IBTC tables, sieve buckets,
    /// return cache), including per-site tables allocated so far.
    pub fn table_bytes(&self) -> u32 {
        let fixed: u32 = self
            .state
            .binds
            .iter()
            .filter_map(|b| b.table)
            .chain(self.state.rc_tab)
            .map(|t| t.size_bytes())
            .sum();
        fixed.max(
            self.state
                .alloc
                .used_bytes()
                .saturating_sub(layout::TABLES_BASE),
        )
    }

    /// Per-class dispatch summary: `(class label, mechanism label)` for
    /// jump, call, and return dispatch under the active policy.
    pub fn policy_summary(&self) -> Vec<(&'static str, String)> {
        let st = &self.state;
        vec![
            (
                BranchClass::Jump.label(),
                st.binds[st.class_bind[0]].strategy.describe(),
            ),
            (
                BranchClass::Call.label(),
                st.binds[st.class_bind[1]].strategy.describe(),
            ),
            (BranchClass::Ret.label(), st.ret_strat.describe()),
        ]
    }

    /// The [`Origin`] tag of the instruction at cache address `pc`, if
    /// `pc` lies within the fragment-cache region.
    pub fn origin_at(&self, pc: u32) -> Option<Origin> {
        self.state.cache.origin_at(pc)
    }

    /// Translator state, for in-crate metadata export.
    pub(crate) fn state(&self) -> &SdtState {
        &self.state
    }

    /// The program's entry application address.
    pub(crate) fn entry_app(&self) -> u32 {
        self.entry
    }

    /// Application code bounds as `(base, end)`.
    pub(crate) fn app_code_range(&self) -> (u32, u32) {
        (self.app_code.start, self.app_code.end)
    }

    /// Basic-block execution counts collected by
    /// [`SdtConfig::instrument_blocks`], as `(application address, count)`
    /// pairs sorted by descending count. Counts survive cache flushes.
    /// Empty when instrumentation is off.
    pub fn block_profile(&self) -> Vec<(u32, u64)> {
        let mut totals = self.state.flushed_counts.clone();
        for &(app_addr, slot) in &self.state.block_counters {
            let count = self.machine.mem().read_u32(slot).unwrap_or(0) as u64;
            *totals.entry(app_addr).or_insert(0) += count;
        }
        let mut out: Vec<(u32, u64)> = totals.into_iter().filter(|&(_, c)| c > 0).collect();
        out.sort_by_key(|&(addr, count)| (std::cmp::Reverse(count), addr));
        out
    }

    /// Executes the program under translation until `halt`, costing
    /// execution with a fresh [`ArchModel`] for `profile`.
    ///
    /// `fuel` bounds retired guest instructions (application plus all
    /// translation overhead). A second call continues with a warm fragment
    /// cache; the returned checksum is cumulative across runs.
    ///
    /// # Errors
    ///
    /// Returns [`SdtError::ReservedTrap`] if the application uses an
    /// SDT-reserved trap code, [`SdtError::SelfModifyingCode`] if the
    /// application stores into its own code, [`SdtError::CacheFull`] /
    /// [`SdtError::TableSpaceExhausted`] when resources run out, and
    /// machine faults (including fuel exhaustion) as
    /// [`SdtError::Machine`].
    pub fn run(&mut self, profile: ArchProfile, fuel: u64) -> Result<RunReport, SdtError> {
        self.run_with_model(ArchModel::new(profile), fuel)
    }

    /// [`Sdt::run`] with an explicit cost model — how fig22 sweeps
    /// [`strata_arch::PredictorSpec`]s per run without touching the
    /// process-wide predictor selection:
    /// `sdt.run_with_model(ArchModel::with_predictor_spec(profile, spec), fuel)`.
    ///
    /// # Errors
    ///
    /// As [`Sdt::run`].
    pub fn run_with_model(
        &mut self,
        mut model: ArchModel,
        fuel: u64,
    ) -> Result<RunReport, SdtError> {
        let mut buckets = Buckets::default();
        let mut translator_cycles = 0u64;

        let before = self.state.stats.translated_app_instrs;
        let frag = self
            .state
            .ensure_fragment_flushing(self.machine.mem_mut(), self.entry, FragKind::Body)?
            .0;
        translator_cycles +=
            model.charge_translator(self.state.stats.translated_app_instrs - before, 1);
        self.machine.cpu_mut().pc = frag.entry;

        let mut steps = 0u64;
        let mut halted = false;
        while steps < fuel {
            let outcome = {
                let mut obs = Attributing {
                    model: &mut model,
                    cache: &self.state.cache,
                    buckets: &mut buckets,
                    app_code: self.app_code.clone(),
                };
                self.machine.step(&mut obs)?
            };
            steps += 1;
            if let Some((pc, addr)) = buckets.smc {
                return Err(SdtError::SelfModifyingCode { pc, addr });
            }
            match outcome {
                StepOutcome::Running => {}
                StepOutcome::Halted => {
                    halted = true;
                    break;
                }
                StepOutcome::Trap(TRAP_MISS) => {
                    let w = self.state.handle_trap_miss(&mut self.machine)?;
                    translator_cycles += model.charge_translator(w.new_instrs, w.lookups);
                }
                StepOutcome::Trap(TRAP_RC_MISS) => {
                    let w = self.state.handle_trap_rc_miss(&mut self.machine)?;
                    translator_cycles += model.charge_translator(w.new_instrs, w.lookups);
                }
                StepOutcome::Trap(code) if code >= SDT_TRAP_BASE => {
                    unreachable!("translator never emits unknown SDT traps ({code:#x})")
                }
                StepOutcome::Trap(code) => {
                    self.syscalls.handle(code, &self.machine);
                }
            }
        }
        if !halted {
            return Err(MachineError::OutOfFuel { steps: fuel }.into());
        }

        let (sieve_mean_chain, sieve_max_chain) = self.state.sieve_chain_stats();
        let st = &self.state;
        let s = &st.stats;
        let promotions = |b: &Bind| b.promotions_to_ibtc + b.promotions_to_sieve;
        let jump_bind = &st.binds[st.class_bind[0]];
        let call_bind = &st.binds[st.class_bind[1]];
        // Classes resolving to the same binding share its tables, and with
        // them the miss counter: the jump and call rows then report the
        // same (combined) misses. Returns-as-IB misses also land in the
        // jump binding's counter.
        let per_class = vec![
            ClassReport {
                class: BranchClass::Jump.label(),
                mechanism: jump_bind.strategy.describe(),
                dispatches: buckets.jump_dispatches,
                misses: jump_bind.misses,
                promotions: promotions(jump_bind),
            },
            ClassReport {
                class: BranchClass::Call.label(),
                mechanism: call_bind.strategy.describe(),
                dispatches: buckets.call_dispatches,
                misses: call_bind.misses,
                promotions: promotions(call_bind),
            },
            ClassReport {
                class: BranchClass::Ret.label(),
                mechanism: st.ret_strat.describe(),
                dispatches: buckets.ret_dispatches,
                misses: s.rc_misses,
                promotions: 0,
            },
        ];
        Ok(RunReport {
            config: st.cfg.describe(),
            arch: model.profile().name,
            halted,
            checksum: self.syscalls.checksum(),
            instructions: buckets.instrs.iter().sum(),
            total_cycles: model.total_cycles(),
            cycles_by_origin: buckets.cycles,
            instrs_by_origin: buckets.instrs,
            translator_cycles,
            mech: MechanismStats {
                ib_dispatches: buckets.jump_dispatches + buckets.call_dispatches,
                jump_dispatches: buckets.jump_dispatches,
                call_dispatches: buckets.call_dispatches,
                ib_misses: s.ib_misses,
                ret_dispatches: buckets.ret_dispatches,
                rc_misses: s.rc_misses,
                exit_misses: s.exit_misses,
                exit_links: s.exit_links,
                translator_entries: s.translator_entries,
                fragments: s.fragments,
                translated_app_instrs: s.translated_app_instrs,
                cache_used_bytes: st.cache.used_bytes() as u64,
                cache_flushes: s.cache_flushes,
                elided_jumps: s.elided_jumps,
                adaptive_promotions: st.binds.iter().map(promotions).sum(),
                sieve_mean_chain,
                sieve_max_chain,
            },
            per_class,
            icache_misses: model.icache().misses(),
            dcache_misses: model.dcache().misses(),
            indirect_mispredicts: model.indirect_mispredicts(),
            cond_mispredicts: model.cond_mispredicts(),
        })
    }
}

/// Per-run accumulation split by instruction origin.
#[derive(Debug, Default)]
struct Buckets {
    cycles: [u64; 6],
    instrs: [u64; 6],
    jump_dispatches: u64,
    call_dispatches: u64,
    ret_dispatches: u64,
    /// First store into translated application code, if any:
    /// `(cache pc, app code addr)`.
    smc: Option<(u32, u32)>,
}

/// The observer wired into the machine while running under translation:
/// costs each retired instruction with the architecture model and buckets
/// the cycles by the emitting code's [`Origin`].
struct Attributing<'a> {
    model: &'a mut ArchModel,
    cache: &'a Cache,
    buckets: &'a mut Buckets,
    app_code: std::ops::Range<u32>,
}

impl ExecutionObserver for Attributing<'_> {
    #[inline]
    fn on_retire(&mut self, ev: &RetireEvent) {
        let cycles = self.model.cost_of(ev);
        let origin = self.cache.origin_at(ev.pc).unwrap_or(Origin::App);
        let i = origin.index();
        self.buckets.cycles[i] += cycles;
        self.buckets.instrs[i] += 1;
        match self.cache.mark_at(ev.pc) {
            Mark::None => {}
            Mark::JumpEntry => self.buckets.jump_dispatches += 1,
            Mark::CallEntry => self.buckets.call_dispatches += 1,
            Mark::RetEntry => self.buckets.ret_dispatches += 1,
        }
        if self.buckets.smc.is_none() {
            if let Some(mem) = ev.mem {
                if mem.is_store && self.app_code.contains(&mem.addr) {
                    self.buckets.smc = Some((ev.pc, mem.addr));
                }
            }
        }
    }
}
