use std::collections::HashMap;

/// What kind of entry a fragment provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FragKind {
    /// A plain translated basic block, entered at its first body
    /// instruction.
    Body,
    /// A return-cache target: begins with a verification prologue
    /// (compare the actual return address in `r1` against the expected
    /// constant), then a restore sequence, then the body.
    ReturnPoint,
}

/// A translated fragment's addresses in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fragment {
    /// Entry address: the body for [`FragKind::Body`], the verification
    /// prologue for [`FragKind::ReturnPoint`].
    pub entry: u32,
    /// Address of the restore sequence (`ReturnPoint` only; equals `entry`
    /// for plain fragments).
    pub restore_entry: u32,
    /// First body instruction (after any prologue/restore).
    pub body: u32,
}

/// The translator's map from application addresses to fragments.
#[derive(Debug, Default)]
pub(crate) struct FragmentMap {
    map: HashMap<(u32, FragKind), Fragment>,
}

impl FragmentMap {
    pub fn get(&self, app_addr: u32, kind: FragKind) -> Option<Fragment> {
        self.map.get(&(app_addr, kind)).copied()
    }

    pub fn insert(&mut self, app_addr: u32, kind: FragKind, frag: Fragment) {
        let prev = self.map.insert((app_addr, kind), frag);
        debug_assert!(
            prev.is_none(),
            "fragment for {app_addr:#x} translated twice"
        );
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `((app_addr, kind), fragment)` entries in map order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, FragKind), &Fragment)> {
        self.map.iter()
    }
}

/// How a translated fragment's body ends, recorded at translation time so
/// the trace-replay engine ([`crate::DispatchReplay`]) can mirror control
/// flow without decoding cache code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Terminal {
    /// Conditional branch: fall-through and taken exit trampolines.
    Cond { next_site: u32, taken_site: u32 },
    /// Unconditional direct jump through an exit trampoline.
    DirectJump { site: u32 },
    /// Direct call: return glue (which may push a shadow-stack entry for
    /// `ret_app`), then an exit trampoline to the callee.
    DirectCall { site: u32, ret_app: u32 },
    /// Indirect jump dispatch (`jr`/`jmem`); `site` when the serving
    /// strategy gave the site its own id.
    IndirectJump { site: Option<u32> },
    /// Indirect call dispatch (`callr`); the call returns to `ret_app`.
    IndirectCall { site: Option<u32>, ret_app: u32 },
    /// Return dispatch (`site` only when returns dispatch through a
    /// per-site jump-class strategy).
    Ret { site: Option<u32> },
    /// The fragment ends the program.
    Halt,
}

/// Control-flow metadata for one translated fragment: where its body ends
/// and which direct jumps were elided (inlined) along the way. Keyed like
/// the fragment map and cleared with it on cache flushes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FragMeta {
    /// Application pc of the instruction that ends the fragment.
    pub term_pc: u32,
    /// Application pcs of direct jumps elided mid-fragment (tail
    /// duplication): their retire events are plain fall-through here.
    pub elided_jmp_pcs: Vec<u32>,
    /// The terminal's shape.
    pub terminal: Terminal,
}

/// A recorded miss site: who trapped, and what the runtime should do about
/// it. Site ids index into the site table and travel through
/// [`SLOT_SITE`](crate::protocol::SLOT_SITE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Site {
    /// A direct-branch exit trampoline: on first execution the runtime
    /// translates `target` and (if linking is enabled) patches the
    /// trampoline head at `patch_addr` into a direct jump.
    Exit { target: u32, patch_addr: u32 },
    /// An indirect-branch site owned by strategy binding `bind`; `table`
    /// is the per-site IBTC base, if the strategy gives each site its own
    /// table.
    Ib { bind: u8, table: Option<u32> },
    /// An adaptive dispatch site; `idx` indexes the host-side
    /// [`AdaptiveSite`](crate::strategy::adaptive::AdaptiveSite) records.
    Adaptive { bind: u8, idx: u32 },
}

/// A sieve hash bucket's chain, tracked host-side so new stanzas can be
/// linked in O(1).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SieveBucket {
    /// Address of the `jmp next` word of the chain's last stanza (patched
    /// when a stanza is appended), or `None` while the bucket is empty.
    pub last_link: Option<u32>,
    /// Chain length (for probe-distribution reporting).
    pub len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_keep_fragments_separate() {
        let mut m = FragmentMap::default();
        let body = Fragment {
            entry: 0x100,
            restore_entry: 0x100,
            body: 0x100,
        };
        let rc = Fragment {
            entry: 0x200,
            restore_entry: 0x210,
            body: 0x220,
        };
        m.insert(0x1000, FragKind::Body, body);
        m.insert(0x1000, FragKind::ReturnPoint, rc);
        assert_eq!(m.get(0x1000, FragKind::Body), Some(body));
        assert_eq!(m.get(0x1000, FragKind::ReturnPoint), Some(rc));
        assert_eq!(m.get(0x1004, FragKind::Body), None);
        assert_eq!(m.len(), 2);
    }
}
