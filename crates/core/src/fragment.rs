use std::collections::HashMap;

/// What kind of entry a fragment provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FragKind {
    /// A plain translated basic block, entered at its first body
    /// instruction.
    Body,
    /// A return-cache target: begins with a verification prologue
    /// (compare the actual return address in `r1` against the expected
    /// constant), then a restore sequence, then the body.
    ReturnPoint,
}

/// A translated fragment's addresses in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fragment {
    /// Entry address: the body for [`FragKind::Body`], the verification
    /// prologue for [`FragKind::ReturnPoint`].
    pub entry: u32,
    /// Address of the restore sequence (`ReturnPoint` only; equals `entry`
    /// for plain fragments).
    pub restore_entry: u32,
    /// First body instruction (after any prologue/restore).
    pub body: u32,
}

/// The translator's map from application addresses to fragments.
#[derive(Debug, Default)]
pub(crate) struct FragmentMap {
    map: HashMap<(u32, FragKind), Fragment>,
}

impl FragmentMap {
    pub fn get(&self, app_addr: u32, kind: FragKind) -> Option<Fragment> {
        self.map.get(&(app_addr, kind)).copied()
    }

    pub fn insert(&mut self, app_addr: u32, kind: FragKind, frag: Fragment) {
        let prev = self.map.insert((app_addr, kind), frag);
        debug_assert!(
            prev.is_none(),
            "fragment for {app_addr:#x} translated twice"
        );
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `((app_addr, kind), fragment)` entries in map order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, FragKind), &Fragment)> {
        self.map.iter()
    }
}

/// A recorded miss site: who trapped, and what the runtime should do about
/// it. Site ids index into the site table and travel through
/// [`SLOT_SITE`](crate::protocol::SLOT_SITE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Site {
    /// A direct-branch exit trampoline: on first execution the runtime
    /// translates `target` and (if linking is enabled) patches the
    /// trampoline head at `patch_addr` into a direct jump.
    Exit { target: u32, patch_addr: u32 },
    /// An indirect-branch site owned by strategy binding `bind`; `table`
    /// is the per-site IBTC base, if the strategy gives each site its own
    /// table.
    Ib { bind: u8, table: Option<u32> },
    /// An adaptive dispatch site; `idx` indexes the host-side
    /// [`AdaptiveSite`](crate::strategy::adaptive::AdaptiveSite) records.
    Adaptive { bind: u8, idx: u32 },
}

/// A sieve hash bucket's chain, tracked host-side so new stanzas can be
/// linked in O(1).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SieveBucket {
    /// Address of the `jmp next` word of the chain's last stanza (patched
    /// when a stanza is appended), or `None` while the bucket is empty.
    pub last_link: Option<u32>,
    /// Chain length (for probe-distribution reporting).
    pub len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_keep_fragments_separate() {
        let mut m = FragmentMap::default();
        let body = Fragment {
            entry: 0x100,
            restore_entry: 0x100,
            body: 0x100,
        };
        let rc = Fragment {
            entry: 0x200,
            restore_entry: 0x210,
            body: 0x220,
        };
        m.insert(0x1000, FragKind::Body, body);
        m.insert(0x1000, FragKind::ReturnPoint, rc);
        assert_eq!(m.get(0x1000, FragKind::Body), Some(body));
        assert_eq!(m.get(0x1000, FragKind::ReturnPoint), Some(rc));
        assert_eq!(m.get(0x1004, FragKind::Body), None);
        assert_eq!(m.len(), 2);
    }
}
