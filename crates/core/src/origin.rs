/// Why an instruction exists in the fragment cache.
///
/// The translator tags every emitted word; at run time the cycles of each
/// retired instruction are bucketed by the tag, which regenerates the
/// paper's analysis of *where* indirect-branch overhead comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Origin {
    /// A translated application instruction (the useful work).
    #[default]
    App,
    /// Call glue: pushing the application (or translated) return address.
    CallGlue,
    /// Indirect-branch lookup code: register spills, hashing, table probes,
    /// tag compares, sieve stanzas, return-cache verification prologues.
    Dispatch,
    /// Full context save/restore around a crossing into the translator
    /// (miss tails, exit stubs, restore stubs, the trap itself).
    ContextSwitch,
    /// Fragment-linking jumps and not-yet-linked exit trampoline heads.
    Trampoline,
    /// Injected instrumentation (e.g. basic-block execution counters).
    Instrumentation,
}

impl Origin {
    /// All origins in presentation order.
    pub const ALL: [Origin; 6] = [
        Origin::App,
        Origin::CallGlue,
        Origin::Dispatch,
        Origin::ContextSwitch,
        Origin::Trampoline,
        Origin::Instrumentation,
    ];

    /// Stable index into per-origin arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Origin::App => 0,
            Origin::CallGlue => 1,
            Origin::Dispatch => 2,
            Origin::ContextSwitch => 3,
            Origin::Trampoline => 4,
            Origin::Instrumentation => 5,
        }
    }

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Origin::App => "app",
            Origin::CallGlue => "call-glue",
            Origin::Dispatch => "ib-dispatch",
            Origin::ContextSwitch => "context-switch",
            Origin::Trampoline => "trampoline",
            Origin::Instrumentation => "instrumentation",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Origin::ALL.len()];
        for o in Origin::ALL {
            assert!(!seen[o.index()], "duplicate index for {o:?}");
            seen[o.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_are_nonempty() {
        for o in Origin::ALL {
            assert!(!o.label().is_empty());
        }
    }
}
