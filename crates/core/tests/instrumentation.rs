//! Block-count instrumentation: injected counters must count exactly,
//! cost cycles under the Instrumentation origin, and leave application
//! behaviour untouched.

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{run_native, Origin, Sdt, SdtConfig};
use strata_machine::{layout, Program};
use strata_workloads::{by_name, Params};

const FUEL: u64 = 2_000_000_000;

#[test]
fn counts_are_exact_on_a_known_loop() {
    let src = r"
        li r5, 17
    top:
        call f
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        li r4, 1
        trap 0x1
        halt
    f:
        addi r4, r4, 2
        ret
    ";
    let program = Program::new(
        "counted",
        assemble(layout::APP_BASE, src).unwrap(),
        Vec::new(),
    );
    let native = run_native(&program, ArchProfile::x86_like(), FUEL).unwrap();

    let mut cfg = SdtConfig::ibtc_inline(64);
    cfg.instrument_blocks = true;
    let mut sdt = Sdt::new(cfg, &program).unwrap();
    let report = sdt.run(ArchProfile::x86_like(), FUEL).unwrap();
    assert_eq!(
        report.checksum, native.checksum,
        "instrumentation must be transparent"
    );

    let profile = sdt.block_profile();
    assert!(!profile.is_empty());
    // `f`'s body and the loop-continuation block both run 17 times.
    let seventeens = profile.iter().filter(|&&(_, c)| c == 17).count();
    assert!(
        seventeens >= 2,
        "expected loop-body counts of 17, got {profile:?}"
    );
    // The entry block runs exactly once.
    assert!(profile
        .iter()
        .any(|&(addr, c)| addr == layout::APP_BASE && c == 1));
    // Instrumentation cycles are attributed, not smeared into app work.
    assert!(report.cycles_for(Origin::Instrumentation) > 0);
}

#[test]
fn instrumentation_overhead_is_measured_not_free() {
    let program = (by_name("gcc").unwrap().build)(&Params::default());
    let plain = Sdt::new(SdtConfig::ibtc_inline(1024), &program)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    let mut cfg = SdtConfig::ibtc_inline(1024);
    cfg.instrument_blocks = true;
    let counted = Sdt::new(cfg, &program)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(plain.checksum, counted.checksum);
    assert!(counted.total_cycles > plain.total_cycles);
    assert_eq!(plain.cycles_for(Origin::Instrumentation), 0);
    assert!(counted.cycles_for(Origin::Instrumentation) > 0);
}

#[test]
fn counts_survive_cache_flushes() {
    let program = (by_name("gcc").unwrap().build)(&Params::default());
    let mut cfg = SdtConfig::ibtc_inline(256);
    cfg.instrument_blocks = true;
    cfg.cache_limit = Some(16 * 1024);
    let mut sdt = Sdt::new(cfg, &program).unwrap();
    let report = sdt.run(ArchProfile::x86_like(), FUEL).unwrap();
    assert!(report.mech.cache_flushes > 0, "test needs flush pressure");

    // Total block executions ≈ executed app blocks; at minimum the profile
    // must cover the dispatch loop with large counts even though its
    // fragment was retranslated several times.
    let total: u64 = sdt.block_profile().iter().map(|&(_, c)| c).sum();
    assert!(total > 10_000, "counts lost across flushes: {total}");
}
