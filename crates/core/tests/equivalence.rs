//! Translated-vs-native equivalence: every program must produce the same
//! checksum and final register state under every mechanism configuration
//! as it does natively. This is the SDT's core correctness property.

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{run_native, FlagsPolicy, RetMechanism, Sdt, SdtConfig};
use strata_machine::{layout, Program};

const FUEL: u64 = 2_000_000;

fn program(name: &str, src: &str) -> Program {
    let code = assemble(layout::APP_BASE, src).expect("program assembles");
    Program::new(name, code, Vec::new())
}

/// All configurations exercised by the equivalence suite.
fn configs() -> Vec<SdtConfig> {
    let mut cfgs = vec![
        SdtConfig::reentry(),
        SdtConfig::ibtc_inline(4), // tiny: forces conflict misses
        SdtConfig::ibtc_inline(1024),
        SdtConfig::ibtc_out_of_line(256),
        SdtConfig::sieve(4),
        SdtConfig::sieve(256),
        SdtConfig::tuned(512, 128),
    ];
    // Per-site IBTC.
    cfgs.push(SdtConfig {
        ib: strata_core::IbMechanism::Ibtc {
            entries: 16,
            scope: strata_core::IbtcScope::PerSite,
            placement: strata_core::IbtcPlacement::Inline,
        },
        ..SdtConfig::ibtc_inline(16)
    });
    // Fast returns.
    let mut fast = SdtConfig::ibtc_inline(256);
    fast.ret = RetMechanism::FastReturn;
    cfgs.push(fast);
    // Shadow return stack (tiny, to exercise wrap/fallback paths).
    let mut shadow = SdtConfig::ibtc_inline(256);
    shadow.ret = RetMechanism::ShadowStack { depth: 8 };
    cfgs.push(shadow);
    // Cross-mechanism combinations: every ret mechanism must compose with
    // every IB mechanism.
    let mut sieve_shadow = SdtConfig::sieve(64);
    sieve_shadow.ret = RetMechanism::ShadowStack { depth: 16 };
    cfgs.push(sieve_shadow);
    let mut sieve_rc = SdtConfig::sieve(64);
    sieve_rc.ret = RetMechanism::ReturnCache { entries: 16 };
    cfgs.push(sieve_rc);
    let mut outline_rc = SdtConfig::ibtc_out_of_line(64);
    outline_rc.ret = RetMechanism::ReturnCache { entries: 16 };
    cfgs.push(outline_rc);
    let mut reentry_fast = SdtConfig::reentry();
    reentry_fast.ret = RetMechanism::FastReturn;
    cfgs.push(reentry_fast);
    let mut elide_2way = SdtConfig::ibtc_inline(64);
    elide_2way.elide_direct_jumps = true;
    elide_2way.ibtc_ways = 2;
    cfgs.push(elide_2way);
    // Unlinked fragments.
    let mut nolink = SdtConfig::ibtc_inline(256);
    nolink.link_fragments = false;
    cfgs.push(nolink);
    cfgs
}

fn check_equivalence(prog: &Program) {
    let native = run_native(prog, ArchProfile::x86_like(), FUEL).expect("native run succeeds");
    for cfg in configs() {
        let mut sdt = Sdt::new(cfg, prog).expect("sdt constructs");
        let report = sdt
            .run(ArchProfile::x86_like(), FUEL * 20)
            .unwrap_or_else(|e| panic!("[{}] {} failed: {e}", prog.name, cfg.describe()));
        assert!(report.halted);
        assert_eq!(
            report.checksum,
            native.checksum,
            "[{}] checksum mismatch under {}",
            prog.name,
            cfg.describe()
        );
        assert_eq!(
            sdt.machine().cpu().regs(),
            &native.regs,
            "[{}] final registers mismatch under {}",
            prog.name,
            cfg.describe()
        );
        assert!(
            report.total_cycles > native.total_cycles,
            "[{}] translation cannot be free under {}",
            prog.name,
            cfg.describe()
        );
    }
}

#[test]
fn straightline_arithmetic() {
    check_equivalence(&program(
        "straightline",
        r"
        li r1, 1000
        li r2, 7
        mul r3, r1, r2
        addi r3, r3, -42
        mov r4, r3
        trap 0x1
        halt
        ",
    ));
}

#[test]
fn counted_loop_with_branches() {
    check_equivalence(&program(
        "loop",
        r"
        li r1, 50
        li r4, 0
    top:
        add r4, r4, r1
        addi r1, r1, -1
        cmpi r1, 0
        bne top
        trap 0x1
        halt
        ",
    ));
}

#[test]
fn direct_calls_and_returns() {
    check_equivalence(&program(
        "calls",
        r"
        li r4, 3
        call double
        call double
        call double
        trap 0x1
        halt
    double:
        add r4, r4, r4
        ret
        ",
    ));
}

#[test]
fn call_in_loop_exercises_return_locality() {
    check_equivalence(&program(
        "call-loop",
        r"
        li r1, 40
        li r4, 0
    top:
        call bump
        addi r1, r1, -1
        cmpi r1, 0
        bne top
        trap 0x1
        halt
    bump:
        addi r4, r4, 3
        ret
        ",
    ));
}

#[test]
fn recursion() {
    check_equivalence(&program(
        "recursion",
        r"
        li r1, 12
        li r4, 0
        call fib_acc
        trap 0x1
        halt
    fib_acc:                ; adds 2^depth-ish work via two recursive calls
        cmpi r1, 1
        bge  recurse
        addi r4, r4, 1
        ret
    recurse:
        push r1
        addi r1, r1, -1
        call fib_acc
        pop r1
        push r1
        addi r1, r1, -2
        call fib_acc
        pop r1
        ret
        ",
    ));
}

#[test]
fn jump_table_dispatch_loop() {
    check_equivalence(&program(
        "switch",
        &format!(
            r"
        li r10, {data}
        li r1, case0
        sw r1, 0(r10)
        li r1, case1
        sw r1, 4(r10)
        li r1, case2
        sw r1, 8(r10)
        li r1, case3
        sw r1, 12(r10)
        li r5, 40
        li r4, 0
        li r6, 0
    top:
        andi r7, r6, 3
        slli r7, r7, 2
        add r7, r7, r10
        lw r7, 0(r7)
        jr r7               ; 4-way polymorphic indirect jump
    case0:
        addi r4, r4, 1
        jmp next
    case1:
        addi r4, r4, 10
        jmp next
    case2:
        addi r4, r4, 100
        jmp next
    case3:
        addi r4, r4, 1000
    next:
        addi r6, r6, 1
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
        ",
            data = layout::APP_DATA_BASE
        ),
    ));
}

#[test]
fn indirect_calls_through_function_pointers() {
    check_equivalence(&program(
        "fnptr",
        r"
        li r8, add_one
        li r9, add_two
        li r5, 25
        li r4, 0
    top:
        andi r7, r5, 1
        cmpi r7, 0
        beq even
        callr r8
        jmp next
    even:
        callr r9
    next:
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
    add_one:
        addi r4, r4, 1
        ret
    add_two:
        addi r4, r4, 2
        ret
        ",
    ));
}

#[test]
fn flags_live_across_indirect_branch() {
    // cmp sets flags, then an indirect jump intervenes, then the branch
    // consumes the flags: FlagsPolicy::Always must preserve them.
    check_equivalence(&program(
        "flags-across-ib",
        r"
        li r1, 1
        li r2, 2
        li r9, after
        cmp r1, r2          ; lt
        jr r9
    after:
        blt less
        li r4, 111
        trap 0x1
        halt
    less:
        li r4, 222
        trap 0x1
        halt
        ",
    ));
}

#[test]
fn app_jmem_is_translated() {
    check_equivalence(&program(
        "jmem",
        &format!(
            r"
        li r1, dest
        li r2, {slot}
        sw r1, 0(r2)
        jmem [{slot}]
        halt                ; skipped
    dest:
        li r4, 77
        trap 0x1
        halt
        ",
            slot = layout::APP_DATA_BASE + 0x40
        ),
    ));
}

#[test]
fn app_syscalls_pass_through() {
    check_equivalence(&program(
        "syscalls",
        r"
        li r5, 5
        li r4, 0
    top:
        add r4, r4, r5
        trap 0x2            ; emit r4
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        halt
        ",
    ));
}

#[test]
fn flags_policy_none_is_cheaper_when_flags_dead() {
    let prog = program(
        "noflags",
        r"
        li r8, f
        li r5, 60
        li r4, 0
    top:
        callr r8
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
    f:
        addi r4, r4, 7
        ret
        ",
    );
    let native = run_native(&prog, ArchProfile::x86_like(), FUEL).unwrap();

    let mut with_flags = SdtConfig::ibtc_inline(256);
    with_flags.flags = FlagsPolicy::Always;
    let mut without = with_flags;
    without.flags = FlagsPolicy::None;

    let ra = Sdt::new(with_flags, &prog)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL * 20)
        .unwrap();
    let rb = Sdt::new(without, &prog)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL * 20)
        .unwrap();
    assert_eq!(ra.checksum, native.checksum);
    assert_eq!(rb.checksum, native.checksum);
    assert!(
        rb.total_cycles < ra.total_cycles,
        "dropping pushf/popf must be cheaper: {} vs {}",
        rb.total_cycles,
        ra.total_cycles
    );
}

#[test]
fn warm_cache_second_run_is_cheaper() {
    let prog = program(
        "warm",
        r"
        li r5, 30
        li r4, 0
        li r8, f
    top:
        callr r8
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
    f:
        addi r4, r4, 1
        ret
        ",
    );
    let mut sdt = Sdt::new(SdtConfig::ibtc_inline(256), &prog).unwrap();
    let cold = sdt.run(ArchProfile::x86_like(), FUEL).unwrap();
    // NOTE: the program ran to halt; to re-run we need a fresh machine, so
    // instead verify the cold run's translator work happened and the cache
    // retained its fragments.
    assert!(cold.mech.translator_entries > 0);
    assert!(sdt.fragments() > 0);
    assert!(sdt.cache_used_bytes() > 0);
}

#[test]
fn self_modifying_code_is_detected_not_miscompiled() {
    // The program patches an upcoming instruction. Natively the machine
    // honors it (its decode cache invalidates on stores); under the SDT
    // the already-translated fragment would go stale, so the run must be
    // refused with a precise error instead of silently diverging.
    let prog = program(
        "smc",
        &format!(
            r"
        li r1, {replacement:#x}
        li r2, patch_site
        sw r1, 0(r2)
        li r4, 0
    patch_site:
        nop
        trap 0x1
        halt
        ",
            replacement = strata_isa::encode(&strata_isa::Instr::Addi {
                rd: strata_isa::Reg::R4,
                rs1: strata_isa::Reg::R4,
                imm: 7
            }),
        ),
    );
    let native = run_native(&prog, ArchProfile::x86_like(), FUEL).unwrap();
    assert_eq!(native.regs[4], 7, "native run honors the patch");

    let mut sdt = Sdt::new(SdtConfig::ibtc_inline(64), &prog).unwrap();
    match sdt.run(ArchProfile::x86_like(), FUEL) {
        Err(strata_core::SdtError::SelfModifyingCode { addr, .. }) => {
            assert!(addr >= layout::APP_BASE);
        }
        other => panic!("expected SelfModifyingCode, got {other:?}"),
    }
}

#[test]
fn dispatch_handles_scratch_registers_as_targets() {
    // The dispatch prologue spills r1 and then captures the target; if the
    // target register IS r1/r2/r3 the capture order must still be correct.
    check_equivalence(&program(
        "scratch-targets",
        r"
        li r1, t1
        jr r1
    t1:
        li r2, t2
        jr r2
    t2:
        li r3, t3
        jr r3
    t3:
        li r1, f
        callr r1
        li r2, f
        callr r2
        li r3, f
        callr r3
        trap 0x1
        halt
    f:
        addi r4, r4, 11
        ret
        ",
    ));
}

#[test]
fn indirect_jump_through_stack_pointer_region_register() {
    // jr through r15 (sp) after temporarily repointing it — an abusive but
    // legal pattern the dispatch must survive.
    check_equivalence(&program(
        "jr-sp",
        r"
        mov r10, sp          ; save real sp
        li sp, t
        mov r11, sp
        mov sp, r10          ; restore before the jump (stack must be sane)
        jr r11
    t:
        li r4, 5
        trap 0x1
        halt
        ",
    ));
}
