//! Shadow-stack return handling: transparent, exact (no hash conflicts),
//! with graceful fallback on unbalanced control flow, wrap-around, and
//! underflow.

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{run_native, RetMechanism, Sdt, SdtConfig};
use strata_machine::{layout, Program};
use strata_workloads::{by_name, registry, Params};

const FUEL: u64 = 2_000_000_000;

fn shadow_cfg(depth: u32) -> SdtConfig {
    let mut cfg = SdtConfig::ibtc_inline(4096);
    cfg.ret = RetMechanism::ShadowStack { depth };
    cfg
}

#[test]
fn shadow_stack_is_equivalent_on_all_workloads() {
    let params = Params::default();
    for spec in registry() {
        let p = (spec.build)(&params);
        let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
        let report = Sdt::new(shadow_cfg(1024), &p)
            .unwrap()
            .run(ArchProfile::x86_like(), FUEL)
            .unwrap();
        assert_eq!(report.checksum, native.checksum, "[{}]", spec.name);
    }
}

#[test]
fn shadow_stack_hits_perfectly_on_balanced_code() {
    // crafty is deep but balanced recursion within a 1024-entry shadow:
    // after warmup no return should fall back.
    let p = (by_name("crafty").unwrap().build)(&Params::default());
    let report = Sdt::new(shadow_cfg(1024), &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert!(report.mech.ret_dispatches > 40_000);
    assert!(
        report.mech.rc_misses * 1000 < report.mech.ret_dispatches,
        "balanced code must almost never fall back: {} misses / {} dispatches",
        report.mech.rc_misses,
        report.mech.ret_dispatches
    );
}

#[test]
fn shadow_stack_is_transparent_to_stack_inspection() {
    // The same program that exposes fast returns (examples/transparency.rs)
    // must see its real application return address under the shadow stack.
    let src = r"
        call snoop
        halt
    snoop:
        lw r4, 0(sp)
        trap 0x1
        ret
    ";
    let p = Program::new(
        "snoop",
        assemble(layout::APP_BASE, src).unwrap(),
        Vec::new(),
    );
    let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
    let report = Sdt::new(shadow_cfg(64), &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(
        report.checksum, native.checksum,
        "shadow stack must stay transparent"
    );
}

#[test]
fn underflow_falls_back_gracefully() {
    // A return with no preceding call: the shadow stack is empty, the
    // verify fails, and the translator resolves the target.
    let src = r"
        li r1, dest
        push r1
        ret              ; manufactured return, never called
    dest:
        li r4, 31
        trap 0x1
        halt
    ";
    let p = Program::new(
        "underflow",
        assemble(layout::APP_BASE, src).unwrap(),
        Vec::new(),
    );
    let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
    let report = Sdt::new(shadow_cfg(64), &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(report.checksum, native.checksum);
    assert!(
        report.mech.rc_misses >= 1,
        "underflow must be a counted fallback"
    );
}

#[test]
fn recursion_deeper_than_the_shadow_wraps_and_recovers() {
    // Mutual recursion through three functions (period 3, coprime to the
    // 16-entry shadow): once the recursion exceeds the shadow depth, the
    // wrap misaligns every surviving entry, so the unwind beyond the inner
    // 16 frames must fall back — and results stay exact. (Pure
    // self-recursion would NOT fall back: its overwritten entries carry
    // identical pairs, a genuine property of circular shadow stacks.)
    let src = r"
        li r1, 41
        li r4, 0
        call f1
        trap 0x1
        halt
    f1:
        cmpi r1, 0
        beq base
        addi r1, r1, -1
        call f2
        addi r4, r4, 1
        ret
    f2:
        cmpi r1, 0
        beq base
        addi r1, r1, -1
        call f3
        addi r4, r4, 2
        ret
    f3:
        cmpi r1, 0
        beq base
        addi r1, r1, -1
        call f1
        addi r4, r4, 3
        ret
    base:
        addi r4, r4, 100
        ret
    ";
    let p = Program::new("deep", assemble(layout::APP_BASE, src).unwrap(), Vec::new());
    let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
    let report = Sdt::new(shadow_cfg(16), &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(report.checksum, native.checksum);
    assert!(
        report.mech.rc_misses >= 15,
        "wrapped entries must fall back: {}",
        report.mech.rc_misses
    );

    // Control: the same program with a deep-enough shadow never wraps.
    let big = Sdt::new(shadow_cfg(64), &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(big.checksum, native.checksum);
    assert!(big.mech.rc_misses <= 2, "{}", big.mech.rc_misses);
}

#[test]
fn shadow_stack_survives_cache_flushes() {
    let p = (by_name("gcc").unwrap().build)(&Params::default());
    let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
    let mut cfg = shadow_cfg(256);
    cfg.cache_limit = Some(16 * 1024);
    let report = Sdt::new(cfg, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(report.checksum, native.checksum);
    assert!(report.mech.cache_flushes > 0, "test needs flush pressure");
}

#[test]
fn bad_depth_rejected() {
    let src = "halt\n";
    let p = Program::new("t", assemble(layout::APP_BASE, src).unwrap(), Vec::new());
    for depth in [0u32, 3, 16384] {
        let mut cfg = SdtConfig::ibtc_inline(64);
        cfg.ret = RetMechanism::ShadowStack { depth };
        assert!(Sdt::new(cfg, &p).is_err(), "depth {depth} must be rejected");
    }
}
