//! Tests for the design-space extensions: direct-jump elision (fragment
//! formation) and two-way set-associative IBTCs.

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{run_native, Sdt, SdtConfig, SdtError};
use strata_machine::{layout, Program};
use strata_workloads::{by_name, registry, Params};

const FUEL: u64 = 2_000_000_000;

fn program(src: &str) -> Program {
    Program::new("t", assemble(layout::APP_BASE, src).unwrap(), Vec::new())
}

#[test]
fn elision_preserves_semantics_on_all_workloads() {
    let params = Params::default();
    for spec in registry() {
        let p = (spec.build)(&params);
        let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
        let mut cfg = SdtConfig::ibtc_inline(1024);
        cfg.elide_direct_jumps = true;
        let report = Sdt::new(cfg, &p)
            .unwrap()
            .run(ArchProfile::x86_like(), FUEL)
            .unwrap();
        assert_eq!(
            report.checksum, native.checksum,
            "[{}] elision broke semantics",
            spec.name
        );
    }
}

#[test]
fn elision_removes_jumps_and_grows_code() {
    let p = (by_name("gcc").unwrap().build)(&Params::default());
    let base_cfg = SdtConfig::ibtc_inline(1024);
    let mut elide_cfg = base_cfg;
    elide_cfg.elide_direct_jumps = true;

    let plain = Sdt::new(base_cfg, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    let elided = Sdt::new(elide_cfg, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();

    assert_eq!(plain.mech.elided_jumps, 0);
    assert!(
        elided.mech.elided_jumps > 50,
        "{}",
        elided.mech.elided_jumps
    );
    assert!(
        elided.mech.translated_app_instrs > plain.mech.translated_app_instrs,
        "tail duplication must translate more instructions"
    );
    // Elision trades taken jumps for code growth; on gcc's 128 duplicated
    // dispatch tails the I-cache cost roughly cancels the win, so only
    // bound the regression (fig15 reports the full tradeoff).
    assert!(
        (elided.total_cycles as f64) < plain.total_cycles as f64 * 1.10,
        "elision must not be catastrophic: {} vs {}",
        elided.total_cycles,
        plain.total_cycles
    );
}

#[test]
fn elision_wins_on_single_predecessor_jump_chains() {
    // Jump threading: a hot loop whose body is a chain of blocks linked by
    // unconditional jumps (each with one predecessor — no duplication at
    // all). Elision merges the chain into one fragment and the taken
    // jumps vanish.
    let p = program(
        r"
        li r5, 5000
        li r4, 0
    top:
        addi r4, r4, 1
        jmp b1
    b1:
        xori r4, r4, 0x11
        jmp b2
    b2:
        slli r6, r4, 1
        xor r4, r4, r6
        jmp b3
    b3:
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
        ",
    );
    let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
    let base_cfg = SdtConfig::ibtc_inline(64);
    let mut elide_cfg = base_cfg;
    elide_cfg.elide_direct_jumps = true;
    let plain = Sdt::new(base_cfg, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    let elided = Sdt::new(elide_cfg, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(plain.checksum, native.checksum);
    assert_eq!(elided.checksum, native.checksum);
    assert!(elided.mech.elided_jumps >= 3);
    assert!(
        elided.total_cycles < plain.total_cycles,
        "threading a 1-predecessor chain must win: {} vs {}",
        elided.total_cycles,
        plain.total_cycles
    );
}

#[test]
fn elision_handles_self_loops() {
    // `top: jmp top` must not spin the translator; the loop target is part
    // of the fragment, so the jump falls back to a trampoline.
    let p = program(
        r"
        li r5, 3
    top:
        addi r5, r5, -1
        cmpi r5, 0
        beq out
        jmp top
    out:
        li r4, 9
        trap 0x1
        halt
        ",
    );
    let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
    let mut cfg = SdtConfig::ibtc_inline(64);
    cfg.elide_direct_jumps = true;
    let report = Sdt::new(cfg, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(report.checksum, native.checksum);
}

#[test]
fn two_way_ibtc_equivalent_and_less_conflicty() {
    // Two jr targets crafted to collide in a direct-mapped 16-entry table
    // (their word addresses differ by exactly 16): direct-mapped thrashes
    // on every alternation, two-way holds both.
    let mut src = String::from(
        r"
        li r5, 500
        li r4, 0
        li r8, t_a
        li r9, t_b
    top:
        jr r8
    back_a:
        jr r9
    back_b:
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
    t_a:
        addi r4, r4, 1
        li r10, back_a
        jr r10
",
    );
    // Pad so that t_b lands exactly 16 words after t_a.
    for _ in 0..12 {
        src.push_str("        nop\n");
    }
    src.push_str(
        r"
    t_b:
        addi r4, r4, 2
        li r10, back_b
        jr r10
",
    );
    let p = program(&src);
    let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();

    let direct = SdtConfig::ibtc_inline(16);
    let mut two_way = direct;
    two_way.ibtc_ways = 2;

    let rd = Sdt::new(direct, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    let r2 = Sdt::new(two_way, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(rd.checksum, native.checksum);
    assert_eq!(r2.checksum, native.checksum);
    if rd.mech.ib_misses > 100 {
        // The crafted conflict materialized under direct mapping; the
        // two-way table must absorb it.
        assert!(
            r2.mech.ib_misses * 10 < rd.mech.ib_misses,
            "associativity must absorb the crafted conflict: {} vs {}",
            r2.mech.ib_misses,
            rd.mech.ib_misses
        );
    } else {
        // Layout drifted; at minimum two-way must not be worse.
        assert!(r2.mech.ib_misses <= rd.mech.ib_misses);
    }
}

#[test]
fn two_way_works_per_site_and_with_flushes() {
    let p = (by_name("gcc").unwrap().build)(&Params::default());
    let native = run_native(&p, ArchProfile::x86_like(), FUEL).unwrap();
    let mut cfg = SdtConfig {
        ib: strata_core::IbMechanism::Ibtc {
            entries: 16,
            scope: strata_core::IbtcScope::PerSite,
            placement: strata_core::IbtcPlacement::Inline,
        },
        ..SdtConfig::ibtc_inline(16)
    };
    cfg.ibtc_ways = 2;
    cfg.cache_limit = Some(16 * 1024);
    let report = Sdt::new(cfg, &p)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(report.checksum, native.checksum);
}

#[test]
fn two_way_rejects_out_of_line_and_bad_ways() {
    let p = program("halt\n");
    let mut cfg = SdtConfig::ibtc_out_of_line(64);
    cfg.ibtc_ways = 2;
    assert!(matches!(Sdt::new(cfg, &p), Err(SdtError::BadConfig { .. })));
    let mut cfg = SdtConfig::ibtc_inline(64);
    cfg.ibtc_ways = 3;
    assert!(matches!(Sdt::new(cfg, &p), Err(SdtError::BadConfig { .. })));
    let mut cfg = SdtConfig::ibtc_inline(2);
    cfg.ibtc_ways = 2;
    assert!(matches!(Sdt::new(cfg, &p), Err(SdtError::BadConfig { .. })));
}
