//! Golden disassembly snapshots of the dispatch sequences each mechanism
//! emits, per branch class.
//!
//! The strategy-layer refactor must keep every legacy single-mechanism
//! configuration byte-identical; these fixtures pin the entire occupied
//! fragment cache (shared stubs, per-site dispatch sequences, call glue,
//! sieve stanzas, linked trampolines) after a run that exercises an
//! indirect call, an indirect register jump, an indirect memory jump, a
//! direct call, and returns.
//!
//! To refresh after an *intentional* emission change:
//!
//! ```text
//! STRATA_UPDATE_GOLDEN=1 cargo test -p strata-core --test dispatch_golden
//! ```
//!
//! then commit the updated files under `tests/golden/dispatch/`.

use std::path::PathBuf;

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{
    FlagsPolicy, IbMechanism, IbtcPlacement, IbtcScope, RetMechanism, Sdt, SdtConfig,
};
use strata_machine::{layout, Program};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/dispatch")
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("STRATA_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with STRATA_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "emitted dispatch code drifted from {} — if intentional, regenerate with \
         STRATA_UPDATE_GOLDEN=1",
        path.display()
    );
}

/// One basic block per branch class: a direct call, an indirect call, an
/// indirect register jump, an indirect memory jump, and two returns.
const PROGRAM: &str = "\
main:
    call f
    li r9, f
    callr r9
    li r9, j1
    jr r9
j1:
    li r8, 0x800
    li r9, j2
    sw r9, 0(r8)
    jmem [0x800]
j2:
    li r5, 3
    trap 0x1
    halt
f:
    addi r4, r4, 1
    ret
";

fn dump(cfg: SdtConfig) -> String {
    let code = assemble(layout::APP_BASE, PROGRAM).expect("program assembles");
    let program = Program::new("dispatch-golden", code, Vec::new());
    let mut sdt = Sdt::new(cfg, &program).expect("sdt constructs");
    let report = sdt
        .run(ArchProfile::x86_like(), 1_000_000)
        .expect("run completes");
    assert!(report.halted);
    format!(
        "config: {}\n\n{}",
        report.config,
        sdt.dump_cache(usize::MAX)
    )
}

/// Every legacy configuration whose emission the refactor must preserve.
fn legacy_configs() -> Vec<(&'static str, SdtConfig)> {
    let mut ibtc_2way = SdtConfig::ibtc_inline(256);
    ibtc_2way.ibtc_ways = 2;
    let ibtc_persite = SdtConfig {
        ib: IbMechanism::Ibtc {
            entries: 64,
            scope: IbtcScope::PerSite,
            placement: IbtcPlacement::Inline,
        },
        ..SdtConfig::ibtc_inline(64)
    };
    let mut fastret = SdtConfig::ibtc_inline(256);
    fastret.ret = RetMechanism::FastReturn;
    let mut shadow = SdtConfig::ibtc_inline(256);
    shadow.ret = RetMechanism::ShadowStack { depth: 16 };
    let mut sieve_noflags = SdtConfig::sieve(64);
    sieve_noflags.flags = FlagsPolicy::None;
    let mut reentry_nolink = SdtConfig::reentry();
    reentry_nolink.link_fragments = false;
    let mut instrumented = SdtConfig::ibtc_inline(256);
    instrumented.instrument_blocks = true;
    instrumented.elide_direct_jumps = true;
    vec![
        ("reentry", SdtConfig::reentry()),
        ("ibtc_inline", SdtConfig::ibtc_inline(256)),
        ("ibtc_inline_2way", ibtc_2way),
        ("ibtc_outline", SdtConfig::ibtc_out_of_line(256)),
        ("ibtc_persite", ibtc_persite),
        ("sieve", SdtConfig::sieve(64)),
        ("tuned", SdtConfig::tuned(256, 64)),
        ("fastret", fastret),
        ("shadow", shadow),
        ("sieve_noflags", sieve_noflags),
        ("reentry_nolink", reentry_nolink),
        ("instrumented_elide", instrumented),
    ]
}

#[test]
fn dispatch_sequences_are_pinned_per_config() {
    for (name, cfg) in legacy_configs() {
        assert_golden(&format!("{name}.txt"), &dump(cfg));
    }
}
