//! White-box checks on emitted code shapes, via the disassembly API: the
//! dispatch sequences must contain exactly the structural instructions the
//! paper's mechanisms are defined by, and fragment linking must rewrite
//! trampoline heads in place.

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{CacheLine, Origin, Sdt, SdtConfig};
use strata_isa::Instr;
use strata_machine::{layout, Program};

fn run_sdt(src: &str, cfg: SdtConfig) -> Sdt {
    let program = Program::new("t", assemble(layout::APP_BASE, src).unwrap(), Vec::new());
    let mut sdt = Sdt::new(cfg, &program).unwrap();
    sdt.run(ArchProfile::x86_like(), 10_000_000).unwrap();
    sdt
}

fn dispatch_lines(sdt: &Sdt) -> Vec<CacheLine> {
    sdt.disassemble_cache(usize::MAX)
        .into_iter()
        .filter(|l| l.origin == Origin::Dispatch)
        .collect()
}

const JR_PROGRAM: &str = r"
    li r9, t
    jr r9
t:
    li r4, 5
    trap 0x1
    halt
";

#[test]
fn inline_ibtc_dispatch_contains_hash_probe_and_jmem() {
    let sdt = run_sdt(JR_PROGRAM, SdtConfig::ibtc_inline(256));
    let lines = dispatch_lines(&sdt);
    let has =
        |pred: &dyn Fn(&Instr) -> bool| lines.iter().any(|l| l.instr.is_some_and(|i| pred(&i)));
    assert!(
        has(&|i| matches!(i, Instr::Srli { shamt: 2, .. })),
        "alignment-drop shift"
    );
    assert!(
        has(&|i| matches!(i, Instr::Andi { imm: 255, .. })),
        "mask to 256 entries"
    );
    assert!(
        has(&|i| matches!(i, Instr::Slli { shamt: 3, .. })),
        "8-byte entry scaling"
    );
    assert!(has(&|i| matches!(i, Instr::Cmp { .. })), "tag compare");
    assert!(
        has(&|i| matches!(i, Instr::Jmem { .. })),
        "jmp [mem] transfer"
    );
    assert!(has(&|i| matches!(i, Instr::Pushf)) && has(&|i| matches!(i, Instr::Popf)));
}

#[test]
fn flags_none_removes_pushf_popf_from_dispatch() {
    let mut cfg = SdtConfig::ibtc_inline(256);
    cfg.flags = strata_core::FlagsPolicy::None;
    let sdt = run_sdt(JR_PROGRAM, cfg);
    let all = sdt.disassemble_cache(usize::MAX);
    assert!(
        !all.iter()
            .any(|l| matches!(l.instr, Some(Instr::Pushf) | Some(Instr::Popf))),
        "FlagsPolicy::None must emit no flags save anywhere"
    );
}

#[test]
fn sieve_dispatch_scales_by_four_and_has_no_tag_compare() {
    let sdt = run_sdt(JR_PROGRAM, SdtConfig::sieve(256));
    let lines = dispatch_lines(&sdt);
    // The dispatch itself does no compare; compares live in the stanzas,
    // which end with a *direct* jmp to the fragment.
    assert!(lines
        .iter()
        .any(|l| matches!(l.instr, Some(Instr::Slli { shamt: 2, .. }))));
    assert!(
        lines
            .iter()
            .any(|l| matches!(l.instr, Some(Instr::Jmp { .. }))),
        "stanza hit ends in a direct jump"
    );
    assert!(
        lines
            .iter()
            .any(|l| matches!(l.instr, Some(Instr::Cmp { .. }))),
        "stanza verifies the target"
    );
}

#[test]
fn two_way_probe_emits_both_way_offsets() {
    let mut cfg = SdtConfig::ibtc_inline(256);
    cfg.ibtc_ways = 2;
    let sdt = run_sdt(JR_PROGRAM, cfg);
    let lines = dispatch_lines(&sdt);
    let lw_off = |off: i16| {
        lines
            .iter()
            .any(|l| matches!(l.instr, Some(Instr::Lw { off: o, .. }) if o == off))
    };
    assert!(lw_off(0) && lw_off(4), "way-0 tag/value loads");
    assert!(lw_off(8) && lw_off(12), "way-1 tag/value loads");
    assert!(
        lines
            .iter()
            .any(|l| matches!(l.instr, Some(Instr::Slli { shamt: 4, .. }))),
        "16-byte set scaling"
    );
}

#[test]
fn fragment_linking_patches_trampoline_heads_in_place() {
    // A loop executes its backward branch repeatedly; after the first
    // iteration the exit trampoline head must be a direct Jmp tagged
    // Trampoline.
    let sdt = run_sdt(
        r"
        li r5, 5
    top:
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        halt
        ",
        SdtConfig::ibtc_inline(64),
    );
    let trampolines: Vec<CacheLine> = sdt
        .disassemble_cache(usize::MAX)
        .into_iter()
        .filter(|l| l.origin == Origin::Trampoline)
        .collect();
    assert!(
        trampolines
            .iter()
            .any(|l| matches!(l.instr, Some(Instr::Jmp { .. }))),
        "linked exits must be direct jumps"
    );
}

#[test]
fn reentry_dispatch_has_no_probe_at_all() {
    let sdt = run_sdt(JR_PROGRAM, SdtConfig::reentry());
    let lines = dispatch_lines(&sdt);
    assert!(
        !lines
            .iter()
            .any(|l| matches!(l.instr, Some(Instr::Cmp { .. }))),
        "re-entry never compares in the cache"
    );
    assert!(
        !lines
            .iter()
            .any(|l| matches!(l.instr, Some(Instr::Jmem { .. }))),
        "re-entry never transfers through a jump slot from dispatch code"
    );
}

#[test]
fn out_of_line_sites_call_the_shared_routine() {
    let sdt = run_sdt(JR_PROGRAM, SdtConfig::ibtc_out_of_line(256));
    let lines = dispatch_lines(&sdt);
    assert!(
        lines
            .iter()
            .any(|l| matches!(l.instr, Some(Instr::Call { .. }))),
        "site must call the lookup routine"
    );
    assert!(
        lines.iter().any(|l| matches!(l.instr, Some(Instr::Ret))),
        "routine returns to the site on a hit"
    );
}
