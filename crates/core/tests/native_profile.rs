//! `run_native` branch-profile counters must be exact on programs with
//! known dynamic behaviour — Table 1's numbers depend on them.

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::run_native;
use strata_machine::{layout, Program};

fn native(src: &str) -> strata_core::NativeRun {
    let p = Program::new("t", assemble(layout::APP_BASE, src).unwrap(), Vec::new());
    run_native(&p, ArchProfile::x86_like(), 10_000_000).unwrap()
}

#[test]
fn counts_each_branch_kind_exactly() {
    let r = native(
        r"
        li r5, 7
        li r9, body
    top:
        jr r9           ; 7 indirect jumps
    body:
        li r8, f
        callr r8        ; 7 indirect calls (+7 returns)
        call f          ; 7 direct calls (+7 returns)
        addi r5, r5, -1
        cmpi r5, 0
        bne top         ; 7 conditional branches
        li r4, 1
        trap 0x1
        halt
    f:
        ret
        ",
    );
    assert_eq!(r.indirect_jumps, 7);
    assert_eq!(r.indirect_calls, 7);
    assert_eq!(r.direct_calls, 7);
    assert_eq!(r.returns, 14);
    assert_eq!(r.cond_branches, 7);
    assert_eq!(r.indirect_branches(), 7 + 7 + 14);
    assert_ne!(r.checksum, 0);
}

#[test]
fn jmem_counts_as_indirect_jump() {
    let r = native(&format!(
        r"
        li r1, dest
        li r2, {slot}
        sw r1, 0(r2)
        jmem [{slot}]
        halt
    dest:
        li r4, 3
        trap 0x1
        halt
        ",
        slot = layout::APP_DATA_BASE
    ));
    assert_eq!(r.indirect_jumps, 1);
    assert_eq!(r.returns, 0);
}

#[test]
fn reserved_traps_error_natively_too() {
    let p = Program::new(
        "bad",
        assemble(layout::APP_BASE, "trap 0xF000\nhalt\n").unwrap(),
        Vec::new(),
    );
    match run_native(&p, ArchProfile::x86_like(), 1000) {
        Err(strata_core::SdtError::ReservedTrap { code: 0xF000, .. }) => {}
        other => panic!("expected ReservedTrap, got {other:?}"),
    }
}
