//! Fragment-cache flush: when the cache region fills, the SDT discards all
//! fragments and lookup-structure state (keeping the stubs) and
//! retranslates on demand — execution must stay correct across flushes.

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{run_native, RetMechanism, Sdt, SdtConfig, SdtError};
use strata_machine::{layout, Program};
use strata_workloads::{by_name, Params};

const FUEL: u64 = 2_000_000_000;

#[test]
fn tiny_cache_forces_flushes_and_stays_correct() {
    let program = (by_name("gcc").unwrap().build)(&Params::default());
    let native = run_native(&program, ArchProfile::x86_like(), FUEL).unwrap();

    for mut cfg in [
        SdtConfig::ibtc_inline(256),
        SdtConfig::sieve(256),
        SdtConfig::tuned(256, 64),
    ] {
        cfg.cache_limit = Some(12 * 1024);
        let mut sdt = Sdt::new(cfg, &program).unwrap();
        let report = sdt
            .run(ArchProfile::x86_like(), FUEL)
            .unwrap_or_else(|e| panic!("{} with 12KiB cache failed: {e}", cfg.describe()));
        assert_eq!(report.checksum, native.checksum, "{}", cfg.describe());
        assert!(
            report.mech.cache_flushes > 0,
            "{}: gcc cannot fit a 12 KiB cache without flushing",
            cfg.describe()
        );
        assert!(
            sdt.cache_used_bytes() <= 12 * 1024,
            "cache grew past its limit"
        );
    }
}

#[test]
fn flush_cost_shows_up_as_retranslation() {
    let program = (by_name("gcc").unwrap().build)(&Params::default());
    let mut small = SdtConfig::ibtc_inline(256);
    small.cache_limit = Some(12 * 1024);
    let constrained = Sdt::new(small, &program)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    let unconstrained = Sdt::new(SdtConfig::ibtc_inline(256), &program)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(unconstrained.mech.cache_flushes, 0);
    assert!(
        constrained.mech.translated_app_instrs > unconstrained.mech.translated_app_instrs,
        "flushing must force retranslation"
    );
    assert!(
        constrained.total_cycles > unconstrained.total_cycles,
        "flushing cannot be free"
    );
}

#[test]
fn fast_returns_refuse_to_flush() {
    let program = (by_name("gcc").unwrap().build)(&Params::default());
    let mut cfg = SdtConfig::ibtc_inline(256);
    cfg.ret = RetMechanism::FastReturn;
    cfg.cache_limit = Some(8 * 1024);
    let mut sdt = Sdt::new(cfg, &program).unwrap();
    match sdt.run(ArchProfile::x86_like(), FUEL) {
        Err(SdtError::CacheFull { .. }) => {}
        other => panic!("expected CacheFull under fast returns, got {other:?}"),
    }
}

#[test]
fn undersized_cache_limit_rejected() {
    let code = assemble(layout::APP_BASE, "halt\n").unwrap();
    let program = Program::new("t", code, Vec::new());
    let mut cfg = SdtConfig::ibtc_inline(256);
    cfg.cache_limit = Some(1024);
    match Sdt::new(cfg, &program) {
        Err(SdtError::BadConfig {
            what: "cache limit",
            ..
        }) => {}
        other => panic!("expected BadConfig, got {other:?}"),
    }
}

#[test]
fn flush_preserves_mechanism_semantics_under_pressure() {
    // A workload whose target set exceeds what a 16 KiB cache can hold at
    // once, with a return cache in play: correctness across repeated
    // flush/refill cycles of both the cache and the rc table.
    let program = (by_name("gcc").unwrap().build)(&Params::default());
    let native = run_native(&program, ArchProfile::x86_like(), FUEL).unwrap();
    let mut cfg = SdtConfig::tuned(64, 32);
    cfg.cache_limit = Some(12 * 1024);
    let report = Sdt::new(cfg, &program)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert_eq!(report.checksum, native.checksum);
    assert!(report.mech.cache_flushes >= 1);
}
