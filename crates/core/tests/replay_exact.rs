//! Trace replay exactness: feeding a native retire stream through
//! [`DispatchReplay`] must reproduce exact-mode mechanism counters —
//! every dispatch, miss, link, fill, promotion, and flush — for every
//! mechanism configuration. This is the fidelity contract the sampled
//! execution mode is built on.

use strata_arch::ArchProfile;
use strata_asm::assemble;
use strata_core::{
    ClassPolicy, DispatchReplay, IbMechanism, IbtcPlacement, IbtcScope, RetMechanism, Sdt,
    SdtConfig,
};
use strata_machine::observers::{CompactRetire, RetireLog};
use strata_machine::syscall::{SyscallState, SDT_TRAP_BASE};
use strata_machine::{layout, Machine, Program, StepOutcome};

const FUEL: u64 = 20_000_000;

fn program(name: &str, src: &str) -> Program {
    let code = assemble(layout::APP_BASE, src).expect("program assembles");
    Program::new(name, code, Vec::new())
}

/// Runs `prog` natively (no SDT) and returns its retire stream.
fn native_log(prog: &Program) -> Vec<CompactRetire> {
    let mut machine = Machine::new(layout::DEFAULT_MEM_BYTES);
    prog.load(&mut machine).expect("program loads");
    let mut syscalls = SyscallState::new();
    let mut log = RetireLog::new();
    loop {
        match machine.run(&mut log, FUEL).expect("native run succeeds") {
            StepOutcome::Halted => break,
            StepOutcome::Trap(code) => {
                assert!(code < SDT_TRAP_BASE, "app programs use app traps only");
                syscalls.handle(code, &machine);
            }
            StepOutcome::Running => unreachable!("run returns only on halt/trap"),
        }
    }
    log.into_records()
}

/// Mechanism configurations the replay must track exactly.
fn configs() -> Vec<SdtConfig> {
    let mut cfgs = vec![
        SdtConfig::reentry(),
        SdtConfig::ibtc_inline(4), // tiny: forces conflict misses
        SdtConfig::ibtc_inline(1024),
        SdtConfig::ibtc_out_of_line(256),
        SdtConfig::sieve(4),
        SdtConfig::sieve(256),
        SdtConfig::tuned(512, 128),
    ];
    cfgs.push(SdtConfig {
        ib: IbMechanism::Ibtc {
            entries: 16,
            scope: IbtcScope::PerSite,
            placement: IbtcPlacement::Inline,
        },
        ..SdtConfig::ibtc_inline(16)
    });
    let mut fast = SdtConfig::ibtc_inline(256);
    fast.ret = RetMechanism::FastReturn;
    cfgs.push(fast);
    let mut shadow = SdtConfig::ibtc_inline(256);
    shadow.ret = RetMechanism::ShadowStack { depth: 8 };
    cfgs.push(shadow);
    let mut sieve_shadow = SdtConfig::sieve(64);
    sieve_shadow.ret = RetMechanism::ShadowStack { depth: 16 };
    cfgs.push(sieve_shadow);
    let mut sieve_rc = SdtConfig::sieve(64);
    sieve_rc.ret = RetMechanism::ReturnCache { entries: 16 };
    cfgs.push(sieve_rc);
    let mut outline_rc = SdtConfig::ibtc_out_of_line(64);
    outline_rc.ret = RetMechanism::ReturnCache { entries: 16 };
    cfgs.push(outline_rc);
    let mut two_way = SdtConfig::ibtc_inline(64);
    two_way.ibtc_ways = 2;
    cfgs.push(two_way);
    // Unlinked fragments: every exit traversal must trap, every time.
    let mut nolink = SdtConfig::ibtc_inline(256);
    nolink.link_fragments = false;
    cfgs.push(nolink);
    // Adaptive promotion chain: inline → per-site IBTC → sieve.
    let mut adaptive = SdtConfig::ibtc_inline(256);
    adaptive.policy.jump = ClassPolicy::Adaptive {
        ibtc_entries: 16,
        sieve_buckets: 64,
        sieve_arity: 2,
    };
    cfgs.push(adaptive);
    // Split policy: distinct jump/call bindings (multi-bind sentinels).
    let mut split = SdtConfig::ibtc_inline(256);
    split.policy.call = ClassPolicy::Fixed {
        mech: IbMechanism::Sieve { buckets: 32 },
        ways: 1,
    };
    cfgs.push(split);
    // Tiny cache: exercises flush handling through the replay path.
    let mut tiny = SdtConfig::ibtc_inline(64);
    tiny.cache_limit = Some(8192);
    cfgs.push(tiny);
    cfgs
}

fn check_replay_exact(prog: &Program) {
    let log = native_log(prog);
    for cfg in configs() {
        let mut sdt = Sdt::new(cfg, prog).expect("sdt constructs");
        let report = match sdt.run(ArchProfile::x86_like(), FUEL) {
            Ok(r) => r,
            // Configurations that cannot run this program (cache too
            // small without flushing, etc.) are skipped, not failures.
            Err(e) => panic!("[{}] {} failed: {e}", prog.name, cfg.describe()),
        };
        let mut rp =
            DispatchReplay::new(cfg, prog, ArchProfile::x86_like()).expect("replay constructs");
        rp.seek(layout::APP_BASE).expect("seek to entry");
        for ev in &log {
            rp.step(ev).unwrap_or_else(|e| {
                panic!("[{}] {}: replay desync: {e}", prog.name, cfg.describe())
            });
        }
        assert_eq!(
            rp.stats(),
            report.mech,
            "[{}] mechanism counters diverge under {}",
            prog.name,
            cfg.describe()
        );
        assert_eq!(
            rp.per_class(),
            report.per_class,
            "[{}] per-class counters diverge under {}",
            prog.name,
            cfg.describe()
        );
        assert_eq!(
            rp.translator_cycles(),
            report.translator_cycles,
            "[{}] translator cycles diverge under {}",
            prog.name,
            cfg.describe()
        );
    }
}

#[test]
fn replay_matches_exact_mode_on_jump_table_loop() {
    check_replay_exact(&program(
        "switch",
        &format!(
            r"
        li r10, {data}
        li r1, case0
        sw r1, 0(r10)
        li r1, case1
        sw r1, 4(r10)
        li r1, case2
        sw r1, 8(r10)
        li r1, case3
        sw r1, 12(r10)
        li r5, 40
        li r4, 0
        li r6, 0
    top:
        andi r7, r6, 3
        slli r7, r7, 2
        add r7, r7, r10
        lw r7, 0(r7)
        jr r7               ; 4-way polymorphic indirect jump
    case0:
        addi r4, r4, 1
        jmp next
    case1:
        addi r4, r4, 10
        jmp next
    case2:
        addi r4, r4, 100
        jmp next
    case3:
        addi r4, r4, 1000
    next:
        addi r6, r6, 1
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
        ",
            data = layout::APP_DATA_BASE
        ),
    ));
}

#[test]
fn replay_matches_exact_mode_on_indirect_calls() {
    check_replay_exact(&program(
        "fnptr",
        r"
        li r8, add_one
        li r9, add_two
        li r5, 25
        li r4, 0
    top:
        andi r7, r5, 1
        cmpi r7, 0
        beq even
        callr r8
        jmp next
    even:
        callr r9
    next:
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
    add_one:
        addi r4, r4, 1
        ret
    add_two:
        addi r4, r4, 2
        ret
        ",
    ));
}

#[test]
fn replay_matches_exact_mode_on_recursion() {
    check_replay_exact(&program(
        "recursion",
        r"
        li r1, 12
        li r4, 0
        call fib_acc
        trap 0x1
        halt
    fib_acc:
        cmpi r1, 1
        bge  recurse
        addi r4, r4, 1
        ret
    recurse:
        push r1
        addi r1, r1, -1
        call fib_acc
        pop r1
        push r1
        addi r1, r1, -2
        call fib_acc
        pop r1
        ret
        ",
    ));
}

#[test]
fn replay_matches_exact_mode_on_call_loop() {
    check_replay_exact(&program(
        "call-loop",
        r"
        li r1, 40
        li r4, 0
    top:
        call bump
        addi r1, r1, -1
        cmpi r1, 0
        bne top
        trap 0x1
        halt
    bump:
        addi r4, r4, 3
        ret
        ",
    ));
}

#[test]
fn replay_with_elision_tracks_elided_jumps() {
    // Jump elision inlines direct-jump targets; the replay must consume
    // those control events inside the fragment instead of traversing an
    // exit.
    let prog = program(
        "elide",
        r"
        li r5, 30
        li r4, 0
    top:
        addi r4, r4, 1
        jmp mid
    mid:
        addi r4, r4, 2
        jmp tail
    tail:
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1
        halt
        ",
    );
    let log = native_log(&prog);
    let mut cfg = SdtConfig::ibtc_inline(256);
    cfg.elide_direct_jumps = true;
    let mut sdt = Sdt::new(cfg, &prog).unwrap();
    let report = sdt.run(ArchProfile::x86_like(), FUEL).unwrap();
    assert!(report.mech.elided_jumps > 0, "elision engaged");
    let mut rp = DispatchReplay::new(cfg, &prog, ArchProfile::x86_like()).unwrap();
    rp.seek(layout::APP_BASE).unwrap();
    for ev in &log {
        rp.step(ev).unwrap();
    }
    assert_eq!(rp.stats(), report.mech);
}

#[test]
fn desync_is_reported_not_miscounted() {
    let prog = program(
        "tiny",
        r"
        li r4, 1
        trap 0x1
        halt
        ",
    );
    let mut rp =
        DispatchReplay::new(SdtConfig::ibtc_inline(64), &prog, ArchProfile::x86_like()).unwrap();
    // Stepping before seek is a desync, not a panic.
    let ev = CompactRetire {
        pc: layout::APP_BASE,
        kind: strata_isa::ControlKind::Direct,
        taken: true,
        indirect: false,
        target: layout::APP_BASE,
        mem: strata_machine::observers::MemClass::None,
    };
    let err = rp.step(&ev).unwrap_err();
    assert!(err.to_string().contains("desynchronized"), "{err}");
}
