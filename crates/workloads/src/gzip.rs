//! The `gzip` stand-in: LZ-style hash-chain scanning over a byte buffer.
//! Like 164.gzip, the hot loops are branchy integer code with almost no
//! indirect branches — the control case showing SDT overhead when IB
//! handling barely matters.

use strata_asm::assemble;
use strata_machine::{layout, Program};
use strata_stats::rng::SmallRng;

use crate::Params;

/// Input buffer size per pass.
const INPUT_LEN: usize = 24 * 1024;
/// Hash-table entries (words).
const HASH_ENTRIES: u32 = 4096;

/// Builds the `gzip` stand-in.
pub fn build_gzip(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let hash_tab = data_base + 0x10_000;
    let passes = params.scale;

    let mut rng = SmallRng::seed_from_u64(params.seed(0x0006_211F_1964));
    // Mildly compressible input: runs plus noise.
    let mut input = Vec::with_capacity(INPUT_LEN);
    while input.len() < INPUT_LEN {
        let b: u8 = rng.gen_range(0..64);
        let run = rng.gen_range(1..6);
        for _ in 0..run {
            input.push(b);
            if input.len() == INPUT_LEN {
                break;
            }
        }
    }

    let src = format!(
        r"
    li r5, {passes}
    li r4, 0
pass:
    li r10, {data_base}     ; input cursor
    li r12, {end}           ; end - 3
    li r13, {hash_tab}
    li r3, 0                ; match counter
scan:
    lbu r6, 0(r10)          ; hash three bytes
    lbu r7, 1(r10)
    slli r6, r6, 4
    xor r6, r6, r7
    lbu r7, 2(r10)
    slli r6, r6, 2
    xor r6, r6, r7
    andi r6, r6, {mask}
    slli r6, r6, 2
    add r6, r6, r13         ; table slot
    lw r7, 0(r6)            ; previous position with this hash
    sw r10, 0(r6)           ; record ours
    cmpi r7, 0
    beq nomatch
    lbu r8, 0(r7)           ; candidate match: compare first byte
    lbu r9, 0(r10)
    cmp r8, r9
    bne nomatch
    addi r3, r3, 1          ; count the match
nomatch:
    addi r10, r10, 1
    cmp r10, r12
    bltu scan
    add r4, r4, r3
    call flush
    addi r5, r5, -1
    cmpi r5, 0
    bne pass
    halt
flush:                      ; per-pass block flush, the only call site
    xori r4, r4, 0x5c5c
    trap 0x1
    ret
",
        end = data_base + (INPUT_LEN as u32) - 3,
        mask = HASH_ENTRIES - 1,
    );

    let code = assemble(layout::APP_BASE, &src).expect("gzip assembles");
    Program::new("gzip", code, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn gzip_has_almost_no_indirect_branches() {
        let p = build_gzip(&Params::default());
        let r = reference::run(&p, 50_000_000).unwrap();
        assert!(r.instructions > 400_000, "{}", r.instructions);
        assert_eq!(r.indirect_jumps, 0);
        assert_eq!(r.indirect_calls, 0);
        assert_eq!(r.returns, 1, "one flush per pass at scale 1");
        assert_ne!(r.checksum, 0);
        assert_eq!(r, reference::run(&p, 50_000_000).unwrap());
    }
}
