//! The `parser` stand-in: recursive-descent parsing of a generated
//! expression token stream. Like 197.parser, execution is dominated by
//! data-dependent conditional branches and call/return pairs from the
//! mutually recursive grammar procedures.

use strata_asm::assemble;
use strata_machine::{layout, Program};
use strata_stats::rng::SmallRng;

use crate::Params;

// Token kinds.
const T_NUM: u8 = 0;
const T_PLUS: u8 = 1;
const T_TIMES: u8 = 2;
const T_LPAREN: u8 = 3;
const T_RPAREN: u8 = 4;
const T_END: u8 = 5;

/// Generates a valid token stream for `expr := term ((PLUS|TIMES) term)*`,
/// `term := NUM | LPAREN expr RPAREN`. The top level keeps appending terms
/// until the budget is exhausted so the stream length is predictable;
/// nested expressions terminate randomly.
fn gen_tokens(rng: &mut SmallRng, out: &mut Vec<u8>, depth: u32, budget: &mut u32) {
    gen_term(rng, out, depth, budget);
    while *budget > 0 {
        out.push(if rng.gen_bool(0.5) { T_PLUS } else { T_TIMES });
        gen_term(rng, out, depth, budget);
    }
}

/// A nested `expr` with random continuation.
fn gen_expr(rng: &mut SmallRng, out: &mut Vec<u8>, depth: u32, budget: &mut u32) {
    gen_term(rng, out, depth, budget);
    while *budget > 0 && rng.gen_bool(0.6) {
        out.push(if rng.gen_bool(0.5) { T_PLUS } else { T_TIMES });
        gen_term(rng, out, depth, budget);
    }
}

fn gen_term(rng: &mut SmallRng, out: &mut Vec<u8>, depth: u32, budget: &mut u32) {
    *budget = budget.saturating_sub(1);
    if depth > 0 && *budget > 4 && rng.gen_bool(0.35) {
        out.push(T_LPAREN);
        gen_expr(rng, out, depth - 1, budget);
        out.push(T_RPAREN);
    } else {
        out.push(T_NUM);
    }
}

/// Builds the `parser` stand-in.
pub fn build_parser(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let passes = 60 * params.scale;

    let mut rng = SmallRng::seed_from_u64(params.seed(0x197_197_197));
    let mut tokens = Vec::new();
    let mut budget = 480u32;
    gen_tokens(&mut rng, &mut tokens, 6, &mut budget);
    tokens.push(T_END);

    let src = format!(
        r"
    li r5, {passes}
    li r4, 0
pass:
    li r10, {data_base}   ; token cursor
    call parse_expr
    add r4, r4, r2
    trap 0x1
    addi r5, r5, -1
    cmpi r5, 0
    bne pass
    halt

; r10 = cursor (advanced), r2 = value. r6/r7 caller-saved via stack.
parse_expr:
    call parse_term
loop_ops:
    lbu r7, 0(r10)
    cmpi r7, {T_PLUS}
    beq do_plus
    cmpi r7, {T_TIMES}
    beq do_times
    ret                   ; neither: expression complete
do_plus:
    addi r10, r10, 1
    push r2
    call parse_term
    pop r6
    add r2, r2, r6
    jmp loop_ops
do_times:
    addi r10, r10, 1
    push r2
    call parse_term
    pop r6
    mul r2, r2, r6
    andi r2, r2, 0x7fff   ; keep values bounded
    jmp loop_ops

parse_term:
    lbu r7, 0(r10)
    cmpi r7, {T_LPAREN}
    beq nested
    ; NUM: value derived from the cursor position
    addi r10, r10, 1
    mov r2, r10
    andi r2, r2, 0xff
    addi r2, r2, 1
    ret
nested:
    addi r10, r10, 1      ; consume '('
    call parse_expr
    addi r10, r10, 1      ; consume ')'
    ret
",
    );

    let code = assemble(layout::APP_BASE, &src).expect("parser assembles");
    Program::new("parser", code, tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn token_stream_is_balanced() {
        let p = build_parser(&Params::default());
        let mut depth = 0i32;
        for &t in &p.data {
            match t {
                T_LPAREN => depth += 1,
                T_RPAREN => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert_eq!(*p.data.last().unwrap(), T_END);
    }

    #[test]
    fn parser_is_return_heavy() {
        let p = build_parser(&Params::default());
        let r = reference::run(&p, 100_000_000).unwrap();
        assert!(r.returns > 10_000, "{}", r.returns);
        assert_eq!(r.indirect_jumps, 0);
        assert!(r.direct_calls == r.returns, "balanced call/ret");
        assert_ne!(r.checksum, 0);
    }
}
