//! Object-oriented-style workloads built on indirect calls:
//!
//! * `eon` — virtual dispatch through per-class vtables (252.eon is the
//!   C++ benchmark in CINT2000; its indirect calls are class-polymorphic),
//! * `vortex` — database record operations selected through a
//!   function-pointer table plus helper calls (255.vortex),
//! * `vpr` — an annealing loop whose cost function is called through a
//!   rarely-changing pointer, i.e. *monomorphic* indirect calls (175.vpr).

use strata_asm::assemble;
use strata_machine::{layout, Program};
use strata_stats::rng::SmallRng;

use crate::Params;

const CLASSES: usize = 16;
const METHODS: usize = 4;
const OBJECTS: usize = 512;

/// Builds the `eon` stand-in.
pub fn build_eon(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let vtables = data_base + 0x1000;
    let passes = 28 * params.scale;

    let mut rng = SmallRng::seed_from_u64(params.seed(0x252_E011 ^ 0xE0E0));
    let objects: Vec<u8> = (0..OBJECTS)
        .map(|_| rng.gen_range(0..CLASSES as u8))
        .collect();

    let mut src = String::new();
    // Fill the vtables: class c, method m at vtables + (c*METHODS + m)*4.
    src.push_str(&format!("    li r13, {vtables}\n"));
    for c in 0..CLASSES {
        for m in 0..METHODS {
            src.push_str(&format!(
                "    li r1, v{c}_{m}\n    sw r1, {}(r13)\n",
                (c * METHODS + m) * 4
            ));
        }
    }
    src.push_str(&format!(
        r"
    li r10, {data_base}
    li r12, {OBJECTS}
    li r5, {passes}
    li r4, 0
    li r9, 0              ; method selector (rotates per pass)
pass:
    li r11, 0
obj:
    add r7, r10, r11
    lbu r7, 0(r7)         ; class id
    li r6, {METHODS}
    mul r7, r7, r6
    add r7, r7, r9        ; + method index
    slli r7, r7, 2
    add r7, r7, r13
    lw r7, 0(r7)          ; load the method pointer from the vtable
    callr r7              ; virtual call
    addi r11, r11, 1
    cmp r11, r12
    bltu obj
    trap 0x1
    addi r9, r9, 1        ; next method next pass
    cmpi r9, {METHODS}
    bne nowrap
    li r9, 0
nowrap:
    addi r5, r5, -1
    cmpi r5, 0
    bne pass
    halt
"
    ));
    for c in 0..CLASSES {
        for m in 0..METHODS {
            let body = match (c + m) % 4 {
                0 => format!("    addi r4, r4, {}\n", c * 3 + m + 1),
                1 => format!("    xori r4, r4, {:#x}\n", (c << 4) | m | 0x100),
                2 => "    slli r6, r4, 1\n    xor r4, r4, r6\n".to_string(),
                _ => "    add r4, r4, r11\n".to_string(),
            };
            src.push_str(&format!("v{c}_{m}:\n{body}    ret\n"));
        }
    }

    let code = assemble(layout::APP_BASE, &src).expect("eon assembles");
    Program::new("eon", code, objects)
}

const VORTEX_OPS: usize = 32;

/// Builds the `vortex` stand-in.
pub fn build_vortex(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let optab = data_base + 0x1000;
    let records = data_base + 0x4000;
    let iters = 6_000 * params.scale;

    let mut src = String::new();
    src.push_str(&format!("    li r13, {optab}\n"));
    for op in 0..VORTEX_OPS {
        src.push_str(&format!("    li r1, op{op}\n    sw r1, {}(r13)\n", op * 4));
    }
    src.push_str(&format!(
        r"
    li r12, {records}
    li r9, 0xV0R7EX
    li r5, {iters}
    li r4, 0
txn:
    li r7, 0x10dcd        ; pick an operation
    mul r9, r9, r7
    addi r9, r9, 2531
    srli r7, r9, 16
    andi r7, r7, {mask}
    slli r7, r7, 2
    add r7, r7, r13
    lw r7, 0(r7)
    callr r7              ; dispatch the record operation
    addi r5, r5, -1
    cmpi r5, 0
    bne txn
    trap 0x1
    halt

rec_addr:                 ; r9 -> r6 = address of a record field
    srli r6, r9, 8
    andi r6, r6, 0xff
    slli r6, r6, 4        ; 16-byte records
    add r6, r6, r12
    ret
",
        mask = VORTEX_OPS - 1,
    ));
    for op in 0..VORTEX_OPS {
        let field = (op % 4) * 4;
        let body = match op % 4 {
            0 => format!("    call rec_addr\n    lw r7, {field}(r6)\n    add r4, r4, r7\n"),
            1 => format!("    call rec_addr\n    sw r4, {field}(r6)\n    addi r4, r4, {op}\n"),
            2 => format!(
                "    call rec_addr\n    lw r7, {field}(r6)\n    xor r4, r4, r7\n    sw r4, {field}(r6)\n"
            ),
            _ => format!(
                "    call rec_addr\n    lw r7, {field}(r6)\n    add r7, r7, r4\n    sw r7, {field}(r6)\n    srli r4, r4, 1\n"
            ),
        };
        src.push_str(&format!("op{op}:\n{body}    ret\n"));
    }
    // The LCG seed literal above uses a fake hex digit; fix it here instead
    // of inventing assembler syntax.
    let src = src.replace("0xV0R7EX", "0x507EC5");

    let code = assemble(layout::APP_BASE, &src).expect("vortex assembles");
    Program::new("vortex", code, Vec::new())
}

/// Builds the `vpr` stand-in.
pub fn build_vpr(params: &Params) -> Program {
    let iters = 22_000 * params.scale;
    let src = format!(
        r"
    li r8, cost_bb        ; current cost function (changes every 4096 iters)
    li r9, 0x175
    li r5, {iters}
    li r4, 0
    li r11, 0             ; iteration counter for the phase switch
anneal:
    li r7, 0x10dcd
    mul r9, r9, r7
    addi r9, r9, 907
    callr r8              ; monomorphic-by-phase indirect call
    addi r11, r11, 1
    andi r7, r11, 0xfff
    cmpi r7, 0
    bne keep
    ; phase change: toggle the cost function
    li r7, cost_bb
    cmp r8, r7
    bne use_bb
    li r8, cost_net
    jmp keep
use_bb:
    li r8, cost_bb
keep:
    addi r5, r5, -1
    cmpi r5, 0
    bne anneal
    trap 0x1
    halt

cost_bb:                  ; bounding-box style cost
    srli r2, r9, 10
    andi r2, r2, 0x3ff
    add r4, r4, r2
    ret

cost_net:                 ; net-length style cost
    srli r2, r9, 6
    andi r2, r2, 0xff
    xor r4, r4, r2
    addi r4, r4, 5
    ret
"
    );
    let code = assemble(layout::APP_BASE, &src).expect("vpr assembles");
    Program::new("vpr", code, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn eon_is_virtual_call_heavy() {
        let p = build_eon(&Params::default());
        let r = reference::run(&p, 100_000_000).unwrap();
        assert!(
            r.indirect_calls >= (OBJECTS as u64) * 28,
            "{}",
            r.indirect_calls
        );
        assert_eq!(r.indirect_calls, r.returns);
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn vortex_mixes_indirect_and_direct_calls() {
        let p = build_vortex(&Params::default());
        let r = reference::run(&p, 100_000_000).unwrap();
        assert!(r.indirect_calls >= 6_000);
        assert!(r.direct_calls >= 6_000, "helpers called by each op");
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn vpr_indirect_calls_are_monomorphic_by_phase() {
        let p = build_vpr(&Params::default());
        let r = reference::run(&p, 100_000_000).unwrap();
        assert!(r.indirect_calls >= 22_000);
        assert_eq!(r.indirect_jumps, 0);
        assert_ne!(r.checksum, 0);
    }
}
