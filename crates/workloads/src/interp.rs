//! Interpreter workloads: `perlbmk` (bytecode dispatch dominated by one hot
//! polymorphic indirect jump) and `gap` (a stack-machine interpreter mixed
//! with arithmetic kernels).

use strata_asm::assemble;
use strata_machine::{layout, Program};
use strata_stats::rng::SmallRng;

use crate::Params;

/// Number of distinct bytecode handlers in the perlbmk stand-in.
const PERL_OPS: usize = 128;
/// Bytecode length.
const PERL_CODE_LEN: usize = 2048;

/// Builds the `perlbmk` stand-in: a threaded bytecode interpreter whose
/// dispatch loop executes one indirect jump per bytecode — the canonical
/// worst case for SDT indirect-branch handling (253.perlbmk's interpreter
/// loop behaves the same way).
pub fn build_perlbmk(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let table = data_base + 0x1000;
    let passes = 40 * params.scale;

    let mut rng = SmallRng::seed_from_u64(params.seed(0x9E3779B97F4A7C15));
    let bytecode: Vec<u8> = (0..PERL_CODE_LEN)
        .map(|_| rng.gen_range(0..PERL_OPS as u8))
        .collect();

    let mut src = String::new();
    // Initialize the handler table (the interpreter's computed-goto table).
    src.push_str(&format!("    li r13, {table}\n"));
    for op in 0..PERL_OPS {
        src.push_str(&format!("    li r1, h{op}\n    sw r1, {}(r13)\n", op * 4));
    }
    src.push_str(&format!(
        r"
    li r10, {data_base}
    li r12, {PERL_CODE_LEN}
    li r5, {passes}
    li r4, 0
pass:
    li r11, 0
iloop:
    add r7, r10, r11
    lbu r7, 0(r7)
    slli r7, r7, 2
    add r7, r7, r13
    lw r7, 0(r7)
    jr r7               ; the hot interpreter dispatch
"
    ));
    // Handlers: distinct tiny bodies, all rejoining the loop.
    for op in 0..PERL_OPS {
        let body = match op % 8 {
            0 => format!("    addi r4, r4, {}\n", op + 1),
            1 => format!("    xori r4, r4, {:#x}\n", 0x40 + op),
            2 => format!("    slli r6, r4, {}\n    add r4, r4, r6\n", 1 + op % 3),
            3 => format!("    srli r6, r4, {}\n    xor r4, r4, r6\n", 1 + op % 7),
            4 => format!("    addi r4, r4, {}\n", op * 7),
            5 => "    sub r4, r4, r11\n".to_string(),
            6 => "    add r4, r4, r11\n".to_string(),
            _ => format!("    ori r4, r4, {:#x}\n", op),
        };
        src.push_str(&format!("h{op}:\n{body}    jmp inext\n"));
    }
    src.push_str(
        r"
inext:
    addi r11, r11, 1
    cmp r11, r12
    bltu iloop
    trap 0x1            ; checksum the accumulator once per pass
    addi r5, r5, -1
    cmpi r5, 0
    bne pass
    halt
",
    );

    let code = assemble(layout::APP_BASE, &src).expect("perlbmk assembles");
    Program::new("perlbmk", code, bytecode)
}

/// `gap` stack-machine opcodes.
const GAP_OPS: usize = 32;
const GAP_CODE_LEN: usize = 1024;

/// Builds the `gap` stand-in: a stack-machine interpreter (dispatch through
/// a jump table, like 254.gap's inner evaluator) interleaved with a direct
/// arithmetic kernel each pass, so indirect jumps are frequent but not as
/// dominant as in `perlbmk`.
pub fn build_gap(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let table = data_base + 0x1000;
    let vm_stack = data_base + 0x8000;
    let passes = 22 * params.scale;

    let mut rng = SmallRng::seed_from_u64(params.seed(0xA5A5_5A5A_1234_5678));
    let bytecode: Vec<u8> = (0..GAP_CODE_LEN)
        .map(|_| rng.gen_range(0..GAP_OPS as u8))
        .collect();

    let mut src = String::new();
    src.push_str(&format!("    li r13, {table}\n"));
    for op in 0..GAP_OPS {
        src.push_str(&format!("    li r1, g{op}\n    sw r1, {}(r13)\n", op * 4));
    }
    src.push_str(&format!(
        r"
    li r10, {data_base}
    li r12, {GAP_CODE_LEN}
    li r5, {passes}
    li r4, 0
pass:
    li r14, {vm_stack}  ; VM operand-stack pointer (grows up, in data)
    li r11, 0
iloop:
    add r7, r10, r11
    lbu r7, 0(r7)
    slli r7, r7, 2
    add r7, r7, r13
    lw r7, 0(r7)
    jr r7
{{HANDLERS}}gnext:
    addi r11, r11, 1
    cmp r11, r12
    bltu iloop
    call kernel         ; arithmetic kernel between interpretation passes
    trap 0x1
    addi r5, r5, -1
    cmpi r5, 0
    bne pass
    halt
kernel:                 ; 256 rounds of multiply-accumulate
    li r6, 256
    li r7, 0x10dcd
klp:
    mul r4, r4, r7
    addi r4, r4, 12345
    addi r6, r6, -1
    cmpi r6, 0
    bne klp
    ret
"
    ));

    let mut handlers = String::new();
    for op in 0..GAP_OPS {
        let body = match op % 8 {
            0 => "    sw r11, 0(r14)\n    addi r14, r14, 4\n".to_string(),
            1 => "    sw r4, 0(r14)\n    addi r14, r14, 4\n".to_string(),
            2 => "    lw r6, -4(r14)\n    add r4, r4, r6\n".to_string(),
            3 => "    lw r6, -4(r14)\n    xor r4, r4, r6\n".to_string(),
            4 => "    addi r14, r14, -4\n    lw r4, 0(r14)\n    addi r14, r14, 4\n".to_string(),
            5 => format!("    slli r6, r4, {}\n    sub r4, r6, r4\n", 1 + op % 4),
            6 => format!("    srli r6, r4, {}\n    add r4, r4, r6\n", 1 + op % 6),
            _ => format!("    addi r4, r4, {}\n", op),
        };
        handlers.push_str(&format!("g{op}:\n{body}    jmp gnext\n"));
    }
    let src = src.replace("{HANDLERS}", &handlers);
    let code = assemble(layout::APP_BASE, &src).expect("gap assembles");
    Program::new("gap", code, bytecode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn perlbmk_is_indirect_jump_dominated() {
        let p = build_perlbmk(&Params::default());
        let r = reference::run(&p, 50_000_000).unwrap();
        let a = reference::run(&p, 50_000_000).unwrap();
        assert_eq!(r, a, "deterministic");
        assert!(r.instructions > 500_000, "{} instrs", r.instructions);
        // One dispatch per bytecode per pass.
        assert!(r.indirect_jumps >= (PERL_CODE_LEN as u64) * 40);
        assert!(r.indirect_jumps > r.returns);
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn gap_mixes_dispatch_and_calls() {
        let p = build_gap(&Params::default());
        let r = reference::run(&p, 50_000_000).unwrap();
        assert!(r.indirect_jumps >= (GAP_CODE_LEN as u64) * 22);
        assert!(r.direct_calls >= 22, "kernel called each pass");
        assert!(r.returns >= 22);
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn scale_scales_work() {
        let r1 = reference::run(&build_perlbmk(&Params::at_scale(1)), 100_000_000).unwrap();
        let r2 = reference::run(&build_perlbmk(&Params::at_scale(2)), 100_000_000).unwrap();
        assert!(r2.instructions > r1.instructions * 3 / 2);
    }
}
